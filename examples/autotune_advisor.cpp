// Auto-tuning advisor: a week of workload history flows through the
// Statistics Service; advisors mine the weighted join graph and filter
// column counts; the What-If Service prices each proposal in dollars per
// day — the customer-readable reports from paper Section 4.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/statistics_service.h"
#include "tuning/advisors.h"
#include "tuning/what_if.h"
#include "workload/trace.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  BenchContext ctx = BenchContext::Make(0.01, 2e5, 128);

  // A week of recurring analytics, heavy on the dates join.
  TraceOptions trace_opts;
  trace_opts.duration = 7.0 * kSecondsPerDay;
  trace_opts.queries_per_hour = 40.0;
  trace_opts.template_weights = {{"Q3", 5.0}, {"Q5", 2.0}, {"Q10", 3.0}};
  auto trace = GenerateTrace(trace_opts);

  StatisticsService stats;
  std::map<std::string, BoundQuery> bound;
  for (const auto& id : {"Q3", "Q5", "Q10"}) {
    auto q = ctx.db->BindSql(FindQuery(id).sql);
    if (q.ok()) bound.emplace(id, std::move(*q));
  }
  for (const auto& ev : trace) {
    auto it = bound.find(ev.query_id);
    if (it == bound.end()) continue;
    stats.Ingest(MakeExecutionRecord(ev.query_id, ev.at, it->second, 2.0,
                                     16.0, 0.004));
  }
  std::printf("ingested %.0f executions; weighted join graph:\n",
              stats.records_ingested());
  for (const auto& [edge, weight] : stats.join_graph()) {
    std::printf("  %-55s %.0f\n", edge.c_str(), weight);
  }

  // Predict next week's rates and price the advisors' proposals.
  WorkloadPredictor predictor;
  std::vector<WorkloadItem> workload;
  for (const auto& [id, q] : bound) {
    workload.push_back(
        {id, FindQuery(id).sql,
         predictor.PredictDailyArrivals(stats.HourlyArrivals(id))});
  }
  WhatIfService what_if(&ctx.meta, ctx.estimator);
  auto actions = ProposeMvActions(stats, 2);
  auto reclusters = ProposeReclusterActions(stats, ctx.meta, 2);
  actions.insert(actions.end(), reclusters.begin(), reclusters.end());

  std::printf("\n%zu proposals from the advisors:\n\n", actions.size());
  for (const auto& action : actions) {
    auto report = what_if.Evaluate(action, workload);
    if (!report.ok()) {
      std::printf("(%s: %s)\n", action.Describe().c_str(),
                  report.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", report->ToString().c_str());
  }
  return 0;
}
