// Budget mode: "I have $X for this query — make it as fast as you can."
// The second user paradigm from the paper's introduction: a fixed spend,
// maximum performance, no cluster-size decisions.
#include <cstdio>

#include "bench/bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  BenchContext ctx = BenchContext::Make();
  const std::string sql = FindQuery("Q8").sql;
  std::printf("query: %s\n\n", sql.c_str());

  // Establish the spend range: cheapest possible vs all-out.
  auto floor_plan = ctx.session->Plan(sql, UserConstraint::Budget(0.0));
  auto ceiling = ctx.session->Plan(sql, UserConstraint::Budget(1e9));
  if (!floor_plan.ok() || !ceiling.ok()) return 1;
  Dollars lo = floor_plan->estimate.cost;
  Dollars hi = ceiling->estimate.cost;
  std::printf("spend range: %s (serial) .. %s (fastest)\n\n",
              FormatDollars(lo).c_str(), FormatDollars(hi).c_str());

  TablePrinter t({"budget", "est bill", "est latency", "speedup vs serial"});
  Seconds serial_latency = floor_plan->estimate.latency;
  for (double f : {0.0, 0.25, 0.5, 1.0, 2.0, 8.0}) {
    Dollars budget = lo + f * (hi - lo);
    auto planned = ctx.session->Plan(sql, UserConstraint::Budget(budget));
    if (!planned.ok()) continue;
    t.AddRow({FormatDollars(budget), FormatDollars(planned->estimate.cost),
              FormatSeconds(planned->estimate.latency),
              StrFormat("%.1fx", serial_latency / planned->estimate.latency)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nEvery extra dollar buys parallelism only where the scalability\n"
      "models say it helps; past the fastest plan, more budget buys\n"
      "nothing and the planner stops spending it.\n");
  return 0;
}
