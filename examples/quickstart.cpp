// Quickstart: load a small star-schema warehouse into the Database facade,
// run SQL end to end on the local engine, see what the cost-intelligent
// planner predicts the query would cost in the cloud — and watch the
// calibration feedback loop tighten that prediction after the first run.
#include <cstdio>

#include "service/database.h"
#include "workload/ssb.h"

using namespace costdb;

int main() {
  // 1. One front door: the Database owns the catalog, the optimizer pass
  //    pipeline, the shared cost estimator, and both execution backends.
  Database db;
  SsbOptions data;
  data.scale = 0.01;  // ~6k orders in-process
  LoadSsb(db.meta(), data);
  std::printf("tables:");
  for (const auto& name : db.meta()->TableNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\noptimizer passes:");
  for (const auto& pass : db.query_service()->PassNames()) {
    std::printf(" %s", pass.c_str());
  }
  std::printf("\n\n");

  // 2. Run a query (parse -> bind -> optimize -> execute -> calibrate).
  const std::string sql =
      "SELECT s_nation, sum(lo_revenue) AS revenue "
      "FROM lineorder, supplier "
      "WHERE lo_suppkey = s_suppkey AND s_region = 'ASIA' "
      "GROUP BY s_nation ORDER BY revenue DESC LIMIT 5";
  auto run = db.ExecuteSql(sql, UserConstraint::Sla(30.0));
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("distributed plan:\n%s\n", run->plan->plan->ToString().c_str());
  std::printf("result:\n%s\n", run->result.ToString().c_str());

  // 3. What would this cost in the cloud? The planner already knows.
  const PlanCostEstimate& est = run->plan->estimate;
  std::printf("prediction under a 30 s SLA: latency %s, bill %s (%zu "
              "pipelines)\n",
              FormatSeconds(est.latency).c_str(),
              FormatDollars(est.cost).c_str(),
              run->plan->pipelines.pipelines.size());
  for (const auto& p : est.pipelines) {
    std::printf("  pipeline %d: dop=%d duration=%s\n", p.pipeline_id, p.dop,
                FormatSeconds(p.duration).c_str());
  }

  // 4. The calibration loop: the run's wall-clock pipeline timings just
  //    flowed back into the hardware calibration, so replanning the same
  //    query predicts closer to what this machine actually delivers.
  std::printf("\ncalibration feedback: %d pipelines observed, q-error "
              "%.2f -> %.2f (scale %.3f)\n",
              run->calibration.pipelines_observed,
              run->calibration.q_error_before, run->calibration.q_error_after,
              run->calibration.applied_scale);
  auto rerun = db.ExecuteSql(sql, UserConstraint::Sla(30.0));
  if (rerun.ok()) {
    std::printf("replanned after calibration: latency %s (was %s), "
                "q-error %.2f\n",
                FormatSeconds(rerun->plan->estimate.latency).c_str(),
                FormatSeconds(est.latency).c_str(),
                rerun->calibration.q_error_before);
  }
  auto cache = db.plan_cache_stats();
  std::printf("plan cache: %zu hits, %zu misses, %zu invalidations\n",
              cache.hits, cache.misses, cache.invalidations);
  return 0;
}
