// Quickstart: load a small star-schema warehouse, open a Session (the
// client entry point), run SQL end to end on the local engine — then see
// what the session-oriented surface adds: prepared statements that plan
// once and bind per-call parameters, async submission with streaming
// results, and the calibration loop tightening cost predictions.
#include <cstdio>

#include "service/session.h"
#include "workload/ssb.h"

using namespace costdb;

int main() {
  // 1. One shared Database (catalog, optimizer pass pipeline, calibrated
  //    cost estimator, both execution backends) — and one Session per
  //    client on top of it, carrying that client's defaults and budget.
  Database db;
  SsbOptions data;
  data.scale = 0.01;  // ~6k orders in-process
  LoadSsb(db.meta(), data);

  SessionOptions client;
  client.default_constraint = UserConstraint::Sla(30.0);
  client.budget = 25.0;  // this session may spend $25 of estimated bills
  Session session(&db, client);

  std::printf("tables:");
  for (const auto& name : db.meta()->TableNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\noptimizer passes:");
  for (const auto& pass : db.query_service()->PassNames()) {
    std::printf(" %s", pass.c_str());
  }
  std::printf("\n\n");

  // 2. Run a query (parse -> bind -> optimize -> execute -> calibrate).
  const std::string sql =
      "SELECT s_nation, sum(lo_revenue) AS revenue "
      "FROM lineorder, supplier "
      "WHERE lo_suppkey = s_suppkey AND s_region = 'ASIA' "
      "GROUP BY s_nation ORDER BY revenue DESC LIMIT 5";
  auto run = session.ExecuteSql(sql);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("result:\n%s\n", run->result.ToString().c_str());

  // 3. What would this cost in the cloud? The planner already knows, and
  //    the session charged the estimate to its budget ledger.
  const PlanCostEstimate& est = run->plan->estimate;
  std::printf("prediction under a 30 s SLA: latency %s, bill %s (%zu "
              "pipelines); session spent %s of its budget\n\n",
              FormatSeconds(est.latency).c_str(),
              FormatDollars(est.cost).c_str(),
              run->plan->pipelines.pipelines.size(),
              FormatDollars(session.spent()).c_str());

  // 4. Prepared statements: '?' placeholders bind per execution; the plan
  //    is cached by statement *shape*, so 3 executions = 1 optimizer run.
  auto stmt = session.Prepare(
      "SELECT count(*) AS n FROM lineorder "
      "WHERE lo_quantity < ? AND lo_discount BETWEEN ? AND ?");
  if (stmt.ok()) {
    for (int64_t q : {10, 25, 40}) {
      auto bound = session.Execute(
          *stmt, {Value(q), Value(int64_t{1}), Value(int64_t{3})});
      if (bound.ok()) {
        std::printf("lo_quantity < %2lld -> %lld orders\n",
                    static_cast<long long>(q),
                    static_cast<long long>(
                        bound->result.chunk.column(0).GetInt(0)));
      }
    }
    // Early in a database's life every run moves the calibration, which
    // (correctly) invalidates cached plans; once it settles a statement
    // plans exactly once — bench_e13_sessions measures that steady state.
    std::printf("planned %zu time(s) for %zu executions (early calibration "
                "rounds force replans)\n\n",
                (*stmt)->times_planned(), (*stmt)->executions());
  }

  // 5. Async submission with streaming results: Submit returns a handle,
  //    the admission controller orders the run queue by estimated cost,
  //    and FetchChunk pulls rows while the query may still be running.
  auto handle = session.Submit(sql);
  if (handle.ok()) {
    DataChunk chunk;
    size_t chunks = 0, rows = 0;
    while (true) {
      auto got = (*handle)->FetchChunk(&chunk);
      if (!got.ok() || !*got) break;
      ++chunks;
      rows += chunk.num_rows();
    }
    std::printf("streamed %zu row(s) in %zu chunk(s) via FetchChunk\n\n",
                rows, chunks);
  }

  // 6. The calibration loop: the first run's wall-clock timings flowed
  //    back into the hardware calibration, so replanning predicts closer
  //    to what this machine actually delivers.
  std::printf("calibration feedback: %d pipelines observed, q-error "
              "%.2f -> %.2f (scale %.3f)\n",
              run->calibration.pipelines_observed,
              run->calibration.q_error_before, run->calibration.q_error_after,
              run->calibration.applied_scale);
  auto rerun = session.ExecuteSql(sql);
  if (rerun.ok()) {
    std::printf("replanned after calibration: latency %s (was %s), "
                "q-error %.2f\n",
                FormatSeconds(rerun->plan->estimate.latency).c_str(),
                FormatSeconds(est.latency).c_str(),
                rerun->calibration.q_error_before);
  }
  auto cache = db.plan_cache_stats();
  std::printf("plan cache: %zu hits, %zu misses, %zu invalidations\n",
              cache.hits, cache.misses, cache.invalidations);
  return 0;
}
