// Quickstart: load a small star-schema warehouse, run SQL end to end on
// the local engine, and see what the cost-intelligent planner predicts the
// query would cost in the cloud.
#include <cstdio>

#include "exec/engine.h"
#include "optimizer/bi_objective.h"
#include "workload/ssb.h"

using namespace costdb;

int main() {
  // 1. A warehouse: six tables, generated deterministically.
  MetadataService meta;
  SsbOptions data;
  data.scale = 0.01;  // ~6k orders in-process
  LoadSsb(&meta, data);
  std::printf("tables:");
  for (const auto& name : meta.TableNames()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // 2. Run a query locally (parse -> bind -> optimize -> execute).
  const std::string sql =
      "SELECT s_nation, sum(lo_revenue) AS revenue "
      "FROM lineorder, supplier "
      "WHERE lo_suppkey = s_suppkey AND s_region = 'ASIA' "
      "GROUP BY s_nation ORDER BY revenue DESC LIMIT 5";
  HardwareCalibration hw;
  InstanceType node = PricingCatalog::Default().default_node();
  CostEstimator estimator(&hw, &node);
  BiObjectiveOptimizer optimizer(&meta, &estimator);

  auto planned = optimizer.PlanSql(sql, UserConstraint::Sla(30.0));
  if (!planned.ok()) {
    std::printf("plan error: %s\n", planned.status().ToString().c_str());
    return 1;
  }
  std::printf("distributed plan:\n%s\n", planned->plan->ToString().c_str());

  LocalEngine engine(8);
  auto result = engine.Execute(planned->plan.get());
  if (!result.ok()) {
    std::printf("exec error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("result:\n%s\n", result->ToString().c_str());

  // 3. What would this cost in the cloud? The planner already knows.
  std::printf("prediction under a 30 s SLA: latency %s, bill %s (%zu "
              "pipelines)\n",
              FormatSeconds(planned->estimate.latency).c_str(),
              FormatDollars(planned->estimate.cost).c_str(),
              planned->pipelines.pipelines.size());
  for (const auto& p : planned->estimate.pipelines) {
    std::printf("  pipeline %d: dop=%d duration=%s\n", p.pipeline_id, p.dop,
                FormatSeconds(p.duration).c_str());
  }
  return 0;
}
