// SLA-driven analytics: the same query under different latency contracts.
// Instead of picking a warehouse size, the user states a deadline; the
// bi-objective optimizer finds the cheapest pipeline-level deployment that
// honors it — tighter deadlines buy more parallelism, looser ones save
// money.
#include <cstdio>

#include "bench/bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  BenchContext ctx = BenchContext::Make();
  const std::string sql = FindQuery("Q7").sql;
  std::printf("query: %s\n\n", sql.c_str());

  TablePrinter t({"SLA", "feasible", "est latency", "est bill",
                  "per-pipeline DOPs"});
  for (Seconds sla : {60.0, 20.0, 6.0, 2.0, 0.2}) {
    auto planned = ctx.session->Plan(sql, UserConstraint::Sla(sla));
    if (!planned.ok()) continue;
    std::string dops;
    for (const auto& p : planned->pipelines.pipelines) {
      if (!dops.empty()) dops += ",";
      dops += std::to_string(planned->dops.at(p.id));
    }
    t.AddRow({FormatSeconds(sla), planned->feasible ? "yes" : "NO",
              FormatSeconds(planned->estimate.latency),
              FormatDollars(planned->estimate.cost), dops});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nTighter SLAs raise per-pipeline DOPs (and the bill); when even\n"
      "maximal parallelism cannot meet the deadline the planner says so\n"
      "instead of silently over-charging.\n");
  return 0;
}
