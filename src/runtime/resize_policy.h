#pragma once

#include <algorithm>
#include <map>

#include "cost/cost_model.h"
#include "optimizer/dop_planner.h"

namespace costdb {

/// What a policy can observe about one running pipeline.
struct PipelineRunView {
  int pipeline_id = 0;
  int dop = 1;
  int planned_dop = 1;
  Seconds started_at = 0.0;
  double progress = 0.0;          // fraction of work completed
  Seconds planned_finish = 0.0;   // from the static schedule
  Seconds planned_duration = 0.0;
  /// Observed remaining seconds at the current DOP (what flow-rate
  /// monitoring reveals once the pipeline has warmed up).
  Seconds observed_remaining = 0.0;
  /// True total duration at the current DOP (monitor's rate estimate).
  Seconds observed_duration = 0.0;
};

/// Context shared with policies on every decision point.
struct PolicyContext {
  const PipelineGraph* graph = nullptr;
  const CostEstimator* estimator = nullptr;
  const VolumeMap* believed = nullptr;   // optimizer's volumes
  const VolumeMap* truth = nullptr;      // learned-at-runtime volumes
  UserConstraint constraint;
  Seconds now = 0.0;
  Seconds query_deadline = 0.0;          // SLA converted to absolute time
  Seconds planned_makespan = 0.0;        // static schedule's total latency
  int max_dop = 256;

  /// How much looser the real deadline is than the static plan: budgets of
  /// individual pipelines stretch by this factor before a policy needs to
  /// act.
  double SlackFactor() const {
    if (planned_makespan <= 0.0 || query_deadline <= 0.0) return 1.0;
    return std::max(1.0, query_deadline / planned_makespan);
  }
};

/// Behavioral traits that distinguish resize strategies (paper Section
/// 3.3): morsel-driven engines can resize mid-pipeline cheaply; systems
/// with materialized "clean cuts" only act at stage boundaries and pay a
/// materialization tax between stages.
struct PolicyTraits {
  bool mid_pipeline_resize = true;
  /// Extra seconds per GiB of pipeline output written+read at stage
  /// boundaries (0 for streaming engines).
  double materialization_secs_per_gib = 0.0;
};

/// Runtime cluster-resizing strategy. The simulator consults it when a
/// pipeline is about to start (initial DOP) and on every monitor tick
/// (possible correction).
class ResizePolicy {
 public:
  virtual ~ResizePolicy() = default;

  virtual const char* name() const = 0;
  virtual PolicyTraits traits() const { return PolicyTraits{}; }

  /// Initial DOP for a pipeline about to start (default: the plan's).
  virtual int OnPipelineStart(const PolicyContext& ctx,
                              const PipelineRunView& run) {
    (void)ctx;
    return run.planned_dop;
  }

  /// Possible DOP correction for a running pipeline; return the current
  /// DOP to leave it unchanged.
  virtual int OnTick(const PolicyContext& ctx, const PipelineRunView& run) {
    (void)ctx;
    return run.dop;
  }
};

/// Executes the static plan verbatim: no runtime correction. The baseline
/// every adaptive policy is measured against.
class StaticPolicy : public ResizePolicy {
 public:
  const char* name() const override { return "static"; }
};

}  // namespace costdb
