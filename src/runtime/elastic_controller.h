#pragma once

#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "exec/sharded_engine.h"
#include "runtime/resize_policy.h"

namespace costdb {

struct ElasticControllerOptions {
  size_t min_workers = 1;
  size_t max_workers = 16;
  /// Queued queries per admission slot above which the controller refuses
  /// to grow: the service is already oversubscribed, so grabbing more
  /// workers would move other queries' queue wait into this query's bill.
  double max_queue_pressure = 1.0;
  /// Minimum predicted net saving (seconds) a resize must clear before
  /// its overhead is worth paying.
  Seconds min_saving_seconds = 0.0;
};

/// Drives the ShardedEngine's elastic width from the existing ResizePolicy
/// hierarchy, fed with *real* observations instead of simulated ones: the
/// engine reports each fragment boundary (observed producer wall time,
/// payload about to rebucket, cuts remaining), the service layer reports
/// admission queue pressure, and the policy's proposal is accepted only
/// when the cost model prices it as net-positive — the calibrated shuffle
/// term plus a per-worker spin-up fee (HardwareCalibration::
/// worker_spinup_seconds) against the predicted latency saving of the
/// remaining work, billed in worker-seconds at the node price. This is the
/// paper's Section 3.3 claim made executable: morsel-driven engines can
/// resize cheaply at repartition points, and a cost model should decide
/// when the resize pays for itself in dollars.
///
/// Usage: construct per query (policies carry per-pipeline state), call
/// BeginQuery with the plan the engine will run, then install
/// [this](const FragmentBoundary& b) { return controller.Decide(b); }
/// as the engine's WidthDecider. Decisions are recorded for reporting.
class ElasticController {
 public:
  ElasticController(const CostEstimator* estimator, ResizePolicy* policy,
                    ElasticControllerOptions options = ElasticControllerOptions());

  /// Arm the controller for one query. `graph`/`volumes` must outlive the
  /// run (they feed the policy's deadline math); `planned_latency` is the
  /// optimizer's whole-query estimate at `planned_workers`.
  void BeginQuery(const PipelineGraph* graph, const VolumeMap* volumes,
                  const UserConstraint& constraint, Seconds planned_latency,
                  int planned_workers) EXCLUDES(mu_);

  /// Admission backlog per concurrency slot (0 = idle service). Set by the
  /// service layer before the run (and possibly re-set while the engine's
  /// worker threads call Decide); compared against max_queue_pressure.
  void SetQueuePressure(double queued_per_slot) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    queue_pressure_ = queued_per_slot;
  }

  /// One recorded width decision at a fragment boundary.
  struct Decision {
    int boundary = 0;
    size_t from = 1;            // width before the decision
    size_t proposed = 1;        // what the ResizePolicy wanted
    size_t applied = 1;         // width the fragment actually ran at
    bool resized = false;       // applied != from
    bool declined = false;      // proposal rejected by pricing/pressure
    Seconds resize_overhead_seconds = 0.0;  // spin-up + extra dispatch
    Seconds predicted_saving_seconds = 0.0; // latency delta at `proposed`
    Dollars dollar_delta = 0.0; // bill delta of accepting the proposal
    std::string reason;
  };

  /// The engine hook: observe one fragment boundary, consult the policy,
  /// price its proposal, return the width to run the next fragment at.
  size_t Decide(const FragmentBoundary& boundary) EXCLUDES(mu_);

  /// Snapshot of the decisions recorded so far. By value: the engine's
  /// worker threads append under mu_ (a reference would be read racily
  /// and invalidated by vector growth).
  std::vector<Decision> decisions() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return decisions_;
  }
  size_t resizes_applied() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return resizes_applied_;
  }
  size_t resizes_declined() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return resizes_declined_;
  }

 private:
  const CostEstimator* estimator_;
  ResizePolicy* policy_;
  ElasticControllerOptions options_;

  const PipelineGraph* graph_ = nullptr;
  const VolumeMap* volumes_ = nullptr;
  UserConstraint constraint_;
  Seconds planned_latency_ = 0.0;
  int planned_workers_ = 1;

  /// Guards the observation/decision state shared between the service
  /// layer (SetQueuePressure, reporting accessors) and the engine threads
  /// driving Decide.
  mutable Mutex mu_;
  double queue_pressure_ GUARDED_BY(mu_) = 0.0;
  std::vector<Decision> decisions_ GUARDED_BY(mu_);
  size_t resizes_applied_ GUARDED_BY(mu_) = 0;
  size_t resizes_declined_ GUARDED_BY(mu_) = 0;
};

}  // namespace costdb
