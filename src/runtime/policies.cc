#include "runtime/policies.h"

#include <algorithm>
#include <cmath>

namespace costdb {

namespace {
const Pipeline* FindPipeline(const PipelineGraph& graph, int id) {
  for (const auto& p : graph.pipelines) {
    if (p.id == id) return &p;
  }
  return nullptr;
}
}  // namespace

int MinDopMeetingDeadline(const PolicyContext& ctx, const Pipeline& pipeline,
                          const VolumeMap& volumes, Seconds budget) {
  if (budget <= 0.0) return ctx.max_dop;
  int best = ctx.max_dop;
  for (int d = 1; d <= ctx.max_dop; d *= 2) {
    Seconds t = ctx.estimator->PipelineDuration(pipeline, d, volumes);
    if (t <= budget) {
      best = d;
      break;
    }
  }
  return best;
}

int PipelineDopMonitor::OnPipelineStart(const PolicyContext& ctx,
                                        const PipelineRunView& run) {
  (void)ctx;
  auto it = replanned_.find(run.pipeline_id);
  if (it != replanned_.end()) return std::max(1, it->second);
  return run.planned_dop;
}

int PipelineDopMonitor::OnTick(const PolicyContext& ctx,
                               const PipelineRunView& run) {
  if (run.progress < opts_.warmup_progress || run.progress >= 1.0) {
    return run.dop;
  }
  if (run.planned_duration <= 0.0 || run.observed_duration <= 0.0) {
    return run.dop;
  }
  double deviation = run.observed_duration / run.planned_duration;
  if (std::abs(deviation - 1.0) <= opts_.small_threshold) return run.dop;
  auto last = last_resize_.find(run.pipeline_id);
  if (last != last_resize_.end() &&
      ctx.now - last->second < opts_.resize_cooldown) {
    return run.dop;
  }

  // Substantial systemic deviation: replan every future pipeline with the
  // observed (true) volumes so their budgets stay consistent.
  if ((deviation > opts_.replan_threshold ||
       deviation < 1.0 / opts_.replan_threshold) &&
      replanned_.empty()) {
    DopPlanner planner(ctx.estimator);
    UserConstraint c = ctx.constraint;
    if (c.mode == UserConstraint::Mode::kMinCostUnderSla) {
      c.latency_sla = std::max(1e-3, ctx.query_deadline - ctx.now);
    }
    auto result = planner.Plan(*ctx.graph, *ctx.truth, c);
    replanned_ = result.dops;
    ++replans_;
  }

  // Correct only this pipeline: pick the smallest DOP that still meets its
  // planned finish time stretched by the SLA slack, per the scalability
  // models.
  const Pipeline* pipeline = FindPipeline(*ctx.graph, run.pipeline_id);
  if (pipeline == nullptr) return run.dop;
  // Safety margins absorb skew and the resize latency itself; trimming
  // uses a stricter margin than growing to avoid oscillation.
  Seconds window = run.planned_finish * ctx.SlackFactor() - ctx.now;
  // Extrapolate durations at other DOPs from the *observed* rate: the
  // model supplies the scaling shape, the measured duration anchors it
  // (this is what flow-rate monitoring buys over pure prediction).
  Seconds model_current =
      ctx.estimator->PipelineDuration(*pipeline, run.dop, *ctx.truth);
  double anchor = run.observed_duration > 0.0 && model_current > 0.0
                      ? run.observed_duration / model_current
                      : 1.0;
  auto fits = [&](int d, double margin) {
    Seconds t =
        ctx.estimator->PipelineDuration(*pipeline, d, *ctx.truth) * anchor;
    return (1.0 - run.progress) * t <= window * margin;
  };
  int best = ctx.max_dop;
  for (int d = 1; d <= ctx.max_dop; d *= 2) {
    if (fits(d, best < run.dop || d < run.dop ? opts_.trim_margin
                                              : opts_.grow_margin)) {
      best = d;
      break;
    }
  }
  if (best == run.dop) return run.dop;
  if (best < run.dop && !fits(best, opts_.trim_margin)) return run.dop;
  last_resize_[run.pipeline_id] = ctx.now;
  return best;
}

int WholeClusterIntervalPolicy::OnTick(const PolicyContext& ctx,
                                       const PipelineRunView& run) {
  auto [it, inserted] = last_action_.emplace(run.pipeline_id, run.started_at);
  if (!inserted && ctx.now - it->second < interval_) return run.dop;
  it->second = ctx.now;
  // Progress check against the absolute deadline: estimated remaining time
  // at the current configuration vs time left, applied uniformly.
  Seconds time_left = ctx.query_deadline - ctx.now;
  double factor = 1.0;
  if (run.observed_duration > 0.0 && time_left > 0.0) {
    Seconds remaining = (1.0 - run.progress) * run.observed_duration;
    factor = std::clamp(remaining / time_left, 0.25, 8.0);
  } else if (time_left <= 0.0) {
    factor = 2.0;  // behind schedule: scale out
  }
  double target = run.dop * factor;
  int dop = 1;
  while (dop < target && dop < ctx.max_dop) dop *= 2;
  return dop;
}

int StageBoundaryPolicy::OnPipelineStart(const PolicyContext& ctx,
                                         const PipelineRunView& run) {
  // Cardinalities of finished (materialized) inputs are exact, so derive
  // the DOP from true volumes against this pipeline's planned duration.
  const Pipeline* pipeline = FindPipeline(*ctx.graph, run.pipeline_id);
  if (pipeline == nullptr) return run.planned_dop;
  Seconds budget = std::max(run.planned_duration, 1e-3);
  return MinDopMeetingDeadline(ctx, *pipeline, *ctx.truth, budget);
}

}  // namespace costdb
