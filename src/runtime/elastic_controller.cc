#include "runtime/elastic_controller.h"

#include <algorithm>
#include <cmath>

namespace costdb {

namespace {

/// Fraction of shuffled bytes that cross workers at width w (the shuffle
/// model's frac_remote).
double RemoteFraction(size_t w) {
  if (w <= 1) return 0.0;
  return static_cast<double>(w - 1) / static_cast<double>(w);
}

}  // namespace

ElasticController::ElasticController(const CostEstimator* estimator,
                                     ResizePolicy* policy,
                                     ElasticControllerOptions options)
    : estimator_(estimator), policy_(policy), options_(options) {
  options_.min_workers = std::max<size_t>(1, options_.min_workers);
  options_.max_workers =
      std::max(options_.min_workers, options_.max_workers);
}

void ElasticController::BeginQuery(const PipelineGraph* graph,
                                   const VolumeMap* volumes,
                                   const UserConstraint& constraint,
                                   Seconds planned_latency,
                                   int planned_workers) {
  graph_ = graph;
  volumes_ = volumes;
  constraint_ = constraint;
  planned_latency_ = planned_latency;
  planned_workers_ = std::max(1, planned_workers);
  MutexLock lock(mu_);
  decisions_.clear();
  resizes_applied_ = 0;
  resizes_declined_ = 0;
}

size_t ElasticController::Decide(const FragmentBoundary& boundary) {
  // One boundary decision is atomic with respect to the service layer's
  // pressure updates and reporting reads. Held across the policy/pricing
  // calls too — they touch no other lock.
  MutexLock lock(mu_);
  const size_t current = std::max<size_t>(1, boundary.current_workers);
  Decision decision;
  decision.boundary = boundary.index;
  decision.from = current;
  decision.proposed = current;
  decision.applied = current;

  // ---- 1. Translate the real observations into the policy's vocabulary.
  // Fragments executed so far stand in for progress: with C cut exchanges
  // total and R still pending, (C - R + 1) of (C + 1) fragment stages have
  // produced observable work — coarse, but anchored in what actually ran
  // rather than a simulated clock.
  const double total_stages =
      static_cast<double>(boundary.index + boundary.cuts_remaining) + 1.0;
  const double done_stages =
      std::max(1.0, total_stages - static_cast<double>(boundary.cuts_remaining));
  const double progress =
      std::clamp(done_stages / std::max(1.0, total_stages), 0.05, 0.99);
  const double observed_duration =
      boundary.elapsed_seconds > 0.0 ? boundary.elapsed_seconds / progress
                                     : 0.0;
  const double observed_remaining =
      std::max(0.0, observed_duration - boundary.elapsed_seconds);

  PipelineRunView run;
  // Anchor the policy on a *real* pipeline of the plan: pipelines are
  // topologically ordered and fragment boundaries advance with executed
  // stages, so the done-stage count approximates the pipeline about to
  // run. (A raw boundary ordinal is not a pipeline id — the monitor
  // would extrapolate the wrong stage's scaling curve, or none at all.)
  run.pipeline_id = boundary.index;
  if (graph_ != nullptr && !graph_->pipelines.empty()) {
    const size_t idx = std::min(static_cast<size_t>(done_stages),
                                graph_->pipelines.size() - 1);
    run.pipeline_id = graph_->pipelines[idx].id;
  }
  run.dop = static_cast<int>(current);
  run.planned_dop = planned_workers_;
  run.started_at = 0.0;
  run.progress = progress;
  run.planned_finish = planned_latency_;
  run.planned_duration = planned_latency_;
  run.observed_remaining = observed_remaining;
  run.observed_duration = observed_duration;

  PolicyContext ctx;
  ctx.graph = graph_;
  ctx.estimator = estimator_;
  ctx.believed = volumes_;
  ctx.truth = volumes_;
  ctx.constraint = constraint_;
  ctx.now = boundary.elapsed_seconds;
  ctx.query_deadline = std::isfinite(constraint_.latency_sla)
                           ? constraint_.latency_sla
                           : 0.0;
  ctx.planned_makespan = planned_latency_;
  ctx.max_dop = static_cast<int>(options_.max_workers);

  size_t proposed = current;
  if (policy_ != nullptr) {
    proposed = static_cast<size_t>(std::max(1, policy_->OnTick(ctx, run)));
  }
  proposed = std::clamp(proposed, options_.min_workers, options_.max_workers);
  decision.proposed = proposed;

  if (proposed == current) {
    decision.reason = "hold";
    decisions_.push_back(std::move(decision));
    return current;
  }

  // ---- 2. Admission pressure: a saturated service refuses to grow.
  if (proposed > current && queue_pressure_ > options_.max_queue_pressure) {
    decision.declined = true;
    ++resizes_declined_;
    decision.reason = "declined: admission queue pressure";
    decisions_.push_back(std::move(decision));
    return current;
  }

  // ---- 3. Price the resize with the calibrated terms. The exchange
  // rebuckets by hash % width regardless, so the incremental overhead is
  // the spun-up workers plus the extra receiver partitions plus whatever
  // additional fraction of the pending payload now crosses workers.
  const HardwareCalibration& hw = estimator_->hardware();
  const double grow =
      proposed > current ? static_cast<double>(proposed - current) : 0.0;
  const double extra_remote_fraction =
      std::max(0.0, RemoteFraction(proposed) - RemoteFraction(current));
  const Seconds overhead =
      grow * (hw.worker_spinup_seconds + hw.shuffle_dispatch_seconds) +
      boundary.pending_bytes * extra_remote_fraction /
          (hw.shuffle_gibps * kGiB);

  // Predicted remaining time at the proposal, anchored on the observed
  // remaining time and scaled by the calibration's parallel-efficiency
  // model (the same sublinear curve the DOP planner prices with).
  const double eff_current =
      EffectiveParallelism(static_cast<int>(current), hw.parallel_alpha);
  const double eff_proposed =
      EffectiveParallelism(static_cast<int>(proposed), hw.parallel_alpha);
  const Seconds remaining_at_proposed =
      eff_proposed > 0.0 ? observed_remaining * eff_current / eff_proposed
                         : observed_remaining;
  const Seconds saving = observed_remaining - remaining_at_proposed;
  const Seconds net_saving = saving - overhead;

  const Dollars price = estimator_->node_type().price_per_second();
  decision.resize_overhead_seconds = overhead;
  decision.predicted_saving_seconds = saving;
  decision.dollar_delta =
      (remaining_at_proposed + overhead) * static_cast<double>(proposed) *
          price -
      observed_remaining * static_cast<double>(current) * price;

  bool accept;
  if (proposed > current) {
    // Growing buys latency with dollars: worth it only when the predicted
    // saving clears the spin-up + repartition overhead.
    accept = net_saving > options_.min_saving_seconds;
    if (!accept) decision.reason = "declined: net-negative resize";
  } else {
    // Shrinking trades latency for dollars: worth it only when the bill
    // actually drops and an SLA (when present) still holds.
    accept = decision.dollar_delta < 0.0;
    if (accept && ctx.query_deadline > 0.0) {
      accept = boundary.elapsed_seconds + remaining_at_proposed + overhead <=
               ctx.query_deadline;
    }
    if (!accept) decision.reason = "declined: shrink misses deadline or saves nothing";
  }

  if (!accept) {
    decision.declined = true;
    ++resizes_declined_;
    decisions_.push_back(std::move(decision));
    return current;
  }
  decision.applied = proposed;
  decision.resized = true;
  decision.reason = proposed > current ? "grow" : "shrink";
  ++resizes_applied_;
  decisions_.push_back(std::move(decision));
  return proposed;
}

}  // namespace costdb
