#pragma once

#include "runtime/resize_policy.h"

namespace costdb {

/// The paper's DOP monitor (Section 3.3): pipeline-granular correction.
/// Once a pipeline's observed flow rate deviates from the statically
/// planned duration beyond `small_threshold`, only *this* pipeline's DOP
/// is adjusted (using the scalability models) so it still meets its
/// planned finish time; beyond `replan_threshold` the deviation is treated
/// as systemic and future pipelines are replanned against the observed
/// cardinalities.
struct DopMonitorOptions {
  double warmup_progress = 0.05;  // observe before acting
  double small_threshold = 0.15;  // relative deviation triggering a fix
  double replan_threshold = 4.0;  // deviation ratio triggering replan
  Seconds resize_cooldown = 1.5;  // min time between resizes of a pipeline
  double grow_margin = 0.85;      // budget safety when scaling out
  double trim_margin = 0.6;       // stricter safety before scaling in
};

class PipelineDopMonitor : public ResizePolicy {
 public:
  using Options = DopMonitorOptions;

  explicit PipelineDopMonitor(Options options = Options()) : opts_(options) {}

  const char* name() const override { return "dop_monitor"; }
  int OnPipelineStart(const PolicyContext& ctx,
                      const PipelineRunView& run) override;
  int OnTick(const PolicyContext& ctx, const PipelineRunView& run) override;

  int replans() const { return replans_; }

 private:
  Options opts_;
  // Updated DOPs for not-yet-started pipelines after a replan.
  DopMap replanned_;
  std::map<int, Seconds> last_resize_;
  int replans_ = 0;
};

/// Jockey-style whole-cluster interval scaling: every `interval` seconds,
/// compare overall progress against the SLA deadline and scale *every*
/// running pipeline by the same factor. Works for embarrassingly parallel
/// jobs; wastes money on pipelines that do not need the boost (the paper's
/// criticism).
class WholeClusterIntervalPolicy : public ResizePolicy {
 public:
  explicit WholeClusterIntervalPolicy(Seconds interval = 2.0)
      : interval_(interval) {}

  const char* name() const override { return "whole_cluster"; }
  int OnTick(const PolicyContext& ctx, const PipelineRunView& run) override;

 private:
  Seconds interval_;
  std::map<int, Seconds> last_action_;  // per pipeline
};

/// BigQuery-style stage-boundary scaling: intermediate results are
/// materialized between stages ("clean cuts"), so cardinalities of
/// finished stages are exact and each pipeline starts at a DOP derived
/// from them — but no mid-pipeline correction is possible and every
/// boundary pays a materialization tax.
class StageBoundaryPolicy : public ResizePolicy {
 public:
  explicit StageBoundaryPolicy(double materialization_secs_per_gib = 2.0)
      : mat_(materialization_secs_per_gib) {}

  const char* name() const override { return "stage_boundary"; }
  PolicyTraits traits() const override {
    PolicyTraits t;
    t.mid_pipeline_resize = false;
    t.materialization_secs_per_gib = mat_;
    return t;
  }
  int OnPipelineStart(const PolicyContext& ctx,
                      const PipelineRunView& run) override;

 private:
  double mat_;
};

/// Shared helper: cheapest DOP (from the power-of-two ladder) whose
/// estimated duration for `pipeline` under `volumes` fits in `budget`
/// seconds; returns `max_dop` when even that cannot.
int MinDopMeetingDeadline(const PolicyContext& ctx, const Pipeline& pipeline,
                          const VolumeMap& volumes, Seconds budget);

}  // namespace costdb
