#include "exec/fused.h"

#include <algorithm>

namespace costdb {

namespace {

template <typename T>
inline bool CmpApply(CompareOp op, T a, T b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

/// A term bound to one chunk's flat payloads. Only the pointers matching
/// the compiled TermKind are set.
struct BoundTerm {
  FusedPredicate::TermKind kind;
  CompareOp cmp;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const std::string* str = nullptr;
  const uint8_t* valid = nullptr;  // nullptr = all rows valid
  // kNumColCol right-hand side.
  const int64_t* ri64 = nullptr;
  const double* rf64 = nullptr;
  const uint8_t* rvalid = nullptr;
  bool both_int = false;
  int64_t iconst = 0;
  double dconst = 0.0;
  const std::string* sconst = nullptr;
  const LikePattern* like = nullptr;
};

inline bool EvalBoundTerm(const BoundTerm& t, uint32_t i) {
  if (t.valid != nullptr && t.valid[i] == 0) return false;  // NULL deselects
  using TK = FusedPredicate::TermKind;
  switch (t.kind) {
    case TK::kIntColConst:
      return CmpApply(t.cmp, t.i64[i], t.iconst);
    case TK::kNumColConst:
      return CmpApply(
          t.cmp, t.f64 != nullptr ? t.f64[i] : static_cast<double>(t.i64[i]),
          t.dconst);
    case TK::kNumColCol: {
      if (t.rvalid != nullptr && t.rvalid[i] == 0) return false;
      if (t.both_int) return CmpApply(t.cmp, t.i64[i], t.ri64[i]);
      const double a =
          t.f64 != nullptr ? t.f64[i] : static_cast<double>(t.i64[i]);
      const double b =
          t.rf64 != nullptr ? t.rf64[i] : static_cast<double>(t.ri64[i]);
      return CmpApply(t.cmp, a, b);
    }
    case TK::kStrColConst: {
      const int cmp3 = t.str[i].compare(*t.sconst);
      return CmpApply(t.cmp, cmp3, 0);
    }
    case TK::kLike:
      return t.like->Match(t.str[i]);
  }
  return false;
}

// ---- template-instantiated hot kernels -------------------------------
// The registry's "instantiation" tier: the shapes the pushed-predicate
// workload actually hits are monomorphized so the inner loop carries no
// per-row dispatch at all. Everything else runs the generic single-pass
// loop above, and shapes the registry declines never get here (they stay
// on the vectorized per-kernel path).

/// One int64-vs-constant conjunct, monomorphized per CompareOp. The
/// append is branch-free (write the row id unconditionally, advance the
/// cursor by the predicate bit) — with mid-range selectivities the
/// data-dependent `if (pass) push_back` of the per-kernel vectorized path
/// mispredicts on a large fraction of rows, and that mispredict tax is
/// the single biggest cost of a selection loop over flat payloads.
template <CompareOp Op>
void SelectIntConstKernel(const int64_t* vals, const uint8_t* valid,
                          int64_t c, size_t n, SelectionVector* out) {
  out->resize(n);
  uint32_t* dst = out->data();
  size_t m = 0;
  if (valid == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      dst[m] = i;
      m += static_cast<size_t>(CmpApply(Op, vals[i], c));
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      dst[m] = i;
      m += static_cast<size_t>(valid[i] != 0 && CmpApply(Op, vals[i], c));
    }
  }
  out->resize(m);
}

/// K int64-vs-constant conjuncts in one branch-free pass: every conjunct
/// is evaluated for every row and AND-folded into a pass bit, and the
/// survivor append advances a cursor by that bit. No short-circuit — a
/// few redundant comparisons per failing row — but also no data-dependent
/// branch anywhere, where the vectorized path pays one likely-mispredicted
/// branch per row per conjunct pass plus K-1 intermediate selection
/// vectors. The per-term CompareOp switch inside CmpApply is loop-invariant
/// per term, so it predicts perfectly. K is a compile-time bound so the
/// term loop unrolls.
template <size_t K>
void SelectIntConjunctionKernel(const BoundTerm* terms, size_t n,
                                SelectionVector* out) {
  out->resize(n);
  uint32_t* dst = out->data();
  size_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    unsigned pass = 1;
    for (size_t t = 0; t < K; ++t) {
      const BoundTerm& bt = terms[t];
      pass &= static_cast<unsigned>(
          (bt.valid == nullptr || bt.valid[i] != 0) &&
          CmpApply(bt.cmp, bt.i64[i], bt.iconst));
    }
    dst[m] = i;
    m += pass;
  }
  out->resize(m);
}

/// Generic single-pass conjunction: any mix of supported term kinds.
void SelectGenericKernel(const std::vector<BoundTerm>& terms, size_t n,
                         SelectionVector* out) {
  for (uint32_t i = 0; i < n; ++i) {
    bool pass = true;
    for (const BoundTerm& t : terms) {
      if (!EvalBoundTerm(t, i)) {
        pass = false;
        break;
      }
    }
    if (pass) out->push_back(i);
  }
}

void DispatchIntConst(CompareOp op, const int64_t* vals, const uint8_t* valid,
                      int64_t c, size_t n, SelectionVector* out) {
  switch (op) {
    case CompareOp::kEq:
      return SelectIntConstKernel<CompareOp::kEq>(vals, valid, c, n, out);
    case CompareOp::kNe:
      return SelectIntConstKernel<CompareOp::kNe>(vals, valid, c, n, out);
    case CompareOp::kLt:
      return SelectIntConstKernel<CompareOp::kLt>(vals, valid, c, n, out);
    case CompareOp::kLe:
      return SelectIntConstKernel<CompareOp::kLe>(vals, valid, c, n, out);
    case CompareOp::kGt:
      return SelectIntConstKernel<CompareOp::kGt>(vals, valid, c, n, out);
    case CompareOp::kGe:
      return SelectIntConstKernel<CompareOp::kGe>(vals, valid, c, n, out);
  }
}

const uint8_t* ValidityOf(const ColumnVector& col) {
  return col.has_nulls() ? col.validity().data() : nullptr;
}

}  // namespace

Status FusedPredicate::Select(const ChunkView& chunk,
                              SelectionVector* out) const {
  out->clear();
  const size_t n = chunk.num_rows();
  if (always_false_) return Status::OK();
  if (terms_.empty()) {
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) out->push_back(i);
    return Status::OK();
  }

  // Bind compiled terms to this chunk's payloads, re-checking the physical
  // families: a mismatch means the plan annotation went stale and the
  // caller must fall back to the vectorized path.
  std::vector<BoundTerm> bound;
  bound.reserve(terms_.size());
  bool all_int_const = true;
  for (const Term& t : terms_) {
    if (t.lhs >= chunk.num_columns() ||
        (t.kind == TermKind::kNumColCol && t.rhs >= chunk.num_columns())) {
      return Status::Internal("fused predicate binds out-of-range column");
    }
    const ColumnVector& l = chunk.column(t.lhs);
    BoundTerm b;
    b.kind = t.kind;
    b.cmp = t.cmp;
    b.valid = ValidityOf(l);
    switch (t.kind) {
      case TermKind::kIntColConst:
        if (l.physical_type() != PhysicalType::kInt64) {
          return Status::Internal("fused int term over non-int column");
        }
        b.i64 = l.ints().data();
        b.iconst = t.iconst;
        break;
      case TermKind::kNumColConst:
        if (l.physical_type() == PhysicalType::kDouble) {
          b.f64 = l.doubles().data();
        } else if (l.physical_type() == PhysicalType::kInt64) {
          b.i64 = l.ints().data();
        } else {
          return Status::Internal("fused numeric term over string column");
        }
        b.dconst = t.dconst;
        all_int_const = false;
        break;
      case TermKind::kNumColCol: {
        const ColumnVector& r = chunk.column(t.rhs);
        if (l.physical_type() == PhysicalType::kString ||
            r.physical_type() == PhysicalType::kString) {
          return Status::Internal("fused numeric term over string column");
        }
        if (l.physical_type() == PhysicalType::kDouble) {
          b.f64 = l.doubles().data();
        } else {
          b.i64 = l.ints().data();
        }
        if (r.physical_type() == PhysicalType::kDouble) {
          b.rf64 = r.doubles().data();
        } else {
          b.ri64 = r.ints().data();
        }
        b.both_int = b.i64 != nullptr && b.ri64 != nullptr;
        b.rvalid = ValidityOf(r);
        all_int_const = false;
        break;
      }
      case TermKind::kStrColConst:
        if (l.physical_type() != PhysicalType::kString) {
          return Status::Internal("fused string term over non-string column");
        }
        b.str = l.strings().data();
        b.sconst = &t.sconst;
        all_int_const = false;
        break;
      case TermKind::kLike:
        if (l.physical_type() != PhysicalType::kString) {
          return Status::Internal("fused LIKE over non-string column");
        }
        b.str = l.strings().data();
        b.like = &t.like;
        all_int_const = false;
        break;
    }
    bound.push_back(b);
  }

  // Hot-shape dispatch: the pushed-filter workload is dominated by int
  // range conjunctions, so those get monomorphized kernels.
  if (all_int_const) {
    switch (bound.size()) {
      case 1:
        DispatchIntConst(bound[0].cmp, bound[0].i64, bound[0].valid,
                         bound[0].iconst, n, out);
        return Status::OK();
      case 2:
        SelectIntConjunctionKernel<2>(bound.data(), n, out);
        return Status::OK();
      case 3:
        SelectIntConjunctionKernel<3>(bound.data(), n, out);
        return Status::OK();
      case 4:
        SelectIntConjunctionKernel<4>(bound.data(), n, out);
        return Status::OK();
      default:
        break;  // unusual arity: generic loop below
    }
  }
  SelectGenericKernel(bound, n, out);
  return Status::OK();
}

Status FusedPredicate::SelectGather(const ChunkView& view,
                                    const std::vector<size_t>& columns,
                                    DataChunk* out,
                                    SelectionVector* sel_scratch) const {
  COSTDB_RETURN_NOT_OK(Select(view, sel_scratch));
  DataChunk gathered;
  for (size_t idx : columns) {
    gathered.AddColumn(view.column(idx).Gather(*sel_scratch));
  }
  *out = std::move(gathered);
  return Status::OK();
}

Result<size_t> FusedFilterAggregate(const FusedPredicate* pred,
                                    const ChunkView& view,
                                    const std::vector<FusedAggSpec>& specs,
                                    std::vector<FusedAggState>* states,
                                    SelectionVector* sel_scratch) {
  const SelectionVector* sel = nullptr;
  if (pred != nullptr) {
    COSTDB_RETURN_NOT_OK(pred->Select(view, sel_scratch));
    sel = sel_scratch;
  } else {
    sel_scratch->clear();
    sel_scratch->reserve(view.num_rows());
    for (uint32_t i = 0; i < view.num_rows(); ++i) sel_scratch->push_back(i);
    sel = sel_scratch;
  }
  const size_t rows = sel->size();
  if (rows == 0) return size_t{0};
  if (states->size() < specs.size()) states->resize(specs.size());
  for (size_t a = 0; a < specs.size(); ++a) {
    const FusedAggSpec& spec = specs[a];
    FusedAggState& st = (*states)[a];
    if (spec.func == AggFunc::kCountStar) {
      st.count += static_cast<int64_t>(rows);
      continue;
    }
    const ColumnVector& in = view.column(static_cast<size_t>(spec.col));
    switch (spec.func) {
      case AggFunc::kCount:
        st.count += kernels::CountValidSelected(in, *sel);
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        kernels::AccumulateSelected(in, *sel, &st.count, &st.isum, &st.dsum);
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        kernels::MinMaxSelected(in, *sel, &st.min, &st.max, &st.has_value);
        break;
      default:
        return Status::Internal("unexpected fused aggregate function");
    }
  }
  return rows;
}

// ------------------------------------------------------------- registry

const FusedKernelRegistry& FusedKernelRegistry::Global() {
  static const FusedKernelRegistry registry;
  return registry;
}

namespace {

int FindSchemaColumn(const std::vector<std::string>& schema,
                     const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// Compile one conjunct into a fused term; returns false when the shape
/// has no instantiation. `always_false` is set when the conjunct compares
/// against a NULL constant (the whole conjunction selects nothing —
/// matching the vectorized fast path).
bool CompileTerm(const Expr& e, const std::vector<std::string>& schema,
                 const std::vector<LogicalType>& types,
                 FusedPredicate::Term* term, bool* always_false) {
  using TK = FusedPredicate::TermKind;
  if (e.kind == Expr::Kind::kLike) {
    const Expr& input = *e.children[0];
    const Expr& pattern = *e.children[1];
    if (input.kind != Expr::Kind::kColumn ||
        pattern.kind != Expr::Kind::kConstant ||
        !pattern.constant.is_string()) {
      return false;
    }
    int idx = FindSchemaColumn(schema, input.column);
    if (idx < 0 || PhysicalTypeOf(types[idx]) != PhysicalType::kString) {
      return false;
    }
    term->kind = TK::kLike;
    term->lhs = static_cast<uint32_t>(idx);
    term->like = LikePattern(pattern.constant.AsString(), e.like_escape);
    return true;
  }
  if (e.kind != Expr::Kind::kCompare) return false;
  const Expr* l = e.children[0].get();
  const Expr* r = e.children[1].get();
  CompareOp op = e.cmp;
  if (l->kind == Expr::Kind::kConstant && r->kind == Expr::Kind::kColumn) {
    std::swap(l, r);  // normalize to column <op> constant
    op = SwapCompareOp(op);
  }
  if (l->kind != Expr::Kind::kColumn) return false;
  const int lhs = FindSchemaColumn(schema, l->column);
  if (lhs < 0) return false;
  const PhysicalType lt = PhysicalTypeOf(types[lhs]);
  term->cmp = op;
  term->lhs = static_cast<uint32_t>(lhs);
  term->lhs_is_double = lt == PhysicalType::kDouble;

  if (r->kind == Expr::Kind::kColumn) {
    const int rhs = FindSchemaColumn(schema, r->column);
    if (rhs < 0) return false;
    const PhysicalType rt = PhysicalTypeOf(types[rhs]);
    if (lt == PhysicalType::kString || rt == PhysicalType::kString) {
      return false;  // string col-col compare stays on the vectorized path
    }
    term->kind = TK::kNumColCol;
    term->rhs = static_cast<uint32_t>(rhs);
    term->rhs_is_double = rt == PhysicalType::kDouble;
    term->both_int =
        lt == PhysicalType::kInt64 && rt == PhysicalType::kInt64;
    return true;
  }
  if (r->kind != Expr::Kind::kConstant) return false;
  const Value& c = r->constant;
  if (c.is_null()) {
    // Comparison with a NULL constant selects nothing; the conjunction is
    // statically empty (same answer the vectorized fast path computes).
    *always_false = true;
    term->kind = TK::kIntColConst;
    return true;
  }
  if (lt == PhysicalType::kString) {
    if (!c.is_string()) return false;  // type-error shape: keep vectorized
    term->kind = TK::kStrColConst;
    term->sconst = c.AsString();
    return true;
  }
  if (c.is_string()) return false;  // numeric col vs string constant
  if (lt == PhysicalType::kInt64 && c.is_int()) {
    term->kind = TK::kIntColConst;
    term->iconst = c.AsInt();
    return true;
  }
  term->kind = TK::kNumColConst;
  term->dconst = c.AsDouble();
  return true;
}

}  // namespace

bool FusedKernelRegistry::CanCompile(
    const Expr& predicate, const std::vector<std::string>& schema,
    const std::vector<LogicalType>& types) const {
  return Compile(predicate, schema, types).has_value();
}

std::optional<FusedPredicate> FusedKernelRegistry::Compile(
    const Expr& predicate, const std::vector<std::string>& schema,
    const std::vector<LogicalType>& types) const {
  if (schema.size() != types.size()) return std::nullopt;
  std::vector<ExprPtr> conjuncts;
  // SplitConjuncts needs a shared_ptr; clone the root once at compile time
  // (per pipeline, not per morsel).
  SplitConjuncts(predicate.Clone(), &conjuncts);
  FusedPredicate fused;
  for (const auto& conjunct : conjuncts) {
    FusedPredicate::Term term;
    bool always_false = false;
    if (!CompileTerm(*conjunct, schema, types, &term, &always_false)) {
      return std::nullopt;
    }
    if (always_false) {
      fused.always_false_ = true;
      continue;
    }
    fused.terms_.push_back(std::move(term));
  }
  return fused;
}

bool FusedKernelRegistry::CompileAggregates(
    const std::vector<ExprPtr>& aggregates,
    const std::vector<std::string>& schema,
    const std::vector<LogicalType>& types,
    std::vector<FusedAggSpec>* specs) const {
  specs->clear();
  for (const auto& a : aggregates) {
    if (a->kind != Expr::Kind::kAgg) return false;
    FusedAggSpec spec;
    spec.func = a->agg;
    if (a->agg == AggFunc::kCountStar) {
      specs->push_back(spec);
      continue;
    }
    if (a->children.empty() || a->children[0]->kind != Expr::Kind::kColumn) {
      return false;  // computed aggregate input: needs the evaluator
    }
    const int idx = FindSchemaColumn(schema, a->children[0]->column);
    if (idx < 0) return false;
    const PhysicalType pt = PhysicalTypeOf(types[static_cast<size_t>(idx)]);
    const bool numeric = pt != PhysicalType::kString;
    switch (a->agg) {
      case AggFunc::kCount:
      case AggFunc::kMin:
      case AggFunc::kMax:
        break;  // any type
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (!numeric) return false;
        break;
      default:
        return false;
    }
    spec.col = idx;
    specs->push_back(spec);
  }
  return true;
}

std::vector<std::string> FusedKernelRegistry::Instantiations() const {
  std::vector<std::string> out;
  for (const char* op : {"eq", "ne", "lt", "le", "gt", "ge"}) {
    out.push_back(std::string("select_int_const<") + op + ">");
  }
  for (int k = 2; k <= 4; ++k) {
    out.push_back("select_int_conjunction<" + std::to_string(k) + ">");
  }
  out.push_back("select_generic(int|num|num_col|str|like)*");
  out.push_back("filter_gather_scan");
  out.push_back("filter_aggregate_global");
  out.push_back("filter_hash_probe");
  return out;
}

}  // namespace costdb
