#include "exec/evaluator.h"

namespace costdb {

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative glob match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<size_t> Evaluator::ResolveColumn(const std::string& name) const {
  for (size_t i = 0; i < schema_->size(); ++i) {
    if ((*schema_)[i] == name) return i;
  }
  return Status::Internal("executor cannot resolve column " + name);
}

namespace {

/// Numeric view over an int64 or double vector.
double NumericAt(const ColumnVector& v, size_t i) {
  return v.physical_type() == PhysicalType::kDouble
             ? v.GetDouble(i)
             : static_cast<double>(v.GetInt(i));
}

bool BothInts(const ColumnVector& a, const ColumnVector& b) {
  return a.physical_type() == PhysicalType::kInt64 &&
         b.physical_type() == PhysicalType::kInt64;
}

int64_t CompareResult(CompareOp op, int cmp3) {
  switch (op) {
    case CompareOp::kEq:
      return cmp3 == 0;
    case CompareOp::kNe:
      return cmp3 != 0;
    case CompareOp::kLt:
      return cmp3 < 0;
    case CompareOp::kLe:
      return cmp3 <= 0;
    case CompareOp::kGt:
      return cmp3 > 0;
    case CompareOp::kGe:
      return cmp3 >= 0;
  }
  return 0;
}

}  // namespace

Result<ColumnVector> Evaluator::Evaluate(const Expr& expr,
                                         const DataChunk& chunk) const {
  const size_t n = chunk.num_rows();
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      size_t idx = 0;
      COSTDB_ASSIGN_OR_RETURN(idx, ResolveColumn(expr.column));
      return chunk.column(idx);  // copy
    }
    case Expr::Kind::kConstant: {
      ColumnVector out(expr.type);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) out.AppendValue(expr.constant);
      return out;
    }
    case Expr::Kind::kCompare: {
      ColumnVector l, r;
      COSTDB_ASSIGN_OR_RETURN(l, Evaluate(*expr.children[0], chunk));
      COSTDB_ASSIGN_OR_RETURN(r, Evaluate(*expr.children[1], chunk));
      ColumnVector out(LogicalType::kBool);
      out.Reserve(n);
      const bool strings = l.physical_type() == PhysicalType::kString;
      if (strings != (r.physical_type() == PhysicalType::kString)) {
        return Status::Internal("comparing string with non-string");
      }
      if (strings) {
        for (size_t i = 0; i < n; ++i) {
          int cmp3 = l.GetString(i).compare(r.GetString(i));
          out.AppendInt(CompareResult(expr.cmp, cmp3 < 0 ? -1 : cmp3 > 0 ? 1 : 0));
        }
      } else if (BothInts(l, r)) {
        for (size_t i = 0; i < n; ++i) {
          int64_t a = l.GetInt(i), b = r.GetInt(i);
          out.AppendInt(CompareResult(expr.cmp, a < b ? -1 : a > b ? 1 : 0));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          double a = NumericAt(l, i), b = NumericAt(r, i);
          out.AppendInt(CompareResult(expr.cmp, a < b ? -1 : a > b ? 1 : 0));
        }
      }
      return out;
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      ColumnVector acc;
      COSTDB_ASSIGN_OR_RETURN(acc, Evaluate(*expr.children[0], chunk));
      for (size_t c = 1; c < expr.children.size(); ++c) {
        ColumnVector next;
        COSTDB_ASSIGN_OR_RETURN(next, Evaluate(*expr.children[c], chunk));
        auto& a = acc.ints();
        const auto& b = next.ints();
        if (expr.kind == Expr::Kind::kAnd) {
          for (size_t i = 0; i < n; ++i) a[i] = a[i] && b[i];
        } else {
          for (size_t i = 0; i < n; ++i) a[i] = a[i] || b[i];
        }
      }
      return acc;
    }
    case Expr::Kind::kNot: {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, Evaluate(*expr.children[0], chunk));
      for (auto& x : v.ints()) x = !x;
      return v;
    }
    case Expr::Kind::kArith: {
      ColumnVector l, r;
      COSTDB_ASSIGN_OR_RETURN(l, Evaluate(*expr.children[0], chunk));
      COSTDB_ASSIGN_OR_RETURN(r, Evaluate(*expr.children[1], chunk));
      if (expr.type == LogicalType::kInt64 && BothInts(l, r) &&
          expr.arith_op != '/') {
        ColumnVector out(LogicalType::kInt64);
        out.Reserve(n);
        const auto& a = l.ints();
        const auto& b = r.ints();
        switch (expr.arith_op) {
          case '+':
            for (size_t i = 0; i < n; ++i) out.AppendInt(a[i] + b[i]);
            break;
          case '-':
            for (size_t i = 0; i < n; ++i) out.AppendInt(a[i] - b[i]);
            break;
          case '*':
            for (size_t i = 0; i < n; ++i) out.AppendInt(a[i] * b[i]);
            break;
        }
        return out;
      }
      ColumnVector out(LogicalType::kDouble);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        double a = NumericAt(l, i), b = NumericAt(r, i);
        switch (expr.arith_op) {
          case '+':
            out.AppendDouble(a + b);
            break;
          case '-':
            out.AppendDouble(a - b);
            break;
          case '*':
            out.AppendDouble(a * b);
            break;
          case '/':
            out.AppendDouble(b == 0.0 ? 0.0 : a / b);
            break;
        }
      }
      return out;
    }
    case Expr::Kind::kLike: {
      ColumnVector input;
      COSTDB_ASSIGN_OR_RETURN(input, Evaluate(*expr.children[0], chunk));
      const std::string& pattern = expr.children[1]->constant.AsString();
      ColumnVector out(LogicalType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out.AppendInt(LikeMatch(input.GetString(i), pattern) ? 1 : 0);
      }
      return out;
    }
    case Expr::Kind::kAgg:
      return Status::Internal(
          "aggregate expression reached the evaluator; the binder should "
          "have extracted it");
  }
  return Status::Internal("unreachable expression kind");
}

Result<std::vector<uint32_t>> Evaluator::EvaluateSelection(
    const Expr& predicate, const DataChunk& chunk) const {
  ColumnVector mask;
  COSTDB_ASSIGN_OR_RETURN(mask, Evaluate(predicate, chunk));
  std::vector<uint32_t> sel;
  const auto& bits = mask.ints();
  sel.reserve(bits.size());
  for (uint32_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) sel.push_back(i);
  }
  return sel;
}

}  // namespace costdb
