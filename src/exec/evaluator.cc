#include "exec/evaluator.h"

#include <algorithm>

#include "catalog/hll.h"

namespace costdb {

LikePattern::LikePattern(const std::string& pattern, char escape) {
  ops_.reserve(pattern.size());
  literals_.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (escape != '\0' && c == escape && i + 1 < pattern.size()) {
      // The binder guarantees the escaped character is %, _, or the
      // escape itself; direct kernel callers get lenient literal
      // treatment of whatever follows.
      ops_.push_back(Op::kLiteral);
      literals_.push_back(pattern[++i]);
      continue;
    }
    if (c == '%') {
      ops_.push_back(Op::kAnyRun);
      literals_.push_back('\0');
    } else if (c == '_') {
      ops_.push_back(Op::kAnyOne);
      literals_.push_back('\0');
    } else {
      ops_.push_back(Op::kLiteral);
      literals_.push_back(c);
    }
  }
}

bool LikePattern::Match(const std::string& text) const {
  // Iterative glob match with backtracking on the last kAnyRun.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < ops_.size() &&
        (ops_[p] == Op::kAnyOne ||
         (ops_[p] == Op::kLiteral && literals_[p] == text[t]))) {
      ++t;
      ++p;
    } else if (p < ops_.size() && ops_[p] == Op::kAnyRun) {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < ops_.size() && ops_[p] == Op::kAnyRun) ++p;
  return p == ops_.size();
}

bool LikeMatch(const std::string& text, const std::string& pattern,
               char escape) {
  return LikePattern(pattern, escape).Match(text);
}

Result<size_t> Evaluator::ResolveColumn(const std::string& name) const {
  for (size_t i = 0; i < schema_->size(); ++i) {
    if ((*schema_)[i] == name) return i;
  }
  return Status::Internal("executor cannot resolve column " + name);
}

namespace {

/// Numeric view over an int64 or double vector.
double NumericAt(const ColumnVector& v, size_t i) {
  return v.physical_type() == PhysicalType::kDouble
             ? v.GetDouble(i)
             : static_cast<double>(v.GetInt(i));
}

bool BothInts(const ColumnVector& a, const ColumnVector& b) {
  return a.physical_type() == PhysicalType::kInt64 &&
         b.physical_type() == PhysicalType::kInt64;
}

int64_t CompareResult(CompareOp op, int cmp3) {
  switch (op) {
    case CompareOp::kEq:
      return cmp3 == 0;
    case CompareOp::kNe:
      return cmp3 != 0;
    case CompareOp::kLt:
      return cmp3 < 0;
    case CompareOp::kLe:
      return cmp3 <= 0;
    case CompareOp::kGt:
      return cmp3 > 0;
    case CompareOp::kGe:
      return cmp3 >= 0;
  }
  return 0;
}

// ---------------------------------------------------------------- select
// The selection kernels below are the vectorized filter hot path: tight
// loops over the flat payload arrays, appending surviving row ids. Nothing
// allocates per row and nothing is copied until the caller compacts.

/// Append to `out` every candidate row for which `pred(i)` holds.
/// Candidates are `*input` when given, else [0, n). `valid` (when present)
/// additionally gates each row — a NULL row never survives a predicate.
template <typename Pred>
void SelectIf(size_t n, const SelectionVector* input,
              const std::vector<uint8_t>* valid, Pred pred,
              SelectionVector* out) {
  if (input == nullptr) {
    if (valid == nullptr) {
      for (uint32_t i = 0; i < n; ++i) {
        if (pred(i)) out->push_back(i);
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        if ((*valid)[i] && pred(i)) out->push_back(i);
      }
    }
  } else {
    if (valid == nullptr) {
      for (uint32_t i : *input) {
        if (pred(i)) out->push_back(i);
      }
    } else {
      for (uint32_t i : *input) {
        if ((*valid)[i] && pred(i)) out->push_back(i);
      }
    }
  }
}

/// Expand `op` into a monomorphized SelectIf instantiation per comparison,
/// so the inner loop carries no operator switch.
template <typename GetL, typename GetR>
void SelectCompare(CompareOp op, size_t n, const SelectionVector* input,
                   const std::vector<uint8_t>* valid, GetL l, GetR r,
                   SelectionVector* out) {
  switch (op) {
    case CompareOp::kEq:
      SelectIf(n, input, valid, [&](uint32_t i) { return l(i) == r(i); }, out);
      break;
    case CompareOp::kNe:
      SelectIf(n, input, valid, [&](uint32_t i) { return l(i) != r(i); }, out);
      break;
    case CompareOp::kLt:
      SelectIf(n, input, valid, [&](uint32_t i) { return l(i) < r(i); }, out);
      break;
    case CompareOp::kLe:
      SelectIf(n, input, valid, [&](uint32_t i) { return l(i) <= r(i); }, out);
      break;
    case CompareOp::kGt:
      SelectIf(n, input, valid, [&](uint32_t i) { return l(i) > r(i); }, out);
      break;
    case CompareOp::kGe:
      SelectIf(n, input, valid, [&](uint32_t i) { return l(i) >= r(i); }, out);
      break;
  }
}

/// One side of a fast-path comparison: a borrowed column or a constant.
struct CompareOperand {
  const ColumnVector* col = nullptr;
  const Value* constant = nullptr;

  bool is_string() const {
    if (col != nullptr) return col->physical_type() == PhysicalType::kString;
    return constant->is_string();
  }
  bool is_int() const {
    if (col != nullptr) return col->physical_type() == PhysicalType::kInt64;
    return constant->is_int();
  }
  const std::vector<uint8_t>* validity() const {
    return col != nullptr && col->has_nulls() ? &col->validity() : nullptr;
  }
};

/// Validity gate for a two-operand kernel. When both sides carry masks the
/// conjunction is materialized into `scratch`.
const std::vector<uint8_t>* CombineOperandValidity(
    const CompareOperand& l, const CompareOperand& r, size_t n,
    std::vector<uint8_t>* scratch) {
  const std::vector<uint8_t>* lv = l.validity();
  const std::vector<uint8_t>* rv = r.validity();
  if (lv == nullptr) return rv;
  if (rv == nullptr) return lv;
  scratch->resize(n);
  for (size_t i = 0; i < n; ++i) (*scratch)[i] = (*lv)[i] & (*rv)[i];
  return scratch;
}

// ------------------------------------------------------------- validity
// Helpers for the mask-producing Evaluate path (projections and the
// fallback of exotic predicate shapes).

void CopyValidity(const ColumnVector& src, ColumnVector* dst) {
  if (!src.has_nulls()) return;
  dst->MutableValidity() = src.validity();
}

void IntersectValidity(const ColumnVector& a, const ColumnVector& b,
                       ColumnVector* dst) {
  if (!a.has_nulls() && !b.has_nulls()) return;
  auto& v = dst->MutableValidity();
  const size_t n = v.size();
  if (a.has_nulls()) {
    for (size_t i = 0; i < n; ++i) v[i] &= a.validity()[i];
  }
  if (b.has_nulls()) {
    for (size_t i = 0; i < n; ++i) v[i] &= b.validity()[i];
  }
}

uint8_t ValidAt(const ColumnVector& v, size_t i) {
  return v.IsNull(i) ? 0 : 1;
}

/// Coerce an evaluated operand of a logical op (AND/OR/NOT) to an int64
/// 0/1 mask. Int vectors pass through; doubles truthy-test; strings are
/// an error (never a truth value — matches the scalar oracle).
Result<ColumnVector> ToBoolMask(ColumnVector v) {
  switch (v.physical_type()) {
    case PhysicalType::kInt64:
      return v;
    case PhysicalType::kDouble: {
      ColumnVector out(LogicalType::kBool);
      const auto& vals = v.doubles();
      out.Reserve(vals.size());
      for (double d : vals) out.AppendInt(d != 0.0 ? 1 : 0);
      CopyValidity(v, &out);
      return out;
    }
    case PhysicalType::kString:
      return Status::Internal("string value used as a predicate");
  }
  return Status::Internal("unreachable physical type");
}

}  // namespace

// ----------------------------------------------------------- mask path

Result<ColumnVector> Evaluator::Evaluate(const Expr& expr,
                                         const ChunkView& chunk) const {
  const size_t n = chunk.num_rows();
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      size_t idx = 0;
      COSTDB_ASSIGN_OR_RETURN(idx, ResolveColumn(expr.column));
      return chunk.column(idx);  // copy (validity travels along)
    }
    case Expr::Kind::kConstant: {
      ColumnVector out(expr.type);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) out.AppendValue(expr.constant);
      return out;
    }
    case Expr::Kind::kCompare: {
      ColumnVector l, r;
      COSTDB_ASSIGN_OR_RETURN(l, Evaluate(*expr.children[0], chunk));
      COSTDB_ASSIGN_OR_RETURN(r, Evaluate(*expr.children[1], chunk));
      ColumnVector out(LogicalType::kBool);
      out.Reserve(n);
      const bool strings = l.physical_type() == PhysicalType::kString;
      if (strings != (r.physical_type() == PhysicalType::kString)) {
        return Status::Internal("comparing string with non-string");
      }
      if (strings) {
        for (size_t i = 0; i < n; ++i) {
          int cmp3 = l.GetString(i).compare(r.GetString(i));
          out.AppendInt(CompareResult(expr.cmp, cmp3 < 0 ? -1 : cmp3 > 0 ? 1 : 0));
        }
      } else if (BothInts(l, r)) {
        for (size_t i = 0; i < n; ++i) {
          int64_t a = l.GetInt(i), b = r.GetInt(i);
          out.AppendInt(CompareResult(expr.cmp, a < b ? -1 : a > b ? 1 : 0));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          double a = NumericAt(l, i), b = NumericAt(r, i);
          out.AppendInt(CompareResult(expr.cmp, a < b ? -1 : a > b ? 1 : 0));
        }
      }
      IntersectValidity(l, r, &out);
      return out;
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      ColumnVector acc;
      COSTDB_ASSIGN_OR_RETURN(acc, Evaluate(*expr.children[0], chunk));
      COSTDB_ASSIGN_OR_RETURN(acc, ToBoolMask(std::move(acc)));
      const bool is_and = expr.kind == Expr::Kind::kAnd;
      for (size_t c = 1; c < expr.children.size(); ++c) {
        ColumnVector next;
        COSTDB_ASSIGN_OR_RETURN(next, Evaluate(*expr.children[c], chunk));
        COSTDB_ASSIGN_OR_RETURN(next, ToBoolMask(std::move(next)));
        auto& a = acc.ints();
        const auto& b = next.ints();
        if (!acc.has_nulls() && !next.has_nulls()) {
          if (is_and) {
            for (size_t i = 0; i < n; ++i) a[i] = a[i] && b[i];
          } else {
            for (size_t i = 0; i < n; ++i) a[i] = a[i] || b[i];
          }
          continue;
        }
        // Three-valued logic: FALSE (resp. TRUE) dominates NULL for AND
        // (resp. OR); NULL dominates the neutral element.
        auto& av = acc.MutableValidity();
        for (size_t i = 0; i < n; ++i) {
          const uint8_t bv = ValidAt(next, i);
          if (is_and) {
            const bool false_a = av[i] && !a[i];
            const bool false_b = bv && !b[i];
            if (false_a || false_b) {
              a[i] = 0;
              av[i] = 1;
            } else if (av[i] && bv) {
              a[i] = 1;
            } else {
              av[i] = 0;
            }
          } else {
            const bool true_a = av[i] && a[i];
            const bool true_b = bv && b[i];
            if (true_a || true_b) {
              a[i] = 1;
              av[i] = 1;
            } else if (av[i] && bv) {
              a[i] = 0;
            } else {
              av[i] = 0;
            }
          }
        }
      }
      return acc;
    }
    case Expr::Kind::kNot: {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, Evaluate(*expr.children[0], chunk));
      COSTDB_ASSIGN_OR_RETURN(v, ToBoolMask(std::move(v)));
      for (auto& x : v.ints()) x = !x;
      return v;  // NOT(NULL) stays NULL: validity unchanged
    }
    case Expr::Kind::kArith: {
      ColumnVector l, r;
      COSTDB_ASSIGN_OR_RETURN(l, Evaluate(*expr.children[0], chunk));
      COSTDB_ASSIGN_OR_RETURN(r, Evaluate(*expr.children[1], chunk));
      if (expr.type == LogicalType::kInt64 && BothInts(l, r) &&
          expr.arith_op != '/') {
        ColumnVector out(LogicalType::kInt64);
        out.Reserve(n);
        const auto& a = l.ints();
        const auto& b = r.ints();
        switch (expr.arith_op) {
          case '+':
            for (size_t i = 0; i < n; ++i) out.AppendInt(a[i] + b[i]);
            break;
          case '-':
            for (size_t i = 0; i < n; ++i) out.AppendInt(a[i] - b[i]);
            break;
          case '*':
            for (size_t i = 0; i < n; ++i) out.AppendInt(a[i] * b[i]);
            break;
        }
        IntersectValidity(l, r, &out);
        return out;
      }
      ColumnVector out(LogicalType::kDouble);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        double a = NumericAt(l, i), b = NumericAt(r, i);
        switch (expr.arith_op) {
          case '+':
            out.AppendDouble(a + b);
            break;
          case '-':
            out.AppendDouble(a - b);
            break;
          case '*':
            out.AppendDouble(a * b);
            break;
          case '/':
            out.AppendDouble(b == 0.0 ? 0.0 : a / b);
            break;
        }
      }
      IntersectValidity(l, r, &out);
      return out;
    }
    case Expr::Kind::kLike: {
      ColumnVector input;
      COSTDB_ASSIGN_OR_RETURN(input, Evaluate(*expr.children[0], chunk));
      const LikePattern pattern(expr.children[1]->constant.AsString(),
                                expr.like_escape);
      ColumnVector out(LogicalType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out.AppendInt(pattern.Match(input.GetString(i)) ? 1 : 0);
      }
      CopyValidity(input, &out);
      return out;
    }
    case Expr::Kind::kAgg:
      return Status::Internal(
          "aggregate expression reached the evaluator; the binder should "
          "have extracted it");
    case Expr::Kind::kParam:
      return Status::Internal(
          "unbound parameter ?" + std::to_string(expr.param_index) +
          " reached the evaluator; prepared plans must be bound via "
          "PreparedStatement::Execute before running");
  }
  return Status::Internal("unreachable expression kind");
}

// ------------------------------------------------------- selection path

namespace {

/// Truthiness selection over an already-evaluated mask vector, dispatched
/// on the mask's physical type so a non-boolean predicate (possible only
/// through the direct kernel API; the binder rejects it in SQL) degrades
/// safely instead of reading the wrong payload.
void SelectTruthy(const ColumnVector& mask, size_t n,
                  const SelectionVector* input, SelectionVector* out) {
  const std::vector<uint8_t>* valid =
      mask.has_nulls() ? &mask.validity() : nullptr;
  switch (mask.physical_type()) {
    case PhysicalType::kInt64: {
      const auto& bits = mask.ints();
      SelectIf(n, input, valid, [&](uint32_t i) { return bits[i] != 0; },
               out);
      break;
    }
    case PhysicalType::kDouble: {
      const auto& vals = mask.doubles();
      SelectIf(n, input, valid, [&](uint32_t i) { return vals[i] != 0.0; },
               out);
      break;
    }
    case PhysicalType::kString:
      break;  // a string is never a truth value: select nothing
  }
}

}  // namespace

Result<SelectionVector> Evaluator::SelectViaMask(
    const Expr& expr, const ChunkView& chunk,
    const SelectionVector* input) const {
  ColumnVector mask;
  COSTDB_ASSIGN_OR_RETURN(mask, Evaluate(expr, chunk));
  SelectionVector out;
  SelectTruthy(mask, chunk.num_rows(), input, &out);
  return out;
}

Result<SelectionVector> Evaluator::Select(const Expr& expr,
                                          const ChunkView& chunk,
                                          const SelectionVector* input) const {
  const size_t n = chunk.num_rows();
  switch (expr.kind) {
    case Expr::Kind::kAnd: {
      // Progressive narrowing: each conjunct only inspects the rows that
      // survived the previous ones.
      SelectionVector cur;
      const SelectionVector* in = input;
      for (size_t c = 0; c < expr.children.size(); ++c) {
        SelectionVector next;
        COSTDB_ASSIGN_OR_RETURN(next, Select(*expr.children[c], chunk, in));
        cur = std::move(next);
        in = &cur;
        if (cur.empty()) break;
      }
      return cur;
    }
    case Expr::Kind::kOr: {
      // Union of the children's selections over the same candidate set;
      // both inputs are ascending, so a sorted merge keeps the invariant.
      SelectionVector acc;
      for (size_t c = 0; c < expr.children.size(); ++c) {
        SelectionVector child;
        COSTDB_ASSIGN_OR_RETURN(child, Select(*expr.children[c], chunk, input));
        if (acc.empty()) {
          acc = std::move(child);
          continue;
        }
        SelectionVector merged;
        merged.reserve(acc.size() + child.size());
        std::set_union(acc.begin(), acc.end(), child.begin(), child.end(),
                       std::back_inserter(merged));
        acc = std::move(merged);
      }
      return acc;
    }
    case Expr::Kind::kCompare: {
      const Expr& le = *expr.children[0];
      const Expr& re = *expr.children[1];
      auto operand = [&](const Expr& e,
                         CompareOperand* op) -> Result<bool> {
        if (e.kind == Expr::Kind::kColumn) {
          size_t idx = 0;
          COSTDB_ASSIGN_OR_RETURN(idx, ResolveColumn(e.column));
          op->col = &chunk.column(idx);
          return true;
        }
        if (e.kind == Expr::Kind::kConstant) {
          op->constant = &e.constant;
          return true;
        }
        return false;  // general expression: no fast path
      };
      CompareOperand l, r;
      bool l_fast = false, r_fast = false;
      COSTDB_ASSIGN_OR_RETURN(l_fast, operand(le, &l));
      COSTDB_ASSIGN_OR_RETURN(r_fast, operand(re, &r));
      if (!l_fast || !r_fast) return SelectViaMask(expr, chunk, input);
      if ((l.constant != nullptr && l.constant->is_null()) ||
          (r.constant != nullptr && r.constant->is_null())) {
        return SelectionVector{};  // comparison with NULL selects nothing
      }
      if (l.is_string() != r.is_string()) {
        return Status::Internal("comparing string with non-string");
      }
      std::vector<uint8_t> valid_scratch;
      const std::vector<uint8_t>* valid =
          CombineOperandValidity(l, r, n, &valid_scratch);
      SelectionVector out;
      if (l.is_string()) {
        auto getter = [](const CompareOperand& o) {
          const ColumnVector* col = o.col;
          const Value* constant = o.constant;
          return [col, constant](uint32_t i) -> const std::string& {
            return col != nullptr ? col->strings()[i] : constant->AsString();
          };
        };
        SelectCompare(expr.cmp, n, input, valid, getter(l), getter(r), &out);
      } else if (l.is_int() && r.is_int()) {
        auto getter = [](const CompareOperand& o) {
          const ColumnVector* col = o.col;
          const int64_t c =
              o.constant != nullptr ? o.constant->AsInt() : int64_t{0};
          return [col, c](uint32_t i) {
            return col != nullptr ? col->ints()[i] : c;
          };
        };
        SelectCompare(expr.cmp, n, input, valid, getter(l), getter(r), &out);
      } else {
        auto getter = [](const CompareOperand& o) {
          const ColumnVector* col = o.col;
          const double c = o.constant != nullptr ? o.constant->AsDouble() : 0.0;
          const bool dbl =
              col != nullptr && col->physical_type() == PhysicalType::kDouble;
          return [col, c, dbl](uint32_t i) {
            if (col == nullptr) return c;
            return dbl ? col->doubles()[i]
                       : static_cast<double>(col->ints()[i]);
          };
        };
        SelectCompare(expr.cmp, n, input, valid, getter(l), getter(r), &out);
      }
      return out;
    }
    case Expr::Kind::kLike: {
      const Expr& in_e = *expr.children[0];
      if (in_e.kind != Expr::Kind::kColumn) {
        return SelectViaMask(expr, chunk, input);
      }
      size_t idx = 0;
      COSTDB_ASSIGN_OR_RETURN(idx, ResolveColumn(in_e.column));
      const ColumnVector& col = chunk.column(idx);
      const LikePattern pattern(expr.children[1]->constant.AsString(),
                                expr.like_escape);
      const std::vector<uint8_t>* valid =
          col.has_nulls() ? &col.validity() : nullptr;
      const auto& strs = col.strings();
      SelectionVector out;
      SelectIf(n, input, valid,
               [&](uint32_t i) { return pattern.Match(strs[i]); }, &out);
      return out;
    }
    case Expr::Kind::kColumn: {
      // Bare column as predicate: truthy rows, typed dispatch.
      size_t idx = 0;
      COSTDB_ASSIGN_OR_RETURN(idx, ResolveColumn(expr.column));
      SelectionVector out;
      SelectTruthy(chunk.column(idx), n, input, &out);
      return out;
    }
    case Expr::Kind::kConstant: {
      SelectionVector out;
      const Value& v = expr.constant;
      const bool truthy =
          !v.is_null() && ((v.is_int() && v.AsInt() != 0) ||
                           (v.is_double() && v.AsDouble() != 0.0));
      if (!truthy) return out;
      if (input != nullptr) return *input;
      out.reserve(n);
      for (uint32_t i = 0; i < n; ++i) out.push_back(i);
      return out;
    }
    default:
      // kNot needs three-valued complement, kArith-as-bool is exotic:
      // both go through the mask fallback.
      return SelectViaMask(expr, chunk, input);
  }
}

Result<SelectionVector> Evaluator::EvaluateSelection(
    const Expr& predicate, const ChunkView& chunk) const {
  return Select(predicate, chunk, nullptr);
}

// -------------------------------------------------- scalar reference path

Result<Value> Evaluator::EvaluateRow(const Expr& expr, const ChunkView& chunk,
                                     size_t row) const {
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      size_t idx = 0;
      COSTDB_ASSIGN_OR_RETURN(idx, ResolveColumn(expr.column));
      return chunk.column(idx).GetValue(row);
    }
    case Expr::Kind::kConstant:
      return expr.constant;
    case Expr::Kind::kCompare: {
      Value l, r;
      COSTDB_ASSIGN_OR_RETURN(l, EvaluateRow(*expr.children[0], chunk, row));
      COSTDB_ASSIGN_OR_RETURN(r, EvaluateRow(*expr.children[1], chunk, row));
      if (l.is_null() || r.is_null()) return Value::Null();
      if (l.is_string() != r.is_string()) {
        return Status::Internal("comparing string with non-string");
      }
      int cmp3;
      if (l.is_string()) {
        int c = l.AsString().compare(r.AsString());
        cmp3 = c < 0 ? -1 : c > 0 ? 1 : 0;
      } else if (l.is_int() && r.is_int()) {
        int64_t a = l.AsInt(), b = r.AsInt();
        cmp3 = a < b ? -1 : a > b ? 1 : 0;
      } else {
        double a = l.AsDouble(), b = r.AsDouble();
        cmp3 = a < b ? -1 : a > b ? 1 : 0;
      }
      return Value::Bool(CompareResult(expr.cmp, cmp3) != 0);
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      const bool is_and = expr.kind == Expr::Kind::kAnd;
      bool saw_null = false;
      for (const auto& child : expr.children) {
        Value v;
        COSTDB_ASSIGN_OR_RETURN(v, EvaluateRow(*child, chunk, row));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.is_string()) {
          return Status::Internal("string value used as a predicate");
        }
        const bool truth = v.is_int() ? v.AsInt() != 0 : v.AsDouble() != 0.0;
        if (is_and && !truth) return Value::Bool(false);
        if (!is_and && truth) return Value::Bool(true);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(is_and);
    }
    case Expr::Kind::kNot: {
      Value v;
      COSTDB_ASSIGN_OR_RETURN(v, EvaluateRow(*expr.children[0], chunk, row));
      if (v.is_null()) return Value::Null();
      if (v.is_string()) {
        return Status::Internal("string value used as a predicate");
      }
      const bool truth = v.is_int() ? v.AsInt() != 0 : v.AsDouble() != 0.0;
      return Value::Bool(!truth);
    }
    case Expr::Kind::kArith: {
      Value l, r;
      COSTDB_ASSIGN_OR_RETURN(l, EvaluateRow(*expr.children[0], chunk, row));
      COSTDB_ASSIGN_OR_RETURN(r, EvaluateRow(*expr.children[1], chunk, row));
      if (l.is_null() || r.is_null()) return Value::Null();
      if (expr.type == LogicalType::kInt64 && l.is_int() && r.is_int() &&
          expr.arith_op != '/') {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (expr.arith_op) {
          case '+':
            return Value(a + b);
          case '-':
            return Value(a - b);
          case '*':
            return Value(a * b);
        }
      }
      double a = l.AsDouble(), b = r.AsDouble();
      switch (expr.arith_op) {
        case '+':
          return Value(a + b);
        case '-':
          return Value(a - b);
        case '*':
          return Value(a * b);
        case '/':
          return Value(b == 0.0 ? 0.0 : a / b);
      }
      return Status::Internal("unknown arithmetic operator");
    }
    case Expr::Kind::kLike: {
      Value v;
      COSTDB_ASSIGN_OR_RETURN(v, EvaluateRow(*expr.children[0], chunk, row));
      if (v.is_null()) return Value::Null();
      return Value::Bool(LikeMatch(v.AsString(),
                                   expr.children[1]->constant.AsString(),
                                   expr.like_escape));
    }
    case Expr::Kind::kAgg:
      return Status::Internal(
          "aggregate expression reached the evaluator; the binder should "
          "have extracted it");
    case Expr::Kind::kParam:
      return Status::Internal(
          "unbound parameter ?" + std::to_string(expr.param_index) +
          " reached the evaluator; prepared plans must be bound via "
          "PreparedStatement::Execute before running");
  }
  return Status::Internal("unreachable expression kind");
}

Result<SelectionVector> Evaluator::EvaluateSelectionScalar(
    const Expr& predicate, const ChunkView& chunk) const {
  SelectionVector out;
  const size_t n = chunk.num_rows();
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    COSTDB_ASSIGN_OR_RETURN(v, EvaluateRow(predicate, chunk, i));
    if (v.is_null() || v.is_string()) continue;  // matches SelectTruthy
    const bool truth = v.is_int() ? v.AsInt() != 0 : v.AsDouble() != 0.0;
    if (truth) out.push_back(i);
  }
  return out;
}

// --------------------------------------------------------------- kernels

namespace kernels {

/// A NULL key hashes to this fixed tag instead of whatever filler its
/// payload slot holds. The payload under a NULL is a type default for
/// stored columns but arbitrary for computed keys (an arithmetic key
/// evaluates on the fillers), so hashing it would scatter NULL-key rows
/// across shuffle buckets — splitting a NULL group across workers — and
/// pile NULL keys onto the 0 bucket chain in the join probe. The tag keeps
/// every NULL row on one deterministic bucket; matching semantics stay
/// with the probe/build NULL guards (NULL joins nothing).
constexpr uint64_t kNullKeyHash = 0x7f4a7c159e3779b9ULL;

void HashRows(const std::vector<ColumnVector>& keys,
              const std::vector<bool>& as_double, size_t rows,
              std::vector<uint64_t>* out) {
  const size_t n = rows;
  out->assign(n, 0x9e3779b97f4a7c15ULL);
  for (size_t k = 0; k < keys.size(); ++k) {
    const ColumnVector& key = keys[k];
    const std::vector<uint8_t>* valid =
        key.has_nulls() ? &key.validity() : nullptr;
    auto& h = *out;
    switch (key.physical_type()) {
      case PhysicalType::kString: {
        const auto& vals = key.strings();
        if (valid == nullptr) {
          for (size_t i = 0; i < n; ++i) {
            h[i] = HashCombine(h[i], HashString(vals[i]));
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            h[i] = HashCombine(
                h[i], (*valid)[i] ? HashString(vals[i]) : kNullKeyHash);
          }
        }
        break;
      }
      case PhysicalType::kDouble: {
        const auto& vals = key.doubles();
        if (valid == nullptr) {
          for (size_t i = 0; i < n; ++i) {
            h[i] = HashCombine(h[i], HashDouble(vals[i]));
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            h[i] = HashCombine(
                h[i], (*valid)[i] ? HashDouble(vals[i]) : kNullKeyHash);
          }
        }
        break;
      }
      case PhysicalType::kInt64:
      default: {
        const auto& vals = key.ints();
        if (as_double[k]) {
          if (valid == nullptr) {
            for (size_t i = 0; i < n; ++i) {
              h[i] =
                  HashCombine(h[i], HashDouble(static_cast<double>(vals[i])));
            }
          } else {
            for (size_t i = 0; i < n; ++i) {
              h[i] = HashCombine(
                  h[i], (*valid)[i] ? HashDouble(static_cast<double>(vals[i]))
                                    : kNullKeyHash);
            }
          }
        } else {
          if (valid == nullptr) {
            for (size_t i = 0; i < n; ++i) {
              h[i] = HashCombine(h[i], HashInt64(vals[i]));
            }
          } else {
            for (size_t i = 0; i < n; ++i) {
              h[i] = HashCombine(
                  h[i], (*valid)[i] ? HashInt64(vals[i]) : kNullKeyHash);
            }
          }
        }
        break;
      }
    }
  }
}

bool AnyKeyNull(const std::vector<ColumnVector>& keys, size_t row) {
  for (const auto& k : keys) {
    if (k.IsNull(row)) return true;
  }
  return false;
}

int64_t CountValid(const ColumnVector& v) {
  if (!v.has_nulls()) return static_cast<int64_t>(v.size());
  int64_t count = 0;
  for (uint8_t bit : v.validity()) count += bit;
  return count;
}

void Accumulate(const ColumnVector& v, int64_t* count, int64_t* isum,
                double* dsum) {
  const size_t n = v.size();
  if (v.physical_type() == PhysicalType::kDouble) {
    const auto& vals = v.doubles();
    if (!v.has_nulls()) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) s += vals[i];
      *dsum += s;
      *count += static_cast<int64_t>(n);
      return;
    }
    const auto& valid = v.validity();
    for (size_t i = 0; i < n; ++i) {
      if (!valid[i]) continue;
      *dsum += vals[i];
      ++*count;
    }
    return;
  }
  const auto& vals = v.ints();
  if (!v.has_nulls()) {
    int64_t s = 0;
    for (size_t i = 0; i < n; ++i) s += vals[i];
    *isum += s;
    *dsum += static_cast<double>(s);
    *count += static_cast<int64_t>(n);
    return;
  }
  const auto& valid = v.validity();
  for (size_t i = 0; i < n; ++i) {
    if (!valid[i]) continue;
    *isum += vals[i];
    *dsum += static_cast<double>(vals[i]);
    ++*count;
  }
}

void MinMax(const ColumnVector& v, Value* min, Value* max, bool* has_value) {
  const size_t n = v.size();
  // Typed scan first, boxed Values only at the boundary.
  if (v.physical_type() == PhysicalType::kInt64) {
    bool seen = false;
    int64_t lo = 0, hi = 0;
    const auto& vals = v.ints();
    for (size_t i = 0; i < n; ++i) {
      if (v.IsNull(i)) continue;
      if (!seen) {
        lo = hi = vals[i];
        seen = true;
        continue;
      }
      if (vals[i] < lo) lo = vals[i];
      if (vals[i] > hi) hi = vals[i];
    }
    if (!seen) return;
    Value vlo(lo), vhi(hi);
    if (!*has_value || vlo < *min) *min = vlo;
    if (!*has_value || *max < vhi) *max = vhi;
    *has_value = true;
    return;
  }
  if (v.physical_type() == PhysicalType::kDouble) {
    bool seen = false;
    double lo = 0.0, hi = 0.0;
    const auto& vals = v.doubles();
    for (size_t i = 0; i < n; ++i) {
      if (v.IsNull(i)) continue;
      if (!seen) {
        lo = hi = vals[i];
        seen = true;
        continue;
      }
      if (vals[i] < lo) lo = vals[i];
      if (vals[i] > hi) hi = vals[i];
    }
    if (!seen) return;
    Value vlo(lo), vhi(hi);
    if (!*has_value || vlo < *min) *min = vlo;
    if (!*has_value || *max < vhi) *max = vhi;
    *has_value = true;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (v.IsNull(i)) continue;
    Value val = v.GetValue(i);
    if (!*has_value) {
      *min = val;
      *max = val;
      *has_value = true;
      continue;
    }
    if (val < *min) *min = val;
    if (*max < val) *max = val;
  }
}

void AccumulateSelected(const ColumnVector& v, const SelectionVector& sel,
                        int64_t* count, int64_t* isum, double* dsum) {
  // Branch structure mirrors Accumulate over a gathered copy: a gathered
  // no-null column hits the local-partial-sum fast path, and a gathered
  // nullable column (the mask travels through Gather) hits the per-row
  // path — so the floating-point addition order is identical either way.
  if (v.physical_type() == PhysicalType::kDouble) {
    const auto& vals = v.doubles();
    if (!v.has_nulls()) {
      double s = 0.0;
      for (uint32_t i : sel) s += vals[i];
      *dsum += s;
      *count += static_cast<int64_t>(sel.size());
      return;
    }
    const auto& valid = v.validity();
    for (uint32_t i : sel) {
      if (!valid[i]) continue;
      *dsum += vals[i];
      ++*count;
    }
    return;
  }
  const auto& vals = v.ints();
  if (!v.has_nulls()) {
    int64_t s = 0;
    for (uint32_t i : sel) s += vals[i];
    *isum += s;
    *dsum += static_cast<double>(s);
    *count += static_cast<int64_t>(sel.size());
    return;
  }
  const auto& valid = v.validity();
  for (uint32_t i : sel) {
    if (!valid[i]) continue;
    *isum += vals[i];
    *dsum += static_cast<double>(vals[i]);
    ++*count;
  }
}

int64_t CountValidSelected(const ColumnVector& v, const SelectionVector& sel) {
  if (!v.has_nulls()) return static_cast<int64_t>(sel.size());
  const auto& valid = v.validity();
  int64_t count = 0;
  for (uint32_t i : sel) count += valid[i];
  return count;
}

void MinMaxSelected(const ColumnVector& v, const SelectionVector& sel,
                    Value* min, Value* max, bool* has_value) {
  if (v.physical_type() == PhysicalType::kInt64) {
    bool seen = false;
    int64_t lo = 0, hi = 0;
    const auto& vals = v.ints();
    for (uint32_t i : sel) {
      if (v.IsNull(i)) continue;
      if (!seen) {
        lo = hi = vals[i];
        seen = true;
        continue;
      }
      if (vals[i] < lo) lo = vals[i];
      if (vals[i] > hi) hi = vals[i];
    }
    if (!seen) return;
    Value vlo(lo), vhi(hi);
    if (!*has_value || vlo < *min) *min = vlo;
    if (!*has_value || *max < vhi) *max = vhi;
    *has_value = true;
    return;
  }
  if (v.physical_type() == PhysicalType::kDouble) {
    bool seen = false;
    double lo = 0.0, hi = 0.0;
    const auto& vals = v.doubles();
    for (uint32_t i : sel) {
      if (v.IsNull(i)) continue;
      if (!seen) {
        lo = hi = vals[i];
        seen = true;
        continue;
      }
      if (vals[i] < lo) lo = vals[i];
      if (vals[i] > hi) hi = vals[i];
    }
    if (!seen) return;
    Value vlo(lo), vhi(hi);
    if (!*has_value || vlo < *min) *min = vlo;
    if (!*has_value || *max < vhi) *max = vhi;
    *has_value = true;
    return;
  }
  for (uint32_t i : sel) {
    if (v.IsNull(i)) continue;
    Value val = v.GetValue(i);
    if (!*has_value) {
      *min = val;
      *max = val;
      *has_value = true;
      continue;
    }
    if (val < *min) *min = val;
    if (*max < val) *max = val;
  }
}

}  // namespace kernels

}  // namespace costdb
