#include "exec/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <unordered_map>

#include "catalog/hll.h"
#include "common/annotated_mutex.h"
#include "exec/evaluator.h"
#include "storage/table.h"

namespace costdb {

namespace {

constexpr size_t kMorselRows = 4096;

/// Running state of one aggregate function for one group.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  Value min;
  Value max;
  bool has_value = false;
};

/// Commutative merge of two partial aggregate states (morsel-local partials
/// are merged in morsel order, so results are deterministic for any thread
/// count).
void MergeAggState(AggState* into, const AggState& from) {
  into->count += from.count;
  into->isum += from.isum;
  into->dsum += from.dsum;
  if (from.has_value) {
    if (!into->has_value) {
      into->min = from.min;
      into->max = from.max;
      into->has_value = true;
    } else {
      if (from.min < into->min) into->min = from.min;
      if (into->max < from.max) into->max = from.max;
    }
  }
}

struct GroupState {
  std::vector<Value> group_values;
  std::vector<AggState> aggs;
};

bool KeysEqual(const std::vector<ColumnVector>& a, size_t ra,
               const std::vector<ColumnVector>& b, size_t rb) {
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k].IsNull(ra) || b[k].IsNull(rb)) return false;  // NULL joins nothing
    const bool a_str = a[k].physical_type() == PhysicalType::kString;
    const bool b_str = b[k].physical_type() == PhysicalType::kString;
    if (a_str != b_str) return false;
    if (a_str) {
      if (a[k].GetString(ra) != b[k].GetString(rb)) return false;
      continue;
    }
    auto num = [](const ColumnVector& v, size_t i) {
      return v.physical_type() == PhysicalType::kDouble
                 ? v.GetDouble(i)
                 : static_cast<double>(v.GetInt(i));
    };
    if (num(a[k], ra) != num(b[k], rb)) return false;
  }
  return true;
}

/// One column's contribution to the serialized row key (see
/// EncodeRowKeyInto in engine.h for the format contract).
void EncodeKeyColumn(const ColumnVector& g, size_t row, std::string* key) {
  if (g.IsNull(row)) {
    *key += 'n';
    *key += '\x01';
    return;
  }
  switch (g.physical_type()) {
    case PhysicalType::kInt64:
      *key += 'i';
      *key += std::to_string(g.GetInt(row));
      break;
    case PhysicalType::kDouble: {
      // Bit-exact encoding: to_string's 6 decimals would merge nearby
      // distinct values into one group. -0.0 normalizes to 0.0 so the
      // two (equal) zeros stay one group.
      double d = g.GetDouble(row);
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      *key += 'd';
      *key += std::to_string(bits);
      break;
    }
    case PhysicalType::kString: {
      const std::string& s = g.GetString(row);
      *key += 's';
      *key += std::to_string(s.size());
      *key += ':';
      *key += s;
      break;
    }
  }
  *key += '\x01';
}

/// Morsel-local partial aggregation: group index + one state per group.
/// Merged into the global (ordered) table in morsel order after the
/// parallel loop, so no lock is held on the per-row path and results are
/// deterministic; the partial itself can stay unordered — per-key merge
/// order is slot order either way.
struct SlotAggPartial {
  std::unordered_map<std::string, GroupState> groups;
  size_t rows_folded = 0;
};

/// Column-at-a-time fold of one morsel's chunk into `partial`.
Status FoldChunkIntoGroups(const PhysicalPlan* sink,
                           const std::vector<ColumnVector>& group_vecs,
                           const std::vector<ColumnVector>& agg_inputs,
                           size_t rows, SlotAggPartial* partial) {
  partial->rows_folded += rows;
  // Pass 1: per-row group lookup (the only row-at-a-time step; the key
  // buffer is reused so the loop does not allocate once groups repeat).
  std::vector<GroupState*> row_group(rows);
  std::string key;
  for (size_t r = 0; r < rows; ++r) {
    EncodeRowKeyInto(group_vecs, r, &key);
    auto [it, inserted] = partial->groups.try_emplace(key);
    GroupState& gs = it->second;
    if (inserted) {  // aggs may stay empty (aggregate-free GROUP BY)
      gs.aggs.resize(sink->aggregates.size());
      for (const auto& g : group_vecs) {
        gs.group_values.push_back(g.GetValue(r));
      }
    }
    row_group[r] = &gs;
  }
  // Pass 2: one vectorized sweep per aggregate over the typed payloads.
  for (size_t a = 0; a < sink->aggregates.size(); ++a) {
    const Expr& agg = *sink->aggregates[a];
    if (agg.agg == AggFunc::kCountStar) {
      for (size_t r = 0; r < rows; ++r) ++row_group[r]->aggs[a].count;
      continue;
    }
    const ColumnVector& in = agg_inputs[a];
    switch (agg.agg) {
      case AggFunc::kCount:
        // COUNT(col) counts non-null rows of any type — never touch the
        // typed payload (it may be a string column).
        for (size_t r = 0; r < rows; ++r) {
          if (!in.IsNull(r)) ++row_group[r]->aggs[a].count;
        }
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (in.physical_type() == PhysicalType::kInt64) {
          const auto& vals = in.ints();
          for (size_t r = 0; r < rows; ++r) {
            if (in.IsNull(r)) continue;
            AggState& st = row_group[r]->aggs[a];
            ++st.count;
            st.isum += vals[r];
            st.dsum += static_cast<double>(vals[r]);
          }
        } else {
          const auto& vals = in.doubles();
          for (size_t r = 0; r < rows; ++r) {
            if (in.IsNull(r)) continue;
            AggState& st = row_group[r]->aggs[a];
            ++st.count;
            st.dsum += vals[r];
          }
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        for (size_t r = 0; r < rows; ++r) {
          if (in.IsNull(r)) continue;
          AggState& st = row_group[r]->aggs[a];
          ++st.count;
          Value v = in.GetValue(r);
          if (!st.has_value) {
            st.min = v;
            st.max = v;
            st.has_value = true;
          } else {
            if (v < st.min) st.min = v;
            if (st.max < v) st.max = v;
          }
        }
        break;
      default:
        return Status::Internal("unexpected aggregate function");
    }
  }
  return Status::OK();
}

/// Global-aggregate fast path (no GROUP BY): pure column reductions, no
/// key encoding at all.
Status FoldChunkIntoGlobal(const PhysicalPlan* sink,
                           const std::vector<ColumnVector>& agg_inputs,
                           size_t rows, SlotAggPartial* partial) {
  partial->rows_folded += rows;
  GroupState& gs = partial->groups[std::string()];
  if (gs.aggs.empty()) gs.aggs.resize(sink->aggregates.size());
  for (size_t a = 0; a < sink->aggregates.size(); ++a) {
    const Expr& agg = *sink->aggregates[a];
    AggState& st = gs.aggs[a];
    if (agg.agg == AggFunc::kCountStar) {
      st.count += static_cast<int64_t>(rows);
      continue;
    }
    const ColumnVector& in = agg_inputs[a];
    switch (agg.agg) {
      case AggFunc::kCount:
        st.count += kernels::CountValid(in);  // any type, nulls skipped
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        kernels::Accumulate(in, &st.count, &st.isum, &st.dsum);
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        kernels::MinMax(in, &st.min, &st.max, &st.has_value);
        break;
      default:
        return Status::Internal("unexpected aggregate function");
    }
  }
  return Status::OK();
}

}  // namespace

void EncodeRowKeyInto(const std::vector<ColumnVector>& columns, size_t row,
                      std::string* key) {
  key->clear();
  for (const auto& g : columns) EncodeKeyColumn(g, row, key);
}

void EncodeChunkKeyInto(const DataChunk& chunk, size_t num_columns, size_t row,
                        std::string* key) {
  key->clear();
  for (size_t c = 0; c < num_columns; ++c) {
    EncodeKeyColumn(chunk.column(c), row, key);
  }
}

std::string QueryResult::ToString(int64_t limit) const {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += " | ";
    out += names[i];
  }
  out += "\n";
  out += chunk.ToString(limit);
  return out;
}

/// Materialized output and/or join hash table of a pipeline breaker.
struct LocalEngine::BreakerState {
  // Join build.
  DataChunk build_data;
  std::vector<ColumnVector> build_key_vectors;
  std::unordered_multimap<uint64_t, uint32_t> build_index;
  std::vector<bool> keys_as_double;
  // Aggregate / sort output.
  DataChunk materialized;
  bool materialized_valid = false;
};

struct LocalEngine::ExecContext {
  std::map<const PhysicalPlan*, BreakerState> breakers;
  DataChunk result;
  bool result_valid = false;
  /// When set, the result pipeline streams into this sink (in morsel
  /// order, as prefixes complete) instead of materializing `result`.
  ChunkSink* result_sink = nullptr;
  size_t rows_streamed = 0;
};

namespace {

/// Schema (column names) flowing *into* each streaming operator is the
/// output schema of whatever preceded it; we track it as we apply ops.
struct MorselProcessor {
  const Pipeline* pipeline;
  LocalEngine::ExecContext* ctx;  // breaker states (read-only during probe)
  std::map<const PhysicalPlan*, LocalEngine::BreakerState>* breakers;

  /// Apply the streaming operators from `first_op` on to `chunk` (schema
  /// `names` updated in place). A fused filter→probe morsel enters here
  /// *after* the join it fused through, so it resumes at the next
  /// operator. Returns an error or the transformed chunk (possibly empty).
  Status Apply(DataChunk* chunk, std::vector<std::string>* names,
               size_t first_op = 0) const {
    for (size_t oi = first_op; oi < pipeline->operators.size(); ++oi) {
      const PhysicalPlan* op = pipeline->operators[oi];
      if (chunk->num_rows() == 0 &&
          op->kind != PhysicalPlan::Kind::kHashJoin) {
        *names = op->output_names;
        DataChunk empty(op->output_types);
        *chunk = std::move(empty);
        continue;
      }
      switch (op->kind) {
        case PhysicalPlan::Kind::kFilter: {
          Evaluator ev(names);
          SelectionVector sel;
          COSTDB_ASSIGN_OR_RETURN(sel,
                                  ev.EvaluateSelection(*op->predicate, *chunk));
          chunk->Slice(sel);
          break;
        }
        case PhysicalPlan::Kind::kProject: {
          Evaluator ev(names);
          DataChunk out;
          for (const auto& p : op->projections) {
            ColumnVector v;
            COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*p, *chunk));
            out.AddColumn(std::move(v));
          }
          *chunk = std::move(out);
          *names = op->output_names;
          break;
        }
        case PhysicalPlan::Kind::kExchange:
          break;  // no network locally
        case PhysicalPlan::Kind::kLimit:
          break;  // applied at result finalization
        case PhysicalPlan::Kind::kHashJoin: {
          COSTDB_RETURN_NOT_OK(Probe(op, chunk, names));
          break;
        }
        default:
          return Status::Internal("unexpected streaming operator");
      }
    }
    return Status::OK();
  }

  /// Vectorized probe: hash every probe row column-at-a-time, collect the
  /// matching (probe, build) row pairs, then gather output columns in bulk.
  Status Probe(const PhysicalPlan* join, DataChunk* chunk,
               std::vector<std::string>* names) const {
    auto it = breakers->find(join);
    if (it == breakers->end()) {
      return Status::Internal("probe before build");
    }
    const LocalEngine::BreakerState& bs = it->second;
    Evaluator ev(names);
    std::vector<ColumnVector> probe_keys;
    for (const auto& k : join->probe_keys) {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*k, *chunk));
      probe_keys.push_back(std::move(v));
    }
    std::vector<uint64_t> hashes;
    kernels::HashRows(probe_keys, bs.keys_as_double, chunk->num_rows(),
                      &hashes);
    SelectionVector probe_sel;
    std::vector<uint32_t> build_sel;
    const size_t probe_rows = chunk->num_rows();
    for (uint32_t r = 0; r < probe_rows; ++r) {
      // SQL three-valued logic: a NULL probe key matches nothing. Skip
      // before the lookup — NULL keys share one hash tag, so probing
      // would walk the whole NULL chain just for KeysEqual to reject it.
      if (kernels::AnyKeyNull(probe_keys, r)) continue;
      auto range = bs.build_index.equal_range(hashes[r]);
      for (auto m = range.first; m != range.second; ++m) {
        if (!KeysEqual(probe_keys, r, bs.build_key_vectors, m->second)) {
          continue;
        }
        probe_sel.push_back(r);
        build_sel.push_back(m->second);
      }
    }
    DataChunk out(join->output_types);
    const size_t probe_cols = chunk->num_columns();
    for (size_t c = 0; c < probe_cols; ++c) {
      out.column(c) = chunk->column(c).Gather(probe_sel);
    }
    for (size_t c = 0; c < bs.build_data.num_columns(); ++c) {
      out.column(probe_cols + c) = bs.build_data.column(c).Gather(build_sel);
    }
    *chunk = std::move(out);
    *names = join->output_names;
    return Status::OK();
  }

  /// Fused filter→hash-probe: probe straight off the scan's borrowed
  /// row-group columns. `sel` holds the filter survivors (absolute view
  /// rows); only the key columns of survivors are gathered before hashing,
  /// and output columns are gathered once, for *matching* rows only — the
  /// interpreted path's full filtered-chunk materialization never happens.
  /// Hashing, NULL-key rejection, and match order are shared with Probe
  /// (same kernels, same row order), so output is bit-identical.
  Status FusedProbe(const PhysicalPlan* join, const ChunkView& view,
                    const SelectionVector& sel,
                    const std::vector<uint32_t>& key_cols,
                    DataChunk* out_chunk) const {
    auto it = breakers->find(join);
    if (it == breakers->end()) {
      return Status::Internal("probe before build");
    }
    const LocalEngine::BreakerState& bs = it->second;
    std::vector<ColumnVector> probe_keys;
    probe_keys.reserve(key_cols.size());
    for (uint32_t c : key_cols) {
      probe_keys.push_back(view.column(c).Gather(sel));
    }
    std::vector<uint64_t> hashes;
    kernels::HashRows(probe_keys, bs.keys_as_double, sel.size(), &hashes);
    SelectionVector probe_sel;  // indices into the survivor domain
    std::vector<uint32_t> build_sel;
    const size_t probe_rows = sel.size();
    for (uint32_t r = 0; r < probe_rows; ++r) {
      if (kernels::AnyKeyNull(probe_keys, r)) continue;
      auto range = bs.build_index.equal_range(hashes[r]);
      for (auto m = range.first; m != range.second; ++m) {
        if (!KeysEqual(probe_keys, r, bs.build_key_vectors, m->second)) {
          continue;
        }
        probe_sel.push_back(r);
        build_sel.push_back(m->second);
      }
    }
    // Translate survivor-domain matches back to absolute view rows.
    SelectionVector abs_sel(probe_sel.size());
    for (size_t k = 0; k < probe_sel.size(); ++k) {
      abs_sel[k] = sel[probe_sel[k]];
    }
    DataChunk out(join->output_types);
    const size_t probe_cols = view.num_columns();
    for (size_t c = 0; c < probe_cols; ++c) {
      out.column(c) = view.column(c).Gather(abs_sel);
    }
    for (size_t c = 0; c < bs.build_data.num_columns(); ++c) {
      out.column(probe_cols + c) = bs.build_data.column(c).Gather(build_sel);
    }
    *out_chunk = std::move(out);
    return Status::OK();
  }
};

}  // namespace

LocalEngine::LocalEngine(size_t num_threads) : pool_(num_threads) {}

Status LocalEngine::RunPipeline(const Pipeline& pipeline, ExecContext* ctx,
                                PipelineTiming* timing) {
  // ---- 1. Build the morsel list ----
  struct Morsel {
    const DataChunk* source_chunk = nullptr;  // row group or materialized
    size_t begin = 0;
    size_t end = 0;  // rows [begin, end)
    const RowGroup* row_group = nullptr;
    size_t group_index = 0;  // index into the table's row groups
  };
  std::vector<Morsel> morsels;
  std::vector<std::string> source_names;
  const PhysicalPlan* src = pipeline.source;
  if (src == nullptr) return Status::Internal("pipeline without source");

  if (!pipeline.source_is_breaker) {
    // TableScan source: one morsel per row group that survives zone-map
    // pruning. A pruned morsel is never touched again — its rows are not
    // read, filtered, or materialized.
    source_names = src->output_names;
    const auto& groups = src->table->row_groups();
    // A sharded worker scans only its contiguous row-group share; the
    // default [0, SIZE_MAX) covers the whole table.
    const size_t g_end = std::min(groups.size(), src->scan_group_end);
    for (size_t g = std::min(src->scan_group_begin, g_end); g < g_end; ++g) {
      const RowGroup& group = groups[g];
      ++scan_stats_.morsels_total;
      bool prunable = false;
      for (const auto& f : src->scan_filters) {
        std::string col;
        CompareOp op;
        Value constant;
        if (!MatchColumnCompareConstant(f, &col, &op, &constant)) continue;
        // Strip the alias qualifier to find the base column.
        auto dot = col.find('.');
        std::string base = dot == std::string::npos ? col : col.substr(dot + 1);
        auto idx = src->table->ColumnIndex(base);
        if (!idx.ok()) continue;
        if (!group.zones[*idx].MayMatch(op, constant)) {
          prunable = true;
          break;
        }
      }
      if (prunable) {
        ++scan_stats_.morsels_pruned;
        scan_stats_.rows_pruned += group.num_rows();
        continue;
      }
      scan_stats_.rows_scanned += group.num_rows();
      Morsel m;
      m.row_group = &group;
      m.group_index = g;
      m.begin = 0;
      m.end = group.num_rows();
      morsels.push_back(m);
    }
  } else {
    auto it = ctx->breakers.find(src);
    if (it == ctx->breakers.end() || !it->second.materialized_valid) {
      return Status::Internal("pipeline source not materialized");
    }
    source_names = src->output_names;
    const DataChunk& data = it->second.materialized;
    for (size_t begin = 0; begin < data.num_rows(); begin += kMorselRows) {
      Morsel m;
      m.source_chunk = &data;
      m.begin = begin;
      m.end = std::min(begin + kMorselRows, data.num_rows());
      morsels.push_back(m);
    }
    if (data.num_rows() == 0) {
      Morsel m;
      m.source_chunk = &data;
      morsels.push_back(m);  // empty morsel keeps global aggregates alive
    }
  }

  // ---- 2. Process morsels in parallel, collecting per-slot outputs ----
  std::vector<DataChunk> slot_outputs(morsels.size());
  std::vector<Status> slot_status(morsels.size());
  std::vector<SlotAggPartial> slot_aggs;  // aggregate sink partials

  MorselProcessor processor{&pipeline, ctx, &ctx->breakers};
  const PhysicalPlan* sink = pipeline.sink;
  const bool agg_sink =
      sink != nullptr && sink->kind == PhysicalPlan::Kind::kHashAggregate &&
      !pipeline.sink_is_build_side;
  if (agg_sink) slot_aggs.resize(morsels.size());
  const ExprPtr combined_scan_filter =
      (!pipeline.source_is_breaker && !src->scan_filters.empty())
          ? CombineConjuncts(src->scan_filters)
          : nullptr;

  // ---- fused-kernel setup (annotations from the fuse_kernels pass) ----
  // Compiled once per pipeline through the same registry the optimizer
  // priced with; a shape that fails to compile here (stale annotation on a
  // hand-built plan) falls back to the vectorized path per morsel.
  const FusedKernelRegistry& fused_registry = FusedKernelRegistry::Global();
  std::optional<FusedPredicate> fused_pred;
  if (!pipeline.source_is_breaker && src->fuse_scan_filter &&
      combined_scan_filter != nullptr) {
    fused_pred = fused_registry.Compile(*combined_scan_filter,
                                        src->output_names, src->output_types);
  }
  const bool fused_filter_bound =
      combined_scan_filter == nullptr || fused_pred.has_value();
  // Columns to gather for a plain fused select+gather scan: all of them.
  std::vector<size_t> fused_gather_cols;
  if (fused_pred.has_value()) {
    fused_gather_cols.resize(src->scan_column_indices.size());
    for (size_t i = 0; i < fused_gather_cols.size(); ++i) {
      fused_gather_cols[i] = i;
    }
  }
  // Fused filter→aggregate: global-agg sink fed by the scan through
  // exchanges only, every aggregate input a bare scan column.
  std::vector<FusedAggSpec> fused_agg_specs;
  bool fused_agg = false;
  if (agg_sink && sink->fuse_aggregate && sink->group_by.empty() &&
      !pipeline.source_is_breaker && fused_filter_bound) {
    bool ops_ok = true;
    for (const PhysicalPlan* op : pipeline.operators) {
      if (op->kind != PhysicalPlan::Kind::kExchange) ops_ok = false;
    }
    fused_agg = ops_ok && fused_registry.CompileAggregates(
                              sink->aggregates, src->output_names,
                              src->output_types, &fused_agg_specs);
  }
  // Fused filter→hash-probe: the first non-exchange streaming operator is
  // the annotated join and its probe keys are bare scan columns.
  const PhysicalPlan* fused_join = nullptr;
  size_t fused_join_index = 0;
  std::vector<uint32_t> fused_probe_key_cols;
  if (!pipeline.source_is_breaker && !fused_agg && fused_filter_bound) {
    for (size_t i = 0; i < pipeline.operators.size(); ++i) {
      const PhysicalPlan* op = pipeline.operators[i];
      if (op->kind == PhysicalPlan::Kind::kExchange) continue;
      if (op->kind == PhysicalPlan::Kind::kHashJoin && op->fuse_probe) {
        std::vector<uint32_t> cols;
        bool ok = true;
        for (const auto& k : op->probe_keys) {
          const size_t idx = k->kind == Expr::Kind::kColumn
                                 ? src->FindColumn(k->column)
                                 : static_cast<size_t>(-1);
          if (idx == static_cast<size_t>(-1)) {
            ok = false;
            break;
          }
          cols.push_back(static_cast<uint32_t>(idx));
        }
        if (ok && !cols.empty()) {
          fused_join = op;
          fused_join_index = i;
          fused_probe_key_cols = std::move(cols);
        }
      }
      break;  // only the operator adjacent to the scan can fuse with it
    }
  }
  std::vector<FusedExecStats> slot_fused(morsels.size());
  // Per-slot cold-read counters; merged after the barrier like slot_fused.
  std::vector<BlockCacheStats> slot_blocks(morsels.size());

  double source_rows = 0.0;
  for (const Morsel& m : morsels) source_rows += double(m.end - m.begin);

  // Streaming result path: the final pipeline pushes each morsel's output
  // to the client sink as soon as every earlier morsel has been delivered
  // — deterministic morsel order without materializing the whole result.
  const bool streaming = sink == nullptr && ctx->result_sink != nullptr;
  int64_t limit_remaining = -1;  // result-pipeline LIMIT, applied on push
  if (streaming) {
    for (const PhysicalPlan* op : pipeline.operators) {
      if (op->kind == PhysicalPlan::Kind::kLimit && op->limit >= 0) {
        limit_remaining = op->limit;
      }
    }
  }
  Mutex push_mu;
  std::vector<uint8_t> slot_ready(morsels.size(), 0);
  size_t next_push = 0;
  size_t pushed_rows = 0;
  Status push_status;  // first sink failure; surfaced after the barrier

  auto fused_elapsed = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  auto process_inner = [&](size_t slot) {
    const Morsel& m = morsels[slot];
    // Assemble the source chunk.
    DataChunk chunk;
    std::vector<std::string> names = source_names;
    size_t first_op = 0;  // fused probes resume Apply after their join
    if (m.row_group != nullptr) {
      // Pin the group's payload for the duration of the morsel: resident
      // groups borrow in place, cold groups come through the block cache
      // (or one object-store GET) — the engine itself never sees the
      // storage tier, only this Table-level pin.
      Table::RowGroupPin pin;
      {
        auto pinned = src->table->PinRowGroup(m.group_index,
                                              &slot_blocks[slot]);
        if (!pinned.ok()) {
          slot_status[slot] = pinned.status();
          return;
        }
        pin = std::move(*pinned);
      }
      const DataChunk& group_data = *pin.chunk;
      ChunkView view;
      for (size_t idx : src->scan_column_indices) {
        view.AddColumn(&group_data.column(idx));
      }
      const size_t view_rows = view.num_rows();
      FusedExecStats& fstats = slot_fused[slot];
      bool scan_done = false;
      bool pred_bind_failed = false;

      if (fused_agg) {
        // Fused filter→aggregate fold: survivors go straight from the
        // borrowed row-group columns into the aggregate states — no
        // materialization at all.
        std::vector<FusedAggState> states(fused_agg_specs.size());
        SelectionVector sel;
        auto t0 = std::chrono::steady_clock::now();
        Result<size_t> survivors =
            FusedFilterAggregate(fused_pred ? &*fused_pred : nullptr, view,
                                 fused_agg_specs, &states, &sel);
        if (survivors.ok()) {
          fstats.fused_seconds += fused_elapsed(t0);
          ++fstats.fused_agg_morsels;
          fstats.fused_rows += view_rows;
          if (*survivors > 0) {
            SlotAggPartial& partial = slot_aggs[slot];
            partial.rows_folded += *survivors;
            GroupState& gs = partial.groups[std::string()];
            gs.aggs.resize(sink->aggregates.size());
            for (size_t a = 0; a < fused_agg_specs.size(); ++a) {
              AggState& st = gs.aggs[a];
              const FusedAggState& fs = states[a];
              st.count += fs.count;
              st.isum += fs.isum;
              st.dsum += fs.dsum;
              if (fs.has_value) {
                st.min = fs.min;
                st.max = fs.max;
                st.has_value = true;
              }
            }
          }
          return;  // nothing materialized per slot
        }
        ++fstats.fallback_morsels;  // stale shape: interpreted path below
        pred_bind_failed = true;
      }

      if (!scan_done && !pred_bind_failed && fused_join != nullptr) {
        // Fused filter→hash-probe pipeline.
        SelectionVector sel;
        Status fst;
        auto t0 = std::chrono::steady_clock::now();
        if (fused_pred.has_value()) {
          fst = fused_pred->Select(view, &sel);
        } else {
          sel.resize(view_rows);
          for (uint32_t i = 0; i < view_rows; ++i) sel[i] = i;
        }
        if (fst.ok()) {
          DataChunk out;
          Status pst = processor.FusedProbe(fused_join, view, sel,
                                            fused_probe_key_cols, &out);
          fstats.fused_seconds += fused_elapsed(t0);
          if (!pst.ok()) {
            slot_status[slot] = pst;  // real error (e.g. probe before build)
            return;
          }
          ++fstats.fused_probe_morsels;
          fstats.fused_rows += view_rows;
          chunk = std::move(out);
          names = fused_join->output_names;
          first_op = fused_join_index + 1;
          scan_done = true;
        } else {
          ++fstats.fallback_morsels;
          pred_bind_failed = true;
        }
      }

      if (!scan_done && !pred_bind_failed && fused_pred.has_value()) {
        // Fused select+gather: one pass decides survivors, one gather
        // materializes them — no per-conjunct selection vectors.
        DataChunk projected;
        SelectionVector sel;
        auto t0 = std::chrono::steady_clock::now();
        Status fst =
            fused_pred->SelectGather(view, fused_gather_cols, &projected, &sel);
        if (fst.ok()) {
          fstats.fused_seconds += fused_elapsed(t0);
          ++fstats.fused_filter_morsels;
          fstats.fused_rows += view_rows;
          chunk = std::move(projected);
          scan_done = true;
        } else {
          ++fstats.fallback_morsels;
        }
      }
      if (!scan_done && src->fuse_scan_filter &&
          combined_scan_filter != nullptr && !fused_pred.has_value()) {
        ++fstats.fallback_morsels;  // annotated fused, shape never compiled
      }

      if (!scan_done) {
        if (combined_scan_filter != nullptr) {
          // Filter before materializing: the predicate runs on borrowed
          // row-group columns, and only surviving rows are ever copied.
          Evaluator ev(&names);
          auto sel = ev.EvaluateSelection(*combined_scan_filter, view);
          if (!sel.ok()) {
            slot_status[slot] = sel.status();
            return;
          }
          DataChunk projected;
          for (size_t idx : src->scan_column_indices) {
            projected.AddColumn(group_data.column(idx).Gather(*sel));
          }
          chunk = std::move(projected);
        } else {
          DataChunk projected;
          for (size_t idx : src->scan_column_indices) {
            projected.AddColumn(group_data.column(idx));
          }
          chunk = std::move(projected);
        }
      }
    } else {
      DataChunk sliced(m.source_chunk->Types());
      sliced.AppendRange(*m.source_chunk, m.begin, m.end);
      chunk = std::move(sliced);
    }
    Status st = processor.Apply(&chunk, &names, first_op);
    if (!st.ok()) {
      slot_status[slot] = st;
      return;
    }
    if (agg_sink) {
      // Fold this chunk into the slot-local partial aggregation.
      Evaluator ev(&names);
      std::vector<ColumnVector> group_vecs;
      for (const auto& g : sink->group_by) {
        auto v = ev.Evaluate(*g, chunk);
        if (!v.ok()) {
          slot_status[slot] = v.status();
          return;
        }
        group_vecs.push_back(std::move(*v));
      }
      std::vector<ColumnVector> agg_inputs;
      for (const auto& a : sink->aggregates) {
        if (a->children.empty()) {
          agg_inputs.emplace_back();  // COUNT(*) has no input
          continue;
        }
        auto v = ev.Evaluate(*a->children[0], chunk);
        if (!v.ok()) {
          slot_status[slot] = v.status();
          return;
        }
        agg_inputs.push_back(std::move(*v));
      }
      if (chunk.num_rows() == 0) return;
      if (sink->group_by.empty()) {
        slot_status[slot] = FoldChunkIntoGlobal(sink, agg_inputs,
                                                chunk.num_rows(),
                                                &slot_aggs[slot]);
      } else {
        slot_status[slot] = FoldChunkIntoGroups(
            sink, group_vecs, agg_inputs, chunk.num_rows(), &slot_aggs[slot]);
      }
      return;  // nothing materialized per slot
    }
    slot_outputs[slot] = std::move(chunk);
  };

  auto process_one = [&](size_t slot) {
    process_inner(slot);
    if (!streaming) return;
    // Mark this slot delivered (even on error — a stuck prefix would
    // otherwise pin every later chunk) and push all consecutive ready
    // slots. The lock serializes pushes; order is morsel order.
    MutexLock lock(push_mu);
    slot_ready[slot] = 1;
    while (next_push < slot_ready.size() && slot_ready[next_push]) {
      DataChunk& ready = slot_outputs[next_push];
      // A failed morsel latches: nothing after it is pushed, so whatever
      // the client streamed before the error is a correct prefix of the
      // true result (never a row sequence with a hole in the middle).
      if (push_status.ok() && !slot_status[next_push].ok()) {
        push_status = slot_status[next_push];
      }
      const bool ok_to_push = push_status.ok() && ready.num_rows() > 0 &&
                              limit_remaining != 0;
      ++next_push;
      if (!ok_to_push) continue;
      if (limit_remaining > 0 &&
          static_cast<int64_t>(ready.num_rows()) > limit_remaining) {
        std::vector<uint32_t> head(static_cast<size_t>(limit_remaining));
        for (size_t i = 0; i < head.size(); ++i) {
          head[i] = static_cast<uint32_t>(i);
        }
        ready.Slice(head);
      }
      if (limit_remaining > 0) {
        limit_remaining -= static_cast<int64_t>(ready.num_rows());
      }
      pushed_rows += ready.num_rows();
      push_status = ctx->result_sink->Push(std::move(ready));
    }
  };

  if (pool_.num_threads() > 1 && morsels.size() > 1) {
    for (size_t slot = 0; slot < morsels.size(); ++slot) {
      pool_.Submit([&, slot] { process_one(slot); });
    }
    pool_.WaitIdle();
  } else {
    for (size_t slot = 0; slot < morsels.size(); ++slot) process_one(slot);
  }
  for (const auto& st : slot_status) {
    COSTDB_RETURN_NOT_OK(st);
  }
  // Per-slot fused counters merge after the barrier (no atomics on the
  // morsel path), like the aggregate partials.
  for (const auto& fs : slot_fused) fused_stats_.MergeFrom(fs);
  for (const auto& bs : slot_blocks) block_stats_.MergeFrom(bs);

  // Merge aggregate partials in morsel order (deterministic for any thread
  // count; the per-row path above never took a lock).
  std::map<std::string, GroupState> agg_groups;
  size_t agg_rows_folded = 0;
  for (auto& partial : slot_aggs) {
    agg_rows_folded += partial.rows_folded;
    for (auto& [key, gs] : partial.groups) {
      auto [it, inserted] = agg_groups.try_emplace(key, std::move(gs));
      if (inserted) continue;
      GroupState& into = it->second;
      for (size_t a = 0; a < into.aggs.size(); ++a) {
        MergeAggState(&into.aggs[a], gs.aggs[a]);
      }
    }
  }

  if (timing != nullptr) {
    timing->source_rows = source_rows;
  }

  // ---- 3. Finalize the sink ----
  // Concatenate slot outputs in morsel order (deterministic).
  auto concatenate = [&](std::vector<LogicalType> types) {
    DataChunk all(std::move(types));
    for (auto& s : slot_outputs) {
      if (s.num_columns() == all.num_columns()) all.Append(s);
    }
    return all;
  };

  if (sink == nullptr && ctx->result_sink != nullptr) {
    // Streaming result: every chunk already went out in morsel order.
    COSTDB_RETURN_NOT_OK(push_status);
    ctx->result_valid = true;
    ctx->rows_streamed += pushed_rows;
    if (timing != nullptr) timing->output_rows = double(pushed_rows);
    return Status::OK();
  }

  if (sink == nullptr) {
    // Result sink. The streamed schema is the root's output schema.
    std::vector<LogicalType> types = pipeline.operators.empty()
                                         ? src->output_types
                                         : pipeline.operators.back()->output_types;
    ctx->result = concatenate(types);
    // Apply any LIMIT in this pipeline (root-level semantics).
    for (const PhysicalPlan* op : pipeline.operators) {
      if (op->kind == PhysicalPlan::Kind::kLimit && op->limit >= 0 &&
          static_cast<int64_t>(ctx->result.num_rows()) > op->limit) {
        std::vector<uint32_t> head(static_cast<size_t>(op->limit));
        for (size_t i = 0; i < head.size(); ++i) head[i] = static_cast<uint32_t>(i);
        ctx->result.Slice(head);
      }
    }
    ctx->result_valid = true;
    if (timing != nullptr) timing->output_rows = double(ctx->result.num_rows());
    return Status::OK();
  }

  if (pipeline.sink_is_build_side) {
    BreakerState& bs = ctx->breakers[sink];
    bs.build_data = concatenate(sink->children[1]->output_types);
    // Evaluate build keys and index them.
    std::vector<std::string> build_names = sink->children[1]->output_names;
    Evaluator ev(&build_names);
    bs.keys_as_double.clear();
    for (size_t k = 0; k < sink->build_keys.size(); ++k) {
      bool as_double = sink->build_keys[k]->type == LogicalType::kDouble ||
                       sink->probe_keys[k]->type == LogicalType::kDouble;
      bs.keys_as_double.push_back(as_double);
    }
    for (const auto& k : sink->build_keys) {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*k, bs.build_data));
      bs.build_key_vectors.push_back(std::move(v));
    }
    const size_t rows = bs.build_data.num_rows();
    std::vector<uint64_t> hashes;
    kernels::HashRows(bs.build_key_vectors, bs.keys_as_double, rows, &hashes);
    bs.build_index.reserve(rows * 2);
    for (size_t r = 0; r < rows; ++r) {
      // A NULL build key can never be matched; indexing it would only
      // lengthen the shared NULL-tag chain every probe miss walks.
      if (kernels::AnyKeyNull(bs.build_key_vectors, r)) continue;
      bs.build_index.emplace(hashes[r], static_cast<uint32_t>(r));
    }
    if (timing != nullptr) timing->output_rows = double(rows);
    return Status::OK();
  }

  if (sink->kind == PhysicalPlan::Kind::kHashAggregate) {
    BreakerState& bs = ctx->breakers[sink];
    DataChunk out(sink->output_types);
    // Result chunks stay NULL-free by convention: empty inputs and
    // all-NULL MIN/MAX groups zero-fill instead of emitting NULL (the
    // engine's consumers index typed payloads directly).
    auto type_zero = [](LogicalType t) {
      switch (PhysicalTypeOf(t)) {
        case PhysicalType::kDouble:
          return Value(0.0);
        case PhysicalType::kString:
          return Value(std::string());
        case PhysicalType::kInt64:
        default:
          return Value(int64_t{0});
      }
    };
    if (agg_rows_folded == 0 && sink->group_by.empty() &&
        !sink->agg_is_partial) {
      // Global aggregate over empty input: one row of zeros. A *partial*
      // aggregate instead emits nothing — its consumer is the final
      // aggregate, and a fabricated zero from one empty shard would
      // poison the global MIN/MAX merged across workers.
      agg_groups.clear();
      std::vector<Value> row;
      for (const auto& a : sink->aggregates) {
        row.push_back(type_zero(a->type));
      }
      out.AppendRow(row);
    }
    for (const auto& [key, gs] : agg_groups) {
      std::vector<Value> row = gs.group_values;
      for (size_t a = 0; a < sink->aggregates.size(); ++a) {
        const Expr& agg = *sink->aggregates[a];
        const AggState& st = gs.aggs[a];
        switch (agg.agg) {
          case AggFunc::kCountStar:
          case AggFunc::kCount:
            row.push_back(Value(st.count));
            break;
          case AggFunc::kSum:
            if (agg.type == LogicalType::kInt64) {
              row.push_back(Value(st.isum));
            } else {
              row.push_back(Value(st.dsum));
            }
            break;
          case AggFunc::kAvg:
            row.push_back(Value(st.count == 0
                                    ? 0.0
                                    : st.dsum / static_cast<double>(st.count)));
            break;
          case AggFunc::kMin:
          case AggFunc::kMax: {
            // Value-less MIN/MAX: the NULL-free result convention
            // zero-fills — except in a partial, whose consumer (the
            // final aggregate) skips NULL inputs, so NULL is the only
            // emission that cannot corrupt the merged extremum.
            const Value& extremum = agg.agg == AggFunc::kMin ? st.min : st.max;
            if (st.has_value) {
              row.push_back(extremum);
            } else {
              row.push_back(sink->agg_is_partial ? Value::Null()
                                                 : type_zero(agg.type));
            }
            break;
          }
        }
      }
      out.AppendRow(row);
    }
    bs.materialized = std::move(out);
    bs.materialized_valid = true;
    if (timing != nullptr) {
      timing->output_rows = double(bs.materialized.num_rows());
    }
    return Status::OK();
  }

  if (sink->kind == PhysicalPlan::Kind::kSort) {
    BreakerState& bs = ctx->breakers[sink];
    DataChunk all = concatenate(sink->output_types);
    std::vector<std::string> names = sink->output_names;
    Evaluator ev(&names);
    std::vector<ColumnVector> key_vecs;
    for (const auto& k : sink->sort_keys) {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*k.expr, all));
      key_vecs.push_back(std::move(v));
    }
    std::vector<uint32_t> order(all.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      for (size_t k = 0; k < key_vecs.size(); ++k) {
        Value va = key_vecs[k].GetValue(a);
        Value vb = key_vecs[k].GetValue(b);
        if (va == vb) continue;
        bool less = va < vb;
        return sink->sort_keys[k].descending ? !less : less;
      }
      return false;
    });
    all.Slice(order);
    bs.materialized = std::move(all);
    bs.materialized_valid = true;
    if (timing != nullptr) {
      timing->output_rows = double(bs.materialized.num_rows());
    }
    return Status::OK();
  }

  return Status::Internal("unknown sink kind");
}

Status LocalEngine::RunAll(const PhysicalPlan* root, ExecContext* ctx) {
  PipelineGraph graph = BuildPipelines(root);
  timings_.clear();
  scan_stats_ = ScanStats();
  fused_stats_ = FusedExecStats();
  block_stats_ = BlockCacheStats();
  for (const auto& pipeline : graph.pipelines) {
    PipelineTiming t;
    t.pipeline_id = pipeline.id;
    auto start = std::chrono::steady_clock::now();
    COSTDB_RETURN_NOT_OK(RunPipeline(pipeline, ctx, &t));
    auto end = std::chrono::steady_clock::now();
    t.seconds = std::chrono::duration<double>(end - start).count();
    timings_.push_back(t);
  }
  if (!ctx->result_valid) {
    return Status::Internal("query produced no result sink");
  }
  return Status::OK();
}

Result<QueryResult> LocalEngine::Execute(const PhysicalPlan* root) {
  ExecContext ctx;
  COSTDB_RETURN_NOT_OK(RunAll(root, &ctx));
  QueryResult result;
  result.names = root->output_names;
  result.types = root->output_types;
  result.chunk = std::move(ctx.result);
  return result;
}

Result<StreamedResult> LocalEngine::ExecuteToSink(const PhysicalPlan* root,
                                                  ChunkSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("ExecuteToSink requires a sink");
  }
  ExecContext ctx;
  ctx.result_sink = sink;
  COSTDB_RETURN_NOT_OK(RunAll(root, &ctx));
  StreamedResult out;
  out.names = root->output_names;
  out.types = root->output_types;
  out.rows_streamed = ctx.rows_streamed;
  return out;
}

}  // namespace costdb
