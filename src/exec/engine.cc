#include "exec/engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <unordered_map>

#include "catalog/hll.h"
#include "exec/evaluator.h"

namespace costdb {

namespace {

constexpr size_t kMorselRows = 4096;

/// Running state of one aggregate function for one group.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  Value min;
  Value max;
  bool has_value = false;
};

struct GroupState {
  std::vector<Value> group_values;
  std::vector<AggState> aggs;
};

/// Hash a row of evaluated key vectors, numerics normalized so that an
/// int64 key joins correctly against a double key.
uint64_t HashKeyRow(const std::vector<ColumnVector>& keys, size_t row,
                    const std::vector<bool>& as_double) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t k = 0; k < keys.size(); ++k) {
    uint64_t hk;
    switch (keys[k].physical_type()) {
      case PhysicalType::kString:
        hk = HashString(keys[k].GetString(row));
        break;
      case PhysicalType::kDouble:
        hk = HashDouble(keys[k].GetDouble(row));
        break;
      case PhysicalType::kInt64:
      default:
        hk = as_double[k]
                 ? HashDouble(static_cast<double>(keys[k].GetInt(row)))
                 : HashInt64(keys[k].GetInt(row));
        break;
    }
    h = HashCombine(h, hk);
  }
  return h;
}

bool KeysEqual(const std::vector<ColumnVector>& a, size_t ra,
               const std::vector<ColumnVector>& b, size_t rb) {
  for (size_t k = 0; k < a.size(); ++k) {
    const bool a_str = a[k].physical_type() == PhysicalType::kString;
    const bool b_str = b[k].physical_type() == PhysicalType::kString;
    if (a_str != b_str) return false;
    if (a_str) {
      if (a[k].GetString(ra) != b[k].GetString(rb)) return false;
      continue;
    }
    auto num = [](const ColumnVector& v, size_t i) {
      return v.physical_type() == PhysicalType::kDouble
                 ? v.GetDouble(i)
                 : static_cast<double>(v.GetInt(i));
    };
    if (num(a[k], ra) != num(b[k], rb)) return false;
  }
  return true;
}

/// Serialized group key (type-tagged, '\x01' separated).
std::string EncodeGroupKey(const std::vector<ColumnVector>& groups,
                           size_t row) {
  std::string key;
  for (const auto& g : groups) {
    switch (g.physical_type()) {
      case PhysicalType::kInt64:
        key += 'i';
        key += std::to_string(g.GetInt(row));
        break;
      case PhysicalType::kDouble:
        key += 'd';
        key += std::to_string(g.GetDouble(row));
        break;
      case PhysicalType::kString:
        key += 's';
        key += g.GetString(row);
        break;
    }
    key += '\x01';
  }
  return key;
}

}  // namespace

std::string QueryResult::ToString(int64_t limit) const {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += " | ";
    out += names[i];
  }
  out += "\n";
  out += chunk.ToString(limit);
  return out;
}

/// Materialized output and/or join hash table of a pipeline breaker.
struct LocalEngine::BreakerState {
  // Join build.
  DataChunk build_data;
  std::vector<ColumnVector> build_key_vectors;
  std::unordered_multimap<uint64_t, uint32_t> build_index;
  std::vector<bool> keys_as_double;
  // Aggregate / sort output.
  DataChunk materialized;
  bool materialized_valid = false;
};

struct LocalEngine::ExecContext {
  std::map<const PhysicalPlan*, BreakerState> breakers;
  DataChunk result;
  bool result_valid = false;
};

namespace {

/// Schema (column names) flowing *into* each streaming operator is the
/// output schema of whatever preceded it; we track it as we apply ops.
struct MorselProcessor {
  const Pipeline* pipeline;
  LocalEngine::ExecContext* ctx;  // breaker states (read-only during probe)
  std::map<const PhysicalPlan*, LocalEngine::BreakerState>* breakers;

  /// Apply all streaming operators to `chunk` (schema `names` updated in
  /// place). Returns an error or the transformed chunk (possibly empty).
  Status Apply(DataChunk* chunk, std::vector<std::string>* names) const {
    for (const PhysicalPlan* op : pipeline->operators) {
      if (chunk->num_rows() == 0 &&
          op->kind != PhysicalPlan::Kind::kHashJoin) {
        *names = op->output_names;
        DataChunk empty(op->output_types);
        *chunk = std::move(empty);
        continue;
      }
      switch (op->kind) {
        case PhysicalPlan::Kind::kFilter: {
          Evaluator ev(names);
          std::vector<uint32_t> sel;
          COSTDB_ASSIGN_OR_RETURN(sel,
                                  ev.EvaluateSelection(*op->predicate, *chunk));
          chunk->Slice(sel);
          break;
        }
        case PhysicalPlan::Kind::kProject: {
          Evaluator ev(names);
          DataChunk out;
          for (const auto& p : op->projections) {
            ColumnVector v;
            COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*p, *chunk));
            out.AddColumn(std::move(v));
          }
          *chunk = std::move(out);
          *names = op->output_names;
          break;
        }
        case PhysicalPlan::Kind::kExchange:
          break;  // no network locally
        case PhysicalPlan::Kind::kLimit:
          break;  // applied at result finalization
        case PhysicalPlan::Kind::kHashJoin: {
          COSTDB_RETURN_NOT_OK(Probe(op, chunk, names));
          break;
        }
        default:
          return Status::Internal("unexpected streaming operator");
      }
    }
    return Status::OK();
  }

  Status Probe(const PhysicalPlan* join, DataChunk* chunk,
               std::vector<std::string>* names) const {
    auto it = breakers->find(join);
    if (it == breakers->end()) {
      return Status::Internal("probe before build");
    }
    const LocalEngine::BreakerState& bs = it->second;
    Evaluator ev(names);
    std::vector<ColumnVector> probe_keys;
    for (const auto& k : join->probe_keys) {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*k, *chunk));
      probe_keys.push_back(std::move(v));
    }
    DataChunk out(join->output_types);
    const size_t probe_cols = chunk->num_columns();
    for (size_t r = 0; r < chunk->num_rows(); ++r) {
      uint64_t h = HashKeyRow(probe_keys, r, bs.keys_as_double);
      auto range = bs.build_index.equal_range(h);
      for (auto m = range.first; m != range.second; ++m) {
        uint32_t build_row = m->second;
        if (!KeysEqual(probe_keys, r, bs.build_key_vectors, build_row)) {
          continue;
        }
        // probe columns then build columns, matching output schema.
        for (size_t c = 0; c < probe_cols; ++c) {
          out.column(c).AppendFrom(chunk->column(c), r);
        }
        for (size_t c = 0; c < bs.build_data.num_columns(); ++c) {
          out.column(probe_cols + c).AppendFrom(bs.build_data.column(c),
                                                build_row);
        }
      }
    }
    *chunk = std::move(out);
    *names = join->output_names;
    return Status::OK();
  }
};

}  // namespace

LocalEngine::LocalEngine(size_t num_threads) : pool_(num_threads) {}

Status LocalEngine::RunPipeline(const Pipeline& pipeline, ExecContext* ctx) {
  // ---- 1. Build the morsel list ----
  struct Morsel {
    const DataChunk* source_chunk = nullptr;  // row group or materialized
    size_t begin = 0;
    size_t end = 0;  // rows [begin, end)
    const RowGroup* row_group = nullptr;
  };
  std::vector<Morsel> morsels;
  std::vector<std::string> source_names;
  const PhysicalPlan* src = pipeline.source;
  if (src == nullptr) return Status::Internal("pipeline without source");

  if (!pipeline.source_is_breaker) {
    // TableScan source: one morsel per non-pruned row group.
    source_names = src->output_names;
    for (const auto& group : src->table->row_groups()) {
      bool prunable = false;
      for (const auto& f : src->scan_filters) {
        std::string col;
        CompareOp op;
        Value constant;
        if (!MatchColumnCompareConstant(f, &col, &op, &constant)) continue;
        // Strip the alias qualifier to find the base column.
        auto dot = col.find('.');
        std::string base = dot == std::string::npos ? col : col.substr(dot + 1);
        auto idx = src->table->ColumnIndex(base);
        if (!idx.ok()) continue;
        if (!group.zones[*idx].MayMatch(op, constant)) {
          prunable = true;
          break;
        }
      }
      if (prunable) continue;
      Morsel m;
      m.row_group = &group;
      m.begin = 0;
      m.end = group.num_rows();
      morsels.push_back(m);
    }
  } else {
    auto it = ctx->breakers.find(src);
    if (it == ctx->breakers.end() || !it->second.materialized_valid) {
      return Status::Internal("pipeline source not materialized");
    }
    source_names = src->output_names;
    const DataChunk& data = it->second.materialized;
    for (size_t begin = 0; begin < data.num_rows(); begin += kMorselRows) {
      Morsel m;
      m.source_chunk = &data;
      m.begin = begin;
      m.end = std::min(begin + kMorselRows, data.num_rows());
      morsels.push_back(m);
    }
    if (data.num_rows() == 0) {
      Morsel m;
      m.source_chunk = &data;
      morsels.push_back(m);  // empty morsel keeps global aggregates alive
    }
  }

  // ---- 2. Process morsels in parallel, collecting per-slot outputs ----
  std::vector<DataChunk> slot_outputs(morsels.size());
  std::vector<Status> slot_status(morsels.size());
  std::vector<std::string> final_names;  // schema after all streaming ops
  std::mutex agg_mu;
  std::map<std::string, GroupState> agg_groups;  // aggregate sink state

  MorselProcessor processor{&pipeline, ctx, &ctx->breakers};
  const PhysicalPlan* sink = pipeline.sink;
  const bool agg_sink =
      sink != nullptr && sink->kind == PhysicalPlan::Kind::kHashAggregate &&
      !pipeline.sink_is_build_side;

  auto process_one = [&](size_t slot) {
    const Morsel& m = morsels[slot];
    // Assemble the source chunk.
    DataChunk chunk;
    std::vector<std::string> names = source_names;
    if (m.row_group != nullptr) {
      DataChunk projected;
      for (size_t idx : src->scan_column_indices) {
        projected.AddColumn(m.row_group->data.column(idx));
      }
      // Scan filters apply before anything else.
      if (!src->scan_filters.empty()) {
        Evaluator ev(&names);
        std::vector<uint32_t> sel;
        sel.reserve(projected.num_rows());
        ExprPtr combined = CombineConjuncts(src->scan_filters);
        auto sel_result = ev.EvaluateSelection(*combined, projected);
        if (!sel_result.ok()) {
          slot_status[slot] = sel_result.status();
          return;
        }
        projected.Slice(*sel_result);
      }
      chunk = std::move(projected);
    } else {
      DataChunk sliced(m.source_chunk->Types());
      for (size_t r = m.begin; r < m.end; ++r) {
        sliced.AppendRowFrom(*m.source_chunk, r);
      }
      chunk = std::move(sliced);
    }
    Status st = processor.Apply(&chunk, &names);
    if (!st.ok()) {
      slot_status[slot] = st;
      return;
    }
    if (slot == 0) final_names = names;
    if (agg_sink) {
      // Fold this chunk into the shared aggregation state.
      Evaluator ev(&names);
      std::vector<ColumnVector> group_vecs;
      for (const auto& g : sink->group_by) {
        auto v = ev.Evaluate(*g, chunk);
        if (!v.ok()) {
          slot_status[slot] = v.status();
          return;
        }
        group_vecs.push_back(std::move(*v));
      }
      std::vector<ColumnVector> agg_inputs;
      for (const auto& a : sink->aggregates) {
        if (a->children.empty()) {
          agg_inputs.emplace_back();  // COUNT(*) has no input
          continue;
        }
        auto v = ev.Evaluate(*a->children[0], chunk);
        if (!v.ok()) {
          slot_status[slot] = v.status();
          return;
        }
        agg_inputs.push_back(std::move(*v));
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        std::string key = EncodeGroupKey(group_vecs, r);
        GroupState& gs = agg_groups[key];
        if (gs.aggs.empty()) {
          gs.aggs.resize(sink->aggregates.size());
          for (const auto& g : group_vecs) {
            gs.group_values.push_back(g.GetValue(r));
          }
        }
        for (size_t a = 0; a < sink->aggregates.size(); ++a) {
          AggState& st_a = gs.aggs[a];
          const Expr& agg = *sink->aggregates[a];
          if (agg.agg == AggFunc::kCountStar) {
            ++st_a.count;
            continue;
          }
          const ColumnVector& in = agg_inputs[a];
          ++st_a.count;
          switch (agg.agg) {
            case AggFunc::kSum:
            case AggFunc::kAvg:
              if (in.physical_type() == PhysicalType::kInt64) {
                st_a.isum += in.GetInt(r);
                st_a.dsum += static_cast<double>(in.GetInt(r));
              } else {
                st_a.dsum += in.GetDouble(r);
              }
              break;
            case AggFunc::kMin:
            case AggFunc::kMax: {
              Value v = in.GetValue(r);
              if (!st_a.has_value) {
                st_a.min = v;
                st_a.max = v;
                st_a.has_value = true;
              } else {
                if (v < st_a.min) st_a.min = v;
                if (st_a.max < v) st_a.max = v;
              }
              break;
            }
            default:
              break;
          }
        }
      }
      return;  // nothing materialized per slot
    }
    slot_outputs[slot] = std::move(chunk);
  };

  if (pool_.num_threads() > 1 && morsels.size() > 1) {
    for (size_t slot = 0; slot < morsels.size(); ++slot) {
      pool_.Submit([&, slot] { process_one(slot); });
    }
    pool_.WaitIdle();
  } else {
    for (size_t slot = 0; slot < morsels.size(); ++slot) process_one(slot);
  }
  for (const auto& st : slot_status) {
    COSTDB_RETURN_NOT_OK(st);
  }

  // ---- 3. Finalize the sink ----
  // Concatenate slot outputs in morsel order (deterministic).
  auto concatenate = [&](std::vector<LogicalType> types) {
    DataChunk all(std::move(types));
    for (auto& s : slot_outputs) {
      if (s.num_columns() == all.num_columns()) all.Append(s);
    }
    return all;
  };

  if (sink == nullptr) {
    // Result sink. The streamed schema is the root's output schema.
    std::vector<LogicalType> types = pipeline.operators.empty()
                                         ? src->output_types
                                         : pipeline.operators.back()->output_types;
    ctx->result = concatenate(types);
    // Apply any LIMIT in this pipeline (root-level semantics).
    for (const PhysicalPlan* op : pipeline.operators) {
      if (op->kind == PhysicalPlan::Kind::kLimit && op->limit >= 0 &&
          static_cast<int64_t>(ctx->result.num_rows()) > op->limit) {
        std::vector<uint32_t> head(static_cast<size_t>(op->limit));
        for (size_t i = 0; i < head.size(); ++i) head[i] = static_cast<uint32_t>(i);
        ctx->result.Slice(head);
      }
    }
    ctx->result_valid = true;
    return Status::OK();
  }

  if (pipeline.sink_is_build_side) {
    BreakerState& bs = ctx->breakers[sink];
    bs.build_data = concatenate(sink->children[1]->output_types);
    // Evaluate build keys and index them.
    std::vector<std::string> build_names = sink->children[1]->output_names;
    Evaluator ev(&build_names);
    bs.keys_as_double.clear();
    for (size_t k = 0; k < sink->build_keys.size(); ++k) {
      bool as_double = sink->build_keys[k]->type == LogicalType::kDouble ||
                       sink->probe_keys[k]->type == LogicalType::kDouble;
      bs.keys_as_double.push_back(as_double);
    }
    for (const auto& k : sink->build_keys) {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*k, bs.build_data));
      bs.build_key_vectors.push_back(std::move(v));
    }
    const size_t rows = bs.build_data.num_rows();
    bs.build_index.reserve(rows * 2);
    for (size_t r = 0; r < rows; ++r) {
      uint64_t h = HashKeyRow(bs.build_key_vectors, r, bs.keys_as_double);
      bs.build_index.emplace(h, static_cast<uint32_t>(r));
    }
    return Status::OK();
  }

  if (sink->kind == PhysicalPlan::Kind::kHashAggregate) {
    BreakerState& bs = ctx->breakers[sink];
    DataChunk out(sink->output_types);
    if (agg_groups.empty() && sink->group_by.empty()) {
      // Global aggregate over empty input: one row of type-appropriate
      // zero values (no NULL semantics in this engine).
      std::vector<Value> row;
      for (const auto& a : sink->aggregates) {
        switch (PhysicalTypeOf(a->type)) {
          case PhysicalType::kDouble:
            row.push_back(Value(0.0));
            break;
          case PhysicalType::kString:
            row.push_back(Value(std::string()));
            break;
          case PhysicalType::kInt64:
            row.push_back(Value(int64_t{0}));
            break;
        }
      }
      out.AppendRow(row);
    }
    for (const auto& [key, gs] : agg_groups) {
      std::vector<Value> row = gs.group_values;
      for (size_t a = 0; a < sink->aggregates.size(); ++a) {
        const Expr& agg = *sink->aggregates[a];
        const AggState& st = gs.aggs[a];
        switch (agg.agg) {
          case AggFunc::kCountStar:
          case AggFunc::kCount:
            row.push_back(Value(st.count));
            break;
          case AggFunc::kSum:
            if (agg.type == LogicalType::kInt64) {
              row.push_back(Value(st.isum));
            } else {
              row.push_back(Value(st.dsum));
            }
            break;
          case AggFunc::kAvg:
            row.push_back(Value(st.count == 0
                                    ? 0.0
                                    : st.dsum / static_cast<double>(st.count)));
            break;
          case AggFunc::kMin:
            row.push_back(st.min);
            break;
          case AggFunc::kMax:
            row.push_back(st.max);
            break;
        }
      }
      out.AppendRow(row);
    }
    bs.materialized = std::move(out);
    bs.materialized_valid = true;
    return Status::OK();
  }

  if (sink->kind == PhysicalPlan::Kind::kSort) {
    BreakerState& bs = ctx->breakers[sink];
    DataChunk all = concatenate(sink->output_types);
    std::vector<std::string> names = sink->output_names;
    Evaluator ev(&names);
    std::vector<ColumnVector> key_vecs;
    for (const auto& k : sink->sort_keys) {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*k.expr, all));
      key_vecs.push_back(std::move(v));
    }
    std::vector<uint32_t> order(all.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      for (size_t k = 0; k < key_vecs.size(); ++k) {
        Value va = key_vecs[k].GetValue(a);
        Value vb = key_vecs[k].GetValue(b);
        if (va == vb) continue;
        bool less = va < vb;
        return sink->sort_keys[k].descending ? !less : less;
      }
      return false;
    });
    all.Slice(order);
    bs.materialized = std::move(all);
    bs.materialized_valid = true;
    return Status::OK();
  }

  return Status::Internal("unknown sink kind");
}

Result<QueryResult> LocalEngine::Execute(const PhysicalPlan* root) {
  PipelineGraph graph = BuildPipelines(root);
  ExecContext ctx;
  timings_.clear();
  for (const auto& pipeline : graph.pipelines) {
    auto start = std::chrono::steady_clock::now();
    COSTDB_RETURN_NOT_OK(RunPipeline(pipeline, &ctx));
    auto end = std::chrono::steady_clock::now();
    PipelineTiming t;
    t.pipeline_id = pipeline.id;
    t.seconds = std::chrono::duration<double>(end - start).count();
    timings_.push_back(t);
  }
  if (!ctx.result_valid) {
    return Status::Internal("query produced no result sink");
  }
  QueryResult result;
  result.names = root->output_names;
  result.types = root->output_types;
  result.chunk = std::move(ctx.result);
  return result;
}

}  // namespace costdb
