#include "exec/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include <sys/wait.h>
#include <unistd.h>

#include "exec/evaluator.h"
#include "net/wire.h"
#include "storage/block/block_format.h"
#include "storage/partition.h"

namespace costdb {

namespace {

constexpr size_t kTempRowGroupRows = 4096;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A cut is an exchange that actually moves rows between workers; kLocal
/// (co-partitioned pass-through) stays inside its fragment and the worker
/// engines treat it as a no-op.
bool IsCut(const PhysicalPlan* node) {
  return node->kind == PhysicalPlan::Kind::kExchange &&
         node->exchange_kind != ExchangeKind::kLocal;
}

void CollectCuts(const PhysicalPlan* node,
                 std::vector<const PhysicalPlan*>* cuts) {
  for (const auto& c : node->children) {
    if (IsCut(c.get())) {
      cuts->push_back(c.get());
      continue;  // the exchange subtree belongs to the producing fragments
    }
    CollectCuts(c.get(), cuts);
  }
}

/// Cut exchanges anywhere in the tree (the elastic controller's coarse
/// how-much-is-left signal).
size_t CountCuts(const PhysicalPlan* node) {
  size_t n = IsCut(node) ? 1 : 0;
  for (const auto& c : node->children) n += CountCuts(c.get());
  return n;
}

bool HasBaseScan(const PhysicalPlan* node) {
  if (node->kind == PhysicalPlan::Kind::kTableScan) return true;
  for (const auto& c : node->children) {
    if (IsCut(c.get())) continue;
    if (HasBaseScan(c.get())) return true;
  }
  return false;
}

/// Group-key column count of a fragment whose per-worker output is sorted
/// by encoded group key with disjoint key sets — i.e. the fragment's
/// order-fixing spine is a grouped aggregate over hash-distributed input
/// (a shuffle cut, or a co-partitioned kLocal pass-through), optionally
/// wrapped in projections that pass the group columns through positionally
/// (the planner's AVG-restoring projection does). 0 = plain concatenation.
size_t MergeKeyPrefixOf(const PhysicalPlan* frag_root) {
  std::vector<const PhysicalPlan*> projects;
  const PhysicalPlan* n = frag_root;
  while (true) {
    if (n->kind == PhysicalPlan::Kind::kProject) {
      projects.push_back(n);
      n = n->children[0].get();
      continue;
    }
    if (n->kind == PhysicalPlan::Kind::kFilter ||
        n->kind == PhysicalPlan::Kind::kLimit) {
      n = n->children[0].get();
      continue;
    }
    break;
  }
  if (n->kind != PhysicalPlan::Kind::kHashAggregate || n->group_by.empty()) {
    return 0;
  }
  const PhysicalPlan* child = n->children[0].get();
  const bool distributed_by_key =
      child->kind == PhysicalPlan::Kind::kExchange &&
      (child->exchange_kind == ExchangeKind::kShuffle ||
       child->exchange_kind == ExchangeKind::kLocal);
  if (!distributed_by_key) return 0;
  const size_t k = n->group_by.size();
  // Every projection layer must pass the group columns through as its
  // first k outputs for the merged key order to survive to the fragment
  // output.
  for (const PhysicalPlan* p : projects) {
    if (p->projections.size() < k) return 0;
    const auto& child_names = p->children[0]->output_names;
    if (child_names.size() < k) return 0;
    for (size_t i = 0; i < k; ++i) {
      const Expr& e = *p->projections[i];
      if (e.kind != Expr::Kind::kColumn || e.column != child_names[i]) {
        return 0;
      }
    }
  }
  return k;
}

/// Hash partitioning currently backing a kLocal pass-through: walk down
/// to the base scan and report its partition count plus the qualified
/// partition column ("alias.column"); parts == 0 means the source is no
/// longer hash-partitioned. This walk is wider than the planner's
/// detection walk (physical_planner.cc HashPartitionSourceOf) because it
/// validates chains the planner built — a kLocal over a partial
/// aggregate, projections the planner inserted — while sharing the
/// partitioning check itself (ScanHashPartitioning).
struct LocalSource {
  size_t parts = 0;
  std::string qualified_column;
};
LocalSource LocalExchangeSource(const PhysicalPlan* node) {
  while (node != nullptr) {
    switch (node->kind) {
      case PhysicalPlan::Kind::kFilter:
      case PhysicalPlan::Kind::kProject:
      case PhysicalPlan::Kind::kLimit:
      case PhysicalPlan::Kind::kHashAggregate:  // partial agg keeps locality
        node = node->children[0].get();
        continue;
      case PhysicalPlan::Kind::kExchange:
        if (node->exchange_kind != ExchangeKind::kLocal) return {};
        node = node->children[0].get();
        continue;
      case PhysicalPlan::Kind::kTableScan: {
        auto [parts, qualified] = ScanHashPartitioning(*node);
        return {parts, std::move(qualified)};
      }
      default:
        return {};
    }
  }
  return {};
}

/// True when the kLocal exchange's source table is still hash-partitioned
/// on the column the elision was decided on (the exchange records it in
/// partition_exprs at plan time).
bool LocalExchangeStillValid(const PhysicalPlan* exchange,
                             const LocalSource& src) {
  if (src.parts == 0) return false;
  if (exchange->partition_exprs.empty()) return true;  // pre-key plans
  const Expr& key = *exchange->partition_exprs[0];
  return key.kind == Expr::Kind::kColumn &&
         key.column == src.qualified_column;
}

/// A plan carrying kLocal exchanges was shaped for co-partitioned data.
/// If a table was appended to or repartitioned (fewer parts, different
/// column) since planning, running it partition-wise would silently join
/// mis-aligned shards or split groups across workers — fail loudly
/// instead; the caller replans against current metadata.
Status ValidateCoPartitioning(const PhysicalPlan* node) {
  if (node->kind == PhysicalPlan::Kind::kExchange &&
      node->exchange_kind == ExchangeKind::kLocal &&
      !LocalExchangeStillValid(node, LocalExchangeSource(node))) {
    return Status::Internal(
        "co-partitioned (kLocal) plan is stale: source table is no longer "
        "hash-partitioned on the plan's key; replan");
  }
  if (node->kind == PhysicalPlan::Kind::kHashJoin &&
      node->children.size() == 2) {
    const bool l0 = node->children[0]->kind == PhysicalPlan::Kind::kExchange &&
                    node->children[0]->exchange_kind == ExchangeKind::kLocal;
    const bool l1 = node->children[1]->kind == PhysicalPlan::Kind::kExchange &&
                    node->children[1]->exchange_kind == ExchangeKind::kLocal;
    const LocalSource s0 = LocalExchangeSource(node->children[0].get());
    const LocalSource s1 = LocalExchangeSource(node->children[1].get());
    if (l0 != l1 || (l0 && (s0.parts == 0 || s0.parts != s1.parts))) {
      return Status::Internal(
          "partition-wise join plan is stale: sides are no longer "
          "co-partitioned; replan");
    }
  }
  for (const auto& c : node->children) {
    COSTDB_RETURN_NOT_OK(ValidateCoPartitioning(c.get()));
  }
  return Status::OK();
}

/// LIMIT applied to the final gathered result: the outermost limit on the
/// root's streaming chain (worker-local limits were already applied by the
/// per-worker engines; the global result needs one more truncation).
int64_t RootLimit(const PhysicalPlan* root) {
  int64_t limit = -1;
  const PhysicalPlan* n = root;
  while (n != nullptr) {
    if (n->kind == PhysicalPlan::Kind::kLimit && n->limit >= 0) {
      limit = limit < 0 ? n->limit : std::min(limit, n->limit);
    }
    if ((n->kind == PhysicalPlan::Kind::kLimit ||
         n->kind == PhysicalPlan::Kind::kFilter ||
         n->kind == PhysicalPlan::Kind::kProject ||
         n->kind == PhysicalPlan::Kind::kExchange) &&
        !n->children.empty()) {
      n = n->children[0].get();
      continue;
    }
    break;
  }
  return limit;
}

void TruncateChunk(DataChunk* chunk, int64_t limit) {
  if (limit < 0 || static_cast<int64_t>(chunk->num_rows()) <= limit) return;
  std::vector<uint32_t> head(static_cast<size_t>(limit));
  std::iota(head.begin(), head.end(), 0);
  chunk->Slice(head);
}

/// Gather the selected rows of `chunk` into a fresh chunk (bulk column
/// gathers, no per-row work).
DataChunk GatherRows(const DataChunk& chunk,
                     const std::vector<uint32_t>& sel,
                     const std::vector<LogicalType>& types) {
  DataChunk out(types);
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    out.column(c) = chunk.column(c).Gather(sel);
  }
  return out;
}

std::shared_ptr<Table> MakeTempTable(const PhysicalPlan* exchange,
                                     const DataChunk& rows) {
  std::vector<ColumnDef> cols;
  cols.reserve(exchange->output_names.size());
  for (size_t i = 0; i < exchange->output_names.size(); ++i) {
    cols.push_back(ColumnDef{exchange->output_names[i],
                             exchange->output_types[i]});
  }
  auto table = std::make_shared<Table>("__exchange", std::move(cols),
                                       kTempRowGroupRows);
  if (rows.num_rows() > 0) table->Append(rows);
  return table;
}

/// Per-worker result of one fragment execution (thread slots and process
/// children both land here).
struct SlotResult {
  Result<QueryResult> result{Status::Internal("not run")};
  ScanStats scan_stats;
  FusedExecStats fused_stats;
  BlockCacheStats block_stats;
};

// -- Worker-process result protocol ----------------------------------------
// A forked worker ships its fragment result back over a socketpair as one
// length-prefixed frame: [body_len u64][body], where body is
//   [ok u32]
//   on error: [code u32][msg_len u32][msg]
//   on ok:    ScanStats (4 u64) + FusedExecStats (5 u64 + double)
//             + BlockCacheStats (4 u64 + 4 double) + wire::EncodeChunk
// The chunk rides in the checksummed wire format, so a torn child write
// surfaces as a decode Status, not silent row corruption.

std::string EncodeSlotBody(const SlotResult& slot) {
  std::string body;
  if (!slot.result.ok()) {
    block::PutU32(&body, 1);
    const Status& st = slot.result.status();
    block::PutU32(&body, static_cast<uint32_t>(st.code()));
    block::PutU32(&body, static_cast<uint32_t>(st.message().size()));
    body.append(st.message());
    return body;
  }
  block::PutU32(&body, 0);
  const ScanStats& sc = slot.scan_stats;
  block::PutU64(&body, sc.morsels_total);
  block::PutU64(&body, sc.morsels_pruned);
  block::PutU64(&body, sc.rows_scanned);
  block::PutU64(&body, sc.rows_pruned);
  const FusedExecStats& fu = slot.fused_stats;
  block::PutU64(&body, fu.fused_filter_morsels);
  block::PutU64(&body, fu.fused_probe_morsels);
  block::PutU64(&body, fu.fused_agg_morsels);
  block::PutU64(&body, fu.fallback_morsels);
  block::PutU64(&body, fu.fused_rows);
  block::PutDouble(&body, fu.fused_seconds);
  const BlockCacheStats& bc = slot.block_stats;
  block::PutU64(&body, static_cast<uint64_t>(bc.hits));
  block::PutU64(&body, static_cast<uint64_t>(bc.misses));
  block::PutU64(&body, static_cast<uint64_t>(bc.evictions));
  block::PutU64(&body, static_cast<uint64_t>(bc.rejected));
  block::PutDouble(&body, bc.bytes_read);
  block::PutDouble(&body, bc.bytes_hit);
  block::PutDouble(&body, bc.miss_seconds);
  block::PutDouble(&body, bc.miss_get_dollars);
  wire::EncodeChunk(slot.result.value().chunk, &body);
  return body;
}

Status RemakeStatus(uint32_t code, std::string msg) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case Status::Code::kSlaViolation:
      return Status::SlaViolation(std::move(msg));
    case Status::Code::kCancelled:
      return Status::Cancelled(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

Status DecodeSlotBody(const std::string& body, SlotResult* slot) {
  block::ByteCursor cur{body.data(), body.size(), 0, true};
  const uint32_t failed = cur.GetU32();
  if (failed != 0) {
    const uint32_t code = cur.GetU32();
    const uint32_t len = cur.GetU32();
    std::string msg = cur.GetBytes(len);
    if (!cur.ok) return Status::Internal("worker frame: malformed error body");
    slot->result = RemakeStatus(code, std::move(msg));
    return Status::OK();
  }
  ScanStats sc;
  sc.morsels_total = cur.GetU64();
  sc.morsels_pruned = cur.GetU64();
  sc.rows_scanned = cur.GetU64();
  sc.rows_pruned = cur.GetU64();
  FusedExecStats fu;
  fu.fused_filter_morsels = cur.GetU64();
  fu.fused_probe_morsels = cur.GetU64();
  fu.fused_agg_morsels = cur.GetU64();
  fu.fallback_morsels = cur.GetU64();
  fu.fused_rows = cur.GetU64();
  fu.fused_seconds = cur.GetDouble();
  BlockCacheStats bc;
  bc.hits = static_cast<int64_t>(cur.GetU64());
  bc.misses = static_cast<int64_t>(cur.GetU64());
  bc.evictions = static_cast<int64_t>(cur.GetU64());
  bc.rejected = static_cast<int64_t>(cur.GetU64());
  bc.bytes_read = cur.GetDouble();
  bc.bytes_hit = cur.GetDouble();
  bc.miss_seconds = cur.GetDouble();
  bc.miss_get_dollars = cur.GetDouble();
  if (!cur.ok) return Status::Internal("worker frame: malformed stats body");
  Result<DataChunk> chunk =
      wire::DecodeChunk(body.data() + cur.pos, body.size() - cur.pos);
  COSTDB_RETURN_NOT_OK(chunk.status());
  QueryResult qr;
  qr.chunk = std::move(chunk).value();
  slot->result = std::move(qr);
  slot->scan_stats = sc;
  slot->fused_stats = fu;
  slot->block_stats = bc;
  return Status::OK();
}

/// Execute one fragment plan per worker, each in a forked child process.
/// The parent (coordinator) is single-threaded in process mode, so fork()
/// is safe; each child builds a fresh LocalEngine over the inherited
/// (copy-on-write) tables, runs its plan, writes one result frame, and
/// _exit()s without unwinding.
Status RunPlansInProcesses(const std::vector<PhysicalPlanPtr>& plans,
                           const std::vector<uint8_t>& skip,
                           size_t threads_per_worker,
                           std::vector<SlotResult>* slots) {
  struct Child {
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<Child> children(plans.size());
  Status status = Status::OK();
  for (size_t w = 0; w < plans.size(); ++w) {
    if (skip[w]) continue;
    int fds[2];
    Status sp = MakeSocketPair(fds);
    if (!sp.ok()) {
      status = sp;
      break;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      status = Status::Internal("worker fork failed");
      break;
    }
    if (pid == 0) {
      // Child: run the fragment, ship one frame, exit without unwinding
      // (skips atexit/leak-check machinery the parent owns).
      ::close(fds[0]);
      SlotResult slot;
      {
        LocalEngine engine(threads_per_worker);
        slot.result = engine.Execute(plans[w].get());
        if (slot.result.ok()) {
          slot.scan_stats = engine.last_scan_stats();
          slot.fused_stats = engine.last_fused_stats();
          slot.block_stats = engine.last_block_stats();
        }
        std::string body = EncodeSlotBody(slot);
        std::string frame;
        block::PutU64(&frame, body.size());
        frame.append(body);
        (void)WriteFull(fds[1], frame.data(), frame.size());
      }
      ::_exit(0);
    }
    ::close(fds[1]);
    children[w] = Child{pid, fds[0]};
  }
  // Drain results in worker order; on any failure keep draining so every
  // child is still reaped below (no zombies, no blocked writers).
  std::string body;
  for (size_t w = 0; w < plans.size(); ++w) {
    if (children[w].fd < 0) continue;
    if (status.ok()) {
      uint64_t len = 0;
      Status rd = ReadFull(children[w].fd, &len, sizeof(len));
      if (rd.ok() && len > (1ull << 40)) {
        rd = Status::Internal("worker frame: implausible length");
      }
      if (rd.ok()) {
        body.resize(len);
        rd = ReadFull(children[w].fd, body.data(), len);
      }
      if (rd.ok()) rd = DecodeSlotBody(body, &(*slots)[w]);
      if (!rd.ok()) status = rd.WithContext("worker " + std::to_string(w));
    }
    ::close(children[w].fd);
  }
  for (size_t w = 0; w < plans.size(); ++w) {
    if (children[w].pid > 0) {
      int wstatus = 0;
      (void)::waitpid(children[w].pid, &wstatus, 0);
      if (status.ok() &&
          (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)) {
        status = Status::Internal("worker " + std::to_string(w) +
                                  " exited abnormally");
      }
    }
  }
  return status;
}

}  // namespace

const char* WorkerModeName(WorkerMode mode) {
  switch (mode) {
    case WorkerMode::kThreads:
      return "threads";
    case WorkerMode::kProcesses:
      return "processes";
  }
  return "unknown";
}

double ChunkPayloadBytes(const DataChunk& chunk) {
  double total = 0.0;
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    const ColumnVector& col = chunk.column(c);
    if (col.physical_type() == PhysicalType::kString) {
      for (const auto& s : col.strings()) {
        total += static_cast<double>(s.size()) + 4.0;
      }
    } else {
      total += 8.0 * static_cast<double>(col.size());
    }
  }
  return total;
}

ShardedEngine::ShardedEngine(const ShardedEngineOptions& options)
    : threads_per_worker_(std::max<size_t>(1, options.threads_per_worker)),
      initial_workers_(std::max<size_t>(1, options.workers)),
      worker_mode_(options.worker_mode),
      active_(initial_workers_),
      transport_(MakeTransport(options.transport)) {
  workers_.resize(initial_workers_);
  if (worker_mode_ == WorkerMode::kThreads) {
    // Process mode creates neither engines nor a fan-out pool in the
    // coordinator: a single-threaded parent makes fork() race-free, and
    // each child builds its own LocalEngine after the fork.
    for (auto& worker : workers_) {
      worker.engine = std::make_unique<LocalEngine>(threads_per_worker_);
    }
    pool_ = std::make_unique<ThreadPool>(initial_workers_);
  }
}

void ShardedEngine::EnsureWorkers(size_t n) {
  if (n <= workers_.size()) return;
  const double start = NowSeconds();
  const size_t added = n - workers_.size();
  workers_.resize(n);
  if (worker_mode_ == WorkerMode::kThreads) {
    for (auto& worker : workers_) {
      if (!worker.engine) {
        worker.engine = std::make_unique<LocalEngine>(threads_per_worker_);
      }
    }
    if (pool_->num_threads() < n) {
      // Rebuild the fan-out pool wider; safe between fragments (WaitIdle'd).
      pool_ = std::make_unique<ThreadPool>(n);
    }
  }
  usage_.workers_spun_up += added;
  usage_.spinup_seconds += NowSeconds() - start;
}

void ShardedEngine::CloseUsageSegment(double now) {
  usage_.worker_seconds +=
      (now - segment_start_) * static_cast<double>(active_);
  segment_start_ = now;
}

size_t ShardedEngine::DecideWidth(double producer_seconds,
                                  double pending_bytes, double pending_rows) {
  if (!resizer_) return active_;
  FragmentBoundary boundary;
  boundary.index = boundary_index_++;
  boundary.current_workers = active_;
  boundary.elapsed_seconds = NowSeconds() - exec_start_;
  boundary.producer_seconds = producer_seconds;
  boundary.pending_bytes = pending_bytes;
  boundary.pending_rows = pending_rows;
  boundary.cuts_remaining = cuts_remaining_;
  const size_t target = std::max<size_t>(1, resizer_(boundary));
  if (target == active_) return active_;
  // Width changes cut a new billing segment: the seconds spent so far are
  // charged at the old width, everything after at the new one.
  CloseUsageSegment(NowSeconds());
  EnsureWorkers(target);
  ++usage_.resizes;
  active_ = target;
  usage_.peak_workers = std::max(usage_.peak_workers, active_);
  usage_.min_workers = std::min(usage_.min_workers, active_);
  return active_;
}

Result<ShardedEngine::Shards> ShardedEngine::ApplyExchange(
    const PhysicalPlan* exchange, Shards in, size_t width) {
  if (cuts_remaining_ > 0) --cuts_remaining_;
  switch (exchange->exchange_kind) {
    case ExchangeKind::kShuffle:
      return ShuffleShards(std::move(in), exchange, width);
    case ExchangeKind::kBroadcast:
      return BroadcastShards(std::move(in), exchange, width);
    case ExchangeKind::kGather:
      return GatherShards(std::move(in), exchange);
    case ExchangeKind::kLocal:
      break;  // not a cut; unreachable
  }
  return in;
}

void ShardedEngine::RecordExchange(ExchangeTiming timing,
                                   const TransportStats& before,
                                   size_t rows_moved, double bytes_moved) {
  const TransportStats& now = transport_->stats();
  timing.transport = transport_->kind();
  timing.wire_bytes = now.wire_bytes - before.wire_bytes;
  timing.transfers = now.transfers - before.transfers;
  timing.link_seconds =
      (now.serialize_seconds - before.serialize_seconds) +
      (now.transfer_seconds - before.transfer_seconds);
  ExchangeKindStats& ks = exchange_stats_.ByKind(timing.kind);
  ++ks.count;
  ks.rows_moved += rows_moved;
  ks.bytes_moved += bytes_moved;
  ks.seconds += timing.seconds;
  ks.wire_bytes += timing.wire_bytes;
  ks.link_seconds += timing.link_seconds;
  exchange_stats_.timings.push_back(timing);
}

Result<ShardedEngine::Shards> ShardedEngine::ShuffleShards(
    Shards in, const PhysicalPlan* exchange, size_t width) {
  if (exchange->partition_exprs.empty()) {
    return Status::Internal("shuffle exchange without partition keys");
  }
  const double start = NowSeconds();
  const TransportStats tp_before = transport_->stats();
  const size_t W = std::max<size_t>(1, width);
  Shards out;
  out.chunks.assign(W, DataChunk(exchange->output_types));

  std::vector<std::string> names = exchange->output_names;
  Evaluator ev(&names);
  double bytes_moved = 0.0;   // logical: left the producing worker
  double bytes_copied = 0.0;  // physical: everything the repartition wrote
  size_t rows_moved = 0;
  const size_t sources = in.single ? 1 : in.chunks.size();
  for (size_t w = 0; w < sources; ++w) {
    DataChunk& chunk = in.chunks[w];
    const size_t rows = chunk.num_rows();
    if (rows == 0) continue;
    std::vector<ColumnVector> keys;
    std::vector<bool> as_double;
    for (const auto& e : exchange->partition_exprs) {
      ColumnVector v;
      COSTDB_ASSIGN_OR_RETURN(v, ev.Evaluate(*e, chunk));
      // Normalize every numeric key to double so an int64 key lands on the
      // same worker as the double it joins with (probe and build shuffles
      // hash independently but must agree).
      as_double.push_back(v.physical_type() != PhysicalType::kString);
      keys.push_back(std::move(v));
    }
    std::vector<uint64_t> hashes;
    kernels::HashRows(keys, as_double, rows, &hashes);
    std::vector<std::vector<uint32_t>> bucket_rows(W);
    for (size_t r = 0; r < rows; ++r) {
      bucket_rows[hashes[r] % W].push_back(static_cast<uint32_t>(r));
    }
    for (size_t b = 0; b < W; ++b) {
      if (bucket_rows[b].empty()) continue;
      DataChunk moved =
          GatherRows(chunk, bucket_rows[b], exchange->output_types);
      const double payload = ChunkPayloadBytes(moved);
      bytes_copied += payload;
      if (b != w) {
        // Only partitions that leave their producing worker cross the
        // transport; the b == w bucket never would on a real network.
        rows_moved += moved.num_rows();
        bytes_moved += payload;
        COSTDB_ASSIGN_OR_RETURN(moved,
                                transport_->Send(w, b, std::move(moved)));
      }
      out.chunks[b].Append(moved);
    }
    chunk.Clear();
  }

  ExchangeTiming timing;
  timing.kind = ExchangeKind::kShuffle;
  timing.bytes = bytes_copied;
  timing.partitions = W;
  timing.seconds = NowSeconds() - start;
  RecordExchange(timing, tp_before, rows_moved, bytes_moved);
  return out;
}

Result<ShardedEngine::Shards> ShardedEngine::BroadcastShards(
    Shards in, const PhysicalPlan* exchange, size_t width) {
  const double start = NowSeconds();
  const TransportStats tp_before = transport_->stats();
  const size_t W = std::max<size_t>(1, width);
  Shards out;
  out.shared = true;
  out.chunks.assign(1, DataChunk(exchange->output_types));
  const size_t sources = (in.single || in.shared) ? 1 : in.chunks.size();
  for (size_t w = 0; w < sources; ++w) {
    out.chunks[0].Append(in.chunks[w]);
  }
  // Every other worker receives the full payload; the consumers borrow the
  // one materialized copy, so the stats charge what a fan-out wire would
  // (payload x (W-1)) while the transport carries one serialized copy.
  if (W > 1 && out.chunks[0].num_rows() > 0) {
    DataChunk shipped;
    COSTDB_ASSIGN_OR_RETURN(
        shipped, transport_->Send(0, 1, std::move(out.chunks[0])));
    out.chunks[0] = std::move(shipped);
  }
  const double payload = ChunkPayloadBytes(out.chunks[0]);
  const double bytes = payload * static_cast<double>(W - 1);

  ExchangeTiming timing;
  timing.kind = ExchangeKind::kBroadcast;
  timing.bytes = payload;
  timing.partitions = W;
  timing.seconds = NowSeconds() - start;
  RecordExchange(timing, tp_before, out.chunks[0].num_rows() * (W - 1),
                 bytes);
  return out;
}

Result<ShardedEngine::Shards> ShardedEngine::GatherShards(
    Shards in, const PhysicalPlan* exchange) {
  const double start = NowSeconds();
  const TransportStats tp_before = transport_->stats();
  double bytes = 0.0;   // logical: arrived from other workers
  double copied = 0.0;  // physical: everything the merge wrote
  size_t rows = 0;
  if (!in.single) {
    const size_t sources = in.shared ? 1 : in.chunks.size();
    for (size_t w = 0; w < sources; ++w) {
      const double payload = ChunkPayloadBytes(in.chunks[w]);
      copied += payload;
      if (w > 0) {
        bytes += payload;
        rows += in.chunks[w].num_rows();
        if (in.chunks[w].num_rows() > 0) {
          COSTDB_ASSIGN_OR_RETURN(
              in.chunks[w], transport_->Send(w, 0, std::move(in.chunks[w])));
        }
      }
    }
  }
  Shards out;
  out.single = true;
  DataChunk merged = MergeShards(&in, exchange->output_types);
  out.chunks.assign(1, std::move(merged));

  ExchangeTiming timing;
  timing.kind = ExchangeKind::kGather;
  timing.bytes = copied;
  timing.partitions = 1;
  timing.seconds = NowSeconds() - start;
  RecordExchange(timing, tp_before, rows, bytes);
  return out;
}

DataChunk ShardedEngine::MergeShards(
    Shards* shards, const std::vector<LogicalType>& types) const {
  DataChunk out(types);
  if (shards->single || shards->shared) {
    if (!shards->chunks.empty()) out = std::move(shards->chunks[0]);
    return out;
  }
  if (shards->key_prefix == 0) {
    for (auto& c : shards->chunks) {
      if (c.num_columns() == out.num_columns()) out.Append(c);
    }
    return out;
  }
  // K-way merge on the encoded group key: every shard is key-sorted with
  // disjoint key sets, and the encoding is byte-identical to the one that
  // orders LocalEngine's aggregate output — so the merged order matches a
  // single-node run exactly.
  const size_t k = shards->key_prefix;
  const size_t n = shards->chunks.size();
  std::vector<size_t> cursor(n, 0);
  std::vector<std::string> current(n);
  for (size_t w = 0; w < n; ++w) {
    if (shards->chunks[w].num_rows() > 0) {
      EncodeChunkKeyInto(shards->chunks[w], k, 0, &current[w]);
    }
  }
  while (true) {
    size_t best = n;
    for (size_t w = 0; w < n; ++w) {
      if (cursor[w] >= shards->chunks[w].num_rows()) continue;
      if (best == n || current[w] < current[best]) best = w;
    }
    if (best == n) break;
    out.AppendRowFrom(shards->chunks[best], cursor[best]);
    ++cursor[best];
    if (cursor[best] < shards->chunks[best].num_rows()) {
      EncodeChunkKeyInto(shards->chunks[best], k, cursor[best],
                         &current[best]);
    }
  }
  return out;
}

PhysicalPlanPtr ShardedEngine::CloneForWorker(
    const PhysicalPlan* node, size_t worker, size_t width, bool single,
    const std::map<const PhysicalPlan*, FragmentInput>& inputs,
    double* input_rows) const {
  auto it = inputs.find(node);
  if (it != inputs.end()) {
    const FragmentInput& fi = it->second;
    auto scan = std::make_shared<PhysicalPlan>();
    scan->kind = PhysicalPlan::Kind::kTableScan;
    scan->table = fi.SharedForWorker(worker);
    scan->alias = "__exchange";
    scan->output_names = node->output_names;
    scan->output_types = node->output_types;
    scan->scan_column_indices.resize(node->output_names.size());
    std::iota(scan->scan_column_indices.begin(),
              scan->scan_column_indices.end(), 0);
    *input_rows += static_cast<double>(scan->table->num_rows());
    return scan;
  }
  auto copy = std::make_shared<PhysicalPlan>(*node);
  if (copy->kind == PhysicalPlan::Kind::kTableScan) {
    if (!single) {
      auto [begin, end] = WorkerGroupRange(*copy->table, worker, width);
      copy->scan_group_begin = begin;
      copy->scan_group_end = end;
      const auto& groups = copy->table->row_groups();
      for (size_t g = begin; g < std::min(end, groups.size()); ++g) {
        *input_rows += static_cast<double>(groups[g].num_rows());
      }
    } else {
      *input_rows += static_cast<double>(copy->table->num_rows());
    }
    return copy;
  }
  for (auto& child : copy->children) {
    child =
        CloneForWorker(child.get(), worker, width, single, inputs, input_rows);
  }
  return copy;
}

Result<ShardedEngine::Shards> ShardedEngine::RunNode(
    const PhysicalPlan* node) {
  if (!IsCut(node)) return RunFragment(node);
  // A bare cut at the plan root (no consuming fragment above): run its
  // producer and apply the exchange at the current width.
  Shards in;
  COSTDB_ASSIGN_OR_RETURN(in, RunNode(node->children[0].get()));
  return ApplyExchange(node, std::move(in), active_);
}

Result<ShardedEngine::Shards> ShardedEngine::RunFragment(
    const PhysicalPlan* frag_root) {
  std::vector<const PhysicalPlan*> cuts;
  CollectCuts(frag_root, &cuts);

  // ---- 1. Run the producer subtree of every cut. Producers are whole
  // upstream fragments; they make their own width decisions recursively,
  // so by the time control returns here their timings are known and the
  // exact payload about to rebucket sits in `produced`.
  const double producers_start = NowSeconds();
  std::vector<Shards> produced;
  produced.reserve(cuts.size());
  for (const PhysicalPlan* cut : cuts) {
    Shards s;
    COSTDB_ASSIGN_OR_RETURN(s, RunNode(cut->children[0].get()));
    produced.push_back(std::move(s));
  }

  // ---- 2. Fragment boundary: pick the width this fragment runs at.
  // Every shuffle/broadcast cut rebuckets by hash % width regardless, so
  // this is the one place a resize is free of extra data movement. A
  // fragment fed only by gathers runs single-worker whatever the width,
  // so no decision is made there.
  bool resizable = false;
  double pending_bytes = 0.0;
  double pending_rows = 0.0;
  for (size_t i = 0; i < cuts.size(); ++i) {
    if (cuts[i]->exchange_kind == ExchangeKind::kGather) continue;
    resizable = true;
    const Shards& s = produced[i];
    const size_t sources = (s.single || s.shared) ? 1 : s.chunks.size();
    for (size_t w = 0; w < sources; ++w) {
      pending_bytes += ChunkPayloadBytes(s.chunks[w]);
      pending_rows += static_cast<double>(s.chunks[w].num_rows());
    }
  }
  size_t width = active_;
  if (resizable) {
    width = DecideWidth(NowSeconds() - producers_start, pending_bytes,
                        pending_rows);
  }

  // ---- 3. Apply the cut exchanges at that width and build the temp-table
  // inputs the worker clones will scan.
  std::map<const PhysicalPlan*, FragmentInput> inputs;
  bool all_inputs_single = !cuts.empty();
  for (size_t i = 0; i < cuts.size(); ++i) {
    const PhysicalPlan* cut = cuts[i];
    Shards s;
    COSTDB_ASSIGN_OR_RETURN(s,
                            ApplyExchange(cut, std::move(produced[i]), width));
    const double build_start = NowSeconds();
    FragmentInput fi;
    fi.shared = s.shared;
    fi.single = s.single;
    if (s.shared || s.single) {
      fi.per_worker.push_back(MakeTempTable(cut, s.chunks[0]));
    } else {
      fi.per_worker.reserve(s.chunks.size());
      for (size_t w = 0; w < s.chunks.size(); ++w) {
        fi.per_worker.push_back(MakeTempTable(cut, s.chunks[w]));
      }
    }
    // Temp-table build is part of the exchange's dispatch cost; fold it
    // into the timing the calibration loop observes (the entry this cut
    // appended last) and that entry's per-kind bucket.
    const double build_seconds = NowSeconds() - build_start;
    if (!exchange_stats_.timings.empty()) {
      ExchangeTiming& t = exchange_stats_.timings.back();
      t.seconds += build_seconds;
      exchange_stats_.ByKind(t.kind).seconds += build_seconds;
    }
    if (!s.single) all_inputs_single = false;
    inputs.emplace(cut, std::move(fi));
  }

  const bool has_base = HasBaseScan(frag_root);
  const bool single = !has_base && all_inputs_single;
  if (!single) {
    // A gathered (single) input inside a distributed fragment would be
    // scanned in full by every worker — W-fold row duplication. The
    // planner never emits such shapes; refuse rather than corrupt.
    bool any_single = has_base && !cuts.empty() && all_inputs_single;
    for (const auto& [cut, fi] : inputs) any_single = any_single || fi.single;
    if (any_single) {
      return Status::Internal(
          "unsupported fragment: gathered input mixed with distributed "
          "inputs");
    }
  }

  // ---- 4. Fan the fragment out across the width's workers.
  const size_t dop = single ? 1 : width;
  std::vector<PhysicalPlanPtr> plans(dop);
  std::vector<uint8_t> skip(dop, 0);
  for (size_t w = 0; w < dop; ++w) {
    double rows_in = 0.0;
    plans[w] = CloneForWorker(frag_root, w, width, single, inputs, &rows_in);
    // A worker with no input contributes nothing — skipping it (rather
    // than running the engine on zero rows) keeps empty shards from
    // fabricating global-aggregate zero rows; the single-worker finalize
    // above the gather produces the canonical empty-input row instead.
    if (!single && rows_in == 0.0) skip[w] = 1;
  }

  const double frag_start = NowSeconds();
  std::vector<SlotResult> slots(dop);
  if (worker_mode_ == WorkerMode::kProcesses) {
    COSTDB_RETURN_NOT_OK(
        RunPlansInProcesses(plans, skip, threads_per_worker_, &slots));
  } else {
    auto run_one = [&](size_t w) {
      LocalEngine* engine = workers_[w].engine.get();
      slots[w].result = engine->Execute(plans[w].get());
      slots[w].scan_stats = engine->last_scan_stats();
      slots[w].fused_stats = engine->last_fused_stats();
      slots[w].block_stats = engine->last_block_stats();
    };
    if (dop > 1) {
      for (size_t w = 0; w < dop; ++w) {
        if (!skip[w]) pool_->Submit([&run_one, w] { run_one(w); });
      }
      pool_->WaitIdle();
    } else if (!skip.empty() && !skip[0]) {
      run_one(0);
    }
  }
  usage_.fragments.push_back(
      FragmentUsage{dop, NowSeconds() - frag_start});

  Shards out;
  out.single = single;
  out.key_prefix = MergeKeyPrefixOf(frag_root);
  out.chunks.assign(dop, DataChunk(frag_root->output_types));
  for (size_t w = 0; w < dop; ++w) {
    if (skip[w]) continue;
    COSTDB_RETURN_NOT_OK(slots[w].result.status());
    out.chunks[w] = std::move(slots[w].result->chunk);
    scan_stats_.morsels_total += slots[w].scan_stats.morsels_total;
    scan_stats_.morsels_pruned += slots[w].scan_stats.morsels_pruned;
    scan_stats_.rows_scanned += slots[w].scan_stats.rows_scanned;
    scan_stats_.rows_pruned += slots[w].scan_stats.rows_pruned;
    fused_stats_.MergeFrom(slots[w].fused_stats);
    block_stats_.MergeFrom(slots[w].block_stats);
  }
  return out;
}

Result<QueryResult> ShardedEngine::Execute(const PhysicalPlan* root) {
  if (root == nullptr) return Status::InvalidArgument("null plan");
  COSTDB_RETURN_NOT_OK(ValidateCoPartitioning(root));
  exchange_stats_ = ExchangeStats();
  exchange_stats_.transport = transport_->kind();
  transport_->ResetStats();
  scan_stats_ = ScanStats();
  fused_stats_ = FusedExecStats();
  block_stats_ = BlockCacheStats();
  usage_ = WorkerUsage();
  // Every Execute starts from the constructed width; an elastic schedule
  // is per-query, not engine state that leaks into the next query.
  active_ = initial_workers_;
  usage_.peak_workers = active_;
  usage_.min_workers = active_;
  boundary_index_ = 0;
  cuts_remaining_ = CountCuts(root);
  exec_start_ = NowSeconds();
  segment_start_ = exec_start_;

  Shards shards;
  COSTDB_ASSIGN_OR_RETURN(shards, RunNode(root));
  DataChunk chunk = MergeShards(&shards, root->output_types);
  TruncateChunk(&chunk, RootLimit(root));

  const double end = NowSeconds();
  CloseUsageSegment(end);
  usage_.wall_seconds = end - exec_start_;

  QueryResult result;
  result.names = root->output_names;
  result.types = root->output_types;
  result.chunk = std::move(chunk);
  return result;
}

}  // namespace costdb
