#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/evaluator.h"
#include "plan/expression.h"
#include "storage/data_chunk.h"

namespace costdb {

/// What the fused-kernel tier actually ran during one Execute call. The
/// *decision* to fuse is a plan annotation made by the optimizer's
/// fuse_kernels pass; these counters confirm the engine honored it (or hit
/// the runtime fallback) and feed measured fused timings back into the
/// calibration loop. Summed across workers on the sharded path.
struct FusedExecStats {
  size_t fused_filter_morsels = 0;  // morsels run through a fused select
  size_t fused_probe_morsels = 0;   // morsels run filter→hash-probe fused
  size_t fused_agg_morsels = 0;     // morsels run filter→aggregate fused
  size_t fallback_morsels = 0;      // fusion annotated, shape did not bind
  size_t fused_rows = 0;            // rows entering fused kernels
  double fused_seconds = 0.0;       // wall time inside fused kernels

  void MergeFrom(const FusedExecStats& o) {
    fused_filter_morsels += o.fused_filter_morsels;
    fused_probe_morsels += o.fused_probe_morsels;
    fused_agg_morsels += o.fused_agg_morsels;
    fallback_morsels += o.fallback_morsels;
    fused_rows += o.fused_rows;
    fused_seconds += o.fused_seconds;
  }
  bool any_fused() const {
    return fused_filter_morsels + fused_probe_morsels + fused_agg_morsels > 0;
  }
};

/// A conjunction compiled to a single-pass kernel: one traversal of the
/// morsel evaluates every conjunct per row with short-circuit, instead of
/// one vectorized kernel invocation (and one intermediate selection
/// vector) per conjunct. Selection semantics are bit-identical to
/// Evaluator::EvaluateSelection — SQL three-valued logic, NULL deselects,
/// comparison against a NULL constant selects nothing — which the
/// three-way parity tests (fused / vectorized / scalar) enforce.
///
/// Compilation happens once per pipeline (FusedKernelRegistry::Compile);
/// Select binds the compiled terms to a chunk's flat payloads and runs the
/// pass. Shapes without an instantiation (OR, NOT, arithmetic, params,
/// expression operands) do not compile — the caller falls back to the
/// per-kernel vectorized path.
class FusedPredicate {
 public:
  /// Supported conjunct shapes. The int-const kernels are additionally
  /// monomorphized per CompareOp (see Instantiations()).
  enum class TermKind : uint8_t {
    kIntColConst,  // int64 column  <op> int64 constant
    kNumColConst,  // numeric column <op> numeric constant, double compare
    kNumColCol,    // numeric column <op> numeric column
    kStrColConst,  // string column <op> string constant
    kLike,         // string column LIKE constant [ESCAPE]
  };

  struct Term {
    TermKind kind = TermKind::kIntColConst;
    CompareOp cmp = CompareOp::kEq;
    uint32_t lhs = 0;          // column index into the chunk
    uint32_t rhs = 0;          // kNumColCol only
    bool lhs_is_double = false;
    bool rhs_is_double = false;
    bool both_int = false;     // kNumColCol: exact int64 compare
    int64_t iconst = 0;
    double dconst = 0.0;
    std::string sconst;
    LikePattern like;
  };

  size_t num_terms() const { return terms_.size(); }
  bool always_false() const { return always_false_; }

  /// Single-pass conjunctive select over the chunk. `out` is cleared and
  /// filled with surviving row indices in ascending order. Fails (caller
  /// falls back to the vectorized path) if the chunk's physical column
  /// families do not match what the predicate was compiled against.
  Status Select(const ChunkView& chunk, SelectionVector* out) const;

  /// Fused scan: select survivors and gather `columns` of the view into
  /// `out` in one call, so no per-conjunct intermediate ever materializes.
  /// `sel_scratch` receives the selection (reused across morsels).
  Status SelectGather(const ChunkView& view, const std::vector<size_t>& columns,
                      DataChunk* out, SelectionVector* sel_scratch) const;

 private:
  friend class FusedKernelRegistry;
  std::vector<Term> terms_;
  bool always_false_ = false;  // a conjunct compares against a NULL constant
};

/// One aggregate of the fused filter→aggregate fold. `col` indexes the
/// scan view (-1 for COUNT(*)).
struct FusedAggSpec {
  AggFunc func = AggFunc::kCountStar;
  int col = -1;
};

/// Partial state of one fused aggregate — mirrors the engine's per-group
/// AggState field for field so the morsel-order merge is unchanged.
struct FusedAggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  Value min;
  Value max;
  bool has_value = false;
};

/// Fused filter→aggregate fold for the global-agg fast path: survivors of
/// `pred` (nullptr = all rows) fold straight from the borrowed row-group
/// columns into `states` — the interpreted path's gather + per-aggregate
/// input evaluation never happens. Accumulation visits survivors in
/// ascending row order with the same branch structure as the unfused
/// kernels (Accumulate/CountValid/MinMax over a gathered column), so
/// floating-point sums are bit-identical. Returns the survivor count.
Result<size_t> FusedFilterAggregate(const FusedPredicate* pred,
                                    const ChunkView& view,
                                    const std::vector<FusedAggSpec>& specs,
                                    std::vector<FusedAggState>* states,
                                    SelectionVector* sel_scratch);

/// The dispatch point of the fused tier: decides whether a predicate (and
/// the aggregate shapes riding on it) has a fused instantiation. Both the
/// optimizer's fuse_kernels pass (plan-time decision) and the engine
/// (runtime compile) go through here, so they can never disagree about
/// what is fusable. Stateless — the global instance is shared.
class FusedKernelRegistry {
 public:
  static const FusedKernelRegistry& Global();

  /// True when every conjunct of `predicate` matches a fused term shape
  /// against the schema (names + logical types, positional).
  bool CanCompile(const Expr& predicate,
                  const std::vector<std::string>& schema,
                  const std::vector<LogicalType>& types) const;

  /// Compile the conjunction, or nullopt when some conjunct has no fused
  /// instantiation (the caller keeps the vectorized path).
  std::optional<FusedPredicate> Compile(
      const Expr& predicate, const std::vector<std::string>& schema,
      const std::vector<LogicalType>& types) const;

  /// True when the aggregate list fits the fused filter→aggregate fold:
  /// global (no GROUP BY) COUNT(*)/COUNT/SUM/AVG/MIN/MAX over bare scan
  /// columns, numeric except COUNT. Fills `specs` on success.
  bool CompileAggregates(const std::vector<ExprPtr>& aggregates,
                         const std::vector<std::string>& schema,
                         const std::vector<LogicalType>& types,
                         std::vector<FusedAggSpec>* specs) const;

  /// Names of the template-instantiated kernel shapes (introspection).
  std::vector<std::string> Instantiations() const;
};

}  // namespace costdb
