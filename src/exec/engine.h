#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/fused.h"
#include "plan/pipeline.h"
#include "storage/cache.h"

namespace costdb {

/// Materialized query output.
struct QueryResult {
  std::vector<std::string> names;
  std::vector<LogicalType> types;
  DataChunk chunk;

  std::string ToString(int64_t limit = 20) const;
};

/// Consumer side of the engine's pull-based result path. The final
/// pipeline hands result chunks to the sink in deterministic morsel order
/// as soon as every earlier morsel has been delivered — it never
/// concatenates the whole result first, so a client draining the sink
/// concurrently sees rows while later morsels are still executing.
/// Push calls are serialized by the engine (one at a time, but possibly
/// from different worker threads); a non-OK return aborts the query.
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;
  virtual Status Push(DataChunk chunk) = 0;
};

/// Schema and row count of a sink-driven execution (the rows themselves
/// went to the ChunkSink).
struct StreamedResult {
  std::vector<std::string> names;
  std::vector<LogicalType> types;
  size_t rows_streamed = 0;
};

/// Serialized, type-tagged row-key encoding ('\x01'-separated; strings
/// length-prefixed; doubles bit-exact with -0.0 normalized to 0.0). Both
/// the engine's ordered aggregate-group table and the sharded engine's
/// key-merge gather order grouped results by exactly this byte string, so
/// grouped output order is identical across engines and worker counts.
void EncodeRowKeyInto(const std::vector<ColumnVector>& columns, size_t row,
                      std::string* key);
/// Same encoding over the first `num_columns` columns of a chunk.
void EncodeChunkKeyInto(const DataChunk& chunk, size_t num_columns, size_t row,
                        std::string* key);

/// Wall-clock measurement of one pipeline run, used to calibrate the cost
/// estimator's per-operator throughput parameters.
struct PipelineTiming {
  int pipeline_id = 0;
  double seconds = 0.0;
  double source_rows = 0.0;
  double output_rows = 0.0;
};

/// Zone-map pruning counters of one Execute call. A "morsel" here is a
/// scan morsel (one row group); pruned morsels are skipped before any row
/// is read, which is where selective predicates win most of their time.
struct ScanStats {
  size_t morsels_total = 0;   // scan morsels considered, pre-pruning
  size_t morsels_pruned = 0;  // skipped whole via zone maps
  size_t rows_scanned = 0;    // rows in surviving morsels
  size_t rows_pruned = 0;     // rows in pruned morsels

  double pruned_fraction() const {
    return morsels_total == 0
               ? 0.0
               : static_cast<double>(morsels_pruned) /
                     static_cast<double>(morsels_total);
  }
};

/// Morsel-driven, push-style local execution engine, vectorized end to
/// end: scans evaluate predicates on borrowed row-group columns and
/// materialize only surviving rows, filters exchange selection vectors
/// instead of copies, join probes hash column-at-a-time and gather matches
/// in bulk, and aggregation folds each morsel into a lock-free local
/// partial that is merged in morsel order.
///
/// Pipelines run in dependency order, each parallelized over morsels (zone-
/// map-surviving row groups for scans, fixed slices for materialized
/// inputs) on a worker pool. Morsel outputs and aggregate partials are
/// reassembled in morsel order, so results are deterministic for any
/// thread count.
///
/// Exchange operators are no-ops here: locally there is no network. Their
/// cost lives in the cost estimator and the distributed simulator, which
/// share this engine's pipeline decomposition.
class LocalEngine {
 public:
  explicit LocalEngine(size_t num_threads = 8);

  Result<QueryResult> Execute(const PhysicalPlan* root);

  /// Execute with the final pipeline streaming into `sink` instead of
  /// materializing a QueryResult (intermediate breakers still materialize
  /// — only the result pipeline is pull-based). Chunk order and content
  /// match Execute() exactly, including LIMIT truncation. last_timings()
  /// and last_scan_stats() are populated the same way.
  Result<StreamedResult> ExecuteToSink(const PhysicalPlan* root,
                                       ChunkSink* sink);

  /// Per-pipeline wall time of the previous Execute call (the feedback
  /// signal of the calibration loop; see CalibrationUpdater).
  const std::vector<PipelineTiming>& last_timings() const {
    return timings_;
  }

  /// Zone-map pruning counters of the previous Execute call.
  const ScanStats& last_scan_stats() const { return scan_stats_; }

  /// Fused-kernel counters of the previous Execute call: which morsels ran
  /// through the fused tier the fuse_kernels pass annotated, which hit the
  /// runtime fallback, and the wall time spent inside fused kernels (the
  /// signal CalibrationUpdater::ObserveFused folds back into the fused
  /// cost terms).
  const FusedExecStats& last_fused_stats() const { return fused_stats_; }

  /// Block-cache counters of the previous Execute call: cold-block hits,
  /// misses (each one object-store GET), and the measured read+decode time
  /// CalibrationUpdater::ObserveStorage folds back into the storage terms.
  /// All-zero for purely RAM-resident scans.
  const BlockCacheStats& last_block_stats() const { return block_stats_; }

  size_t num_threads() const { return pool_.num_threads(); }

  // Execution state shared across the pipelines of one query; public so the
  // morsel-processing helpers in engine.cc can see it.
  struct BreakerState;
  struct ExecContext;

 private:
  Status RunPipeline(const Pipeline& pipeline, ExecContext* ctx,
                     PipelineTiming* timing);

  /// Shared driver of Execute / ExecuteToSink: pipeline decomposition,
  /// dependency-ordered execution, timing capture.
  Status RunAll(const PhysicalPlan* root, ExecContext* ctx);

  ThreadPool pool_;
  std::vector<PipelineTiming> timings_;
  ScanStats scan_stats_;
  FusedExecStats fused_stats_;
  BlockCacheStats block_stats_;
};

}  // namespace costdb
