#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "plan/pipeline.h"

namespace costdb {

/// Materialized query output.
struct QueryResult {
  std::vector<std::string> names;
  std::vector<LogicalType> types;
  DataChunk chunk;

  std::string ToString(int64_t limit = 20) const;
};

/// Wall-clock measurement of one pipeline run, used to calibrate the cost
/// estimator's per-operator throughput parameters.
struct PipelineTiming {
  int pipeline_id = 0;
  double seconds = 0.0;
  double source_rows = 0.0;
  double output_rows = 0.0;
};

/// Morsel-driven, push-style local execution engine. Executes a physical
/// plan correctly on in-process tables; pipelines run in dependency order,
/// each parallelized over morsels (row groups for scans, fixed slices for
/// materialized inputs) on a worker pool. Morsel outputs are reassembled in
/// morsel order, so results are deterministic for any thread count.
///
/// Exchange operators are no-ops here: locally there is no network. Their
/// cost lives in the cost estimator and the distributed simulator, which
/// share this engine's pipeline decomposition.
class LocalEngine {
 public:
  explicit LocalEngine(size_t num_threads = 8);

  Result<QueryResult> Execute(const PhysicalPlan* root);

  /// Per-pipeline wall time of the previous Execute call.
  const std::vector<PipelineTiming>& last_timings() const {
    return timings_;
  }

  size_t num_threads() const { return pool_.num_threads(); }

  // Execution state shared across the pipelines of one query; public so the
  // morsel-processing helpers in engine.cc can see it.
  struct BreakerState;
  struct ExecContext;

 private:
  Status RunPipeline(const Pipeline& pipeline, ExecContext* ctx);

  ThreadPool pool_;
  std::vector<PipelineTiming> timings_;
};

}  // namespace costdb
