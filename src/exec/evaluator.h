#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/expression.h"
#include "storage/data_chunk.h"

namespace costdb {

/// Vectorized expression evaluation over a DataChunk. Column references are
/// resolved by name against the provided schema (positional names of the
/// chunk's columns).
class Evaluator {
 public:
  explicit Evaluator(const std::vector<std::string>* schema)
      : schema_(schema) {}

  /// Evaluate `expr` over every row of `chunk`; the result vector has
  /// chunk.num_rows() entries (booleans are int64 0/1).
  Result<ColumnVector> Evaluate(const Expr& expr, const DataChunk& chunk) const;

  /// Evaluate a boolean predicate and return the selected row indices.
  Result<std::vector<uint32_t>> EvaluateSelection(const Expr& predicate,
                                                  const DataChunk& chunk) const;

 private:
  Result<size_t> ResolveColumn(const std::string& name) const;

  const std::vector<std::string>* schema_;
};

/// SQL LIKE with % (any run) and _ (any single char); case-sensitive.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace costdb
