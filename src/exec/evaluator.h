#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/expression.h"
#include "storage/data_chunk.h"

namespace costdb {

/// Ascending row indices into a chunk — the currency of the vectorized
/// filter path. Operators hand each other selection vectors instead of
/// materializing filtered copies, and compaction (Gather/Slice) happens
/// once, after the full predicate has run.
using SelectionVector = std::vector<uint32_t>;

/// Vectorized expression evaluation over a ChunkView (borrowed columns) or
/// DataChunk. Column references are resolved by name against the provided
/// schema (positional names of the view's columns).
///
/// Two disciplines coexist:
///  - The *vectorized* path (`Evaluate`, `EvaluateSelection`) runs typed
///    kernels column-at-a-time over the flat payload arrays. Conjunctions
///    narrow a selection vector progressively: fast-path conjuncts
///    (column/constant compares, LIKE) inspect only surviving rows, and
///    nothing is copied until compaction. Fallback shapes (NOT,
///    arithmetic inside a compare) still compute their boolean mask over
///    the whole chunk before the selection gates it.
///  - The *scalar reference* path (`EvaluateRow`,
///    `EvaluateSelectionScalar`) interprets the expression row-at-a-time
///    with boxed Values. It exists as the semantic oracle: property tests
///    assert both paths agree (including NULLs), and the vectorized-vs-
///    scalar microbench measures the gap.
///
/// NULL semantics are SQL three-valued logic: a comparison, arithmetic, or
/// LIKE over a NULL input is NULL; a selection keeps only rows where the
/// predicate is definitely true; aggregates skip NULL inputs.
class Evaluator {
 public:
  explicit Evaluator(const std::vector<std::string>* schema)
      : schema_(schema) {}

  /// Evaluate `expr` over every row of `chunk`; the result vector has
  /// chunk.num_rows() entries (booleans are int64 0/1) and carries a
  /// validity mask when any input row was NULL.
  Result<ColumnVector> Evaluate(const Expr& expr, const ChunkView& chunk) const;

  /// Evaluate a boolean predicate and return the selected row indices, in
  /// ascending order. This is the vectorized filter entry point: compare
  /// nodes dispatch to typed select kernels, AND narrows progressively,
  /// OR merges child selections, and NULL predicate outcomes deselect.
  Result<SelectionVector> EvaluateSelection(const Expr& predicate,
                                            const ChunkView& chunk) const;

  // -- Scalar reference path (oracle for tests / baseline for benches) ----

  /// Row-at-a-time interpretation of `expr` on row `row`; boxed-Value
  /// dispatch, NULL-propagating. Semantically identical to Evaluate.
  Result<Value> EvaluateRow(const Expr& expr, const ChunkView& chunk,
                            size_t row) const;

  /// Selection built by calling EvaluateRow on every row. Semantically
  /// identical to EvaluateSelection.
  Result<SelectionVector> EvaluateSelectionScalar(const Expr& predicate,
                                                  const ChunkView& chunk) const;

 private:
  /// Recursive selection builder. `input` is the surviving-row set from
  /// enclosing conjuncts (nullptr = all rows). Results stay ascending.
  Result<SelectionVector> Select(const Expr& expr, const ChunkView& chunk,
                                 const SelectionVector* input) const;

  /// Fallback for expression shapes without a dedicated select kernel:
  /// evaluate the boolean column, then keep input rows that are valid and
  /// true.
  Result<SelectionVector> SelectViaMask(const Expr& expr,
                                        const ChunkView& chunk,
                                        const SelectionVector* input) const;

  Result<size_t> ResolveColumn(const std::string& name) const;

  const std::vector<std::string>* schema_;
};

/// A LIKE pattern compiled to a flat op sequence — % (any run), _ (any
/// single char), and literal characters, with an optional ESCAPE character
/// that makes the following %, _, or escape char literal. Compiling once
/// per expression keeps the per-row match loop free of escape decoding.
class LikePattern {
 public:
  LikePattern() = default;
  LikePattern(const std::string& pattern, char escape = '\0');

  bool Match(const std::string& text) const;

 private:
  enum class Op : uint8_t { kAnyRun, kAnyOne, kLiteral };
  std::vector<Op> ops_;
  std::vector<char> literals_;  // one entry per op (ignored for wildcards)
};

/// SQL LIKE with % (any run) and _ (any single char); case-sensitive.
/// `escape` ('\0' = none) makes the following wildcard (or escape char
/// itself) match literally. One-shot convenience over LikePattern.
bool LikeMatch(const std::string& text, const std::string& pattern,
               char escape = '\0');

/// Batch kernels shared by the engine's operators. All of them are
/// column-at-a-time loops over the flat payloads; none allocates per row.
namespace kernels {

/// Hash `rows` rows of a multi-column key, combining columns left to right
/// (seeded like the engine's join hash). `as_double[k]` forces numeric
/// normalization so an int64 key hashes equal to the double it joins with.
/// An empty key list yields the bare seed for every row — that is how a
/// cross join (no equi-keys) matches everything.
/// NULL keys hash to a fixed tag (never their filler payload), so a NULL
/// join key cannot collide with a genuine 0 and NULL-key rows always land
/// on one deterministic shuffle bucket. NULL *matching* semantics live in
/// the probe/build guards (AnyKeyNull): a NULL key matches nothing.
void HashRows(const std::vector<ColumnVector>& keys,
              const std::vector<bool>& as_double, size_t rows,
              std::vector<uint64_t>* out);

/// True when any key column is NULL at `row` — the SQL three-valued-logic
/// guard of the hash join: such a row joins nothing, so the build skips
/// indexing it and the probe skips looking it up.
bool AnyKeyNull(const std::vector<ColumnVector>& keys, size_t row);

/// Fold non-null rows of a *numeric* `v` into running count / integer sum
/// / double sum (ints accumulate into both sums, mirroring SUM/AVG result
/// typing). Not for string columns — COUNT over arbitrary types uses
/// CountValid.
void Accumulate(const ColumnVector& v, int64_t* count, int64_t* isum,
                double* dsum);

/// Number of non-null rows, any column type (the COUNT(col) kernel).
int64_t CountValid(const ColumnVector& v);

/// Min/max of non-null rows; `has_value` stays false on an all-null input.
void MinMax(const ColumnVector& v, Value* min, Value* max, bool* has_value);

// Selected-row variants, used by the fused filter→aggregate fold: fold
// only the rows in `sel` (ascending), without materializing a gathered
// copy first. Each mirrors its unselected sibling's branch structure —
// same accumulation order, same no-nulls fast path — so folding `sel`
// directly is bit-identical to gathering `sel` and folding the copy.

/// Accumulate(v.Gather(sel), ...) without the gather.
void AccumulateSelected(const ColumnVector& v, const SelectionVector& sel,
                        int64_t* count, int64_t* isum, double* dsum);

/// CountValid(v.Gather(sel)) without the gather.
int64_t CountValidSelected(const ColumnVector& v, const SelectionVector& sel);

/// MinMax(v.Gather(sel), ...) without the gather.
void MinMaxSelected(const ColumnVector& v, const SelectionVector& sel,
                    Value* min, Value* max, bool* has_value);

}  // namespace kernels

}  // namespace costdb
