#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "exec/engine.h"

namespace costdb {

/// One observed exchange execution, in the cost model's vocabulary. The
/// CalibrationUpdater folds these into the calibration's shuffle term
/// (bytes / shuffle_gibps + partitions * shuffle_dispatch_seconds), so
/// `bytes` counts what the measured wall time actually processed — every
/// payload byte the in-process movement copied (a broadcast materializes
/// one shared copy, not W wire copies) — while the logical cross-worker
/// charge lives in ExchangeStats::bytes_moved.
struct ExchangeTiming {
  ExchangeKind kind = ExchangeKind::kShuffle;
  double bytes = 0.0;      // payload bytes the movement copied
  size_t partitions = 0;   // receiver partitions dispatched
  double seconds = 0.0;    // wall time of the repartition/copy step
};

/// Data-movement counters of one ShardedEngine::Execute call.
struct ExchangeStats {
  size_t shuffles = 0;
  size_t broadcasts = 0;
  size_t gathers = 0;
  size_t rows_moved = 0;     // rows that left their producing worker
  double bytes_moved = 0.0;  // payload bytes of those rows
  double seconds = 0.0;      // total wall time spent moving data
  std::vector<ExchangeTiming> timings;  // per executed exchange, plan order
};

/// In-memory payload bytes of a chunk (fixed 8B numerics, observed string
/// lengths + a 4B offset word) — what the exchange stats and the shuffle
/// calibration account as "bytes on the wire".
double ChunkPayloadBytes(const DataChunk& chunk);

/// Partitioned multi-worker execution: runs a physical plan across N
/// in-process workers, each a LocalEngine over a horizontal slice of the
/// data, stitched together by real exchange operators.
///
/// The same distributed-shaped plans the optimizer already emits (two-phase
/// aggregates, join-side shuffles/broadcasts, root gather) drive execution:
/// the plan is split into *fragments* at exchange boundaries. Every worker
/// runs each fragment on its slice — base-table scans are restricted to the
/// worker's contiguous row-group range (whole partitions for a partitioned
/// table; see storage/partition.h), and exchange inputs arrive as temp
/// tables filled by the parent exchange:
///   - shuffle:   rows are re-bucketed by hash(partition_exprs) % workers,
///   - broadcast: every worker receives the full input,
///   - gather:    worker 0 receives everything; downstream fragments of a
///                gathered input run single-worker,
///   - local:     co-partitioned pass-through — no row moves; the fragment
///                keeps both sides and joins/aggregates partition-wise.
///
/// Determinism and LocalEngine parity: all cross-worker merges happen in
/// worker order, worker slices are contiguous shares of the source order,
/// and grouped-aggregate outputs are gathered by k-way merge on the same
/// encoded group key that orders LocalEngine's aggregate output — so
/// results are bit-identical to LocalEngine (and across worker counts) for
/// order-stable plans: scans/filters/projections, broadcast and
/// co-partitioned joins, grouped and global aggregates, and sorts.
/// Repartition (shuffle) joins produce the same multiset in an order that
/// is deterministic per worker count but only canonical up to the next
/// order-fixing operator (aggregate or sort) across worker counts.
/// Floating-point SUM/AVG over double columns re-associates across worker
/// partials (integer aggregates stay exact). Partial aggregates emit
/// nothing on an empty shard and NULL for value-less MIN/MAX states
/// (PhysicalPlan::agg_is_partial), so empty or all-NULL shards cannot
/// poison merged extrema.
class ShardedEngine {
 public:
  explicit ShardedEngine(size_t num_workers, size_t threads_per_worker = 1);

  Result<QueryResult> Execute(const PhysicalPlan* root);

  /// Exchange counters of the previous Execute call — the feedback signal
  /// of the shuffle-term calibration loop.
  const ExchangeStats& last_exchange_stats() const { return exchange_stats_; }

  /// Zone-map pruning counters of the previous Execute call, summed over
  /// workers.
  const ScanStats& last_scan_stats() const { return scan_stats_; }

  size_t num_workers() const { return workers_.size(); }

 private:
  /// Per-worker chunks flowing between fragments and exchanges.
  struct Shards {
    std::vector<DataChunk> chunks;  // one per worker
    /// All rows live on worker 0 (post-gather); downstream fragments run
    /// single-worker.
    bool single = false;
    /// Every worker holds the full input (post-broadcast); chunks[0] is
    /// the one materialized copy.
    bool shared = false;
    /// When > 0: each shard is sorted by the encoded key of its first
    /// `key_prefix` columns and key sets are disjoint across shards, so a
    /// gather k-way-merges instead of concatenating (grouped aggregates).
    size_t key_prefix = 0;
  };

  /// A fragment input produced by a cut exchange: the temp table each
  /// worker scans in place of the exchange subtree.
  struct FragmentInput {
    std::vector<std::shared_ptr<Table>> per_worker;  // size 1 when shared
    bool shared = false;
    bool single = false;
    std::shared_ptr<Table> SharedForWorker(size_t w) const {
      return (shared || single) ? per_worker[0] : per_worker[w];
    }
  };

  Result<Shards> RunNode(const PhysicalPlan* node);
  Result<Shards> RunFragment(const PhysicalPlan* frag_root);

  Result<Shards> ShuffleShards(Shards in, const PhysicalPlan* exchange);
  Shards BroadcastShards(Shards in, const PhysicalPlan* exchange);
  Shards GatherShards(Shards in, const PhysicalPlan* exchange);

  /// Concatenate (or key-merge) shards into one chunk, in worker order.
  DataChunk MergeShards(Shards* shards,
                        const std::vector<LogicalType>& types) const;

  /// Clone `node` for one worker: cut exchanges become temp-table scans,
  /// base scans get the worker's row-group range. `input_rows` accumulates
  /// the rows this worker would read (empty workers are skipped).
  PhysicalPlanPtr CloneForWorker(
      const PhysicalPlan* node, size_t worker, bool single,
      const std::map<const PhysicalPlan*, FragmentInput>& inputs,
      double* input_rows) const;

  struct Worker {
    std::unique_ptr<LocalEngine> engine;
  };

  std::vector<Worker> workers_;
  ThreadPool pool_;  // one slot per worker; fragments fan out across it
  ExchangeStats exchange_stats_;
  ScanStats scan_stats_;
};

}  // namespace costdb
