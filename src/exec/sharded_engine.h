#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "exec/engine.h"
#include "net/transport.h"

namespace costdb {

/// How worker shards execute: on in-process LocalEngines fanned out over a
/// thread pool (the historical mode), or in forked worker processes whose
/// results travel back serialized in the wire format. Process mode is the
/// configuration where the socket transport's link costs stop being a
/// simulation: every byte a fragment returns genuinely crosses an address
/// space.
enum class WorkerMode {
  kThreads = 0,
  kProcesses = 1,
};

const char* WorkerModeName(WorkerMode mode);

/// One observed exchange execution, in the cost model's vocabulary. The
/// CalibrationUpdater folds these into the calibration's shuffle term
/// (bytes / shuffle_gibps + partitions * shuffle_dispatch_seconds), so
/// `bytes` counts what the measured wall time actually processed — every
/// payload byte the in-process movement copied (a broadcast materializes
/// one shared copy, not W wire copies) — while the logical cross-worker
/// charge lives in ExchangeStats::bytes_moved(). When the exchange ran
/// over a serializing transport, `wire_bytes`/`link_seconds` isolate the
/// serialization + link share of `seconds`; ObserveTransport calibrates
/// the link terms from exactly these fields (and ObserveShuffles subtracts
/// them, so the copy term never chases link time).
struct ExchangeTiming {
  ExchangeKind kind = ExchangeKind::kShuffle;
  double bytes = 0.0;      // payload bytes the movement copied
  size_t partitions = 0;   // receiver partitions dispatched
  double seconds = 0.0;    // wall time of the repartition/copy step
  TransportKind transport = TransportKind::kInProcess;
  double wire_bytes = 0.0;    // serialized frame bytes (0 for in-process)
  size_t transfers = 0;       // transport Send calls this exchange made
  double link_seconds = 0.0;  // serialize+transfer share of `seconds`
};

/// Data-movement counters of one exchange kind within one Execute call.
struct ExchangeKindStats {
  size_t count = 0;
  size_t rows_moved = 0;      // rows that left their producing worker
  double bytes_moved = 0.0;   // payload bytes of those rows
  double seconds = 0.0;       // wall time spent in this exchange kind
  double wire_bytes = 0.0;    // serialized frame bytes over the transport
  double link_seconds = 0.0;  // serialize+transfer share of `seconds`
};

/// Data-movement counters of one ShardedEngine::Execute call, broken down
/// by exchange kind (shuffle vs broadcast vs gather move very different
/// byte volumes; a single sum hid which one dominated).
struct ExchangeStats {
  TransportKind transport = TransportKind::kInProcess;
  ExchangeKindStats shuffle;
  ExchangeKindStats broadcast;
  ExchangeKindStats gather;
  std::vector<ExchangeTiming> timings;  // per executed exchange, plan order

  size_t exchanges() const {
    return shuffle.count + broadcast.count + gather.count;
  }
  size_t rows_moved() const {
    return shuffle.rows_moved + broadcast.rows_moved + gather.rows_moved;
  }
  double bytes_moved() const {
    return shuffle.bytes_moved + broadcast.bytes_moved + gather.bytes_moved;
  }
  double seconds() const {
    return shuffle.seconds + broadcast.seconds + gather.seconds;
  }
  double wire_bytes() const {
    return shuffle.wire_bytes + broadcast.wire_bytes + gather.wire_bytes;
  }
  double link_seconds() const {
    return shuffle.link_seconds + broadcast.link_seconds +
           gather.link_seconds;
  }

  ExchangeKindStats& ByKind(ExchangeKind kind) {
    switch (kind) {
      case ExchangeKind::kBroadcast:
        return broadcast;
      case ExchangeKind::kGather:
        return gather;
      default:
        return shuffle;  // kShuffle; kLocal never records stats
    }
  }
};

/// What an elastic width decision can observe at one fragment boundary —
/// the repartition point where an exchange is about to rebucket its input
/// anyway, so changing the consumer's worker count costs only the delta
/// (spin-up + extra receiver partitions), not an extra data movement.
struct FragmentBoundary {
  int index = 0;                 // 0-based ordinal of this boundary
  size_t current_workers = 0;    // width the producers ran at
  double elapsed_seconds = 0.0;  // wall time since Execute began
  /// Wall time spent producing this fragment's exchange inputs (the
  /// just-finished upstream fragments and their exchanges).
  double producer_seconds = 0.0;
  double pending_bytes = 0.0;    // exchange payload about to rebucket
  double pending_rows = 0.0;
  /// Cut exchanges not yet executed anywhere in the plan — a coarse
  /// how-much-is-left signal (0 at the final gather).
  size_t cuts_remaining = 0;
};

/// Width chosen for the fragment about to run; values are clamped to
/// [1, +inf) and missing workers are spun up on demand.
using WidthDecider = std::function<size_t(const FragmentBoundary&)>;

/// One fragment execution at one width (elastic runs interleave widths).
struct FragmentUsage {
  size_t workers = 0;    // width the fragment ran at (1 for post-gather)
  double seconds = 0.0;  // fragment wall time (workers run concurrently)
};

/// Machine-time ledger of one ShardedEngine::Execute call, billed the way
/// the paper says clouds bill: every wall-clock second is charged at the
/// worker count held during it — blocked or skipped workers included —
/// plus the spin-up time of workers added mid-query. This is what the
/// cloud billing layer converts to dollars for elastic runs.
struct WorkerUsage {
  double wall_seconds = 0.0;
  double worker_seconds = 0.0;   // sum of wall segments x active width
  size_t peak_workers = 0;
  size_t min_workers = 0;
  size_t resizes = 0;            // applied width changes
  size_t workers_spun_up = 0;    // engines created after Execute began
  double spinup_seconds = 0.0;   // wall time spent creating them
  std::vector<FragmentUsage> fragments;  // per executed fragment, run order
};

/// In-memory payload bytes of a chunk (fixed 8B numerics, observed string
/// lengths + a 4B offset word) — what the exchange stats and the shuffle
/// calibration account as "bytes on the wire".
double ChunkPayloadBytes(const DataChunk& chunk);

/// Construction knobs of a ShardedEngine — width, per-worker threading,
/// and the two orthogonal distribution axes (how exchanged partitions
/// travel, and where fragments execute). Any transport composes with any
/// worker mode; results are bit-identical across all four combinations
/// for order-stable plans (tested in sharded_test).
struct ShardedEngineOptions {
  size_t workers = 1;
  size_t threads_per_worker = 1;
  TransportKind transport = TransportKind::kInProcess;
  WorkerMode worker_mode = WorkerMode::kThreads;
};

/// Partitioned multi-worker execution: runs a physical plan across N
/// workers, each a LocalEngine over a horizontal slice of the data,
/// stitched together by real exchange operators.
///
/// The same distributed-shaped plans the optimizer already emits (two-phase
/// aggregates, join-side shuffles/broadcasts, root gather) drive execution:
/// the plan is split into *fragments* at exchange boundaries. Every worker
/// runs each fragment on its slice — base-table scans are restricted to the
/// worker's contiguous row-group range (whole partitions for a partitioned
/// table; see storage/partition.h), and exchange inputs arrive as temp
/// tables filled by the parent exchange:
///   - shuffle:   rows are re-bucketed by hash(partition_exprs) % width,
///   - broadcast: every worker receives the full input,
///   - gather:    worker 0 receives everything; downstream fragments of a
///                gathered input run single-worker,
///   - local:     co-partitioned pass-through — no row moves; the fragment
///                keeps both sides and joins/aggregates partition-wise.
///
/// Elasticity: the worker count may change at fragment boundaries. Before
/// a fragment's cut exchanges rebucket, an optional WidthDecider (see
/// SetResizer; runtime/elastic_controller.h supplies the policy-driven
/// one) picks the width the fragment runs at; shuffles then hash into that
/// many buckets and missing workers spin up lazily. Because exchanges
/// rebucket by hash % width regardless, a resize changes no data-movement
/// semantics — and because co-partitioned fragments assign whole
/// partitions to workers via WorkerGroupRange at whatever width is active,
/// partition-wise joins stay correctly aligned across resizes. Machine
/// time is metered per width segment in last_usage() so elastic runs are
/// billed the worker-seconds they actually held.
///
/// Determinism and LocalEngine parity: all cross-worker merges happen in
/// worker order, worker slices are contiguous shares of the source order,
/// and grouped-aggregate outputs are gathered by k-way merge on the same
/// encoded group key that orders LocalEngine's aggregate output — so
/// results are bit-identical to LocalEngine (and across worker counts AND
/// across arbitrary resize schedules) for order-stable plans:
/// scans/filters/projections, broadcast and co-partitioned joins, grouped
/// and global aggregates, and sorts. Repartition (shuffle) joins produce
/// the same multiset in an order that is deterministic per width schedule
/// but only canonical up to the next order-fixing operator (aggregate or
/// sort). Floating-point SUM/AVG over double columns re-associates across
/// worker partials (integer aggregates stay exact). Partial aggregates
/// emit nothing on an empty shard and NULL for value-less MIN/MAX states
/// (PhysicalPlan::agg_is_partial), so empty or all-NULL shards cannot
/// poison merged extrema.
class ShardedEngine {
 public:
  explicit ShardedEngine(const ShardedEngineOptions& options);
  explicit ShardedEngine(size_t num_workers, size_t threads_per_worker = 1)
      : ShardedEngine(ShardedEngineOptions{num_workers, threads_per_worker,
                                           TransportKind::kInProcess,
                                           WorkerMode::kThreads}) {}

  Result<QueryResult> Execute(const PhysicalPlan* root);

  /// Install (or clear, with nullptr-like default) the width decision hook
  /// consulted at each resizable fragment boundary. The decider runs on
  /// the coordinating thread between fragments; it must be fast and must
  /// not call back into the engine.
  void SetResizer(WidthDecider decider) { resizer_ = std::move(decider); }

  /// Exchange counters of the previous Execute call — the feedback signal
  /// of the shuffle-term calibration loop.
  const ExchangeStats& last_exchange_stats() const { return exchange_stats_; }

  /// Worker-second ledger of the previous Execute call — the feedback
  /// signal of the elastic billing loop.
  const WorkerUsage& last_usage() const { return usage_; }

  /// Zone-map pruning counters of the previous Execute call, summed over
  /// workers.
  const ScanStats& last_scan_stats() const { return scan_stats_; }

  /// Fused-kernel counters of the previous Execute call, summed over
  /// workers (fusion annotations ride on each worker's plan clone, so
  /// every shard runs — or falls back — independently).
  const FusedExecStats& last_fused_stats() const { return fused_stats_; }

  /// Block-cache counters of the previous Execute call, summed over
  /// workers (each worker pins its own shard's cold blocks through the
  /// shared BlockCache).
  const BlockCacheStats& last_block_stats() const { return block_stats_; }

  /// Current execution width (the constructor's count until a resize).
  size_t num_workers() const { return active_; }

  /// How exchanged partitions travel between workers.
  TransportKind transport() const { return transport_->kind(); }

  /// Where fragments execute (threads vs forked processes).
  WorkerMode worker_mode() const { return worker_mode_; }

  /// Transport counters accumulated since the previous Execute call began
  /// (exchange-granular deltas live in last_exchange_stats().timings).
  const TransportStats& transport_stats() const {
    return transport_->stats();
  }

 private:
  /// Per-worker chunks flowing between fragments and exchanges.
  struct Shards {
    std::vector<DataChunk> chunks;  // one per worker
    /// All rows live on worker 0 (post-gather); downstream fragments run
    /// single-worker.
    bool single = false;
    /// Every worker holds the full input (post-broadcast); chunks[0] is
    /// the one materialized copy.
    bool shared = false;
    /// When > 0: each shard is sorted by the encoded key of its first
    /// `key_prefix` columns and key sets are disjoint across shards, so a
    /// gather k-way-merges instead of concatenating (grouped aggregates).
    size_t key_prefix = 0;
  };

  /// A fragment input produced by a cut exchange: the temp table each
  /// worker scans in place of the exchange subtree.
  struct FragmentInput {
    std::vector<std::shared_ptr<Table>> per_worker;  // size 1 when shared
    bool shared = false;
    bool single = false;
    std::shared_ptr<Table> SharedForWorker(size_t w) const {
      return (shared || single) ? per_worker[0] : per_worker[w];
    }
  };

  Result<Shards> RunNode(const PhysicalPlan* node);
  Result<Shards> RunFragment(const PhysicalPlan* frag_root);

  /// Apply one cut exchange to its producer's output, rebucketing for a
  /// consumer fragment that will run at `width` workers.
  Result<Shards> ApplyExchange(const PhysicalPlan* exchange, Shards in,
                               size_t width);
  Result<Shards> ShuffleShards(Shards in, const PhysicalPlan* exchange,
                               size_t width);
  Result<Shards> BroadcastShards(Shards in, const PhysicalPlan* exchange,
                                 size_t width);
  Result<Shards> GatherShards(Shards in, const PhysicalPlan* exchange);

  /// Close one exchange's books: compute this exchange's transport delta
  /// against `before`, record the timing, and fold it into the per-kind
  /// stats bucket.
  void RecordExchange(ExchangeTiming timing, const TransportStats& before,
                      size_t rows_moved, double bytes_moved);

  /// Consult the resizer at a fragment boundary and switch the active
  /// width (spinning up workers as needed). Returns the width to run at.
  size_t DecideWidth(double producer_seconds, double pending_bytes,
                     double pending_rows);

  /// Grow the worker vector (and the fragment fan-out pool) to `n`,
  /// metering the spin-up wall time into usage_.
  void EnsureWorkers(size_t n);

  /// Close the current constant-width billing segment at `now` and open
  /// the next one (called on width changes and at Execute end).
  void CloseUsageSegment(double now);

  /// Concatenate (or key-merge) shards into one chunk, in worker order.
  DataChunk MergeShards(Shards* shards,
                        const std::vector<LogicalType>& types) const;

  /// Clone `node` for one worker of `width`: cut exchanges become
  /// temp-table scans, base scans get the worker's row-group range.
  /// `input_rows` accumulates the rows this worker would read (empty
  /// workers are skipped).
  PhysicalPlanPtr CloneForWorker(
      const PhysicalPlan* node, size_t worker, size_t width, bool single,
      const std::map<const PhysicalPlan*, FragmentInput>& inputs,
      double* input_rows) const;

  struct Worker {
    std::unique_ptr<LocalEngine> engine;  // null in process mode
  };

  size_t threads_per_worker_ = 1;
  size_t initial_workers_ = 1;  // width every Execute starts from
  WorkerMode worker_mode_ = WorkerMode::kThreads;
  std::vector<Worker> workers_;
  size_t active_ = 1;  // current execution width (<= workers_.size())
  /// One slot per worker; fragments fan out across it. unique_ptr so a
  /// mid-query grow can rebuild it wider between fragments. Null in
  /// process mode: the coordinator stays single-threaded there so fork()
  /// never races a pool thread, and fragment fan-out is one child process
  /// per worker instead.
  std::unique_ptr<ThreadPool> pool_;
  /// How exchanged partitions travel; owned per engine (the socketpair is
  /// engine state). Never null.
  std::unique_ptr<ExchangeTransport> transport_;
  WidthDecider resizer_;

  ExchangeStats exchange_stats_;
  ScanStats scan_stats_;
  FusedExecStats fused_stats_;
  BlockCacheStats block_stats_;
  WorkerUsage usage_;
  double exec_start_ = 0.0;
  double segment_start_ = 0.0;  // start of the current constant-width span
  int boundary_index_ = 0;
  size_t cuts_remaining_ = 0;
};

}  // namespace costdb
