#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/binder.h"
#include "storage/table.h"

namespace costdb {

struct LogicalPlan;
using LogicalPlanPtr = std::shared_ptr<LogicalPlan>;

/// Logical operator tree — the working representation of the optimizer's
/// DAG-planning stage (join ordering, filter pushdown) and of the bushy
/// rewriter, before physical operators, exchanges, and DOP enter the
/// picture.
struct LogicalPlan {
  enum class Kind {
    kScan,       // base table with pushed-down filters + column pruning
    kJoin,       // inner equi-join
    kFilter,     // residual predicate
    kAggregate,  // hash aggregation
    kProject,    // final projection
    kSort,
    kLimit,
  };

  Kind kind = Kind::kScan;
  std::vector<LogicalPlanPtr> children;

  // kScan
  std::shared_ptr<Table> table;
  std::string alias;
  std::vector<std::string> scan_columns;  // qualified output names
  std::vector<ExprPtr> pushed_filters;

  // kJoin: equi-key pairs (left side expr, right side expr)
  std::vector<std::pair<ExprPtr, ExprPtr>> join_keys;

  // kFilter
  ExprPtr predicate;

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<ExprPtr> aggregates;
  std::vector<std::string> agg_names;

  // kProject
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;

  // kSort
  std::vector<BoundOrderItem> sort_keys;

  // kLimit
  int64_t limit = -1;

  /// Estimated output cardinality, filled by the optimizer's cardinality
  /// module during planning.
  double est_rows = 0.0;

  /// Set of relation aliases contributing to this subtree (join ordering
  /// bookkeeping).
  std::vector<std::string> relation_set;

  /// Indented tree rendering for EXPLAIN-style output and tests.
  std::string ToString(int indent = 0) const;

  static LogicalPlanPtr MakeScan(std::shared_ptr<Table> table,
                                 std::string alias,
                                 std::vector<std::string> columns,
                                 std::vector<ExprPtr> filters);
  static LogicalPlanPtr MakeJoin(
      LogicalPlanPtr left, LogicalPlanPtr right,
      std::vector<std::pair<ExprPtr, ExprPtr>> keys);
  static LogicalPlanPtr MakeFilter(LogicalPlanPtr child, ExprPtr predicate);
  static LogicalPlanPtr MakeAggregate(LogicalPlanPtr child,
                                      std::vector<ExprPtr> group_by,
                                      std::vector<ExprPtr> aggregates,
                                      std::vector<std::string> agg_names);
  static LogicalPlanPtr MakeProject(LogicalPlanPtr child,
                                    std::vector<ExprPtr> projections,
                                    std::vector<std::string> names);
  static LogicalPlanPtr MakeSort(LogicalPlanPtr child,
                                 std::vector<BoundOrderItem> keys);
  static LogicalPlanPtr MakeLimit(LogicalPlanPtr child, int64_t limit);
};

}  // namespace costdb
