#include "plan/logical_plan.h"

#include <algorithm>

namespace costdb {

namespace {
void MergeRelationSets(const LogicalPlanPtr& l, const LogicalPlanPtr& r,
                       std::vector<std::string>* out) {
  *out = l->relation_set;
  out->insert(out->end(), r->relation_set.begin(), r->relation_set.end());
  std::sort(out->begin(), out->end());
}
}  // namespace

std::string LogicalPlan::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case Kind::kScan: {
      out += "Scan " + alias;
      if (!pushed_filters.empty()) {
        out += " [";
        for (size_t i = 0; i < pushed_filters.size(); ++i) {
          if (i > 0) out += " AND ";
          out += pushed_filters[i]->ToString();
        }
        out += "]";
      }
      break;
    }
    case Kind::kJoin: {
      out += "Join";
      for (const auto& [l, r] : join_keys) {
        out += " " + l->ToString() + "=" + r->ToString();
      }
      break;
    }
    case Kind::kFilter:
      out += "Filter " + predicate->ToString();
      break;
    case Kind::kAggregate: {
      out += "Aggregate groups=" + std::to_string(group_by.size()) +
             " aggs=" + std::to_string(aggregates.size());
      break;
    }
    case Kind::kProject:
      out += "Project " + std::to_string(projections.size()) + " exprs";
      break;
    case Kind::kSort:
      out += "Sort";
      break;
    case Kind::kLimit:
      out += "Limit " + std::to_string(limit);
      break;
  }
  out += " (est " + std::to_string(static_cast<int64_t>(est_rows)) + " rows)\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

LogicalPlanPtr LogicalPlan::MakeScan(std::shared_ptr<Table> table,
                                     std::string alias,
                                     std::vector<std::string> columns,
                                     std::vector<ExprPtr> filters) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = Kind::kScan;
  p->table = std::move(table);
  p->alias = alias;
  p->scan_columns = std::move(columns);
  p->pushed_filters = std::move(filters);
  p->relation_set = {std::move(alias)};
  return p;
}

LogicalPlanPtr LogicalPlan::MakeJoin(
    LogicalPlanPtr left, LogicalPlanPtr right,
    std::vector<std::pair<ExprPtr, ExprPtr>> keys) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = Kind::kJoin;
  MergeRelationSets(left, right, &p->relation_set);
  p->children = {std::move(left), std::move(right)};
  p->join_keys = std::move(keys);
  return p;
}

LogicalPlanPtr LogicalPlan::MakeFilter(LogicalPlanPtr child,
                                       ExprPtr predicate) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = Kind::kFilter;
  p->relation_set = child->relation_set;
  p->children = {std::move(child)};
  p->predicate = std::move(predicate);
  return p;
}

LogicalPlanPtr LogicalPlan::MakeAggregate(LogicalPlanPtr child,
                                          std::vector<ExprPtr> group_by,
                                          std::vector<ExprPtr> aggregates,
                                          std::vector<std::string> agg_names) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = Kind::kAggregate;
  p->relation_set = child->relation_set;
  p->children = {std::move(child)};
  p->group_by = std::move(group_by);
  p->aggregates = std::move(aggregates);
  p->agg_names = std::move(agg_names);
  return p;
}

LogicalPlanPtr LogicalPlan::MakeProject(LogicalPlanPtr child,
                                        std::vector<ExprPtr> projections,
                                        std::vector<std::string> names) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = Kind::kProject;
  p->relation_set = child->relation_set;
  p->children = {std::move(child)};
  p->projections = std::move(projections);
  p->projection_names = std::move(names);
  return p;
}

LogicalPlanPtr LogicalPlan::MakeSort(LogicalPlanPtr child,
                                     std::vector<BoundOrderItem> keys) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = Kind::kSort;
  p->relation_set = child->relation_set;
  p->children = {std::move(child)};
  p->sort_keys = std::move(keys);
  return p;
}

LogicalPlanPtr LogicalPlan::MakeLimit(LogicalPlanPtr child, int64_t limit) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = Kind::kLimit;
  p->relation_set = child->relation_set;
  p->children = {std::move(child)};
  p->limit = limit;
  return p;
}

}  // namespace costdb
