#include "plan/expression.h"

#include <algorithm>

namespace costdb {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column;
    case Kind::kConstant:
      return constant.is_string() ? "'" + constant.ToString() + "'"
                                  : constant.ToString();
    case Kind::kCompare:
      return "(" + children[0]->ToString() + " " + CompareOpName(cmp) + " " +
             children[1]->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "NOT " + children[0]->ToString();
    case Kind::kArith:
      return "(" + children[0]->ToString() + " " + arith_op + " " +
             children[1]->ToString() + ")";
    case Kind::kAgg:
      if (agg == AggFunc::kCountStar) return "count(*)";
      return std::string(AggFuncName(agg)) + "(" + children[0]->ToString() +
             ")";
    case Kind::kLike: {
      std::string out =
          children[0]->ToString() + " LIKE " + children[1]->ToString();
      if (like_escape != '\0') {
        out += std::string(" ESCAPE '") + like_escape + "'";
      }
      return out;
    }
    case Kind::kParam:
      return "?" + std::to_string(param_index);
  }
  return "?";
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind == Kind::kColumn) out->push_back(column);
  for (const auto& c : children) {
    if (c) c->CollectColumns(out);
  }
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (auto& c : e->children) {
    if (c) c = c->Clone();
  }
  return e;
}

ExprPtr Expr::MakeColumn(std::string name, LogicalType type) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kColumn;
  e->column = std::move(name);
  e->type = type;
  return e;
}

ExprPtr Expr::MakeConstant(Value v, LogicalType type) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConstant;
  e->constant = std::move(v);
  e->type = type;
  return e;
}

ExprPtr Expr::MakeCompare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCompare;
  e->cmp = op;
  e->type = LogicalType::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kAnd;
  e->type = LogicalType::kBool;
  e->children = std::move(children);
  return e;
}

ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kOr;
  e->type = LogicalType::kBool;
  e->children = std::move(children);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNot;
  e->type = LogicalType::kBool;
  e->children = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeArith(char op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kArith;
  e->arith_op = op;
  // Integer arithmetic stays integral except division; anything touching a
  // double widens.
  bool any_double = l->type == LogicalType::kDouble ||
                    r->type == LogicalType::kDouble || op == '/';
  e->type = any_double ? LogicalType::kDouble : LogicalType::kInt64;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::MakeAgg(AggFunc f, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kAgg;
  e->agg = f;
  if (arg) {
    e->children = {arg};
  }
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      e->type = LogicalType::kInt64;
      break;
    case AggFunc::kAvg:
      e->type = LogicalType::kDouble;
      break;
    case AggFunc::kSum:
      e->type = arg && arg->type == LogicalType::kInt64 ? LogicalType::kInt64
                                                        : LogicalType::kDouble;
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      e->type = arg ? arg->type : LogicalType::kInt64;
      break;
  }
  return e;
}

ExprPtr Expr::MakeParam(int index, LogicalType type) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kParam;
  e->param_index = index;
  e->type = type;
  return e;
}

ExprPtr Expr::MakeLike(ExprPtr input, std::string pattern, char escape) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLike;
  e->type = LogicalType::kBool;
  e->like_escape = escape;
  e->children = {std::move(input),
                 MakeConstant(Value(std::move(pattern)), LogicalType::kVarchar)};
  return e;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind == Expr::Kind::kAnd) {
    for (const auto& c : e->children) SplitConjuncts(c, out);
    return;
  }
  out->push_back(e);
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  if (conjuncts.size() == 1) return conjuncts[0];
  return Expr::MakeAnd(std::move(conjuncts));
}

bool ReferencesOnlyPrefix(const ExprPtr& e, const std::string& prefix) {
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  if (cols.empty()) return true;
  return std::all_of(cols.begin(), cols.end(), [&](const std::string& c) {
    return c.rfind(prefix, 0) == 0;
  });
}

bool MatchColumnCompareConstant(const ExprPtr& e, std::string* column,
                                CompareOp* op, Value* constant) {
  if (!e || e->kind != Expr::Kind::kCompare) return false;
  const ExprPtr& l = e->children[0];
  const ExprPtr& r = e->children[1];
  if (l->kind == Expr::Kind::kColumn && r->kind == Expr::Kind::kConstant) {
    *column = l->column;
    *op = e->cmp;
    *constant = r->constant;
    return true;
  }
  if (r->kind == Expr::Kind::kColumn && l->kind == Expr::Kind::kConstant) {
    *column = r->column;
    *op = SwapCompareOp(e->cmp);
    *constant = l->constant;
    return true;
  }
  return false;
}

bool ContainsParam(const ExprPtr& e) {
  if (!e) return false;
  if (e->kind == Expr::Kind::kParam) return true;
  return std::any_of(e->children.begin(), e->children.end(), ContainsParam);
}

ExprPtr SubstituteParams(const ExprPtr& e, const std::vector<Value>& params) {
  if (!e) return e;
  if (e->kind == Expr::Kind::kParam &&
      e->param_index >= 0 &&
      static_cast<size_t>(e->param_index) < params.size()) {
    return Expr::MakeConstant(params[e->param_index], e->type);
  }
  if (!ContainsParam(e)) return e;  // share unchanged subtrees
  auto copy = std::make_shared<Expr>(*e);
  for (auto& c : copy->children) c = SubstituteParams(c, params);
  return copy;
}

bool MatchEquiJoin(const ExprPtr& e, std::string* left_col,
                   std::string* right_col) {
  if (!e || e->kind != Expr::Kind::kCompare || e->cmp != CompareOp::kEq) {
    return false;
  }
  const ExprPtr& l = e->children[0];
  const ExprPtr& r = e->children[1];
  if (l->kind != Expr::Kind::kColumn || r->kind != Expr::Kind::kColumn) {
    return false;
  }
  auto prefix = [](const std::string& qualified) {
    auto dot = qualified.find('.');
    return dot == std::string::npos ? qualified : qualified.substr(0, dot);
  };
  if (prefix(l->column) == prefix(r->column)) return false;
  *left_col = l->column;
  *right_col = r->column;
  return true;
}

}  // namespace costdb
