#include "plan/physical_plan.h"

#include "common/table_printer.h"

namespace costdb {

const char* ExchangeKindName(ExchangeKind k) {
  switch (k) {
    case ExchangeKind::kShuffle:
      return "Shuffle";
    case ExchangeKind::kBroadcast:
      return "Broadcast";
    case ExchangeKind::kGather:
      return "Gather";
  }
  return "?";
}

const char* PhysicalPlan::KindName() const {
  switch (kind) {
    case Kind::kTableScan:
      return "TableScan";
    case Kind::kFilter:
      return "Filter";
    case Kind::kProject:
      return "Project";
    case Kind::kHashJoin:
      return "HashJoin";
    case Kind::kHashAggregate:
      return "HashAggregate";
    case Kind::kSort:
      return "Sort";
    case Kind::kLimit:
      return "Limit";
    case Kind::kExchange:
      return "Exchange";
  }
  return "?";
}

std::string PhysicalPlan::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + KindName();
  switch (kind) {
    case Kind::kTableScan: {
      out += " " + alias;
      if (!scan_filters.empty()) {
        out += " [";
        for (size_t i = 0; i < scan_filters.size(); ++i) {
          if (i > 0) out += " AND ";
          out += scan_filters[i]->ToString();
        }
        out += "]";
      }
      break;
    }
    case Kind::kFilter:
      out += " " + predicate->ToString();
      break;
    case Kind::kHashJoin: {
      for (size_t i = 0; i < probe_keys.size(); ++i) {
        out += " " + probe_keys[i]->ToString() + "=" +
               build_keys[i]->ToString();
      }
      break;
    }
    case Kind::kExchange:
      out += std::string(" ") + ExchangeKindName(exchange_kind);
      break;
    case Kind::kLimit:
      out += " " + std::to_string(limit);
      break;
    default:
      break;
  }
  out += StrFormat(" (est %.0f rows)", est_rows);
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

size_t PhysicalPlan::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < output_names.size(); ++i) {
    if (output_names[i] == name) return i;
  }
  return static_cast<size_t>(-1);
}

}  // namespace costdb
