#include "plan/physical_plan.h"

#include "common/table_printer.h"
#include "storage/partition.h"

namespace costdb {

const char* ExchangeKindName(ExchangeKind k) {
  switch (k) {
    case ExchangeKind::kShuffle:
      return "Shuffle";
    case ExchangeKind::kBroadcast:
      return "Broadcast";
    case ExchangeKind::kGather:
      return "Gather";
    case ExchangeKind::kLocal:
      return "Local";
  }
  return "?";
}

const char* PhysicalPlan::KindName() const {
  switch (kind) {
    case Kind::kTableScan:
      return "TableScan";
    case Kind::kFilter:
      return "Filter";
    case Kind::kProject:
      return "Project";
    case Kind::kHashJoin:
      return "HashJoin";
    case Kind::kHashAggregate:
      return "HashAggregate";
    case Kind::kSort:
      return "Sort";
    case Kind::kLimit:
      return "Limit";
    case Kind::kExchange:
      return "Exchange";
  }
  return "?";
}

std::string PhysicalPlan::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + KindName();
  switch (kind) {
    case Kind::kTableScan: {
      out += " " + alias;
      if (!scan_filters.empty()) {
        out += " [";
        for (size_t i = 0; i < scan_filters.size(); ++i) {
          if (i > 0) out += " AND ";
          out += scan_filters[i]->ToString();
        }
        out += "]";
      }
      if (fuse_scan_filter) out += " fused";
      break;
    }
    case Kind::kFilter:
      out += " " + predicate->ToString();
      break;
    case Kind::kHashJoin: {
      for (size_t i = 0; i < probe_keys.size(); ++i) {
        out += " " + probe_keys[i]->ToString() + "=" +
               build_keys[i]->ToString();
      }
      if (fuse_probe) out += " fused";
      break;
    }
    case Kind::kHashAggregate:
      if (fuse_aggregate) out += " fused";
      break;
    case Kind::kExchange:
      out += std::string(" ") + ExchangeKindName(exchange_kind);
      break;
    case Kind::kLimit:
      out += " " + std::to_string(limit);
      break;
    default:
      break;
  }
  out += StrFormat(" (est %.0f rows)", est_rows);
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

size_t PhysicalPlan::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < output_names.size(); ++i) {
    if (output_names[i] == name) return i;
  }
  return static_cast<size_t>(-1);
}

namespace {

/// Apply `fn` to every expression slot of one plan node (non-recursive).
/// The single enumeration of PhysicalPlan's expression-bearing fields —
/// new fields get added here once and every traversal sees them.
template <typename Node, typename Fn>
void ForEachExprSlot(Node* node, Fn fn) {
  for (auto& f : node->scan_filters) fn(f);
  if (node->predicate) fn(node->predicate);
  for (auto& p : node->projections) fn(p);
  for (auto& k : node->probe_keys) fn(k);
  for (auto& k : node->build_keys) fn(k);
  for (auto& k : node->partition_exprs) fn(k);
  for (auto& g : node->group_by) fn(g);
  for (auto& a : node->aggregates) fn(a);
  for (auto& s : node->sort_keys) fn(s.expr);
}

}  // namespace

PhysicalPlanPtr BindPlanParams(const PhysicalPlan* root,
                               const std::vector<Value>& params) {
  if (root == nullptr) return nullptr;
  auto node = std::make_shared<PhysicalPlan>(*root);
  for (auto& child : node->children) {
    child = BindPlanParams(child.get(), params);
  }
  ForEachExprSlot(node.get(),
                  [&params](ExprPtr& e) { e = SubstituteParams(e, params); });
  return node;
}

std::pair<size_t, std::string> ScanHashPartitioning(const PhysicalPlan& scan) {
  if (scan.kind != PhysicalPlan::Kind::kTableScan || scan.table == nullptr) {
    return {0, std::string()};
  }
  const TablePartitioning* p = scan.table->partitioning();
  if (p == nullptr || p->spec.kind != PartitionKind::kHash) {
    return {0, std::string()};
  }
  return {p->spec.partitions, scan.alias + "." + p->spec.column};
}

bool PlanHasParams(const PhysicalPlan* root) {
  if (root == nullptr) return false;
  bool found = false;
  ForEachExprSlot(root, [&found](const ExprPtr& e) {
    if (ContainsParam(e)) found = true;
  });
  if (found) return true;
  for (const auto& c : root->children) {
    if (PlanHasParams(c.get())) return true;
  }
  return false;
}

}  // namespace costdb
