#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"
#include "storage/zone_map.h"

namespace costdb {

/// Aggregate functions supported by the engine.
enum class AggFunc {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* AggFuncName(AggFunc f);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Bound expression tree. Columns are referenced by their unique name
/// ("alias.column", or a derived name after aggregation/projection); the
/// executor resolves names to indices against the concrete input schema
/// when a physical pipeline is instantiated.
struct Expr {
  enum class Kind {
    kColumn,    // column reference by unique name
    kConstant,  // literal
    kCompare,   // children[0] cmp children[1]
    kAnd,       // n-ary conjunction
    kOr,        // n-ary disjunction
    kNot,       // child negation
    kArith,     // children[0] op children[1], op in + - * /
    kAgg,       // aggregate over children[0] (none for COUNT(*))
    kLike,      // children[0] LIKE pattern (constant child[1])
    kParam,     // prepared-statement placeholder, bound at Execute time
  };

  Kind kind = Kind::kConstant;
  LogicalType type = LogicalType::kInt64;  // result type

  std::string column;   // kColumn
  Value constant;       // kConstant
  CompareOp cmp = CompareOp::kEq;  // kCompare
  char arith_op = '+';  // kArith
  AggFunc agg = AggFunc::kCountStar;  // kAgg
  int param_index = 0;  // kParam: ordinal into the Execute bind vector
  /// kLike: ESCAPE character ('\0' = no escape clause). The escaped
  /// character matches literally, so patterns can match a literal % or _.
  char like_escape = '\0';
  std::vector<ExprPtr> children;

  std::string ToString() const;

  /// All column names referenced anywhere in this tree.
  void CollectColumns(std::vector<std::string>* out) const;

  /// Deep copy.
  ExprPtr Clone() const;

  // ---- constructors ----
  static ExprPtr MakeColumn(std::string name, LogicalType type);
  static ExprPtr MakeConstant(Value v, LogicalType type);
  static ExprPtr MakeCompare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeNot(ExprPtr child);
  static ExprPtr MakeArith(char op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeAgg(AggFunc f, ExprPtr arg);  // arg may be nullptr
  static ExprPtr MakeLike(ExprPtr input, std::string pattern,
                          char escape = '\0');
  static ExprPtr MakeParam(int index, LogicalType type);
};

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// AND-combine conjuncts (nullptr when empty, the single conjunct when one).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// True if the expression references only columns with the given prefix
/// ("alias." qualified names), i.e. can be pushed below a join to that side.
bool ReferencesOnlyPrefix(const ExprPtr& e, const std::string& prefix);

/// Matches `column <op> constant` (possibly reversed); fills outputs.
bool MatchColumnCompareConstant(const ExprPtr& e, std::string* column,
                                CompareOp* op, Value* constant);

/// Matches `colA = colB` across two different table prefixes.
bool MatchEquiJoin(const ExprPtr& e, std::string* left_col,
                   std::string* right_col);

/// True if any node of the tree is a kParam placeholder.
bool ContainsParam(const ExprPtr& e);

/// Deep copy with every kParam node replaced by a kConstant carrying
/// params[param_index] (the placeholder's inferred type is kept, so a NULL
/// value stays typed). Out-of-range indices are a caller bug and keep the
/// placeholder — Execute validates arity before substituting.
ExprPtr SubstituteParams(const ExprPtr& e, const std::vector<Value>& params);

}  // namespace costdb
