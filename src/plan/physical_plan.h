#pragma once

#include <memory>
#include <string>
#include <vector>

#include "plan/logical_plan.h"

namespace costdb {

struct PhysicalPlan;
using PhysicalPlanPtr = std::shared_ptr<PhysicalPlan>;

/// Data movement between pipeline stages of the distributed plan.
enum class ExchangeKind {
  kShuffle,    // hash-partition rows on a key set across consumer nodes
  kBroadcast,  // replicate the (small) input to every consumer node
  kGather,     // funnel everything to one node (final result / global sort)
  kLocal,      // co-partitioned pass-through: both sides already live on
               // the right worker, so no row crosses the wire
};

const char* ExchangeKindName(ExchangeKind k);

/// Physical operator tree. Conventions:
///   - kHashJoin: children[0] = probe side, children[1] = build side.
///   - Expressions reference columns by unique name; the executor resolves
///     them against the child's output_names when a pipeline runs.
///   - est_rows / est_bytes are optimizer estimates used by the cost
///     estimator; the simulator replaces them with true values.
struct PhysicalPlan {
  enum class Kind {
    kTableScan,
    kFilter,
    kProject,
    kHashJoin,
    kHashAggregate,
    kSort,
    kLimit,
    kExchange,
  };

  Kind kind = Kind::kTableScan;
  std::vector<PhysicalPlanPtr> children;

  /// Output schema: unique column names and their types, positionally.
  std::vector<std::string> output_names;
  std::vector<LogicalType> output_types;

  /// Optimizer estimates.
  double est_rows = 0.0;
  double est_row_bytes = 8.0;  // average bytes per output row

  // kTableScan
  std::shared_ptr<Table> table;
  std::string alias;
  std::vector<size_t> scan_column_indices;  // into the table's schema
  std::vector<ExprPtr> scan_filters;
  /// Row-group range [scan_group_begin, scan_group_end) this scan covers —
  /// how the sharded engine hands each worker its horizontal slice of the
  /// table without copying data. SIZE_MAX end = all groups.
  size_t scan_group_begin = 0;
  size_t scan_group_end = static_cast<size_t>(-1);
  double est_scanned_bytes = 0.0;  // after zone-map pruning, before filters
  double est_source_rows = 0.0;    // rows fed to the filters (post-pruning)
  double prune_keep_fraction = 1.0;  // share of row groups zone maps keep

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> projections;

  // kHashJoin: probe-side and build-side key expressions, pairwise.
  std::vector<ExprPtr> probe_keys;
  std::vector<ExprPtr> build_keys;

  // kHashAggregate
  std::vector<ExprPtr> group_by;
  std::vector<ExprPtr> aggregates;
  std::vector<std::string> agg_names;
  /// True for the partial half of a two-phase aggregation. A partial
  /// feeds another aggregate, so it must not apply the engine's NULL-free
  /// result conventions: it emits no fabricated zero row on empty input
  /// (an empty shard would poison global MIN/MAX merged across workers)
  /// and emits NULL — which the final aggregate skips — for a MIN/MAX
  /// state that saw no valid value.
  bool agg_is_partial = false;

  // kSort
  std::vector<BoundOrderItem> sort_keys;

  // kLimit
  int64_t limit = -1;

  // kExchange
  ExchangeKind exchange_kind = ExchangeKind::kShuffle;
  /// kShuffle: key expressions (over the child's output schema) whose hash
  /// picks the receiving worker. Filled by the physical planner: join keys
  /// for join-side shuffles, group-by columns for aggregate shuffles.
  std::vector<ExprPtr> partition_exprs;

  // ---- fused-kernel annotations (set by the fuse_kernels optimizer pass,
  // honored by the engine). Fusion is a *costed* decision: the pass prices
  // the fused single-pass kernel against the per-kernel vectorized chain
  // with the calibrated fused dispatch/throughput terms, and annotates only
  // where the model says fused is net-positive. The engine falls back to
  // the vectorized path at runtime if the shape fails to bind. Plain bools
  // so BindPlanParams / CloneForWorker copy-construction carries them to
  // cached prepared plans and sharded workers unchanged.
  /// kTableScan: run scan_filters as one fused single-pass select+gather.
  bool fuse_scan_filter = false;
  /// kHashJoin: probe straight off the scan's borrowed columns (fused
  /// filter→hash-probe pipeline; no intermediate filtered chunk).
  bool fuse_probe = false;
  /// kHashAggregate (global): fold survivors straight into the aggregate
  /// states (fused filter→aggregate; no materialization at all).
  bool fuse_aggregate = false;

  const char* KindName() const;

  /// EXPLAIN-style indented rendering.
  std::string ToString(int indent = 0) const;

  /// Position of `name` in output_names, or npos.
  size_t FindColumn(const std::string& name) const;
};

/// Deep copy of a plan tree with every kParam placeholder replaced by the
/// corresponding bound constant from `params` (positional). Expression
/// subtrees without placeholders stay shared with the original, so binding
/// a cached prepared plan costs one pass over the plan's expressions, not
/// a re-optimization. The original tree is untouched.
PhysicalPlanPtr BindPlanParams(const PhysicalPlan* root,
                               const std::vector<Value>& params);

/// True if any expression anywhere in the plan still carries a kParam
/// placeholder (i.e. the plan needs BindPlanParams before execution).
bool PlanHasParams(const PhysicalPlan* root);

/// Current hash partitioning of a scan node's table, as the plan
/// references it: {partition count, "alias.column"}; count 0 when the
/// table is not hash-partitioned (or the node is not a scan). The shared
/// leaf of the planner's co-partition detection (physical_planner.cc)
/// and the sharded engine's staleness validation (sharded_engine.cc) —
/// their chain *walks* differ on purpose (conservative plan-time
/// detection vs validation of planner-built chains), but what counts as
/// "hash-partitioned on X" must stay identical between them.
std::pair<size_t, std::string> ScanHashPartitioning(const PhysicalPlan& scan);

}  // namespace costdb
