#pragma once

#include <vector>

#include "plan/physical_plan.h"

namespace costdb {

/// One execution pipeline: rows stream from `source` through `operators`
/// into `sink`. Pipelines are broken at hash-join builds, aggregations, and
/// sorts; exchanges stay inside a pipeline (streaming repartition — the
/// paper contrasts this with BigQuery-style materialized "clean cuts").
struct Pipeline {
  int id = 0;

  /// Where rows come from: a TableScan node, or a breaker node
  /// (aggregate/sort output, when source_is_breaker) materialized by an
  /// earlier pipeline.
  const PhysicalPlan* source = nullptr;
  bool source_is_breaker = false;

  /// Streaming operators applied in order (filters, projections, exchange
  /// marks, probe side of hash joins, limit).
  std::vector<const PhysicalPlan*> operators;

  /// Terminal: a breaker whose state this pipeline populates. For a hash
  /// join, sink_is_build_side marks the build; nullptr = query result.
  const PhysicalPlan* sink = nullptr;
  bool sink_is_build_side = false;

  /// Pipelines that must finish before this one can run.
  std::vector<int> dependencies;
};

/// Dependency-ordered pipeline decomposition of a physical plan.
struct PipelineGraph {
  std::vector<Pipeline> pipelines;  // topological order: deps come first
  const PhysicalPlan* root = nullptr;

  std::string ToString() const;
};

/// Decompose a physical plan into its pipeline DAG. The same decomposition
/// drives the local engine, the cost estimator's query simulator, and the
/// distributed execution simulator, so their pipeline structures agree by
/// construction.
PipelineGraph BuildPipelines(const PhysicalPlan* root);

}  // namespace costdb
