#include "plan/pipeline.h"

#include <functional>
#include <map>

namespace costdb {

namespace {

class PipelineBuilder {
 public:
  PipelineGraph Build(const PhysicalPlan* root) {
    PipelineGraph graph;
    graph.root = root;
    Pipeline result;
    result.id = next_id_++;
    BuildInto(root, &result);
    pipelines_.push_back(std::move(result));
    // Topologically order: dependencies before dependents (stable).
    std::map<int, Pipeline*> by_id;
    for (auto& p : pipelines_) by_id[p.id] = &p;
    std::vector<int> order;
    std::map<int, bool> visited;
    std::function<void(int)> visit = [&](int id) {
      if (visited[id]) return;
      visited[id] = true;
      for (int dep : by_id[id]->dependencies) visit(dep);
      order.push_back(id);
    };
    for (auto& p : pipelines_) visit(p.id);
    for (int id : order) graph.pipelines.push_back(*by_id[id]);
    return graph;
  }

 private:
  /// Stream `op`'s subtree into `current`; creates child pipelines at
  /// breakers and records them as dependencies.
  void BuildInto(const PhysicalPlan* op, Pipeline* current) {
    switch (op->kind) {
      case PhysicalPlan::Kind::kTableScan:
        current->source = op;
        current->source_is_breaker = false;
        return;
      case PhysicalPlan::Kind::kFilter:
      case PhysicalPlan::Kind::kProject:
      case PhysicalPlan::Kind::kExchange:
      case PhysicalPlan::Kind::kLimit:
        BuildInto(op->children[0].get(), current);
        current->operators.push_back(op);
        return;
      case PhysicalPlan::Kind::kHashJoin: {
        // Build side becomes its own pipeline sinking into this join.
        Pipeline build;
        build.id = next_id_++;
        BuildInto(op->children[1].get(), &build);
        build.sink = op;
        build.sink_is_build_side = true;
        int build_id = build.id;
        pipelines_.push_back(std::move(build));
        // Probe side streams through this pipeline.
        BuildInto(op->children[0].get(), current);
        current->operators.push_back(op);
        current->dependencies.push_back(build_id);
        return;
      }
      case PhysicalPlan::Kind::kHashAggregate:
      case PhysicalPlan::Kind::kSort: {
        Pipeline feeder;
        feeder.id = next_id_++;
        BuildInto(op->children[0].get(), &feeder);
        feeder.sink = op;
        int feeder_id = feeder.id;
        pipelines_.push_back(std::move(feeder));
        current->source = op;
        current->source_is_breaker = true;
        current->dependencies.push_back(feeder_id);
        return;
      }
    }
  }

  int next_id_ = 0;
  std::vector<Pipeline> pipelines_;
};

}  // namespace

PipelineGraph BuildPipelines(const PhysicalPlan* root) {
  PipelineBuilder builder;
  return builder.Build(root);
}

std::string PipelineGraph::ToString() const {
  std::string out;
  for (const auto& p : pipelines) {
    out += "pipeline " + std::to_string(p.id) + ": ";
    if (p.source) {
      out += p.source->KindName();
      if (p.source->kind == PhysicalPlan::Kind::kTableScan) {
        out += "(" + p.source->alias + ")";
      }
      if (p.source_is_breaker) out += "*";
    }
    for (const auto* op : p.operators) {
      out += " -> ";
      out += op->KindName();
    }
    out += " => ";
    if (p.sink) {
      out += p.sink->KindName();
      if (p.sink_is_build_side) out += "(build)";
    } else {
      out += "Result";
    }
    if (!p.dependencies.empty()) {
      out += " [deps:";
      for (int d : p.dependencies) out += " " + std::to_string(d);
      out += "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace costdb
