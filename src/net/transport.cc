#include "net/transport.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/wire.h"
#include "storage/block/block_format.h"

namespace costdb {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class InProcessTransport final : public ExchangeTransport {
 public:
  TransportKind kind() const override { return TransportKind::kInProcess; }

  Result<DataChunk> Send(size_t /*from*/, size_t /*to*/,
                         DataChunk chunk) override {
    ++stats_.transfers;
    return chunk;
  }
};

/// Frames chunks over one AF_UNIX socketpair owned by this instance. The
/// coordinator is both producer and consumer, so Pump() interleaves
/// non-blocking writes on one end with reads on the other — a frame larger
/// than the kernel socket buffer would deadlock a write-then-read sequence,
/// and SOCK_STREAM buffers are small (~200 KiB) next to exchange payloads.
class SocketTransport final : public ExchangeTransport {
 public:
  SocketTransport() { status_ = Open(); }

  ~SocketTransport() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }

  TransportKind kind() const override { return TransportKind::kSocket; }

  Result<DataChunk> Send(size_t /*from*/, size_t /*to*/,
                         DataChunk chunk) override {
    COSTDB_RETURN_NOT_OK(status_);

    double t0 = NowSeconds();
    body_.clear();
    wire::EncodeChunk(chunk, &body_);
    frame_.clear();
    block::PutU64(&frame_, body_.size());
    frame_.append(body_);
    double t1 = NowSeconds();
    stats_.serialize_seconds += t1 - t0;
    stats_.wire_bytes += static_cast<double>(body_.size());

    COSTDB_RETURN_NOT_OK(Pump());
    double t2 = NowSeconds();
    stats_.transfer_seconds += t2 - t1;
    ++stats_.transfers;

    if (rx_.size() != 8 + body_.size()) {
      return Status::Internal("socket transport: framing desync");
    }
    uint64_t len = 0;
    std::memcpy(&len, rx_.data(), 8);
    if (len != body_.size()) {
      return Status::Internal("socket transport: length prefix mismatch");
    }
    Result<DataChunk> decoded = wire::DecodeChunk(rx_.data() + 8, len);
    stats_.serialize_seconds += NowSeconds() - t2;
    return decoded;
  }

 private:
  Status Open() {
    COSTDB_RETURN_NOT_OK(MakeSocketPair(fds_));
    for (int fd : fds_) {
      int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        return Status::Internal("socket transport: O_NONBLOCK failed");
      }
    }
    return Status::OK();
  }

  /// Push frame_ into fds_[0] while draining fds_[1] until the whole frame
  /// has round-tripped. Single-threaded: poll() tells us which direction
  /// can make progress so neither side blocks the other.
  Status Pump() {
    size_t written = 0;
    rx_.clear();
    const size_t expect = frame_.size();
    char buf[64 * 1024];
    while (rx_.size() < expect) {
      struct pollfd pfds[2];
      pfds[0] = {fds_[0], static_cast<short>(written < expect ? POLLOUT : 0),
                 0};
      pfds[1] = {fds_[1], POLLIN, 0};
      int rc = ::poll(pfds, 2, /*timeout_ms=*/10'000);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::Internal("socket transport: poll failed");
      }
      if (rc == 0) {
        return Status::Internal("socket transport: transfer timed out");
      }
      if (written < expect && (pfds[0].revents & (POLLOUT | POLLERR))) {
        long n = ::write(fds_[0], frame_.data() + written, expect - written);
        if (n < 0) {
          if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
            return Status::Internal("socket transport: write failed");
          }
        } else {
          written += static_cast<size_t>(n);
          stats_.socket_bytes += static_cast<double>(n);
        }
      }
      if (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) {
        long n = ::read(fds_[1], buf, sizeof(buf));
        if (n < 0) {
          if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
            return Status::Internal("socket transport: read failed");
          }
        } else if (n == 0) {
          return Status::Internal("socket transport: peer closed mid-frame");
        } else {
          rx_.append(buf, static_cast<size_t>(n));
        }
      }
    }
    return Status::OK();
  }

  Status status_;
  int fds_[2] = {-1, -1};
  std::string body_;
  std::string frame_;
  std::string rx_;
};

}  // namespace

const char* TransportName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "in-process";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

std::unique_ptr<ExchangeTransport> MakeTransport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return std::make_unique<InProcessTransport>();
    case TransportKind::kSocket:
      return std::make_unique<SocketTransport>();
  }
  return std::make_unique<InProcessTransport>();
}

Status ReadFull(int fd, void* buf, size_t n, const ReadFn& fn) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    long r = fn ? fn(fd, p + got, n - got) : ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;  // signal mid-read: retry, don't lose data
      return Status::Internal(std::string("ReadFull: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::Internal("ReadFull: EOF before full frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n, const WriteFn& fn) {
  const char* p = static_cast<const char*>(buf);
  size_t put = 0;
  while (put < n) {
    long r = fn ? fn(fd, p + put, n - put) : ::write(fd, p + put, n - put);
    if (r < 0) {
      if (errno == EINTR) continue;  // short write via signal: resume at put
      return Status::Internal(std::string("WriteFull: ") +
                              std::strerror(errno));
    }
    put += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status MakeSocketPair(int fds[2]) {
  int type = SOCK_STREAM;
#ifdef SOCK_CLOEXEC
  type |= SOCK_CLOEXEC;
#endif
  if (::socketpair(AF_UNIX, type, 0, fds) != 0) {
    return Status::Internal(std::string("socketpair: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace costdb
