#include "net/wire.h"

#include <cstring>

#include "storage/block/block_format.h"

namespace costdb {
namespace wire {

namespace {

using block::ByteCursor;
using block::Fnv1a64;
using block::PutU32;
using block::PutU64;

/// Defensive ceilings on decoded frame headers: a corrupted count must
/// fail fast, not drive a multi-gigabyte allocation before the checksum
/// would have caught it.
constexpr uint64_t kMaxColumns = 1u << 16;
constexpr uint64_t kMaxRows = 1ull << 40;

void AppendPage(std::string* out, const char* data, size_t n) {
  PutU64(out, n);
  out->append(data, n);
  PutU64(out, Fnv1a64(data, n));
}

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("wire frame rejected: ") + what);
}

}  // namespace

void EncodeChunk(const DataChunk& chunk, std::string* out) {
  const size_t body_start_after_magic = out->size() + 8;
  PutU64(out, kWireMagic);
  PutU32(out, kWireFormatVersion);
  PutU32(out, static_cast<uint32_t>(chunk.num_columns()));
  PutU64(out, chunk.num_rows());
  std::string page;
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    const ColumnVector& col = chunk.column(c);
    out->push_back(static_cast<char>(col.type()));
    out->push_back(col.has_nulls() ? 1 : 0);
    page.clear();
    switch (col.physical_type()) {
      case PhysicalType::kInt64:
        for (int64_t v : col.ints()) PutU64(&page, static_cast<uint64_t>(v));
        break;
      case PhysicalType::kDouble:
        for (double v : col.doubles()) block::PutDouble(&page, v);
        break;
      case PhysicalType::kString:
        for (const auto& s : col.strings()) {
          PutU32(&page, static_cast<uint32_t>(s.size()));
          page.append(s);
        }
        break;
    }
    AppendPage(out, page.data(), page.size());
    if (col.has_nulls()) {
      const auto& mask = col.validity();
      AppendPage(out, reinterpret_cast<const char*>(mask.data()), mask.size());
    }
  }
  // Body checksum covers everything after the leading magic, so header
  // corruption (a flipped row count, a forged page size) is caught even
  // when every page checksum still matches its (re-sized) slice.
  PutU64(out, Fnv1a64(out->data() + body_start_after_magic,
                      out->size() - body_start_after_magic));
  PutU64(out, kWireMagic);
}

Result<DataChunk> DecodeChunk(const char* data, size_t size) {
  // magic + version/columns + rows + body_fnv + magic is the minimal frame.
  if (size < 8 + 4 + 4 + 8 + 8 + 8) return Corrupt("truncated frame");
  ByteCursor head{data, size, 0, true};
  if (head.GetU64() != kWireMagic) return Corrupt("bad leading magic");
  ByteCursor tail{data, size, size - 16, true};
  const uint64_t body_fnv = tail.GetU64();
  if (tail.GetU64() != kWireMagic) return Corrupt("bad trailing magic");
  if (Fnv1a64(data + 8, size - 8 - 16) != body_fnv) {
    return Corrupt("body checksum mismatch");
  }

  ByteCursor cur{data, size - 16, 8, true};  // body only; footer excluded
  const uint32_t version = cur.GetU32();
  if (version != kWireFormatVersion) return Corrupt("unsupported version");
  const uint64_t columns = cur.GetU32();
  const uint64_t rows = cur.GetU64();
  if (!cur.ok || columns > kMaxColumns || rows > kMaxRows) {
    return Corrupt("implausible header");
  }

  DataChunk chunk;
  for (uint64_t c = 0; c < columns; ++c) {
    if (!cur.Need(2)) return Corrupt("truncated column header");
    const uint8_t type_byte = static_cast<uint8_t>(cur.data[cur.pos++]);
    const uint8_t has_validity = static_cast<uint8_t>(cur.data[cur.pos++]);
    if (type_byte > static_cast<uint8_t>(LogicalType::kDate) ||
        has_validity > 1) {
      return Corrupt("bad column header");
    }
    const LogicalType type = static_cast<LogicalType>(type_byte);
    ColumnVector col(type);

    const uint64_t payload_size = cur.GetU64();
    if (!cur.Need(payload_size)) return Corrupt("truncated payload page");
    const char* payload = cur.data + cur.pos;
    cur.pos += payload_size;
    const uint64_t payload_fnv = cur.GetU64();
    if (!cur.ok) return Corrupt("truncated payload page");
    if (Fnv1a64(payload, payload_size) != payload_fnv) {
      return Corrupt("payload checksum mismatch");
    }
    switch (PhysicalTypeOf(type)) {
      case PhysicalType::kInt64: {
        if (payload_size != rows * 8) return Corrupt("payload size mismatch");
        col.ints().resize(rows);
        if (rows > 0) std::memcpy(col.ints().data(), payload, payload_size);
        break;
      }
      case PhysicalType::kDouble: {
        if (payload_size != rows * 8) return Corrupt("payload size mismatch");
        col.doubles().resize(rows);
        if (rows > 0) std::memcpy(col.doubles().data(), payload, payload_size);
        break;
      }
      case PhysicalType::kString: {
        ByteCursor sc{payload, payload_size, 0, true};
        col.strings().reserve(rows);
        for (uint64_t r = 0; r < rows; ++r) {
          const uint32_t len = sc.GetU32();
          col.strings().push_back(sc.GetBytes(len));
        }
        if (!sc.ok || sc.pos != payload_size) {
          return Corrupt("malformed string page");
        }
        break;
      }
    }
    if (has_validity) {
      const uint64_t mask_size = cur.GetU64();
      if (mask_size != rows) return Corrupt("validity size mismatch");
      if (!cur.Need(mask_size)) return Corrupt("truncated validity page");
      const char* mask = cur.data + cur.pos;
      cur.pos += mask_size;
      const uint64_t mask_fnv = cur.GetU64();
      if (!cur.ok) return Corrupt("truncated validity page");
      if (Fnv1a64(mask, rows) != mask_fnv) {
        return Corrupt("validity checksum mismatch");
      }
      auto& validity = col.MutableValidity();
      validity.assign(reinterpret_cast<const uint8_t*>(mask),
                      reinterpret_cast<const uint8_t*>(mask) + rows);
      for (uint8_t bit : validity) {
        if (bit > 1) return Corrupt("bad validity byte");
      }
    }
    chunk.AddColumn(std::move(col));
  }
  if (!cur.ok || cur.pos != size - 16) return Corrupt("trailing garbage");
  return chunk;
}

}  // namespace wire
}  // namespace costdb
