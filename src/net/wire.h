#pragma once

/// Wire format of one DataChunk crossing an exchange transport — the
/// serialized twin of the block format's column pages (docs/TRANSPORT.md
/// has the annotated diagram):
///
///   [magic u64]
///   [version u32][columns u32][rows u64]
///   per column:
///     [logical type u8][has_validity u8]
///     [payload_size u64][payload][payload_fnv u64]
///     [validity_size u64][validity bytes][validity_fnv u64]
///                                               only when has_validity
///   [body_fnv u64][magic u64]
///
/// Payload pages reuse the block conventions exactly: fixed-width payloads
/// are rows*8 little-endian bytes (doubles bit-cast), strings are
/// u32-length-prefixed, validity is one byte per row (1 = valid, 0 = NULL)
/// mirroring ColumnVector's in-memory mask. Every page carries an FNV-1a
/// checksum and the whole body a second one, so a torn or corrupted frame
/// surfaces as a Status on the receiving side instead of wrong rows.
/// Encode/Decode round-trip bit-identically — the sharded engine's
/// cross-transport parity depends on it (tested in net_test).

#include <string>

#include "common/result.h"
#include "storage/data_chunk.h"

namespace costdb {
namespace wire {

/// "CDBWIR1\0" — leading and trailing magic of every frame.
inline constexpr uint64_t kWireMagic = 0x0031'5249'5742'4443ULL;
inline constexpr uint32_t kWireFormatVersion = 1;

/// Serialize `chunk` onto `out` (appends; callers reuse buffers).
void EncodeChunk(const DataChunk& chunk, std::string* out);

/// Decode one frame produced by EncodeChunk. Rejects truncated frames,
/// bad magic/version, malformed pages, and checksum mismatches with
/// kInvalidArgument — never returns partially-decoded rows.
Result<DataChunk> DecodeChunk(const char* data, size_t size);

inline Result<DataChunk> DecodeChunk(const std::string& bytes) {
  return DecodeChunk(bytes.data(), bytes.size());
}

}  // namespace wire
}  // namespace costdb
