#pragma once

/// Transport seam of the sharded engine: every shuffle/broadcast/gather
/// partition that leaves its producing worker crosses an ExchangeTransport.
/// Two implementations (docs/TRANSPORT.md has the matrix):
///
///   kInProcess — the historical same-address-space pass-through; chunks
///     move by std::move, nothing is serialized. Zero-cost baseline.
///   kSocket   — chunks are encoded with the wire format (net/wire.h),
///     framed, pushed through a real AF_UNIX socketpair, and decoded on
///     the far side. Serialization + kernel copy + checksum verification
///     all happen for real, so measured exchange times contain the link
///     costs the calibrated cost model is asked to predict.
///
/// The per-transport TransportStats (wire bytes, socket bytes, serialize
/// vs transfer seconds) feed ExchangeTiming, and from there egress billing
/// and CalibrationUpdater::ObserveTransport.

#include <cstdint>
#include <functional>
#include <memory>

#include "common/result.h"
#include "storage/data_chunk.h"

namespace costdb {

enum class TransportKind {
  kInProcess = 0,
  kSocket = 1,
};

const char* TransportName(TransportKind kind);

/// Counters one transport instance accumulates across Send calls.
struct TransportStats {
  size_t transfers = 0;         // Send calls that crossed the transport
  double wire_bytes = 0.0;      // serialized frame bodies (wire format)
  double socket_bytes = 0.0;    // bytes actually written to the socket
  double serialize_seconds = 0.0;  // encode + decode + checksum time
  double transfer_seconds = 0.0;   // time moving bytes through the kernel
};

/// How a partition travels from producing worker `from` to consuming
/// worker `to`. Implementations are NOT thread-safe: the sharded engine
/// runs all exchange rebucketing on the coordinator thread.
class ExchangeTransport {
 public:
  virtual ~ExchangeTransport() = default;

  virtual TransportKind kind() const = 0;

  /// Move one chunk across the transport. The in-process transport
  /// passes it through untouched; the socket transport serializes,
  /// ships, and decodes — the returned chunk is the far side's copy.
  virtual Result<DataChunk> Send(size_t from, size_t to, DataChunk chunk) = 0;

  const TransportStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TransportStats{}; }

 protected:
  TransportStats stats_;
};

std::unique_ptr<ExchangeTransport> MakeTransport(TransportKind kind);

// -- EINTR-safe socket IO ---------------------------------------------------
// Exposed (with injectable syscalls) so tests can exercise the partial
// read/write retry loops without a flaky-signal harness.

using ReadFn = std::function<long(int fd, void* buf, size_t n)>;
using WriteFn = std::function<long(int fd, const void* buf, size_t n)>;

/// Read exactly `n` bytes, retrying EINTR and short reads. EOF before `n`
/// bytes is an error (a peer died mid-frame).
Status ReadFull(int fd, void* buf, size_t n, const ReadFn& fn = {});

/// Write exactly `n` bytes, retrying EINTR and short writes.
Status WriteFull(int fd, const void* buf, size_t n, const WriteFn& fn = {});

/// AF_UNIX stream socketpair with CLOEXEC; Status instead of errno.
Status MakeSocketPair(int fds[2]);

}  // namespace costdb
