#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/object_store.h"
#include "common/annotated_mutex.h"
#include "cloud/pricing.h"
#include "cost/calibration_updater.h"
#include "exec/engine.h"
#include "exec/sharded_engine.h"
#include "runtime/elastic_controller.h"
#include "runtime/policies.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "sim/harness.h"
#include "storage/persistent.h"

namespace costdb {

/// Production-shaped billing knobs, applied per tenant when sessions
/// settle through Database::SettleTenantBill.
struct TenantPricingOptions {
  /// Tiered volume price over a tenant's *cumulative* compute
  /// machine-seconds (cloud/pricing.h): the first N seconds at one rate,
  /// the next cheaper, ... Empty = flat pricing at the node price — the
  /// pre-tenancy behavior, byte for byte.
  TieredSchedule compute_second_tiers;
  /// A result-cache hit is billed this fraction of the query's estimated
  /// cost (serving bytes from memory, not running the plan).
  double result_cache_hit_factor = 0.05;
};

struct DatabaseOptions {
  /// Morsel workers per executed query (one local "node").
  size_t exec_threads = 8;
  /// Morsel threads inside each ShardedEngine worker (workers themselves
  /// come from the plan's resolved UserConstraint::workers knob).
  size_t sharded_threads_per_worker = 1;
  /// How sharded exchanges move partitions between workers: the in-process
  /// pass-through, or serialized through the checksummed wire format over
  /// a real socketpair (docs/TRANSPORT.md). The socket transport makes
  /// measured exchange times contain real serialization + link cost, the
  /// calibration learns the link terms from them (ObserveTransport), and
  /// moved wire bytes are billed at the egress rate.
  TransportKind exchange_transport = TransportKind::kInProcess;
  /// Where sharded fragments execute: LocalEngines on a thread pool, or
  /// forked worker processes whose results return serialized over
  /// sockets. Results are bit-identical across both for order-stable
  /// plans.
  WorkerMode worker_mode = WorkerMode::kThreads;
  /// Cap on UserConstraint::workers == 0 auto-resolution and on explicit
  /// worker requests routed to the sharded backend.
  size_t max_workers = 16;
  /// Concurrently executing queries in the admission controller (and so
  /// in SubmitBatch, which rides on it). Overridden by
  /// admission.max_concurrent when that is non-zero.
  size_t batch_threads = 4;
  /// Cost-aware admission for asynchronously submitted queries
  /// (Session::Submit); max_concurrent == 0 inherits batch_threads.
  AdmissionOptions admission;
  /// Cache bound+optimized plans keyed by (statement shape, constraint);
  /// invalidated when the calibration moves materially. The shape is the
  /// normalized token stream (sql/shape.h), so whitespace and keyword
  /// case do not fragment the cache, and prepared statements share one
  /// entry across all parameter values.
  bool enable_plan_cache = true;
  /// Shared result cache keyed by (statement shape, constraint, bound
  /// parameter vector): a hot repeated statement costs one execution, and
  /// every later identical submit is served the materialized rows.
  /// Entries are stamped with the calibration version and the layout
  /// versions of every scanned table; any drift misses. Single-flighted
  /// like the plan cache: N concurrent identical submits run the plan
  /// once. Off by default — results can be large and callers must opt
  /// into staleness-by-version semantics.
  bool enable_result_cache = false;
  /// LRU capacity of the result cache (entries, not bytes).
  size_t result_cache_max_entries = 256;
  /// Byte budget over the cached results' payloads (ChunkPayloadBytes);
  /// 0 = unbounded. Evicts least-recently-used entries until under
  /// budget, on top of the entry cap — a handful of huge results can no
  /// longer pin the cache at "only 256 entries" of arbitrary memory.
  size_t result_cache_max_bytes = 0;
  /// Lock shards of the facade's serial execution engines: tenants hash
  /// onto shards, so one tenant's serial query never queues behind
  /// another tenant's engine lock.
  size_t engine_shards = 4;
  /// Persistent block storage (docs/STORAGE.md): when true the facade owns
  /// a byte-backed SimulatedObjectStore plus a shared cost-priced
  /// BlockCache, and PersistTable() attaches an LSM-lite block tier to
  /// catalog tables — scans of persisted tables then page cold blocks
  /// through the cache, paying (and billing) real GET fees.
  bool enable_persistent_storage = false;
  /// Decoded-byte budget of the shared BlockCache.
  size_t block_cache_bytes = 64u << 20;
  /// Directory for the object store's byte-backed spill files; empty picks
  /// a per-instance directory under the system temp path.
  std::string storage_spill_dir;
  /// LSM-lite layout knobs shared by every persisted table (flush
  /// threshold, level fanout, compaction horizon).
  StorageOptions storage;
  /// Per-tenant billing shape (tiered volume pricing, cache-hit rate).
  TenantPricingOptions pricing;
  /// Feed executed-pipeline wall times back into the hardware calibration
  /// after every local execution (the paper's calibration loop).
  bool enable_calibration = true;
  CalibrationUpdaterOptions calibration;
  /// Relative calibration movement that invalidates cached plans.
  double recalibration_threshold = 0.05;
  /// Elastic sharded execution: when true, every sharded run (resolved
  /// workers > 1) consults an ElasticController at fragment boundaries —
  /// a fresh PipelineDopMonitor per query proposes widths from observed
  /// fragment timings, admission queue pressure gates growth, and the
  /// calibrated shuffle + spin-up terms veto net-negative resizes. Off by
  /// default: fixed-width runs stay exactly as planned.
  bool enable_elastic = false;
  ElasticControllerOptions elastic;
  /// Monitor thresholds for the per-query elastic policy.
  DopMonitorOptions elastic_monitor;
  BiObjectiveOptions optimizer;
  SimOptions sim;
};

/// One query of a concurrent batch.
struct QueryRequest {
  std::string sql;
  UserConstraint constraint;
};

/// Everything ExecuteSql hands back: rows, the plan that produced them,
/// and what the calibration feedback loop learned from the run.
struct ExecutionResult {
  QueryResult result;
  std::shared_ptr<const PlannedQuery> plan;
  bool plan_cache_hit = false;
  /// Rows came from the shared result cache — no engine ran, timings are
  /// empty, and the billing layer charges the cache rate instead of the
  /// execution estimate.
  bool result_cache_hit = false;
  std::vector<PipelineTiming> timings;
  CalibrationReport calibration;
  /// Sharded runs only: which backend width executed and what the
  /// exchanges moved (the feedback signal of the shuffle-term
  /// calibration; empty timings on LocalEngine runs).
  size_t workers = 1;
  ExchangeStats exchange;
  /// Which morsels ran through the fused-kernel tier the fuse_kernels pass
  /// annotated (summed over workers on sharded runs), including runtime
  /// fallbacks and the wall time spent inside fused kernels — the feedback
  /// signal of the fused-term calibration.
  FusedExecStats fused;
  /// Block-cache traffic of the run's scans (all-zero unless a scanned
  /// table has persistent storage attached): cold-read wall time feeds the
  /// storage-term calibration, and the GET fees feed per-tenant billing.
  /// See docs/STORAGE.md for how to read the counters.
  BlockCacheStats storage;
  /// Sharded runs only: the worker-second ledger of the run (per-width
  /// segments for elastic runs) and the dollars the cloud billing layer
  /// charged for it at the facade's node price. Session ledgers settle to
  /// `billed_dollars` so elastic runs are billed what they actually held.
  WorkerUsage usage;
  Dollars billed_dollars = 0.0;
  /// Sharded runs over a serializing transport only: the egress-style fee
  /// on the wire bytes the run's exchanges serialized
  /// (PricingCatalog::egress_per_gib; 0 for in-process runs, which move
  /// no wire bytes).
  Dollars egress_dollars = 0.0;
  /// Elastic runs only: every width decision the controller recorded.
  std::vector<ElasticController::Decision> elastic;
};

/// The single front door of the query stack (the unified architecture the
/// paper argues for): one object owning the catalog, the optimizer pass
/// pipeline, the shared cost estimator, and both execution backends —
/// LocalEngine for real rows, DistributedSimulator for cloud cost
/// simulation. Every example, bench, and client enters here; direct
/// binder/planner wiring is an optimizer-internal detail.
///
/// The facade also closes the loop the seed left open: after each local
/// execution, per-pipeline wall times flow through a CalibrationUpdater
/// into the HardwareCalibration that the shared CostEstimator reads, so
/// cost estimates tighten as the system runs.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  // -- Components (shared, calibrated, single-instance) ------------------
  MetadataService* meta() { return &meta_; }
  const MetadataService& meta() const { return meta_; }
  QueryService* query_service() { return query_service_.get(); }
  CostEstimator* estimator() { return estimator_.get(); }
  const CostEstimator* estimator() const { return estimator_.get(); }
  HardwareCalibration* hardware() { return &hw_; }
  const HardwareCalibration& hardware() const { return hw_; }
  const InstanceType& node_type() const { return node_; }
  DistributedSimulator* simulator() { return simulator_.get(); }

  // -- Planning ----------------------------------------------------------
  /// Lex + parse + bind only: resolves names/types against the catalog
  /// without planning or touching the cache. Errors are kInvalidArgument
  /// for malformed SQL and unknown names.
  Result<BoundQuery> BindSql(const std::string& sql) const;

  /// Plan through the pass pipeline, honoring the plan cache when
  /// enabled. Cache entries are keyed by (statement shape, constraint)
  /// and stamped with the calibration version they were planned under; a
  /// lookup whose stamp predates the current version replans instead of
  /// returning a stale plan (see calibration_version()). The returned
  /// plan is immutable and shared — callers must not mutate it.
  Result<PlannedQuery> PlanSql(const std::string& sql,
                               const UserConstraint& constraint);

  /// Cache-aware planning returning the shared immutable plan (the form
  /// Session executes). `cache_hit` reports whether the shape-keyed cache
  /// served the plan.
  Result<std::shared_ptr<const PlannedQuery>> PlanCachedSql(
      const std::string& sql, const UserConstraint& constraint,
      bool* cache_hit);

  /// Same, for an already-bound query under an explicit shape key — the
  /// prepared-statement path: Prepare binds once, every (re)plan goes
  /// through here so statements across sessions share cache entries.
  Result<std::shared_ptr<const PlannedQuery>> PlanCachedBound(
      const BoundQuery& query, const std::string& shape_key,
      const UserConstraint& constraint, bool* cache_hit);

  /// Bind parameter values into a cached prepared plan: deep-copies the
  /// plan tree substituting placeholders, then re-derives only the
  /// cardinality-sensitive terms — volumes from the (now constant)
  /// predicates and the cost estimate at the cached DOP assignment. No
  /// optimizer run. `query` must be the statement's bound query (its
  /// relations drive the cardinality re-estimate).
  Result<PlannedQuery> BindPreparedPlan(const PlannedQuery& cached,
                                        const BoundQuery& query,
                                        const std::vector<Value>& params);

  // -- Local execution backend -------------------------------------------
  /// Parse -> bind -> optimize -> execute -> calibrate, in one call.
  /// Runs on the vectorized LocalEngine and returns real rows plus the
  /// plan that produced them, per-pipeline wall timings, and what the
  /// calibration feedback round did (a no-op report when
  /// options.enable_calibration is false). Serial ExecuteSql calls use
  /// one long-lived engine under a lock; concurrent callers should use
  /// SubmitBatch. Any bind/plan/execution failure returns the error and
  /// leaves calibration untouched.
  Result<ExecutionResult> ExecuteSql(
      const std::string& sql,
      const UserConstraint& constraint = UserConstraint());

  /// Execute a shared plan on the facade's serial engine (or on `engine`
  /// when given — concurrent callers pass their own). Plans whose
  /// resolved worker count is > 1 run on the partitioned ShardedEngine
  /// instead (results bit-identical for order-stable plans; the returned
  /// ExchangeStats report what the exchanges moved). No calibration;
  /// pair with CalibrateExecution. This is Session's synchronous
  /// execution primitive.
  Result<ExecutionResult> ExecutePlanned(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      LocalEngine* engine = nullptr, const std::string& tenant = {});

  /// Execute a shared plan with the result pipeline streaming into
  /// `sink` (exec/engine.h) instead of materializing rows. The returned
  /// ExecutionResult carries the plan, timings, and an empty result chunk
  /// whose names/types describe the streamed schema. `engine` is
  /// required: streaming callers run concurrently by construction.
  Result<ExecutionResult> ExecutePlannedToSink(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      ChunkSink* sink, LocalEngine* engine, const std::string& tenant = {});

  /// Execute through the shared result cache (Session's execution
  /// primitive). With the cache disabled or `result_key` empty this is
  /// exactly ExecutePlanned / ExecutePlannedToSink (sink != nullptr picks
  /// the streaming form). Otherwise: a valid cached entry is served
  /// without running anything (result_cache_hit set, rows copied — to
  /// `sink` when streaming); a miss executes once under a single-flight
  /// guard, so concurrent identical submits wait for the one leader
  /// instead of running the same plan N times, then publishes the
  /// materialized rows for later submits.
  Result<ExecutionResult> ExecutePlannedCached(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      const std::string& result_key, ChunkSink* sink, LocalEngine* engine,
      const std::string& tenant);

  /// Result-cache identity of one executable statement: the plan-cache
  /// key (shape + constraint) extended with the bound parameter vector,
  /// type-tagged so 1 and "1" and 1.0 are distinct keys.
  static std::string ResultKey(const std::string& shape,
                               const UserConstraint& constraint,
                               const std::vector<Value>& params);

  /// Fold one executed result's timings into the calibration (serialized
  /// internally; a no-op when options.enable_calibration is off). The
  /// single feedback implementation shared by ExecuteSql, Session, and
  /// the SubmitBatch shim — the report is computed once here and stored
  /// on the result, never recomputed per worker.
  void CalibrateExecution(ExecutionResult* executed);

  /// The shared cost-aware admission controller behind Session::Submit
  /// and SubmitBatch.
  AdmissionController* admission() { return admission_.get(); }

  /// Snapshot of the facade's cloud bill for real sharded executions:
  /// every run is charged its measured worker-seconds (elastic runs at
  /// the widths they actually held) at the node price. Simulated runs
  /// bill their own CloudEnv, not this meter.
  BillingMeter billing_snapshot() const;

  /// Cumulative bill of one tenant, as settled by SettleTenantBill.
  struct TenantBill {
    double machine_seconds = 0.0;  // compute consumption billed so far
    Dollars dollars = 0.0;
    size_t runs = 0;
    size_t result_cache_hits = 0;
    /// Cold-read traffic this tenant's scans caused: block-cache misses
    /// and the object-store GET fees attributed on top of compute.
    int64_t storage_gets = 0;
    Dollars storage_get_dollars = 0.0;
  };

  /// Turn one executed result into the dollars the tenant actually owes
  /// and fold it into the tenant's cumulative bill. Result-cache hits are
  /// billed at pricing.result_cache_hit_factor x the reservation; real
  /// runs consume machine-seconds (measured worker-seconds for sharded
  /// runs, summed pipeline wall times for local ones) priced through the
  /// tenant's cumulative position in the tiered schedule — with no tiers
  /// configured, sharded runs settle to the flat cloud bill and local
  /// runs keep their reservation, the pre-tenancy behavior. Returns the
  /// amount the session ledger should settle `reserved` against.
  Dollars SettleTenantBill(const std::string& tenant,
                           ExecutionResult* executed, Dollars reserved);

  /// Per-tenant bill snapshot. Tenants only appear once they settle a
  /// run; disjoint sessions spend into disjoint entries (no cross-tenant
  /// bleed, by construction — tested in tenant_test).
  std::map<std::string, TenantBill> tenant_billing() const;

  // -- Persistent storage tier (docs/STORAGE.md) -------------------------
  /// Attach the facade's persistent block tier to a registered table:
  /// currently resident rows flush into level-0 runs, later appends
  /// auto-flush past the memtable threshold and re-evaluate costed
  /// compaction. NotSupported unless
  /// DatabaseOptions::enable_persistent_storage; NotFound for unknown
  /// tables; AlreadyExists when the table is already persistent.
  Status PersistTable(const std::string& name);

  /// Run one costed compaction round on a persisted table (`force` merges
  /// the best candidate even at negative modeled net). Returns whether a
  /// merge happened; on a merge the table's layout_version() bumps, so
  /// cached plans and results invalidate on their next lookup.
  Result<bool> CompactTable(const std::string& name, bool force = false);

  /// The facade's byte-backed object store / shared block cache (nullptr
  /// unless options.enable_persistent_storage initialized them).
  SimulatedObjectStore* storage_store() { return storage_store_.get(); }
  const SimulatedObjectStore* storage_store() const {
    return storage_store_.get();
  }
  BlockCache* block_cache() { return block_cache_.get(); }

  /// Object-store request fees billed so far through
  /// SettleStorageRequests.
  struct StorageBilling {
    int64_t gets = 0;
    int64_t puts = 0;
    Dollars dollars = 0.0;
  };

  /// Charge the object store's request-counter growth since the last
  /// settle to the facade bill (flat labels "storage:get"/"storage:put" at
  /// the pricing catalog's per-request rates). After a settle,
  /// storage_billing()'s counters equal the store's own request counters
  /// exactly — the dollar-conservation invariant bench_e17_storage gates.
  StorageBilling SettleStorageRequests();
  StorageBilling storage_billing() const;

  /// Egress-style fees charged for exchange wire bytes so far. Dollar
  /// conservation: `dollars` always equals `wire_bytes / GiB x
  /// pricing.egress_per_gib` of the runs it covers — the invariant
  /// bench_e18_transport gates.
  struct EgressBilling {
    double wire_bytes = 0.0;
    Dollars dollars = 0.0;
    size_t runs = 0;  // sharded runs that moved wire bytes
  };
  EgressBilling egress_billing() const;

  /// Execute a batch concurrently through the admission controller, as a
  /// thin deterministic shim over the Session API. Planning stays serial
  /// and in request order (deterministic cache hit/miss pattern), the
  /// calibration feedback round is serialized in request order after the
  /// batch drains, and per-query results line up index-for-index with
  /// `requests`. One query's failure does not abort the rest.
  std::vector<Result<ExecutionResult>> SubmitBatch(
      const std::vector<QueryRequest>& requests);

  // -- Simulation backend ------------------------------------------------
  /// Bind + plan + derive ground-truth volumes for the simulator. This
  /// is the experiment-harness entry: the prepared query carries both
  /// the estimator's guesses and the derived true volumes, so benches
  /// can compare them.
  Result<PreparedQuery> Prepare(const std::string& sql,
                                const UserConstraint& constraint);

  /// Simulate a query's distributed execution without touching real
  /// rows; `policy`/`env` optional (static DOPs on a fresh CloudEnv by
  /// default). The returned dollars are exactly this query's simulated
  /// bill; when `env` is provided the charge also lands on its billing
  /// ledger. Simulation never feeds the calibration loop — only real
  /// executions do.
  Result<SimResult> SimulateSql(const std::string& sql,
                                const UserConstraint& constraint,
                                ResizePolicy* policy = nullptr,
                                CloudEnv* env = nullptr);

  // -- Calibration loop --------------------------------------------------
  const CalibrationUpdater& calibration() const { return *calibration_; }
  /// Bumped whenever a feedback round moves the calibration by more than
  /// options.recalibration_threshold (relative). Cached plans carry the
  /// version they were planned under; any entry older than the current
  /// version is invalidated lazily on its next lookup, so estimates that
  /// drifted materially can never serve a stale plan.
  int calibration_version() const {
    // Locked read: Calibrate bumps the version concurrently with running
    // queries, and a torn/stale read here would let a racing lookup serve
    // a plan priced under a calibration the reader believes is current.
    MutexLock lock(cache_mu_);
    return calibration_version_;
  }

  // -- Plan cache --------------------------------------------------------
  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t invalidations = 0;
    size_t entries = 0;
  };
  CacheStats plan_cache_stats() const;
  void ClearPlanCache();

  // -- Result cache ------------------------------------------------------
  struct ResultCacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t invalidations = 0;  // stale entries dropped on lookup
    size_t evictions = 0;      // LRU capacity evictions
    size_t entries = 0;
    size_t bytes = 0;  // cached payload bytes (ChunkPayloadBytes sum)
  };
  ResultCacheStats result_cache_stats() const;
  void ClearResultCache();

  const DatabaseOptions& options() const { return options_; }

 private:
  struct CacheEntry {
    std::shared_ptr<const PlannedQuery> plan;
    int calibration_version = 0;
    /// Layout versions of every table the plan scans, captured at plan
    /// time. A hit whose tables have physically changed (append,
    /// recluster, repartition) replans instead of serving a plan whose
    /// pruning fractions or co-partitioned exchanges describe data that
    /// moved.
    std::vector<std::pair<std::shared_ptr<Table>, uint64_t>> table_layouts;
  };

  /// Single-flight marker: one optimizer run per missed shape, with
  /// concurrent misses waiting on the planner instead of duplicating it.
  struct PlanInFlight {
    std::condition_variable_any cv;
    /// Guarded by the owning Database's cache_mu_ (not annotatable here:
    /// the analysis cannot express a member guarded by another object's
    /// mutex; waiters access it only under that lock).
    bool done = false;
  };

  /// Cache lookup + fill shared by the SQL and bound planning paths;
  /// `plan_fn` runs only on a miss (under the hardware read lock).
  Result<std::shared_ptr<const PlannedQuery>> PlanCachedImpl(
      const std::string& cache_key,
      const std::function<Result<PlannedQuery>()>& plan_fn, bool* cache_hit);

  /// Serialize one query's timings into the calibration (under lock).
  /// LocalEngine runs feed the pipeline-time loop; sharded runs feed the
  /// measured exchange timings into the shuffle-term loop.
  CalibrationReport Calibrate(const ExecutionResult& executed);

  /// Sharded execution backend: serial callers reuse the tenant shard's
  /// cached engine under its lock, concurrent (`serial == false`) callers
  /// build their own.
  Result<ExecutionResult> ExecuteSharded(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      size_t workers, bool serial, const std::string& tenant);

  /// ExecutePlanned with the concurrency decision explicit: `concurrent`
  /// callers never serialize a sharded run on the tenant shard's engine —
  /// the result-cache leader on the async path needs materialized rows
  /// *and* private-engine concurrency, which the public signatures can't
  /// both express.
  Result<ExecutionResult> ExecuteMaterialized(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      LocalEngine* engine, const std::string& tenant, bool concurrent);

  /// Cache key: normalized statement shape + constraint slot.
  static std::string CacheKey(const std::string& shape,
                              const UserConstraint& constraint);

  DatabaseOptions options_;
  MetadataService meta_;
  HardwareCalibration hw_;
  /// Price list the node shape and the storage request rates come from
  /// (declared before node_: the constructor reads it).
  PricingCatalog pricing_ = PricingCatalog::Default();
  InstanceType node_;
  std::unique_ptr<CostEstimator> estimator_;
  std::unique_ptr<QueryService> query_service_;
  std::unique_ptr<DistributedSimulator> simulator_;
  std::unique_ptr<CalibrationUpdater> calibration_;

  /// One lock shard of the serial execution engines. Engine timings are
  /// per-run state, so access within a shard is exclusive; sharding by
  /// tenant means tenants hashed to different shards never contend for a
  /// serial engine. Engines are built lazily — a shard no tenant executes
  /// on spawns no thread pools. Concurrent (sink/batch) callers build
  /// their own engines and never touch a shard.
  struct EngineShard {
    Mutex mu;
    std::unique_ptr<LocalEngine> engine GUARDED_BY(mu);  // lazy
    /// Sharded backends, one per requested worker count (bounded by the
    /// few widths a deployment uses).
    std::map<size_t, std::unique_ptr<ShardedEngine>> sharded GUARDED_BY(mu);
  };
  EngineShard& ShardFor(const std::string& tenant);
  std::vector<std::unique_ptr<EngineShard>> engine_shards_;

  /// Persistent tier (options.enable_persistent_storage): built in the
  /// constructor, const thereafter — execution threads read the raw
  /// pointers without a lock. Catalog tables keep these raw pointers
  /// inside their TableStorage facades; that is safe across teardown
  /// because ~TableStorage never touches the store or cache, and no query
  /// can be running by then (admission_ is declared last and drains
  /// first).
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<SimulatedObjectStore> storage_store_;
  /// Why the persistent tier is unavailable (spill-dir creation failed);
  /// OK when available or never requested.
  Status storage_env_status_;

  /// Real-execution cloud bill (sharded worker-seconds); own lock so the
  /// concurrent (sink) execution path can charge without the engine lock.
  mutable Mutex billing_mu_;
  BillingMeter billing_ GUARDED_BY(billing_mu_);
  /// Monotone start offset for usage records.
  Seconds billing_clock_ GUARDED_BY(billing_mu_) = 0.0;
  /// Request counters already charged by SettleStorageRequests (the next
  /// settle bills only the delta).
  StorageBilling storage_billed_ GUARDED_BY(billing_mu_);
  /// Egress fees charged for exchange wire bytes so far.
  EgressBilling egress_billed_ GUARDED_BY(billing_mu_);

  /// Per-tenant cumulative bills; own lock so settling never contends
  /// with engines or caches.
  mutable Mutex tenant_mu_;
  std::map<std::string, TenantBill> tenant_billing_ GUARDED_BY(tenant_mu_);

  mutable Mutex cache_mu_;
  std::map<std::string, CacheEntry> plan_cache_ GUARDED_BY(cache_mu_);
  std::map<std::string, std::shared_ptr<PlanInFlight>> planning_
      GUARDED_BY(cache_mu_);
  CacheStats cache_stats_ GUARDED_BY(cache_mu_);

  /// One materialized result, stamped like a plan-cache entry: served
  /// only while the calibration version and every scanned table's layout
  /// version still match.
  struct ResultCacheEntry {
    std::shared_ptr<const QueryResult> result;
    int calibration_version = 0;
    std::vector<std::pair<std::shared_ptr<Table>, uint64_t>> table_layouts;
    uint64_t last_used = 0;        // LRU tick
    double payload_bytes = 0.0;    // ChunkPayloadBytes of the cached rows
  };
  /// Result cache + its single-flight markers; guarded by cache_mu_ like
  /// the plan cache (lookups are map probes, never executions).
  std::map<std::string, ResultCacheEntry> result_cache_ GUARDED_BY(cache_mu_);
  std::map<std::string, std::shared_ptr<PlanInFlight>> result_flights_
      GUARDED_BY(cache_mu_);
  ResultCacheStats result_cache_stats_ GUARDED_BY(cache_mu_);
  uint64_t result_cache_tick_ GUARDED_BY(cache_mu_) = 0;
  /// Payload bytes currently held by result_cache_ (the byte-budget
  /// eviction's ledger; mirrors the sum of entry payload_bytes).
  double result_cache_bytes_ GUARDED_BY(cache_mu_) = 0.0;

  /// Readers (planning, simulation) take it shared; the calibration
  /// writer takes it exclusive — the estimator reads hw_ on every
  /// estimate, so planning must not overlap an update.
  SharedMutex hw_mu_;
  /// Bumped by Calibrate under cache_mu_ (it stamps cache entries), so it
  /// shares that guard rather than hw_mu_.
  int calibration_version_ GUARDED_BY(cache_mu_) = 0;

  Mutex batch_mu_;

  /// Declared last: admission workers run closures that touch the members
  /// above, so the controller must be torn down (drained) first.
  std::unique_ptr<AdmissionController> admission_;
};

}  // namespace costdb
