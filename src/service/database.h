#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cost/calibration_updater.h"
#include "exec/engine.h"
#include "service/query_service.h"
#include "sim/harness.h"

namespace costdb {

struct DatabaseOptions {
  /// Morsel workers per executed query (one local "node").
  size_t exec_threads = 8;
  /// Concurrently executing queries in SubmitBatch.
  size_t batch_threads = 4;
  /// Cache bound+optimized plans keyed by (SQL, constraint); invalidated
  /// when the calibration moves materially.
  bool enable_plan_cache = true;
  /// Feed executed-pipeline wall times back into the hardware calibration
  /// after every local execution (the paper's calibration loop).
  bool enable_calibration = true;
  CalibrationUpdaterOptions calibration;
  /// Relative calibration movement that invalidates cached plans.
  double recalibration_threshold = 0.05;
  BiObjectiveOptions optimizer;
  SimOptions sim;
};

/// One query of a concurrent batch.
struct QueryRequest {
  std::string sql;
  UserConstraint constraint;
};

/// Everything ExecuteSql hands back: rows, the plan that produced them,
/// and what the calibration feedback loop learned from the run.
struct ExecutionResult {
  QueryResult result;
  std::shared_ptr<const PlannedQuery> plan;
  bool plan_cache_hit = false;
  std::vector<PipelineTiming> timings;
  CalibrationReport calibration;
};

/// The single front door of the query stack (the unified architecture the
/// paper argues for): one object owning the catalog, the optimizer pass
/// pipeline, the shared cost estimator, and both execution backends —
/// LocalEngine for real rows, DistributedSimulator for cloud cost
/// simulation. Every example, bench, and client enters here; direct
/// binder/planner wiring is an optimizer-internal detail.
///
/// The facade also closes the loop the seed left open: after each local
/// execution, per-pipeline wall times flow through a CalibrationUpdater
/// into the HardwareCalibration that the shared CostEstimator reads, so
/// cost estimates tighten as the system runs.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  // -- Components (shared, calibrated, single-instance) ------------------
  MetadataService* meta() { return &meta_; }
  const MetadataService& meta() const { return meta_; }
  QueryService* query_service() { return query_service_.get(); }
  CostEstimator* estimator() { return estimator_.get(); }
  const CostEstimator* estimator() const { return estimator_.get(); }
  HardwareCalibration* hardware() { return &hw_; }
  const HardwareCalibration& hardware() const { return hw_; }
  const InstanceType& node_type() const { return node_; }
  DistributedSimulator* simulator() { return simulator_.get(); }

  // -- Planning ----------------------------------------------------------
  /// Lex + parse + bind only: resolves names/types against the catalog
  /// without planning or touching the cache. Errors are kInvalidArgument
  /// for malformed SQL and unknown names.
  Result<BoundQuery> BindSql(const std::string& sql) const;

  /// Plan through the pass pipeline, honoring the plan cache when
  /// enabled. Cache entries are keyed by (SQL text, constraint) and
  /// stamped with the calibration version they were planned under; a
  /// lookup whose stamp predates the current version replans instead of
  /// returning a stale plan (see calibration_version()). The returned
  /// plan is immutable and shared — callers must not mutate it.
  Result<PlannedQuery> PlanSql(const std::string& sql,
                               const UserConstraint& constraint);

  // -- Local execution backend -------------------------------------------
  /// Parse -> bind -> optimize -> execute -> calibrate, in one call.
  /// Runs on the vectorized LocalEngine and returns real rows plus the
  /// plan that produced them, per-pipeline wall timings, and what the
  /// calibration feedback round did (a no-op report when
  /// options.enable_calibration is false). Serial ExecuteSql calls use
  /// one long-lived engine under a lock; concurrent callers should use
  /// SubmitBatch. Any bind/plan/execution failure returns the error and
  /// leaves calibration untouched.
  Result<ExecutionResult> ExecuteSql(
      const std::string& sql,
      const UserConstraint& constraint = UserConstraint());

  /// Execute a batch concurrently (options.batch_threads queries in
  /// flight, each worker on its own engine). Planning and calibration
  /// stay serial and in request order, so results, cache hit/miss
  /// patterns, and post-batch calibration state are deterministic and
  /// per-query results line up index-for-index with `requests`. One
  /// query's failure does not abort the rest of the batch.
  std::vector<Result<ExecutionResult>> SubmitBatch(
      const std::vector<QueryRequest>& requests);

  // -- Simulation backend ------------------------------------------------
  /// Bind + plan + derive ground-truth volumes for the simulator. This
  /// is the experiment-harness entry: the prepared query carries both
  /// the estimator's guesses and the derived true volumes, so benches
  /// can compare them.
  Result<PreparedQuery> Prepare(const std::string& sql,
                                const UserConstraint& constraint);

  /// Simulate a query's distributed execution without touching real
  /// rows; `policy`/`env` optional (static DOPs on a fresh CloudEnv by
  /// default). The returned dollars are exactly this query's simulated
  /// bill; when `env` is provided the charge also lands on its billing
  /// ledger. Simulation never feeds the calibration loop — only real
  /// executions do.
  Result<SimResult> SimulateSql(const std::string& sql,
                                const UserConstraint& constraint,
                                ResizePolicy* policy = nullptr,
                                CloudEnv* env = nullptr);

  // -- Calibration loop --------------------------------------------------
  const CalibrationUpdater& calibration() const { return *calibration_; }
  /// Bumped whenever a feedback round moves the calibration by more than
  /// options.recalibration_threshold (relative). Cached plans carry the
  /// version they were planned under; any entry older than the current
  /// version is invalidated lazily on its next lookup, so estimates that
  /// drifted materially can never serve a stale plan.
  int calibration_version() const { return calibration_version_; }

  // -- Plan cache --------------------------------------------------------
  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t invalidations = 0;
    size_t entries = 0;
  };
  CacheStats plan_cache_stats() const;
  void ClearPlanCache();

  const DatabaseOptions& options() const { return options_; }

 private:
  struct CacheEntry {
    std::shared_ptr<const PlannedQuery> plan;
    int calibration_version = 0;
  };

  /// Cache-aware planning; returns a shared immutable plan.
  Result<std::shared_ptr<const PlannedQuery>> PlanShared(
      const std::string& sql, const UserConstraint& constraint,
      bool* cache_hit);

  /// Execute a shared plan; uses the long-lived serial engine when
  /// `engine` is null (batch workers pass their own). No calibration.
  Result<ExecutionResult> ExecutePlanned(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      LocalEngine* engine = nullptr);

  /// Serialize one query's timings into the calibration (under lock).
  CalibrationReport Calibrate(const ExecutionResult& executed);

  static std::string CacheKey(const std::string& sql,
                              const UserConstraint& constraint);

  DatabaseOptions options_;
  MetadataService meta_;
  HardwareCalibration hw_;
  InstanceType node_;
  std::unique_ptr<CostEstimator> estimator_;
  std::unique_ptr<QueryService> query_service_;
  std::unique_ptr<DistributedSimulator> simulator_;
  std::unique_ptr<CalibrationUpdater> calibration_;

  /// Long-lived engine for serial ExecuteSql (its timings are per-run
  /// state, so access is exclusive); batch workers build their own.
  std::unique_ptr<LocalEngine> engine_;
  std::mutex engine_mu_;

  mutable std::mutex cache_mu_;
  std::map<std::string, CacheEntry> plan_cache_;
  CacheStats cache_stats_;

  /// Readers (planning, simulation) take it shared; the calibration
  /// writer takes it exclusive — the estimator reads hw_ on every
  /// estimate, so planning must not overlap an update.
  std::shared_mutex hw_mu_;
  int calibration_version_ = 0;

  std::mutex batch_mu_;
};

}  // namespace costdb
