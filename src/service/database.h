#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cost/calibration_updater.h"
#include "exec/engine.h"
#include "exec/sharded_engine.h"
#include "runtime/elastic_controller.h"
#include "runtime/policies.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "sim/harness.h"

namespace costdb {

struct DatabaseOptions {
  /// Morsel workers per executed query (one local "node").
  size_t exec_threads = 8;
  /// Morsel threads inside each ShardedEngine worker (workers themselves
  /// come from the plan's resolved UserConstraint::workers knob).
  size_t sharded_threads_per_worker = 1;
  /// Cap on UserConstraint::workers == 0 auto-resolution and on explicit
  /// worker requests routed to the sharded backend.
  size_t max_workers = 16;
  /// Concurrently executing queries in the admission controller (and so
  /// in SubmitBatch, which rides on it). Overridden by
  /// admission.max_concurrent when that is non-zero.
  size_t batch_threads = 4;
  /// Cost-aware admission for asynchronously submitted queries
  /// (Session::Submit); max_concurrent == 0 inherits batch_threads.
  AdmissionOptions admission;
  /// Cache bound+optimized plans keyed by (statement shape, constraint);
  /// invalidated when the calibration moves materially. The shape is the
  /// normalized token stream (sql/shape.h), so whitespace and keyword
  /// case do not fragment the cache, and prepared statements share one
  /// entry across all parameter values.
  bool enable_plan_cache = true;
  /// Feed executed-pipeline wall times back into the hardware calibration
  /// after every local execution (the paper's calibration loop).
  bool enable_calibration = true;
  CalibrationUpdaterOptions calibration;
  /// Relative calibration movement that invalidates cached plans.
  double recalibration_threshold = 0.05;
  /// Elastic sharded execution: when true, every sharded run (resolved
  /// workers > 1) consults an ElasticController at fragment boundaries —
  /// a fresh PipelineDopMonitor per query proposes widths from observed
  /// fragment timings, admission queue pressure gates growth, and the
  /// calibrated shuffle + spin-up terms veto net-negative resizes. Off by
  /// default: fixed-width runs stay exactly as planned.
  bool enable_elastic = false;
  ElasticControllerOptions elastic;
  /// Monitor thresholds for the per-query elastic policy.
  DopMonitorOptions elastic_monitor;
  BiObjectiveOptions optimizer;
  SimOptions sim;
};

/// One query of a concurrent batch.
struct QueryRequest {
  std::string sql;
  UserConstraint constraint;
};

/// Everything ExecuteSql hands back: rows, the plan that produced them,
/// and what the calibration feedback loop learned from the run.
struct ExecutionResult {
  QueryResult result;
  std::shared_ptr<const PlannedQuery> plan;
  bool plan_cache_hit = false;
  std::vector<PipelineTiming> timings;
  CalibrationReport calibration;
  /// Sharded runs only: which backend width executed and what the
  /// exchanges moved (the feedback signal of the shuffle-term
  /// calibration; empty timings on LocalEngine runs).
  size_t workers = 1;
  ExchangeStats exchange;
  /// Which morsels ran through the fused-kernel tier the fuse_kernels pass
  /// annotated (summed over workers on sharded runs), including runtime
  /// fallbacks and the wall time spent inside fused kernels — the feedback
  /// signal of the fused-term calibration.
  FusedExecStats fused;
  /// Sharded runs only: the worker-second ledger of the run (per-width
  /// segments for elastic runs) and the dollars the cloud billing layer
  /// charged for it at the facade's node price. Session ledgers settle to
  /// `billed_dollars` so elastic runs are billed what they actually held.
  WorkerUsage usage;
  Dollars billed_dollars = 0.0;
  /// Elastic runs only: every width decision the controller recorded.
  std::vector<ElasticController::Decision> elastic;
};

/// The single front door of the query stack (the unified architecture the
/// paper argues for): one object owning the catalog, the optimizer pass
/// pipeline, the shared cost estimator, and both execution backends —
/// LocalEngine for real rows, DistributedSimulator for cloud cost
/// simulation. Every example, bench, and client enters here; direct
/// binder/planner wiring is an optimizer-internal detail.
///
/// The facade also closes the loop the seed left open: after each local
/// execution, per-pipeline wall times flow through a CalibrationUpdater
/// into the HardwareCalibration that the shared CostEstimator reads, so
/// cost estimates tighten as the system runs.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  // -- Components (shared, calibrated, single-instance) ------------------
  MetadataService* meta() { return &meta_; }
  const MetadataService& meta() const { return meta_; }
  QueryService* query_service() { return query_service_.get(); }
  CostEstimator* estimator() { return estimator_.get(); }
  const CostEstimator* estimator() const { return estimator_.get(); }
  HardwareCalibration* hardware() { return &hw_; }
  const HardwareCalibration& hardware() const { return hw_; }
  const InstanceType& node_type() const { return node_; }
  DistributedSimulator* simulator() { return simulator_.get(); }

  // -- Planning ----------------------------------------------------------
  /// Lex + parse + bind only: resolves names/types against the catalog
  /// without planning or touching the cache. Errors are kInvalidArgument
  /// for malformed SQL and unknown names.
  Result<BoundQuery> BindSql(const std::string& sql) const;

  /// Plan through the pass pipeline, honoring the plan cache when
  /// enabled. Cache entries are keyed by (statement shape, constraint)
  /// and stamped with the calibration version they were planned under; a
  /// lookup whose stamp predates the current version replans instead of
  /// returning a stale plan (see calibration_version()). The returned
  /// plan is immutable and shared — callers must not mutate it.
  Result<PlannedQuery> PlanSql(const std::string& sql,
                               const UserConstraint& constraint);

  /// Cache-aware planning returning the shared immutable plan (the form
  /// Session executes). `cache_hit` reports whether the shape-keyed cache
  /// served the plan.
  Result<std::shared_ptr<const PlannedQuery>> PlanCachedSql(
      const std::string& sql, const UserConstraint& constraint,
      bool* cache_hit);

  /// Same, for an already-bound query under an explicit shape key — the
  /// prepared-statement path: Prepare binds once, every (re)plan goes
  /// through here so statements across sessions share cache entries.
  Result<std::shared_ptr<const PlannedQuery>> PlanCachedBound(
      const BoundQuery& query, const std::string& shape_key,
      const UserConstraint& constraint, bool* cache_hit);

  /// Bind parameter values into a cached prepared plan: deep-copies the
  /// plan tree substituting placeholders, then re-derives only the
  /// cardinality-sensitive terms — volumes from the (now constant)
  /// predicates and the cost estimate at the cached DOP assignment. No
  /// optimizer run. `query` must be the statement's bound query (its
  /// relations drive the cardinality re-estimate).
  Result<PlannedQuery> BindPreparedPlan(const PlannedQuery& cached,
                                        const BoundQuery& query,
                                        const std::vector<Value>& params);

  // -- Local execution backend -------------------------------------------
  /// Parse -> bind -> optimize -> execute -> calibrate, in one call.
  /// Runs on the vectorized LocalEngine and returns real rows plus the
  /// plan that produced them, per-pipeline wall timings, and what the
  /// calibration feedback round did (a no-op report when
  /// options.enable_calibration is false). Serial ExecuteSql calls use
  /// one long-lived engine under a lock; concurrent callers should use
  /// SubmitBatch. Any bind/plan/execution failure returns the error and
  /// leaves calibration untouched.
  Result<ExecutionResult> ExecuteSql(
      const std::string& sql,
      const UserConstraint& constraint = UserConstraint());

  /// Execute a shared plan on the facade's serial engine (or on `engine`
  /// when given — concurrent callers pass their own). Plans whose
  /// resolved worker count is > 1 run on the partitioned ShardedEngine
  /// instead (results bit-identical for order-stable plans; the returned
  /// ExchangeStats report what the exchanges moved). No calibration;
  /// pair with CalibrateExecution. This is Session's synchronous
  /// execution primitive.
  Result<ExecutionResult> ExecutePlanned(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      LocalEngine* engine = nullptr);

  /// Execute a shared plan with the result pipeline streaming into
  /// `sink` (exec/engine.h) instead of materializing rows. The returned
  /// ExecutionResult carries the plan, timings, and an empty result chunk
  /// whose names/types describe the streamed schema. `engine` is
  /// required: streaming callers run concurrently by construction.
  Result<ExecutionResult> ExecutePlannedToSink(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      ChunkSink* sink, LocalEngine* engine);

  /// Fold one executed result's timings into the calibration (serialized
  /// internally; a no-op when options.enable_calibration is off). The
  /// single feedback implementation shared by ExecuteSql, Session, and
  /// the SubmitBatch shim — the report is computed once here and stored
  /// on the result, never recomputed per worker.
  void CalibrateExecution(ExecutionResult* executed);

  /// The shared cost-aware admission controller behind Session::Submit
  /// and SubmitBatch.
  AdmissionController* admission() { return admission_.get(); }

  /// Snapshot of the facade's cloud bill for real sharded executions:
  /// every run is charged its measured worker-seconds (elastic runs at
  /// the widths they actually held) at the node price. Simulated runs
  /// bill their own CloudEnv, not this meter.
  BillingMeter billing_snapshot() const;

  /// Execute a batch concurrently through the admission controller, as a
  /// thin deterministic shim over the Session API. Planning stays serial
  /// and in request order (deterministic cache hit/miss pattern), the
  /// calibration feedback round is serialized in request order after the
  /// batch drains, and per-query results line up index-for-index with
  /// `requests`. One query's failure does not abort the rest.
  std::vector<Result<ExecutionResult>> SubmitBatch(
      const std::vector<QueryRequest>& requests);

  // -- Simulation backend ------------------------------------------------
  /// Bind + plan + derive ground-truth volumes for the simulator. This
  /// is the experiment-harness entry: the prepared query carries both
  /// the estimator's guesses and the derived true volumes, so benches
  /// can compare them.
  Result<PreparedQuery> Prepare(const std::string& sql,
                                const UserConstraint& constraint);

  /// Simulate a query's distributed execution without touching real
  /// rows; `policy`/`env` optional (static DOPs on a fresh CloudEnv by
  /// default). The returned dollars are exactly this query's simulated
  /// bill; when `env` is provided the charge also lands on its billing
  /// ledger. Simulation never feeds the calibration loop — only real
  /// executions do.
  Result<SimResult> SimulateSql(const std::string& sql,
                                const UserConstraint& constraint,
                                ResizePolicy* policy = nullptr,
                                CloudEnv* env = nullptr);

  // -- Calibration loop --------------------------------------------------
  const CalibrationUpdater& calibration() const { return *calibration_; }
  /// Bumped whenever a feedback round moves the calibration by more than
  /// options.recalibration_threshold (relative). Cached plans carry the
  /// version they were planned under; any entry older than the current
  /// version is invalidated lazily on its next lookup, so estimates that
  /// drifted materially can never serve a stale plan.
  int calibration_version() const { return calibration_version_; }

  // -- Plan cache --------------------------------------------------------
  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t invalidations = 0;
    size_t entries = 0;
  };
  CacheStats plan_cache_stats() const;
  void ClearPlanCache();

  const DatabaseOptions& options() const { return options_; }

 private:
  struct CacheEntry {
    std::shared_ptr<const PlannedQuery> plan;
    int calibration_version = 0;
    /// Layout versions of every table the plan scans, captured at plan
    /// time. A hit whose tables have physically changed (append,
    /// recluster, repartition) replans instead of serving a plan whose
    /// pruning fractions or co-partitioned exchanges describe data that
    /// moved.
    std::vector<std::pair<std::shared_ptr<Table>, uint64_t>> table_layouts;
  };

  /// Single-flight marker: one optimizer run per missed shape, with
  /// concurrent misses waiting on the planner instead of duplicating it.
  struct PlanInFlight {
    std::condition_variable cv;
    bool done = false;  // guarded by cache_mu_
  };

  /// Cache lookup + fill shared by the SQL and bound planning paths;
  /// `plan_fn` runs only on a miss (under the hardware read lock).
  Result<std::shared_ptr<const PlannedQuery>> PlanCachedImpl(
      const std::string& cache_key,
      const std::function<Result<PlannedQuery>()>& plan_fn, bool* cache_hit);

  /// Serialize one query's timings into the calibration (under lock).
  /// LocalEngine runs feed the pipeline-time loop; sharded runs feed the
  /// measured exchange timings into the shuffle-term loop.
  CalibrationReport Calibrate(const ExecutionResult& executed);

  /// Sharded execution backend: serial callers reuse the cached engine
  /// under engine_mu_, concurrent (`serial == false`) callers build their
  /// own.
  Result<ExecutionResult> ExecuteSharded(
      std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
      size_t workers, bool serial);

  /// Cache key: normalized statement shape + constraint slot.
  static std::string CacheKey(const std::string& shape,
                              const UserConstraint& constraint);

  DatabaseOptions options_;
  MetadataService meta_;
  HardwareCalibration hw_;
  InstanceType node_;
  std::unique_ptr<CostEstimator> estimator_;
  std::unique_ptr<QueryService> query_service_;
  std::unique_ptr<DistributedSimulator> simulator_;
  std::unique_ptr<CalibrationUpdater> calibration_;

  /// Long-lived engine for serial ExecuteSql (its timings are per-run
  /// state, so access is exclusive); batch workers build their own.
  std::unique_ptr<LocalEngine> engine_;
  /// Long-lived sharded backends for serial execution, one per requested
  /// worker count (bounded by the few widths a deployment uses);
  /// concurrent (sink) callers build their own, mirroring the
  /// LocalEngine-per-admitted-query pattern. Guarded by engine_mu_ like
  /// engine_.
  std::map<size_t, std::unique_ptr<ShardedEngine>> sharded_;
  std::mutex engine_mu_;

  /// Real-execution cloud bill (sharded worker-seconds); own lock so the
  /// concurrent (sink) execution path can charge without the engine lock.
  mutable std::mutex billing_mu_;
  BillingMeter billing_;
  Seconds billing_clock_ = 0.0;  // monotone start offset for usage records

  mutable std::mutex cache_mu_;
  std::map<std::string, CacheEntry> plan_cache_;
  std::map<std::string, std::shared_ptr<PlanInFlight>> planning_;
  CacheStats cache_stats_;

  /// Readers (planning, simulation) take it shared; the calibration
  /// writer takes it exclusive — the estimator reads hw_ on every
  /// estimate, so planning must not overlap an update.
  std::shared_mutex hw_mu_;
  int calibration_version_ = 0;

  std::mutex batch_mu_;

  /// Declared last: admission workers run closures that touch the members
  /// above, so the controller must be torn down (drained) first.
  std::unique_ptr<AdmissionController> admission_;
};

}  // namespace costdb
