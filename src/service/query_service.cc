#include "service/query_service.h"

namespace costdb {

QueryService::QueryService(const MetadataService* meta,
                           const CostEstimator* estimator,
                           BiObjectiveOptions options)
    : meta_(meta),
      estimator_(estimator),
      options_(options),
      passes_(MakeDefaultPassPipeline(options.explore_bushy)) {}

Status QueryService::RunOn(QueryPlanContext* ctx) const {
  ctx->meta = meta_;
  ctx->estimator = estimator_;
  ctx->options = options_;
  return RunPassPipeline(passes_, ctx);
}

Result<PlannedQuery> QueryService::PlanSql(
    const std::string& sql, const UserConstraint& constraint) const {
  QueryPlanContext ctx;
  ctx.sql = sql;
  ctx.constraint = constraint;
  COSTDB_RETURN_NOT_OK(RunOn(&ctx));
  return std::move(ctx.best);
}

Result<PlannedQuery> QueryService::Plan(const BoundQuery& query,
                                        const UserConstraint& constraint) const {
  QueryPlanContext ctx;
  ctx.query = query;
  ctx.bound = true;
  ctx.constraint = constraint;
  COSTDB_RETURN_NOT_OK(RunOn(&ctx));
  return std::move(ctx.best);
}

Result<BoundQuery> QueryService::Bind(const std::string& sql) const {
  return BindSql(meta_, sql);
}

bool QueryService::InsertPassAfter(const std::string& after_name,
                                   std::unique_ptr<OptimizerPass> pass) {
  for (auto it = passes_.begin(); it != passes_.end(); ++it) {
    if (after_name == (*it)->name()) {
      passes_.insert(it + 1, std::move(pass));
      return true;
    }
  }
  // Unknown anchor: refuse to mutate — a silent append would run the
  // pass in a position the caller did not ask for.
  return false;
}

bool QueryService::RemovePass(const std::string& name) {
  for (auto it = passes_.begin(); it != passes_.end(); ++it) {
    if (name == (*it)->name()) {
      passes_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<std::string> QueryService::PassNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.emplace_back(pass->name());
  return names;
}

}  // namespace costdb
