#include "service/database.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/table_printer.h"
#include "optimizer/cardinality.h"
#include "service/session.h"
#include "sql/shape.h"

namespace costdb {

Database::Database(DatabaseOptions options)
    : options_(options), node_(pricing_.default_node()) {
  // One worker-count cap end to end: the optimizer's 0-auto resolution
  // honors the facade's limit.
  options_.optimizer.max_workers =
      static_cast<int>(std::max<size_t>(1, options_.max_workers));
  // The cost model must price exchanges for the transport the engine will
  // actually use: over a serializing transport, shuffle/broadcast/gather
  // estimates gain the calibrated link terms (cost/calibration.h).
  hw_.exchange_transport = options_.exchange_transport == TransportKind::kSocket
                               ? LinkTransport::kSocket
                               : LinkTransport::kInProcess;
  estimator_ = std::make_unique<CostEstimator>(&hw_, &node_);
  query_service_ = std::make_unique<QueryService>(&meta_, estimator_.get(),
                                                  options_.optimizer);
  simulator_ =
      std::make_unique<DistributedSimulator>(estimator_.get(), options_.sim);
  calibration_ =
      std::make_unique<CalibrationUpdater>(&hw_, options_.calibration);
  // Serial engines live in tenant-hashed lock shards and are built
  // lazily: a process serving one tenant spins up one engine pool, not
  // engine_shards of them.
  const size_t shards = std::max<size_t>(1, options_.engine_shards);
  engine_shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    engine_shards_.push_back(std::make_unique<EngineShard>());
  }
  if (options_.enable_persistent_storage) {
    // The whole tier is built here and never reassigned: execution threads
    // read storage_store_/block_cache_ raw, so late initialization would
    // need a lock on every scan.
    std::string dir = options_.storage_spill_dir;
    if (dir.empty()) {
      // Per-instance default under the system temp path; two facades in
      // one process must not interleave spill files.
      std::ostringstream name;
      name << "costdb-spill-" << static_cast<const void*>(this);
      std::error_code ec;
      auto base = std::filesystem::temp_directory_path(ec);
      dir = (ec ? std::filesystem::path(".") : base) / name.str();
    }
    auto store = std::make_unique<SimulatedObjectStore>(&pricing_);
    storage_env_status_ = store->EnableSpill(dir);
    if (storage_env_status_.ok()) {
      block_cache_ =
          std::make_unique<BlockCache>(options_.block_cache_bytes);
      storage_store_ = std::move(store);
    }
  }
  AdmissionOptions admission = options_.admission;
  if (admission.max_concurrent == 0) {
    admission.max_concurrent = options_.batch_threads;
  }
  admission_ = std::make_unique<AdmissionController>(admission);
}

Status Database::PersistTable(const std::string& name) {
  if (!options_.enable_persistent_storage) {
    return Status::NotSupported(
        "persistent storage is disabled "
        "(DatabaseOptions::enable_persistent_storage)");
  }
  COSTDB_RETURN_NOT_OK(storage_env_status_);
  std::shared_ptr<Table> table;
  COSTDB_ASSIGN_OR_RETURN(table, meta_.GetTable(name));
  if (table->persistent()) {
    return Status::AlreadyExists("table '" + name +
                                 "' already has persistent storage");
  }
  std::vector<LogicalType> types;
  types.reserve(table->columns().size());
  for (const auto& c : table->columns()) types.push_back(c.type);
  // The pricing supplier snapshots the calibrated storage terms under the
  // hardware lock each time the storage layer prices a miss, an admission,
  // or a compaction — so cache and compaction economics track calibration
  // movement without storage ever reaching into cost/cloud state.
  auto pricing = [this]() {
    StoragePricing p;
    {
      ReaderMutexLock hw_lock(hw_mu_);
      p.read_gibps = hw_.storage_read_gibps;
      p.get_seconds = hw_.storage_get_seconds;
    }
    p.get_dollars = pricing_.per_1k_get_requests / 1000.0;
    p.put_dollars = pricing_.per_1k_put_requests / 1000.0;
    p.node_dollars_per_second = node_.price_per_second();
    return p;
  };
  auto storage = std::make_shared<TableStorage>(
      name, std::move(types), table->row_group_size(), storage_store_.get(),
      block_cache_.get(), options_.storage, std::move(pricing));
  return table->AttachStorage(std::move(storage));
}

Result<bool> Database::CompactTable(const std::string& name, bool force) {
  std::shared_ptr<Table> table;
  COSTDB_ASSIGN_OR_RETURN(table, meta_.GetTable(name));
  if (!table->persistent()) {
    return Status::InvalidArgument("table '" + name +
                                   "' has no persistent storage attached");
  }
  return table->CompactStorage(force);
}

Database::StorageBilling Database::SettleStorageRequests() {
  if (storage_store_ == nullptr) return StorageBilling{};
  const int64_t gets = storage_store_->get_requests();
  const int64_t puts = storage_store_->put_requests();
  MutexLock lock(billing_mu_);
  const int64_t new_gets = gets - storage_billed_.gets;
  const int64_t new_puts = puts - storage_billed_.puts;
  if (new_gets > 0) {
    const Dollars d =
        static_cast<double>(new_gets) * pricing_.per_1k_get_requests / 1000.0;
    billing_.ChargeFlat("storage:get", d);
    storage_billed_.dollars += d;
    storage_billed_.gets = gets;
  }
  if (new_puts > 0) {
    const Dollars d =
        static_cast<double>(new_puts) * pricing_.per_1k_put_requests / 1000.0;
    billing_.ChargeFlat("storage:put", d);
    storage_billed_.dollars += d;
    storage_billed_.puts = puts;
  }
  return storage_billed_;
}

Database::StorageBilling Database::storage_billing() const {
  MutexLock lock(billing_mu_);
  return storage_billed_;
}

Result<BoundQuery> Database::BindSql(const std::string& sql) const {
  return query_service_->Bind(sql);
}

std::string Database::CacheKey(const std::string& shape,
                               const UserConstraint& constraint) {
  std::string key = shape;
  key += '\x1f';
  key += constraint.mode == UserConstraint::Mode::kMinCostUnderSla ? 'S' : 'B';
  key += StrFormat("%.17g|%.17g|w%d", constraint.latency_sla,
                   constraint.budget, constraint.workers);
  return key;
}

std::string Database::ResultKey(const std::string& shape,
                                const UserConstraint& constraint,
                                const std::vector<Value>& params) {
  std::string key = CacheKey(shape, constraint);
  key += '\x1e';
  for (const Value& v : params) {
    // Type tags keep 1, 1.0, and '1' distinct keys — same printed form,
    // different scan predicates.
    if (v.is_null()) {
      key += 'n';
    } else if (v.is_int()) {
      key += 'i';
    } else if (v.is_double()) {
      key += 'd';
    } else {
      key += 's';
    }
    key += v.ToString();
    key += '\x1e';
  }
  return key;
}

Database::EngineShard& Database::ShardFor(const std::string& tenant) {
  return *engine_shards_[std::hash<std::string>{}(tenant) %
                         engine_shards_.size()];
}

namespace {

/// Every table a plan scans, with the layout version it was planned
/// against (see Database::CacheEntry::table_layouts).
void CollectScanTables(
    const PhysicalPlan* node,
    std::vector<std::pair<std::shared_ptr<Table>, uint64_t>>* out) {
  if (node == nullptr) return;
  if (node->kind == PhysicalPlan::Kind::kTableScan && node->table != nullptr) {
    out->emplace_back(node->table, node->table->layout_version());
  }
  for (const auto& c : node->children) CollectScanTables(c.get(), out);
}

bool TableLayoutsCurrent(
    const std::vector<std::pair<std::shared_ptr<Table>, uint64_t>>& layouts) {
  for (const auto& [table, version] : layouts) {
    if (table->layout_version() != version) return false;
  }
  return true;
}

}  // namespace

Result<std::shared_ptr<const PlannedQuery>> Database::PlanCachedImpl(
    const std::string& cache_key,
    const std::function<Result<PlannedQuery>()>& plan_fn, bool* cache_hit) {
  *cache_hit = false;
  if (!options_.enable_plan_cache) {
    ReaderMutexLock hw_lock(hw_mu_);
    auto planned = plan_fn();
    if (!planned.ok()) return planned.status();
    return std::make_shared<const PlannedQuery>(std::move(*planned));
  }
  int planned_under_version = 0;
  std::shared_ptr<PlanInFlight> flight;
  {
    UniqueMutexLock lock(cache_mu_);
    while (true) {
      auto it = plan_cache_.find(cache_key);
      if (it != plan_cache_.end()) {
        if (it->second.calibration_version == calibration_version_ &&
            TableLayoutsCurrent(it->second.table_layouts)) {
          ++cache_stats_.hits;
          *cache_hit = true;
          return it->second.plan;
        }
        // Calibration moved since this plan was priced, or a scanned
        // table's physical layout changed (append / recluster /
        // repartition); replan.
        plan_cache_.erase(it);
        ++cache_stats_.invalidations;
        break;
      }
      // Single-flight: if another thread is already planning this shape,
      // wait for its entry instead of running the optimizer again — under
      // concurrent sessions sharing a statement shape, the optimizer runs
      // once per shape, not once per session.
      auto in_flight = planning_.find(cache_key);
      if (in_flight == planning_.end()) break;  // become the planner
      auto ticket = in_flight->second;
      while (!ticket->done) ticket->cv.wait(lock);
      // Re-check: the planner filled the cache (hit), failed (we take
      // over), or the calibration moved meanwhile (we replan).
    }
    ++cache_stats_.misses;
    // Snapshot before planning: if calibration moves while we plan, the
    // entry must record the version the estimates were made under.
    planned_under_version = calibration_version_;
    flight = std::make_shared<PlanInFlight>();
    planning_[cache_key] = flight;
  }
  std::shared_ptr<const PlannedQuery> shared;
  Status failed;
  {
    // The estimator reads hw_ on every estimate; hold off calibration
    // writers while planning.
    ReaderMutexLock hw_lock(hw_mu_);
    auto planned = plan_fn();
    if (planned.ok()) {
      shared = std::make_shared<const PlannedQuery>(std::move(*planned));
    } else {
      failed = planned.status();
    }
  }
  {
    MutexLock lock(cache_mu_);
    if (shared != nullptr) {
      CacheEntry entry{shared, planned_under_version, {}};
      CollectScanTables(shared->plan.get(), &entry.table_layouts);
      plan_cache_[cache_key] = std::move(entry);
    }
    planning_.erase(cache_key);
    flight->done = true;
  }
  flight->cv.notify_all();
  if (shared == nullptr) return failed;
  return shared;
}

Result<std::shared_ptr<const PlannedQuery>> Database::PlanCachedSql(
    const std::string& sql, const UserConstraint& constraint,
    bool* cache_hit) {
  return PlanCachedImpl(
      CacheKey(NormalizeStatementShape(sql), constraint),
      [&] { return query_service_->PlanSql(sql, constraint); }, cache_hit);
}

Result<std::shared_ptr<const PlannedQuery>> Database::PlanCachedBound(
    const BoundQuery& query, const std::string& shape_key,
    const UserConstraint& constraint, bool* cache_hit) {
  return PlanCachedImpl(
      CacheKey(shape_key, constraint),
      [&] { return query_service_->Plan(query, constraint); }, cache_hit);
}

Result<PlannedQuery> Database::PlanSql(const std::string& sql,
                                       const UserConstraint& constraint) {
  bool cache_hit = false;
  std::shared_ptr<const PlannedQuery> shared;
  COSTDB_ASSIGN_OR_RETURN(shared, PlanCachedSql(sql, constraint, &cache_hit));
  return *shared;  // cheap: the plan tree itself stays shared
}

Result<PlannedQuery> Database::BindPreparedPlan(
    const PlannedQuery& cached, const BoundQuery& query,
    const std::vector<Value>& params) {
  PlannedQuery out;
  out.plan = BindPlanParams(cached.plan.get(), params);
  out.pipelines = BuildPipelines(out.plan.get());
  out.dops = cached.dops;  // pipeline ids are stable across the clone
  out.bushiness = cached.bushiness;
  out.feasible = cached.feasible;
  out.states_explored = cached.states_explored;
  out.workers = cached.workers;
  // Re-derive only the cardinality-sensitive terms: with constants bound,
  // histogram selectivities replace the default-selectivity guesses the
  // prepared plan was shaped under; the shape and DOPs stay fixed.
  CardinalityEstimator cards(&meta_, &query.relations);
  out.volumes = ComputeVolumes(out.plan.get(), cards);
  {
    ReaderMutexLock hw_lock(hw_mu_);
    out.estimate = estimator_->EstimatePlan(out.pipelines, out.dops,
                                            out.volumes);
  }
  return out;
}

Result<ExecutionResult> Database::ExecuteSharded(
    std::shared_ptr<const PlannedQuery> plan, bool cache_hit, size_t workers,
    bool serial, const std::string& tenant) {
  ExecutionResult out;
  out.plan = std::move(plan);
  out.plan_cache_hit = cache_hit;
  out.workers = workers;

  // Per-query elastic state: a fresh DOP monitor proposes widths from the
  // engine's real fragment timings, the controller prices each proposal
  // (spin-up + shuffle dispatch vs predicted saving) and reads the
  // admission backlog before allowing growth. Policies are stateful per
  // query, so nothing here outlives the run.
  std::unique_ptr<PipelineDopMonitor> monitor;
  std::unique_ptr<ElasticController> controller;
  WidthDecider decider;
  if (options_.enable_elastic) {
    monitor = std::make_unique<PipelineDopMonitor>(options_.elastic_monitor);
    ElasticControllerOptions elastic = options_.elastic;
    elastic.max_workers = std::min<size_t>(
        elastic.max_workers, std::max<size_t>(1, options_.max_workers));
    controller = std::make_unique<ElasticController>(estimator_.get(),
                                                     monitor.get(), elastic);
    controller->BeginQuery(
        &out.plan->pipelines, &out.plan->volumes,
        UserConstraint().WithWorkers(static_cast<int>(workers)),
        out.plan->estimate.latency, static_cast<int>(workers));
    controller->SetQueuePressure(admission_->queue_pressure());
    ElasticController* raw = controller.get();
    decider = [this, raw](const FragmentBoundary& boundary) {
      // The policy prices candidates through the shared estimator, which
      // reads the calibrated hardware model — shut out calibration
      // writers for the duration of the decision.
      ReaderMutexLock hw_lock(hw_mu_);
      return raw->Decide(boundary);
    };
  }

  auto run = [&](ShardedEngine* engine) -> Status {
    engine->SetResizer(decider);
    auto result = engine->Execute(out.plan->plan.get());
    engine->SetResizer(WidthDecider());  // cached engines are reused
    out.exchange = engine->last_exchange_stats();
    out.usage = engine->last_usage();
    out.fused = engine->last_fused_stats();
    out.storage = engine->last_block_stats();
    if (!result.ok()) return result.status();
    out.result = std::move(*result);
    return Status::OK();
  };

  ShardedEngineOptions engine_options;
  engine_options.workers = workers;
  engine_options.threads_per_worker = options_.sharded_threads_per_worker;
  engine_options.transport = options_.exchange_transport;
  engine_options.worker_mode = options_.worker_mode;
  if (serial) {
    EngineShard& shard = ShardFor(tenant);
    MutexLock lock(shard.mu);
    auto& engine = shard.sharded[workers];
    if (engine == nullptr) {
      engine = std::make_unique<ShardedEngine>(engine_options);
    }
    COSTDB_RETURN_NOT_OK(run(engine.get()));
  } else {
    ShardedEngine engine(engine_options);
    COSTDB_RETURN_NOT_OK(run(&engine));
  }
  if (controller != nullptr) out.elastic = controller->decisions();

  // Cloud billing: charge the measured machine time — wall seconds at the
  // widths the run actually held (elastic runs interleave widths; fixed
  // runs bill wall x workers) — at the facade's node price. The session
  // ledger settles its estimate against this.
  const Dollars price = node_.price_per_second();
  out.billed_dollars = out.usage.worker_seconds * price;
  // Egress: wire bytes the run's exchanges serialized are billed at the
  // catalog's egress rate (0 for in-process runs — nothing crosses a
  // link). Conservation: egress_billed_.dollars tracks wire_bytes/GiB x
  // rate exactly, the invariant bench_e18_transport gates.
  const double wire_bytes = out.exchange.wire_bytes();
  out.egress_dollars = wire_bytes / kGiB * pricing_.egress_per_gib;
  {
    MutexLock lock(billing_mu_);
    UsageRecord record;
    record.label = controller != nullptr ? "query:elastic" : "query:sharded";
    record.start = billing_clock_;
    record.duration = out.usage.worker_seconds;  // machine-seconds, 1 "node"
    record.node_count = 1;
    record.price_per_node_second = price;
    billing_.Charge(record);
    billing_clock_ += out.usage.wall_seconds;
    if (wire_bytes > 0.0) {
      billing_.ChargeFlat("exchange:egress", out.egress_dollars);
      egress_billed_.wire_bytes += wire_bytes;
      egress_billed_.dollars += out.egress_dollars;
      ++egress_billed_.runs;
    }
  }
  return out;
}

Database::EgressBilling Database::egress_billing() const {
  MutexLock lock(billing_mu_);
  return egress_billed_;
}

BillingMeter Database::billing_snapshot() const {
  MutexLock lock(billing_mu_);
  return billing_;
}

Result<ExecutionResult> Database::ExecutePlanned(
    std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
    LocalEngine* engine, const std::string& tenant) {
  // A caller-owned LocalEngine means the caller runs concurrently.
  const bool concurrent = engine != nullptr;
  return ExecuteMaterialized(std::move(plan), cache_hit, engine, tenant,
                             concurrent);
}

Result<ExecutionResult> Database::ExecuteMaterialized(
    std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
    LocalEngine* engine, const std::string& tenant, bool concurrent) {
  const size_t workers = std::min<size_t>(
      plan->workers > 0 ? static_cast<size_t>(plan->workers) : 1,
      std::max<size_t>(1, options_.max_workers));
  if (workers > 1) {
    // Partitioned execution: the plan's resolved worker knob routes the
    // query to the sharded backend; concurrent callers get a private
    // sharded engine instead of the tenant shard's cached one.
    return ExecuteSharded(std::move(plan), cache_hit, workers,
                          /*serial=*/!concurrent, tenant);
  }
  ExecutionResult out;
  out.plan = std::move(plan);
  out.plan_cache_hit = cache_hit;
  if (engine != nullptr) {
    COSTDB_ASSIGN_OR_RETURN(out.result, engine->Execute(out.plan->plan.get()));
    out.timings = engine->last_timings();
    out.fused = engine->last_fused_stats();
    out.storage = engine->last_block_stats();
    return out;
  }
  // Serial path: reuse the tenant shard's long-lived engine (its worker
  // pool outlives queries); timings are per-run engine state, so access
  // within the shard is exclusive.
  EngineShard& shard = ShardFor(tenant);
  MutexLock lock(shard.mu);
  if (shard.engine == nullptr) {
    shard.engine = std::make_unique<LocalEngine>(options_.exec_threads);
  }
  COSTDB_ASSIGN_OR_RETURN(out.result,
                          shard.engine->Execute(out.plan->plan.get()));
  out.timings = shard.engine->last_timings();
  out.fused = shard.engine->last_fused_stats();
  out.storage = shard.engine->last_block_stats();
  return out;
}

Result<ExecutionResult> Database::ExecutePlannedToSink(
    std::shared_ptr<const PlannedQuery> plan, bool cache_hit, ChunkSink* sink,
    LocalEngine* engine, const std::string& tenant) {
  const size_t workers = std::min<size_t>(
      plan->workers > 0 ? static_cast<size_t>(plan->workers) : 1,
      std::max<size_t>(1, options_.max_workers));
  if (workers <= 1 && engine == nullptr) {
    return Status::InvalidArgument(
        "ExecutePlannedToSink requires a caller-owned engine");
  }
  if (workers > 1) {
    // Sharded plans gather before they finish, so the async path executes
    // to completion and streams the gathered result as one chunk — later
    // morsel-granular streaming would need a streaming gather.
    ExecutionResult out;
    COSTDB_ASSIGN_OR_RETURN(
        out, ExecuteSharded(std::move(plan), cache_hit, workers,
                            /*serial=*/false, tenant));
    QueryResult gathered = std::move(out.result);
    out.result.names = gathered.names;
    out.result.types = gathered.types;
    out.result.chunk = DataChunk(gathered.types);
    if (gathered.chunk.num_rows() > 0) {
      COSTDB_RETURN_NOT_OK(sink->Push(std::move(gathered.chunk)));
    }
    return out;
  }
  ExecutionResult out;
  out.plan = std::move(plan);
  out.plan_cache_hit = cache_hit;
  StreamedResult streamed;
  COSTDB_ASSIGN_OR_RETURN(streamed,
                          engine->ExecuteToSink(out.plan->plan.get(), sink));
  out.timings = engine->last_timings();
  out.fused = engine->last_fused_stats();
  out.storage = engine->last_block_stats();
  out.result.names = std::move(streamed.names);
  out.result.types = std::move(streamed.types);
  // Rows went to the sink; leave an empty, correctly-laid-out chunk so a
  // caller draining leftovers (QueryHandle::Take) can append into it.
  out.result.chunk = DataChunk(out.result.types);
  return out;
}

Result<ExecutionResult> Database::ExecutePlannedCached(
    std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
    const std::string& result_key, ChunkSink* sink, LocalEngine* engine,
    const std::string& tenant) {
  if (!options_.enable_result_cache || result_key.empty()) {
    if (sink != nullptr) {
      return ExecutePlannedToSink(std::move(plan), cache_hit, sink, engine,
                                  tenant);
    }
    return ExecutePlanned(std::move(plan), cache_hit, engine, tenant);
  }
  std::shared_ptr<PlanInFlight> flight;
  int executed_under_version = 0;
  {
    UniqueMutexLock lock(cache_mu_);
    while (true) {
      auto it = result_cache_.find(result_key);
      if (it != result_cache_.end()) {
        if (it->second.calibration_version == calibration_version_ &&
            TableLayoutsCurrent(it->second.table_layouts)) {
          ++result_cache_stats_.hits;
          it->second.last_used = ++result_cache_tick_;
          std::shared_ptr<const QueryResult> rows = it->second.result;
          lock.unlock();
          // Serve the materialized rows; no engine runs, timings stay
          // empty (the calibration loop correctly observes nothing).
          ExecutionResult out;
          out.plan = std::move(plan);
          out.plan_cache_hit = cache_hit;
          out.result_cache_hit = true;
          out.result.names = rows->names;
          out.result.types = rows->types;
          if (sink != nullptr) {
            out.result.chunk = DataChunk(rows->types);
            if (rows->chunk.num_rows() > 0) {
              DataChunk copy = rows->chunk;
              COSTDB_RETURN_NOT_OK(sink->Push(std::move(copy)));
            }
          } else {
            out.result.chunk = rows->chunk;
          }
          return out;
        }
        // The calibration moved or a scanned table's layout changed since
        // these rows were produced; they may describe data that no longer
        // exists. Drop and re-execute.
        result_cache_bytes_ -= it->second.payload_bytes;
        result_cache_.erase(it);
        ++result_cache_stats_.invalidations;
        break;
      }
      // Single-flight: someone is already executing this exact statement;
      // wait for their rows instead of running the same plan again.
      auto in_flight = result_flights_.find(result_key);
      if (in_flight == result_flights_.end()) break;  // become the leader
      auto ticket = in_flight->second;
      while (!ticket->done) ticket->cv.wait(lock);
      // Re-check: the leader published (hit), failed (we take over), or
      // the entry went stale meanwhile (we re-execute).
    }
    ++result_cache_stats_.misses;
    // Snapshot before executing: if calibration moves during the run, the
    // entry must record the version the rows were produced under.
    executed_under_version = calibration_version_;
    flight = std::make_shared<PlanInFlight>();
    result_flights_[result_key] = flight;
  }
  // Leader: run once, materialized (the cache stores rows), preserving
  // the caller's concurrency — a sink/engine caller is an admission
  // worker and must not serialize on the tenant shard's engines.
  const bool concurrent = sink != nullptr || engine != nullptr;
  auto executed =
      ExecuteMaterialized(plan, cache_hit, engine, tenant, concurrent);
  {
    MutexLock lock(cache_mu_);
    if (executed.ok()) {
      ResultCacheEntry entry;
      entry.result = std::make_shared<const QueryResult>(executed->result);
      entry.calibration_version = executed_under_version;
      CollectScanTables(plan->plan.get(), &entry.table_layouts);
      entry.last_used = ++result_cache_tick_;
      entry.payload_bytes = ChunkPayloadBytes(entry.result->chunk);
      auto [slot, inserted] = result_cache_.try_emplace(result_key);
      if (!inserted) result_cache_bytes_ -= slot->second.payload_bytes;
      result_cache_bytes_ += entry.payload_bytes;
      slot->second = std::move(entry);
      // LRU eviction under both budgets: the entry cap first, then the
      // byte budget — a handful of huge results can no longer pin
      // "max_entries worth" of arbitrary memory.
      auto evict_lru = [&] {
        auto victim = result_cache_.begin();
        for (auto it = result_cache_.begin(); it != result_cache_.end();
             ++it) {
          if (it->second.last_used < victim->second.last_used) victim = it;
        }
        result_cache_bytes_ -= victim->second.payload_bytes;
        result_cache_.erase(victim);
        ++result_cache_stats_.evictions;
      };
      while (result_cache_.size() >
             std::max<size_t>(1, options_.result_cache_max_entries)) {
        evict_lru();
      }
      while (options_.result_cache_max_bytes > 0 && result_cache_.size() > 1 &&
             result_cache_bytes_ >
                 static_cast<double>(options_.result_cache_max_bytes)) {
        // size() > 1: the newest entry always stays — evicting the rows we
        // just produced would make an over-budget result uncacheable *and*
        // churn the rest of the cache.
        evict_lru();
      }
    }
    // On failure the flight is simply abandoned — the next waiter wakes,
    // finds no entry, and takes over as leader.
    result_flights_.erase(result_key);
    flight->done = true;
  }
  flight->cv.notify_all();
  if (!executed.ok()) return executed.status();
  if (sink != nullptr) {
    // Streaming contract: rows go through the sink, the result keeps an
    // empty correctly-laid-out chunk (see ExecutePlannedToSink).
    QueryResult materialized = std::move(executed->result);
    executed->result.names = materialized.names;
    executed->result.types = materialized.types;
    executed->result.chunk = DataChunk(materialized.types);
    if (materialized.chunk.num_rows() > 0) {
      COSTDB_RETURN_NOT_OK(sink->Push(std::move(materialized.chunk)));
    }
  }
  return executed;
}

Dollars Database::SettleTenantBill(const std::string& tenant,
                                   ExecutionResult* executed,
                                   Dollars reserved) {
  if (executed == nullptr) return reserved;
  Dollars actual = reserved;
  double seconds = 0.0;
  if (!executed->result_cache_hit) {
    // Machine time consumed: measured worker-seconds for sharded runs,
    // summed pipeline wall times for local ones.
    seconds = executed->usage.worker_seconds;
    if (seconds <= 0.0) {
      for (const auto& t : executed->timings) seconds += t.seconds;
    }
  }
  MutexLock lock(tenant_mu_);
  TenantBill& bill = tenant_billing_[tenant];
  if (executed->result_cache_hit) {
    // Serving cached rows costs memory bandwidth, not an execution.
    actual = reserved * options_.pricing.result_cache_hit_factor;
    executed->billed_dollars = actual;
    ++bill.result_cache_hits;
  } else if (!options_.pricing.compute_second_tiers.empty()) {
    // Tiered volume pricing folds this run's marginal consumption across
    // the tenant's *cumulative* position in the schedule — heavy tenants
    // slide into cheaper tiers, exactly like production storage/egress
    // price sheets.
    actual =
        TieredCost(bill.machine_seconds, bill.machine_seconds + seconds,
                   options_.pricing.compute_second_tiers,
                   node_.price_per_second());
    executed->billed_dollars = actual;
  } else if (executed->billed_dollars > 0.0) {
    // Flat pricing, sharded run: settle to the measured cloud bill.
    actual = executed->billed_dollars;
  }
  // Flat pricing, local run: the reservation stands (pre-tenancy
  // behavior; billed_dollars stays 0 so callers can tell).
  if (executed->storage.misses > 0) {
    // Cold reads this run caused are the tenant's traffic: attribute the
    // GET fees on top of compute (compaction's own GETs are maintenance
    // and settle to the facade bill via SettleStorageRequests instead).
    bill.storage_gets += executed->storage.misses;
    bill.storage_get_dollars += executed->storage.miss_get_dollars;
    actual += executed->storage.miss_get_dollars;
  }
  bill.machine_seconds += seconds;
  bill.dollars += actual;
  ++bill.runs;
  return actual;
}

std::map<std::string, Database::TenantBill> Database::tenant_billing() const {
  MutexLock lock(tenant_mu_);
  return tenant_billing_;
}

Database::ResultCacheStats Database::result_cache_stats() const {
  MutexLock lock(cache_mu_);
  ResultCacheStats stats = result_cache_stats_;
  stats.entries = result_cache_.size();
  stats.bytes = static_cast<size_t>(result_cache_bytes_);
  return stats;
}

void Database::ClearResultCache() {
  MutexLock lock(cache_mu_);
  result_cache_.clear();
  result_cache_stats_ = ResultCacheStats{};
  result_cache_bytes_ = 0.0;
}

CalibrationReport Database::Calibrate(const ExecutionResult& executed) {
  WriterMutexLock hw_lock(hw_mu_);
  CalibrationReport report;
  if (!executed.timings.empty()) {
    report = calibration_->Observe(executed.plan->pipelines,
                                   executed.plan->volumes, executed.timings,
                                   *estimator_, /*dop=*/1);
  }
  bool moved = report.changed(options_.recalibration_threshold);
  if (!executed.exchange.timings.empty()) {
    // Sharded run: fold the measured exchange wall times into the
    // calibration's shuffle term (bytes/shuffle_bw + per-partition
    // dispatch), tightening the cost model's worker-count decisions.
    CalibrationReport shuffle =
        calibration_->ObserveShuffles(executed.exchange.timings);
    if (executed.timings.empty()) report = shuffle;
    moved = moved || shuffle.changed(options_.recalibration_threshold);
    // Over a serializing transport the same timings also carry a measured
    // link share (serialize + socket transfer seconds per exchange): fold
    // it into the link terms, which only transported runs may move.
    bool any_link = false;
    for (const ExchangeTiming& t : executed.exchange.timings) {
      any_link = any_link || (t.wire_bytes > 0.0 && t.link_seconds > 0.0);
    }
    if (any_link) {
      CalibrationReport link =
          calibration_->ObserveTransport(executed.exchange.timings);
      moved = moved || link.changed(options_.recalibration_threshold);
    }
  }
  if (executed.fused.any_fused() && executed.fused.fused_seconds > 0.0) {
    // Fused morsels ran: fold the measured fused-kernel wall time into the
    // fused dispatch/throughput terms, so the fuse_kernels pass's
    // fused-vs-interpreted pricing tracks delivered performance.
    FusedObservation obs;
    obs.rows = static_cast<double>(executed.fused.fused_rows);
    obs.batches = static_cast<double>(executed.fused.fused_filter_morsels +
                                      executed.fused.fused_probe_morsels +
                                      executed.fused.fused_agg_morsels);
    obs.seconds = executed.fused.fused_seconds;
    CalibrationReport fused = calibration_->ObserveFused({obs});
    moved = moved || fused.changed(options_.recalibration_threshold);
  }
  if (executed.storage.misses > 0 && executed.storage.miss_seconds > 0.0) {
    // Cold blocks were read: fold the measured fetch+decode wall time into
    // the storage tier's bandwidth/latency terms, so block-cache admission
    // pricing and the compaction trade track delivered cold-read speed.
    StorageObservation obs;
    obs.bytes = executed.storage.bytes_read;
    obs.blocks = static_cast<double>(executed.storage.misses);
    obs.seconds = executed.storage.miss_seconds;
    CalibrationReport storage = calibration_->ObserveStorage({obs});
    moved = moved || storage.changed(options_.recalibration_threshold);
  }
  if (moved) {
    // Estimates produced before this round are stale; lazily invalidate
    // cached plans by versioning.
    MutexLock cache_lock(cache_mu_);
    ++calibration_version_;
  }
  return report;
}

void Database::CalibrateExecution(ExecutionResult* executed) {
  if (!options_.enable_calibration || executed == nullptr ||
      executed->plan == nullptr) {
    return;
  }
  executed->calibration = Calibrate(*executed);
}

Result<ExecutionResult> Database::ExecuteSql(const std::string& sql,
                                             const UserConstraint& constraint) {
  bool cache_hit = false;
  std::shared_ptr<const PlannedQuery> plan;
  COSTDB_ASSIGN_OR_RETURN(plan, PlanCachedSql(sql, constraint, &cache_hit));
  ExecutionResult out;
  COSTDB_ASSIGN_OR_RETURN(out, ExecutePlanned(std::move(plan), cache_hit));
  CalibrateExecution(&out);
  return out;
}

std::vector<Result<ExecutionResult>> Database::SubmitBatch(
    const std::vector<QueryRequest>& requests) {
  MutexLock batch_lock(batch_mu_);
  std::vector<Result<ExecutionResult>> results(
      requests.size(), Result<ExecutionResult>(Status::Internal("pending")));

  // Thin shim over the Session API. Submitting serially in request order
  // keeps the plan-cache hit/miss pattern deterministic (Session::Submit
  // plans synchronously); the admission controller then executes in
  // cost-aware order, which cannot affect per-query results.
  Session session(this);
  Session::SubmitOptions submit;
  submit.calibrate = false;  // one serialized feedback round below
  std::vector<QueryHandlePtr> handles(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    submit.constraint = requests[i].constraint;
    auto handle = session.Submit(requests[i].sql, submit);
    if (!handle.ok()) {
      results[i] = handle.status();
      continue;
    }
    handles[i] = std::move(*handle);
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    if (handles[i] != nullptr) results[i] = handles[i]->Take();
  }

  // Serialized feedback round in request order, so the post-batch
  // calibration is independent of execution interleaving. Each query is
  // observed exactly once here and the report stored on its result —
  // workers never compute (or recompute) one.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (results[i].ok()) CalibrateExecution(&*results[i]);
  }
  return results;
}

Result<PreparedQuery> Database::Prepare(const std::string& sql,
                                        const UserConstraint& constraint) {
  PreparedQuery out;
  COSTDB_ASSIGN_OR_RETURN(out.query, BindSql(sql));
  {
    ReaderMutexLock hw_lock(hw_mu_);
    COSTDB_ASSIGN_OR_RETURN(out.planned,
                            query_service_->Plan(out.query, constraint));
  }
  CardinalityEstimator truth(&meta_, &out.query.relations,
                             /*use_true_stats=*/true);
  out.truth = ComputeVolumes(out.planned.plan.get(), truth);
  return out;
}

Result<SimResult> Database::SimulateSql(const std::string& sql,
                                        const UserConstraint& constraint,
                                        ResizePolicy* policy, CloudEnv* env) {
  PreparedQuery prepared;
  COSTDB_ASSIGN_OR_RETURN(prepared, Prepare(sql, constraint));
  StaticPolicy static_policy;
  if (policy == nullptr) policy = &static_policy;
  // The simulator estimates against hw_ too; shut out calibration writers.
  ReaderMutexLock hw_lock(hw_mu_);
  return SimulateQuery(prepared, *simulator_, policy, constraint, env);
}

Database::CacheStats Database::plan_cache_stats() const {
  MutexLock lock(cache_mu_);
  CacheStats stats = cache_stats_;
  stats.entries = plan_cache_.size();
  return stats;
}

void Database::ClearPlanCache() {
  MutexLock lock(cache_mu_);
  plan_cache_.clear();
  cache_stats_ = CacheStats{};
}

}  // namespace costdb
