#include "service/database.h"

#include "common/table_printer.h"
#include "optimizer/cardinality.h"

namespace costdb {

Database::Database(DatabaseOptions options)
    : options_(options), node_(PricingCatalog::Default().default_node()) {
  estimator_ = std::make_unique<CostEstimator>(&hw_, &node_);
  query_service_ = std::make_unique<QueryService>(&meta_, estimator_.get(),
                                                  options_.optimizer);
  simulator_ =
      std::make_unique<DistributedSimulator>(estimator_.get(), options_.sim);
  calibration_ =
      std::make_unique<CalibrationUpdater>(&hw_, options_.calibration);
  engine_ = std::make_unique<LocalEngine>(options_.exec_threads);
}

Result<BoundQuery> Database::BindSql(const std::string& sql) const {
  return query_service_->Bind(sql);
}

std::string Database::CacheKey(const std::string& sql,
                               const UserConstraint& constraint) {
  std::string key = sql;
  key += '\x1f';
  key += constraint.mode == UserConstraint::Mode::kMinCostUnderSla ? 'S' : 'B';
  key += StrFormat("%.17g|%.17g", constraint.latency_sla, constraint.budget);
  return key;
}

Result<std::shared_ptr<const PlannedQuery>> Database::PlanShared(
    const std::string& sql, const UserConstraint& constraint,
    bool* cache_hit) {
  *cache_hit = false;
  const std::string key = CacheKey(sql, constraint);
  int planned_under_version = 0;
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      if (it->second.calibration_version == calibration_version_) {
        ++cache_stats_.hits;
        *cache_hit = true;
        return it->second.plan;
      }
      // Calibration moved since this plan was priced; replan.
      plan_cache_.erase(it);
      ++cache_stats_.invalidations;
    }
    ++cache_stats_.misses;
    // Snapshot before planning: if calibration moves while we plan, the
    // entry must record the version the estimates were made under.
    planned_under_version = calibration_version_;
  }
  std::shared_ptr<const PlannedQuery> shared;
  {
    // The estimator reads hw_ on every estimate; hold off calibration
    // writers while planning.
    std::shared_lock<std::shared_mutex> hw_lock(hw_mu_);
    auto planned = query_service_->PlanSql(sql, constraint);
    if (!planned.ok()) return planned.status();
    shared = std::make_shared<const PlannedQuery>(std::move(*planned));
  }
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    plan_cache_[key] = CacheEntry{shared, planned_under_version};
  }
  return shared;
}

Result<PlannedQuery> Database::PlanSql(const std::string& sql,
                                       const UserConstraint& constraint) {
  bool cache_hit = false;
  std::shared_ptr<const PlannedQuery> shared;
  COSTDB_ASSIGN_OR_RETURN(shared, PlanShared(sql, constraint, &cache_hit));
  return *shared;  // cheap: the plan tree itself stays shared
}

Result<ExecutionResult> Database::ExecutePlanned(
    std::shared_ptr<const PlannedQuery> plan, bool cache_hit,
    LocalEngine* engine) {
  ExecutionResult out;
  out.plan = std::move(plan);
  out.plan_cache_hit = cache_hit;
  if (engine != nullptr) {
    COSTDB_ASSIGN_OR_RETURN(out.result, engine->Execute(out.plan->plan.get()));
    out.timings = engine->last_timings();
    return out;
  }
  // Serial path: reuse the long-lived engine (its worker pool outlives
  // queries); timings are per-run engine state, so access is exclusive.
  std::lock_guard<std::mutex> lock(engine_mu_);
  COSTDB_ASSIGN_OR_RETURN(out.result, engine_->Execute(out.plan->plan.get()));
  out.timings = engine_->last_timings();
  return out;
}

CalibrationReport Database::Calibrate(const ExecutionResult& executed) {
  std::unique_lock<std::shared_mutex> hw_lock(hw_mu_);
  CalibrationReport report = calibration_->Observe(
      executed.plan->pipelines, executed.plan->volumes, executed.timings,
      *estimator_, /*dop=*/1);
  if (report.changed(options_.recalibration_threshold)) {
    // Estimates produced before this round are stale; lazily invalidate
    // cached plans by versioning.
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    ++calibration_version_;
  }
  return report;
}

Result<ExecutionResult> Database::ExecuteSql(const std::string& sql,
                                             const UserConstraint& constraint) {
  bool cache_hit = false;
  std::shared_ptr<const PlannedQuery> plan;
  COSTDB_ASSIGN_OR_RETURN(plan, PlanShared(sql, constraint, &cache_hit));
  ExecutionResult out;
  COSTDB_ASSIGN_OR_RETURN(out, ExecutePlanned(std::move(plan), cache_hit));
  if (options_.enable_calibration) out.calibration = Calibrate(out);
  return out;
}

std::vector<Result<ExecutionResult>> Database::SubmitBatch(
    const std::vector<QueryRequest>& requests) {
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  std::vector<Result<ExecutionResult>> results(
      requests.size(), Result<ExecutionResult>(Status::Internal("pending")));

  // Phase 1 — plan serially in request order: deterministic cache and
  // calibration state, and the planner is not thread-safe against the
  // calibration writer anyway.
  std::vector<std::shared_ptr<const PlannedQuery>> plans(requests.size());
  std::vector<bool> hits(requests.size(), false);
  for (size_t i = 0; i < requests.size(); ++i) {
    bool hit = false;
    auto plan = PlanShared(requests[i].sql, requests[i].constraint, &hit);
    if (!plan.ok()) {
      results[i] = plan.status();
      continue;
    }
    plans[i] = std::move(*plan);
    hits[i] = hit;
  }

  // Phase 2 — execute concurrently, batch_threads queries in flight, each
  // on its own engine (one local "node" per query).
  ThreadPool pool(options_.batch_threads);
  std::mutex results_mu;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (plans[i] == nullptr) continue;
    pool.Submit([this, i, &plans, &hits, &results, &results_mu] {
      LocalEngine engine(options_.exec_threads);
      auto executed = ExecutePlanned(plans[i], hits[i], &engine);
      std::lock_guard<std::mutex> lock(results_mu);
      results[i] = std::move(executed);
    });
  }
  pool.WaitIdle();

  // Phase 3 — fold timings into the calibration serially in request
  // order, so the post-batch calibration is independent of execution
  // interleaving.
  if (options_.enable_calibration) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!results[i].ok()) continue;
      results[i]->calibration = Calibrate(*results[i]);
    }
  }
  return results;
}

Result<PreparedQuery> Database::Prepare(const std::string& sql,
                                        const UserConstraint& constraint) {
  PreparedQuery out;
  COSTDB_ASSIGN_OR_RETURN(out.query, BindSql(sql));
  {
    std::shared_lock<std::shared_mutex> hw_lock(hw_mu_);
    COSTDB_ASSIGN_OR_RETURN(out.planned,
                            query_service_->Plan(out.query, constraint));
  }
  CardinalityEstimator truth(&meta_, &out.query.relations,
                             /*use_true_stats=*/true);
  out.truth = ComputeVolumes(out.planned.plan.get(), truth);
  return out;
}

Result<SimResult> Database::SimulateSql(const std::string& sql,
                                        const UserConstraint& constraint,
                                        ResizePolicy* policy, CloudEnv* env) {
  PreparedQuery prepared;
  COSTDB_ASSIGN_OR_RETURN(prepared, Prepare(sql, constraint));
  StaticPolicy static_policy;
  if (policy == nullptr) policy = &static_policy;
  // The simulator estimates against hw_ too; shut out calibration writers.
  std::shared_lock<std::shared_mutex> hw_lock(hw_mu_);
  return SimulateQuery(prepared, *simulator_, policy, constraint, env);
}

Database::CacheStats Database::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  CacheStats stats = cache_stats_;
  stats.entries = plan_cache_.size();
  return stats;
}

void Database::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  plan_cache_.clear();
  cache_stats_ = CacheStats{};
}

}  // namespace costdb
