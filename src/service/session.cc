#include "service/session.h"

#include <condition_variable>
#include <functional>

#include "common/table_printer.h"

namespace costdb {

namespace {

/// Arity and physical-family check of a bind vector against the
/// statement's inferred parameter types. NULL binds to any type; an int
/// widens into a double slot; a double never silently truncates into an
/// int slot.
Status ValidateParams(const BoundQuery& query,
                      const std::vector<Value>& params) {
  if (params.size() != query.param_types.size()) {
    return Status::InvalidArgument(StrFormat(
        "statement takes %zu parameter(s), got %zu",
        query.param_types.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const Value& v = params[i];
    if (v.is_null()) continue;
    bool ok = false;
    switch (PhysicalTypeOf(query.param_types[i])) {
      case PhysicalType::kInt64:
        ok = v.is_int();
        break;
      case PhysicalType::kDouble:
        ok = v.is_int() || v.is_double();
        break;
      case PhysicalType::kString:
        ok = v.is_string();
        break;
    }
    if (!ok) {
      return Status::InvalidArgument(
          "parameter ?" + std::to_string(i) + " expects " +
          LogicalTypeName(query.param_types[i]) + ", got " + v.ToString());
    }
  }
  return Status::OK();
}

/// Working-set guess for the admission memory cap: bytes the plan's
/// breakers (aggregate/sort outputs, join build sides) and the final
/// result materialize, from the optimizer's believed volumes.
double EstimateWorkingSetBytes(const PlannedQuery& planned) {
  double total = 0.0;
  auto bytes_of = [&](const PhysicalPlan* node) {
    auto it = planned.volumes.find(node);
    if (it != planned.volumes.end()) return it->second.out_bytes;
    return node->est_rows * node->est_row_bytes;
  };
  std::function<void(const PhysicalPlan*)> walk =
      [&](const PhysicalPlan* node) {
        if (node == nullptr) return;
        switch (node->kind) {
          case PhysicalPlan::Kind::kHashAggregate:
          case PhysicalPlan::Kind::kSort:
            total += bytes_of(node);
            break;
          case PhysicalPlan::Kind::kHashJoin:
            if (node->children.size() > 1) {
              total += bytes_of(node->children[1].get());
            }
            break;
          default:
            break;
        }
        for (const auto& c : node->children) walk(c.get());
      };
  const PhysicalPlan* root = planned.plan.get();
  walk(root);
  // The materialized result itself — unless the root is a breaker the
  // walk already counted.
  if (root != nullptr && root->kind != PhysicalPlan::Kind::kHashAggregate &&
      root->kind != PhysicalPlan::Kind::kSort) {
    total += bytes_of(root);
  }
  return total;
}

}  // namespace

// ------------------------------------------------------------- ledger

struct Session::Ledger {
  mutable Mutex mu;
  Dollars budget GUARDED_BY(mu) = std::numeric_limits<double>::infinity();
  Dollars spent GUARDED_BY(mu) = 0.0;

  Status Charge(Dollars amount) {
    MutexLock lock(mu);
    if (spent + amount > budget) {
      return Status::ResourceExhausted(StrFormat(
          "session budget exceeded: %s spent + %s estimated > %s budget",
          FormatDollars(spent).c_str(), FormatDollars(amount).c_str(),
          FormatDollars(budget).c_str()));
    }
    spent += amount;
    return Status::OK();
  }

  void Refund(Dollars amount) {
    MutexLock lock(mu);
    spent -= amount;
    if (spent < 0.0) spent = 0.0;
  }

  /// Replace a reserved estimate with the amount the cloud billing layer
  /// actually charged (sharded/elastic runs report measured
  /// worker-seconds). The money is already spent, so no budget check —
  /// the ledger records truth even past the cap.
  void Settle(Dollars reserved, Dollars actual) {
    MutexLock lock(mu);
    spent += actual - reserved;
    if (spent < 0.0) spent = 0.0;
  }
};

// ------------------------------------------------- prepared statements

size_t PreparedStatement::times_planned() const {
  MutexLock lock(mu_);
  return times_planned_;
}

size_t PreparedStatement::reuses() const {
  MutexLock lock(mu_);
  return reuses_;
}

size_t PreparedStatement::executions() const {
  MutexLock lock(mu_);
  return executions_;
}

// --------------------------------------------------------- query handle

/// Completion state + chunk queue shared by the handle, the admission
/// run closure, and the engine's result sink. The run closure owns a
/// reference, so the state (and the plan it pins) outlives both the
/// handle and the session.
struct QueryHandle::SharedState : ChunkSink {
  // Immutable after Submit.
  Database* db = nullptr;
  std::shared_ptr<const PlannedQuery> planned;
  bool cache_hit = false;
  bool calibrate = true;
  std::string tenant;
  std::string result_key;
  size_t exec_threads = 4;
  AdmissionController* controller = nullptr;
  AdmissionController::TicketPtr ticket;
  std::shared_ptr<Session::Ledger> ledger;
  Dollars charged = 0.0;

  Mutex mu;
  std::condition_variable_any cv;
  std::deque<DataChunk> chunks GUARDED_BY(mu);
  bool producer_done GUARDED_BY(mu) = false;
  Status final_status GUARDED_BY(mu);
  // Rows stay in `chunks` until drained.
  ExecutionResult result GUARDED_BY(mu);

  Status Push(DataChunk chunk) override {
    {
      MutexLock lock(mu);
      chunks.push_back(std::move(chunk));
    }
    cv.notify_all();
    return Status::OK();
  }
};

QueryHandle::State QueryHandle::Poll() const {
  {
    MutexLock lock(state_->mu);
    if (state_->producer_done) {
      if (state_->final_status.IsCancelled()) return State::kCancelled;
      return state_->final_status.ok() ? State::kDone : State::kFailed;
    }
  }
  switch (state_->controller->state(state_->ticket)) {
    case AdmissionController::Ticket::State::kQueued:
      return State::kQueued;
    case AdmissionController::Ticket::State::kCancelled:
      return State::kCancelled;
    case AdmissionController::Ticket::State::kRunning:
    case AdmissionController::Ticket::State::kDone:
      // kDone with the producer flag not yet set is the closing race of
      // the run closure; report it as still running.
      return State::kRunning;
  }
  return State::kRunning;
}

Status QueryHandle::Wait() const {
  UniqueMutexLock lock(state_->mu);
  while (!state_->producer_done) state_->cv.wait(lock);
  return state_->final_status;
}

Result<ExecutionResult> QueryHandle::Take() {
  COSTDB_RETURN_NOT_OK(Wait());
  MutexLock lock(state_->mu);
  ExecutionResult out = std::move(state_->result);
  for (auto& chunk : state_->chunks) {
    out.result.chunk.Append(chunk);
  }
  state_->chunks.clear();
  state_->result = ExecutionResult();
  return out;
}

Result<bool> QueryHandle::FetchChunk(DataChunk* out) {
  UniqueMutexLock lock(state_->mu);
  while (state_->chunks.empty() && !state_->producer_done) {
    state_->cv.wait(lock);
  }
  if (!state_->chunks.empty()) {
    *out = std::move(state_->chunks.front());
    state_->chunks.pop_front();
    return true;
  }
  COSTDB_RETURN_NOT_OK(state_->final_status);
  return false;
}

bool QueryHandle::Cancel() {
  // Completion + refund happen in the submission's on_cancel callback,
  // the same path controller shutdown takes.
  return state_->controller->Cancel(state_->ticket);
}

const PlannedQuery& QueryHandle::plan() const { return *state_->planned; }

// --------------------------------------------------------------- session

Session::Session(Database* db, SessionOptions options)
    : db_(db), options_(options), ledger_(std::make_shared<Ledger>()) {
  MutexLock lock(ledger_->mu);
  ledger_->budget = options_.budget;
}

Result<PreparedStatementPtr> Session::Prepare(const std::string& sql) {
  return Prepare(sql, options_.default_constraint);
}

Result<PreparedStatementPtr> Session::Prepare(
    const std::string& sql, const UserConstraint& constraint) {
  auto statement = std::make_shared<PreparedStatement>();
  statement->sql_ = sql;
  statement->shape_ = NormalizeStatementShape(sql);
  statement->constraint_ = constraint;
  COSTDB_ASSIGN_OR_RETURN(statement->query_, db_->BindSql(sql));
  // Plan eagerly so Prepare surfaces optimizer errors and later Executes
  // start from a warm cache entry.
  bool hit = false;
  auto planned = db_->PlanCachedBound(statement->query_, statement->shape_,
                                      constraint, &hit);
  if (!planned.ok()) return planned.status();
  {
    MutexLock lock(statement->mu_);
    if (hit) {
      ++statement->reuses_;
    } else {
      ++statement->times_planned_;
    }
  }
  MutexLock lock(mu_);
  if (hit) {
    ++stats_.replans_avoided;
  } else {
    ++stats_.plans;
  }
  return statement;
}

Result<Session::RunnablePlan> Session::PlanStatement(
    const PreparedStatementPtr& statement, const std::vector<Value>& params,
    const UserConstraint& constraint) {
  if (statement == nullptr) {
    return Status::InvalidArgument("null prepared statement");
  }
  COSTDB_RETURN_NOT_OK(ValidateParams(statement->query_, params));
  // Always resolve through the shared shape-keyed cache: a hit is the
  // replan avoided; a miss means the calibration moved (or the entry was
  // evicted) and the optimizer runs once for every session sharing the
  // shape. The cache key carries the constraint, so executing one shape
  // under different constraints keeps distinct (correctly-optimized)
  // slots.
  bool hit = false;
  std::shared_ptr<const PlannedQuery> cached;
  COSTDB_ASSIGN_OR_RETURN(
      cached, db_->PlanCachedBound(statement->query_, statement->shape_,
                                   constraint, &hit));
  {
    MutexLock lock(statement->mu_);
    ++statement->executions_;
    if (hit) {
      ++statement->reuses_;
    } else {
      ++statement->times_planned_;
    }
  }
  {
    MutexLock lock(mu_);
    if (hit) {
      ++stats_.replans_avoided;
    } else {
      ++stats_.plans;
    }
  }
  RunnablePlan runnable;
  runnable.cache_hit = hit;
  runnable.result_key =
      Database::ResultKey(statement->shape_, constraint, params);
  if (params.empty()) {
    runnable.plan = std::move(cached);
    return runnable;
  }
  PlannedQuery bound;
  COSTDB_ASSIGN_OR_RETURN(
      bound, db_->BindPreparedPlan(*cached, statement->query_, params));
  runnable.plan = std::make_shared<const PlannedQuery>(std::move(bound));
  return runnable;
}

Result<Session::RunnablePlan> Session::PlanRaw(
    const std::string& sql, const UserConstraint& constraint) {
  bool hit = false;
  RunnablePlan runnable;
  COSTDB_ASSIGN_OR_RETURN(runnable.plan,
                          db_->PlanCachedSql(sql, constraint, &hit));
  runnable.cache_hit = hit;
  if (PlanHasParams(runnable.plan->plan.get())) {
    return Status::InvalidArgument(
        "statement has '?' placeholders; use Prepare + Execute to bind "
        "them");
  }
  runnable.result_key =
      Database::ResultKey(NormalizeStatementShape(sql), constraint, {});
  MutexLock lock(mu_);
  if (hit) {
    ++stats_.replans_avoided;
  } else {
    ++stats_.plans;
  }
  return runnable;
}

Result<ExecutionResult> Session::RunSync(RunnablePlan runnable) {
  const Dollars estimated = runnable.plan->estimate.cost;
  COSTDB_RETURN_NOT_OK(ledger_->Charge(estimated));
  auto executed = db_->ExecutePlannedCached(
      runnable.plan, runnable.cache_hit, runnable.result_key,
      /*sink=*/nullptr, /*engine=*/nullptr, options_.tenant_id);
  if (!executed.ok()) {
    ledger_->Refund(estimated);
    return executed.status();
  }
  db_->CalibrateExecution(&*executed);
  // Settle the reservation to what the run actually cost the tenant —
  // the measured sharded/elastic bill, the tiered-volume price, or the
  // cache rate on a result-cache hit.
  const Dollars actual =
      db_->SettleTenantBill(options_.tenant_id, &*executed, estimated);
  if (actual != estimated) ledger_->Settle(estimated, actual);
  MutexLock lock(mu_);
  ++stats_.executions;
  return executed;
}

Result<ExecutionResult> Session::Execute(
    const PreparedStatementPtr& statement, const std::vector<Value>& params) {
  if (statement == nullptr) {
    return Status::InvalidArgument("null prepared statement");
  }
  RunnablePlan runnable;
  COSTDB_ASSIGN_OR_RETURN(
      runnable, PlanStatement(statement, params, statement->constraint_));
  return RunSync(std::move(runnable));
}

Result<ExecutionResult> Session::ExecuteSql(const std::string& sql) {
  return ExecuteSql(sql, options_.default_constraint);
}

Result<ExecutionResult> Session::ExecuteSql(const std::string& sql,
                                            const UserConstraint& constraint) {
  RunnablePlan runnable;
  COSTDB_ASSIGN_OR_RETURN(runnable, PlanRaw(sql, constraint));
  return RunSync(std::move(runnable));
}

Result<PlannedQuery> Session::Plan(const std::string& sql) {
  return Plan(sql, options_.default_constraint);
}

Result<PlannedQuery> Session::Plan(const std::string& sql,
                                   const UserConstraint& constraint) {
  RunnablePlan runnable;
  COSTDB_ASSIGN_OR_RETURN(runnable, PlanRaw(sql, constraint));
  return *runnable.plan;  // cheap: the plan tree itself stays shared
}

Result<QueryHandlePtr> Session::Submit(const std::string& sql) {
  return Submit(sql, SubmitOptions());
}

Result<QueryHandlePtr> Session::Submit(const PreparedStatementPtr& statement,
                                       const std::vector<Value>& params) {
  return Submit(statement, params, SubmitOptions());
}

Result<QueryHandlePtr> Session::Submit(const std::string& sql,
                                       const SubmitOptions& options) {
  const UserConstraint constraint =
      options.constraint.value_or(options_.default_constraint);
  RunnablePlan runnable;
  COSTDB_ASSIGN_OR_RETURN(runnable, PlanRaw(sql, constraint));
  return SubmitPlanned(std::move(runnable), constraint, options.calibrate,
                       options.query_class);
}

Result<QueryHandlePtr> Session::Submit(const PreparedStatementPtr& statement,
                                       const std::vector<Value>& params,
                                       const SubmitOptions& options) {
  if (statement == nullptr) {
    return Status::InvalidArgument("null prepared statement");
  }
  // A constraint override re-optimizes under that constraint (its own
  // cache slot), so the plan, the ledger charge, and the admission
  // deadline all agree on what the client asked for.
  const UserConstraint constraint =
      options.constraint.value_or(statement->constraint_);
  RunnablePlan runnable;
  COSTDB_ASSIGN_OR_RETURN(runnable,
                          PlanStatement(statement, params, constraint));
  return SubmitPlanned(std::move(runnable), constraint, options.calibrate,
                       options.query_class);
}

Result<QueryHandlePtr> Session::SubmitPlanned(RunnablePlan runnable,
                                              const UserConstraint& constraint,
                                              bool calibrate,
                                              const std::string& query_class) {
  const Dollars estimated = runnable.plan->estimate.cost;
  COSTDB_RETURN_NOT_OK(ledger_->Charge(estimated));

  auto state = std::make_shared<QueryHandle::SharedState>();
  state->db = db_;
  state->planned = std::move(runnable.plan);
  state->cache_hit = runnable.cache_hit;
  state->calibrate = calibrate;
  state->tenant = options_.tenant_id;
  state->result_key = std::move(runnable.result_key);
  state->exec_threads = db_->options().exec_threads;
  state->controller = db_->admission();
  state->ledger = ledger_;
  state->charged = estimated;

  AdmissionController::Submission submission;
  submission.est_latency = state->planned->estimate.latency;
  submission.est_cost = estimated;
  submission.est_memory_bytes = EstimateWorkingSetBytes(*state->planned);
  submission.sla_deadline =
      constraint.mode == UserConstraint::Mode::kMinCostUnderSla
          ? constraint.latency_sla
          : std::numeric_limits<double>::infinity();
  submission.tenant = options_.tenant_id;
  submission.query_class = query_class;
  submission.run = [state] {
    // One engine per admitted query — the local stand-in for "one node".
    // Plans resolved to > 1 worker run on a ShardedEngine inside
    // ExecutePlannedToSink; spawn the LocalEngine's thread pool only
    // when this query will actually use it.
    std::unique_ptr<LocalEngine> engine;
    if (state->planned->workers <= 1) {
      engine = std::make_unique<LocalEngine>(state->exec_threads);
    }
    auto executed = state->db->ExecutePlannedCached(
        state->planned, state->cache_hit, state->result_key, state.get(),
        engine.get(), state->tenant);
    ExecutionResult result;
    Status final_status;
    if (executed.ok()) {
      result = std::move(*executed);
      if (state->calibrate) state->db->CalibrateExecution(&result);
      // Settle the reservation to what the run actually cost the tenant
      // (see RunSync).
      const Dollars actual = state->db->SettleTenantBill(
          state->tenant, &result, state->charged);
      if (actual != state->charged && state->ledger != nullptr) {
        state->ledger->Settle(state->charged, actual);
      }
    } else {
      final_status = executed.status();
      if (state->ledger != nullptr) state->ledger->Refund(state->charged);
    }
    {
      MutexLock lock(state->mu);
      state->result = std::move(result);
      state->final_status = final_status;
      state->producer_done = true;
    }
    state->cv.notify_all();
  };

  // One completion path for every way a query can fail to run: cancelled
  // while queued (QueryHandle::Cancel), controller shutdown, or a Submit
  // into an already-draining controller.
  submission.on_cancel = [state] {
    // Refund before signalling completion, so a waiter that wakes on
    // producer_done already sees the reservation returned.
    if (state->ledger != nullptr) state->ledger->Refund(state->charged);
    {
      MutexLock lock(state->mu);
      state->final_status =
          Status::Cancelled("query cancelled before admission");
      state->producer_done = true;
    }
    state->cv.notify_all();
  };

  state->ticket = state->controller->Submit(std::move(submission));
  {
    MutexLock lock(mu_);
    ++stats_.submissions;
  }
  return QueryHandlePtr(new QueryHandle(std::move(state)));
}

Dollars Session::spent() const {
  MutexLock lock(ledger_->mu);
  return ledger_->spent;
}

Dollars Session::budget_remaining() const {
  MutexLock lock(ledger_->mu);
  return ledger_->budget - ledger_->spent;
}

SessionStats Session::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace costdb
