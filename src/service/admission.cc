#include "service/admission.h"

#include <algorithm>
#include <set>
#include <tuple>

namespace costdb {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  const size_t n = std::max<size_t>(1, options_.max_concurrent);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() {
  std::vector<RunFn> cancel_callbacks;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    // Whatever never started never will: fail fast rather than running
    // work whose owners are being torn down. Owners are told via
    // on_cancel so handles waiting on these tickets complete.
    for (auto& t : queue_) {
      if (t->state == Ticket::State::kQueued) {
        t->state = Ticket::State::kCancelled;
        ++stats_.cancelled;
        TenantState& ts = TenantOf(t->tenant);
        if (ts.stats.queued > 0) --ts.stats.queued;
        ++ts.stats.cancelled;
        if (t->sub.on_cancel) {
          cancel_callbacks.push_back(std::move(t->sub.on_cancel));
        }
        t->sub = Submission();  // break owner<->ticket reference cycles
      }
    }
    queue_.clear();
  }
  for (auto& cb : cancel_callbacks) cb();
  cv_.notify_all();
  done_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::chrono::steady_clock::time_point AdmissionController::Now() const {
  if (options_.clock) return options_.clock();
  return std::chrono::steady_clock::now();
}

AdmissionController::TenantState& AdmissionController::TenantOf(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  TenantState state;
  auto quota = options_.tenant_quotas.find(tenant);
  state.quota = quota != options_.tenant_quotas.end() ? quota->second
                                                      : options_.default_quota;
  state.stats.weight = state.quota.weight;
  // Fair-queuing join rule: a tenant entering (or re-entering after going
  // idle) starts at the virtual time of the busiest-served active tenant's
  // *least*-served peer — the minimum virtual work among tenants with
  // queued or running queries. Without this, a latecomer's zero counter
  // would monopolize the scheduler until it "caught up" with work it was
  // never waiting for.
  double min_active = std::numeric_limits<double>::infinity();
  for (const auto& [name, ts] : tenants_) {
    (void)name;
    if (ts.running > 0 || ts.stats.queued > 0) {
      min_active = std::min(min_active, ts.virtual_work);
    }
  }
  if (min_active != std::numeric_limits<double>::infinity()) {
    state.virtual_work = min_active;
  }
  return tenants_.emplace(tenant, std::move(state)).first->second;
}

void AdmissionController::SetTenantQuota(const std::string& tenant,
                                         TenantQuota quota) {
  {
    MutexLock lock(mu_);
    options_.tenant_quotas[tenant] = quota;
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) {
      it->second.quota = quota;
      it->second.stats.weight = quota.weight;
    }
  }
  cv_.notify_all();
}

void AdmissionController::Poke() { cv_.notify_all(); }

AdmissionController::TicketPtr AdmissionController::Submit(
    Submission submission) {
  auto ticket = std::make_shared<Ticket>();
  RunFn on_cancel;
  {
    MutexLock lock(mu_);
    ticket->seq = next_seq_++;
    ticket->enqueued_at = Now();
    ticket->tenant = submission.tenant;
    ticket->est_latency = submission.est_latency;
    ++stats_.submitted;
    TenantState& ts = TenantOf(submission.tenant);
    ++ts.stats.submitted;
    if (shutdown_) {
      // Never enqueue into a draining controller; tell the owner.
      ticket->state = Ticket::State::kCancelled;
      ++stats_.cancelled;
      ++ts.stats.cancelled;
      on_cancel = std::move(submission.on_cancel);
    } else {
      ticket->sub = std::move(submission);
      ++ts.stats.queued;
      queue_.push_back(ticket);
    }
  }
  if (on_cancel) {
    on_cancel();
    return ticket;
  }
  cv_.notify_one();
  return ticket;
}

bool AdmissionController::Cancel(const TicketPtr& ticket) {
  RunFn on_cancel;
  bool cancelled = false;
  {
    MutexLock lock(mu_);
    if (ticket->state == Ticket::State::kQueued) {
      ticket->state = Ticket::State::kCancelled;
      queue_.erase(std::remove(queue_.begin(), queue_.end(), ticket),
                   queue_.end());
      ++stats_.cancelled;
      TenantState& ts = TenantOf(ticket->tenant);
      if (ts.stats.queued > 0) --ts.stats.queued;
      ++ts.stats.cancelled;
      on_cancel = std::move(ticket->sub.on_cancel);
      ticket->sub = Submission();  // break owner<->ticket reference cycles
      cancelled = true;
    }
  }
  if (cancelled) {
    if (on_cancel) on_cancel();
    done_cv_.notify_all();
  }
  return cancelled;
}

void AdmissionController::Await(const TicketPtr& ticket) {
  UniqueMutexLock lock(mu_);
  while (ticket->state != Ticket::State::kDone &&
         ticket->state != Ticket::State::kCancelled) {
    done_cv_.wait(lock);
  }
}

AdmissionController::Ticket::State AdmissionController::state(
    const TicketPtr& ticket) const {
  MutexLock lock(mu_);
  return ticket->state;
}

AdmissionController::Stats AdmissionController::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::map<std::string, AdmissionController::TenantStats>
AdmissionController::tenant_stats() const {
  MutexLock lock(mu_);
  std::map<std::string, TenantStats> out;
  for (const auto& [tenant, state] : tenants_) {
    TenantStats stats = state.stats;
    stats.running = state.running;
    out[tenant] = stats;
  }
  return out;
}

std::vector<AdmissionController::AdmissionEvent>
AdmissionController::admission_log() const {
  MutexLock lock(mu_);
  return admission_log_;
}

size_t AdmissionController::queued() const {
  MutexLock lock(mu_);
  return queue_.size();
}

double AdmissionController::queue_pressure() const {
  MutexLock lock(mu_);
  return static_cast<double>(queue_.size()) /
         static_cast<double>(std::max<size_t>(1, workers_.size()));
}

bool AdmissionController::TenantBlocked(const Ticket& t) {
  const TenantState& ts = TenantOf(t.tenant);
  if (ts.quota.max_concurrent > 0 && ts.running >= ts.quota.max_concurrent) {
    return true;
  }
  // Per-tenant memory cap mirrors the global one: a query too big for its
  // tenant's cap runs alone within the tenant rather than starving.
  if (ts.running > 0 &&
      ts.running_memory + t.sub.est_memory_bytes >
          ts.quota.max_estimated_memory_bytes) {
    return true;
  }
  return false;
}

bool AdmissionController::Admissible(const Ticket& t) {
  // The global memory cap gates admission; a query too big for the cap
  // runs alone rather than starving.
  if (running_ > 0 && running_memory_ + t.sub.est_memory_bytes >
                          options_.max_estimated_memory_bytes) {
    return false;
  }
  return !TenantBlocked(t);
}

AdmissionController::TicketPtr AdmissionController::PickNext() {
  if (queue_.empty()) return nullptr;
  const auto now = Now();
  // Per-class starvation guard first: the oldest queued ticket of every
  // class, once overdue, wins over any cost or fair-share ranking (most
  // overdue class first). A ticket held back only by its own tenant's
  // quota is not starved — it is saturated — and is skipped; a ticket
  // blocked by the global memory cap holds the door: admitting nothing
  // lets the pool drain until the overdue query fits (or runs alone),
  // instead of younger cheap queries starving it forever.
  std::vector<TicketPtr> overdue;
  {
    std::set<std::string> classes_seen;
    for (const TicketPtr& t : queue_) {
      if (!classes_seen.insert(t->sub.query_class).second) continue;
      const Seconds waited =
          std::chrono::duration<double>(now - t->enqueued_at).count();
      if (waited > options_.max_queue_wait) overdue.push_back(t);
    }
  }
  std::sort(overdue.begin(), overdue.end(),
            [](const TicketPtr& a, const TicketPtr& b) {
              return a->enqueued_at < b->enqueued_at;
            });
  for (const TicketPtr& t : overdue) {
    if (TenantBlocked(*t)) continue;
    return Admissible(*t) ? t : nullptr;
  }
  // Weighted fair share across tenants, cost-aware within a tenant: the
  // least virtual work picks the tenant, then shortest predicted latency,
  // then earlier deadline, then submission order. Comparing tickets by
  // the combined tuple realizes exactly that (same tenant -> same virtual
  // work -> latency decides).
  TicketPtr best;
  auto key = [&](const Ticket& x) {
    return std::make_tuple(TenantOf(x.tenant).virtual_work,
                           x.sub.est_latency, x.sub.sla_deadline, x.seq);
  };
  for (const TicketPtr& t : queue_) {
    if (!Admissible(*t)) continue;
    if (best == nullptr || key(*t) < key(*best)) best = t;
  }
  return best;
}

void AdmissionController::WorkerLoop() {
  UniqueMutexLock lock(mu_);
  while (true) {
    // Explicit wait loop (not the predicate form): the thread-safety
    // analysis treats a wait-predicate lambda as a separate unlocked
    // function, so PickNext's REQUIRES(mu_) would not typecheck inside
    // one. condition_variable_any::wait re-takes mu_ before returning.
    TicketPtr ticket;
    while (!shutdown_) {
      ticket = PickNext();
      if (ticket != nullptr) break;
      cv_.wait(lock);
    }
    if (ticket == nullptr) return;  // shutting down, nothing admitted
    queue_.erase(std::remove(queue_.begin(), queue_.end(), ticket),
                 queue_.end());
    // Did this admission jump an earlier submission?
    for (const TicketPtr& q : queue_) {
      if (q->seq < ticket->seq) {
        ++stats_.reordered;
        break;
      }
    }
    ticket->state = Ticket::State::kRunning;
    ++stats_.started;
    ++running_;
    const double memory = ticket->sub.est_memory_bytes;
    running_memory_ += memory;
    {
      TenantState& ts = TenantOf(ticket->tenant);
      ++ts.running;
      ts.running_memory += memory;
      if (ts.stats.queued > 0) --ts.stats.queued;
      ++ts.stats.admitted;
      ts.stats.admitted_work += ticket->est_latency;
      // The deficit step: this tenant just consumed est_latency of the
      // shared front door, normalized by its weight.
      ts.virtual_work +=
          ticket->est_latency / std::max(ts.quota.weight, 1e-9);
      if (options_.record_admissions) {
        admission_log_.push_back({ticket->tenant, ticket->sub.query_class,
                                  ticket->est_latency, ticket->seq});
      }
    }
    // Move the closure out while still locked; Ticket fields are guarded
    // by mu_ and must not be touched while running unlocked.
    RunFn run = std::move(ticket->sub.run);
    lock.unlock();
    run();
    lock.lock();
    ticket->state = Ticket::State::kDone;
    // The closures captured the owner's state; dropping them here breaks
    // the owner -> ticket -> closure -> owner reference cycle so
    // completed submissions free their plans and undrained chunks.
    ticket->sub = Submission();
    ++stats_.completed;
    --running_;
    running_memory_ -= memory;
    {
      TenantState& ts = TenantOf(ticket->tenant);
      if (ts.running > 0) --ts.running;
      ts.running_memory -= memory;
      ++ts.stats.completed;
    }
    done_cv_.notify_all();
    // A slot and its memory just freed up: other workers may now have an
    // admissible ticket.
    cv_.notify_all();
  }
}

}  // namespace costdb
