#include "service/admission.h"

#include <algorithm>

namespace costdb {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  const size_t n = std::max<size_t>(1, options_.max_concurrent);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionController::~AdmissionController() {
  std::vector<RunFn> cancel_callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Whatever never started never will: fail fast rather than running
    // work whose owners are being torn down. Owners are told via
    // on_cancel so handles waiting on these tickets complete.
    for (auto& t : queue_) {
      if (t->state == Ticket::State::kQueued) {
        t->state = Ticket::State::kCancelled;
        ++stats_.cancelled;
        if (t->sub.on_cancel) {
          cancel_callbacks.push_back(std::move(t->sub.on_cancel));
        }
        t->sub = Submission();  // break owner<->ticket reference cycles
      }
    }
    queue_.clear();
  }
  for (auto& cb : cancel_callbacks) cb();
  cv_.notify_all();
  done_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

AdmissionController::TicketPtr AdmissionController::Submit(
    Submission submission) {
  auto ticket = std::make_shared<Ticket>();
  RunFn on_cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket->seq = next_seq_++;
    ticket->enqueued_at = std::chrono::steady_clock::now();
    ++stats_.submitted;
    if (shutdown_) {
      // Never enqueue into a draining controller; tell the owner.
      ticket->state = Ticket::State::kCancelled;
      ++stats_.cancelled;
      on_cancel = std::move(submission.on_cancel);
    } else {
      ticket->sub = std::move(submission);
      queue_.push_back(ticket);
    }
  }
  if (on_cancel) {
    on_cancel();
    return ticket;
  }
  cv_.notify_one();
  return ticket;
}

bool AdmissionController::Cancel(const TicketPtr& ticket) {
  RunFn on_cancel;
  bool cancelled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ticket->state == Ticket::State::kQueued) {
      ticket->state = Ticket::State::kCancelled;
      queue_.erase(std::remove(queue_.begin(), queue_.end(), ticket),
                   queue_.end());
      ++stats_.cancelled;
      on_cancel = std::move(ticket->sub.on_cancel);
      ticket->sub = Submission();  // break owner<->ticket reference cycles
      cancelled = true;
    }
  }
  if (cancelled) {
    if (on_cancel) on_cancel();
    done_cv_.notify_all();
  }
  return cancelled;
}

void AdmissionController::Await(const TicketPtr& ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return ticket->state == Ticket::State::kDone ||
           ticket->state == Ticket::State::kCancelled;
  });
}

AdmissionController::Ticket::State AdmissionController::state(
    const TicketPtr& ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticket->state;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

double AdmissionController::queue_pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(queue_.size()) /
         static_cast<double>(std::max<size_t>(1, workers_.size()));
}

AdmissionController::TicketPtr AdmissionController::PickNext() {
  if (queue_.empty()) return nullptr;
  const auto now = std::chrono::steady_clock::now();
  auto admissible = [&](const TicketPtr& t) {
    // The memory cap gates admission; a query too big for the cap runs
    // alone rather than starving.
    if (running_ == 0) return true;
    return running_memory_ + t->sub.est_memory_bytes <=
           options_.max_estimated_memory_bytes;
  };
  // Starvation guard first: the oldest queued ticket, once overdue, wins
  // over any cost ranking. If it cannot be admitted yet (memory cap),
  // admit nothing — holding the door lets the pool drain until the
  // overdue query fits (or runs alone), instead of younger cheap queries
  // starving it forever.
  const TicketPtr& oldest = queue_.front();
  const Seconds waited =
      std::chrono::duration<double>(now - oldest->enqueued_at).count();
  if (waited > options_.max_queue_wait) {
    return admissible(oldest) ? oldest : nullptr;
  }
  // Cost-aware order: shortest predicted latency, then earlier deadline,
  // then submission order.
  TicketPtr best;
  for (const TicketPtr& t : queue_) {
    if (!admissible(t)) continue;
    if (best == nullptr) {
      best = t;
      continue;
    }
    const auto key = [](const Ticket& x) {
      return std::make_tuple(x.sub.est_latency, x.sub.sla_deadline, x.seq);
    };
    if (key(*t) < key(*best)) best = t;
  }
  return best;
}

void AdmissionController::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    TicketPtr ticket;
    cv_.wait(lock, [&] {
      if (shutdown_) return true;
      ticket = PickNext();
      return ticket != nullptr;
    });
    if (ticket == nullptr) {
      if (shutdown_) return;
      continue;
    }
    queue_.erase(std::remove(queue_.begin(), queue_.end(), ticket),
                 queue_.end());
    // Did this admission jump an earlier submission?
    for (const TicketPtr& q : queue_) {
      if (q->seq < ticket->seq) {
        ++stats_.reordered;
        break;
      }
    }
    ticket->state = Ticket::State::kRunning;
    ++stats_.started;
    ++running_;
    const double memory = ticket->sub.est_memory_bytes;
    running_memory_ += memory;
    lock.unlock();
    ticket->sub.run();
    lock.lock();
    ticket->state = Ticket::State::kDone;
    // The closures captured the owner's state; dropping them here breaks
    // the owner -> ticket -> closure -> owner reference cycle so
    // completed submissions free their plans and undrained chunks.
    ticket->sub = Submission();
    ++stats_.completed;
    --running_;
    running_memory_ -= memory;
    done_cv_.notify_all();
    // A slot and its memory just freed up: other workers may now have an
    // admissible ticket.
    cv_.notify_all();
  }
}

}  // namespace costdb
