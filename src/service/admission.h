#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"

namespace costdb {

struct AdmissionOptions {
  /// Queries running at once (admission worker count). 0 = pick up the
  /// facade's batch_threads default (see DatabaseOptions).
  size_t max_concurrent = 0;
  /// Cap on the summed estimated working set of running queries. A query
  /// whose own estimate exceeds the cap still runs — alone — so oversized
  /// requests degrade to serial execution instead of queueing forever.
  double max_estimated_memory_bytes =
      std::numeric_limits<double>::infinity();
  /// Starvation guard: a queued query older than this is admitted next
  /// regardless of its cost ranking.
  Seconds max_queue_wait = 300.0;
};

/// Cost-aware admission control for asynchronously submitted queries: the
/// run queue is ordered by the shared CostEstimator's predictions rather
/// than submission order. Under a saturated concurrency cap the cheapest
/// (shortest-predicted) admissible query runs first, with the earlier SLA
/// deadline breaking ties — the scheduling analogue of the paper's
/// cost-intelligence argument: admission, not just plan choice, decides
/// what a query costs at the front door. A wall-clock starvation guard
/// bounds how long cost ordering can defer an expensive query.
class AdmissionController {
 public:
  using RunFn = std::function<void()>;

  /// One submitted query, from the controller's point of view.
  struct Submission {
    Seconds est_latency = 0.0;   // estimator's predicted run time
    Dollars est_cost = 0.0;      // estimator's predicted bill
    double est_memory_bytes = 0.0;  // predicted working set (breakers)
    Seconds sla_deadline = std::numeric_limits<double>::infinity();
    RunFn run;                   // executed on an admission worker
    /// Invoked (outside the controller lock, at most once) when the
    /// ticket is cancelled while queued — by Cancel() or by controller
    /// shutdown. Owners use it to complete futures/refund ledgers that
    /// the run closure will now never reach.
    RunFn on_cancel;
  };

  class Ticket {
   public:
    enum class State { kQueued, kRunning, kDone, kCancelled };

   private:
    friend class AdmissionController;
    // All fields guarded by the controller's mutex.
    State state = State::kQueued;
    uint64_t seq = 0;
    Submission sub;
    std::chrono::steady_clock::time_point enqueued_at;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  explicit AdmissionController(AdmissionOptions options);
  /// Drains: queued tickets are cancelled, running ones finish.
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Enqueue; returns immediately. The run function executes on an
  /// admission worker once the ticket is admitted.
  TicketPtr Submit(Submission submission);

  /// Cancel a queued ticket. True iff the query had not started — a
  /// running or finished query is past withdrawal and returns false.
  bool Cancel(const TicketPtr& ticket);

  /// Block until the ticket has finished or been cancelled.
  void Await(const TicketPtr& ticket);

  Ticket::State state(const TicketPtr& ticket) const;

  struct Stats {
    size_t submitted = 0;
    size_t started = 0;
    size_t completed = 0;
    size_t cancelled = 0;
    /// Admissions that jumped ahead of an earlier-submitted, still-queued
    /// query — each one is a reordering the cost model paid for.
    size_t reordered = 0;
  };
  Stats stats() const;

  size_t max_concurrent() const { return workers_.size(); }

  /// Queries waiting in the queue right now (the admission backlog).
  size_t queued() const;

  /// Backlog per concurrency slot — the pressure signal the elastic
  /// controller reads before growing a running query's worker count.
  double queue_pressure() const;

 private:
  void WorkerLoop();
  /// Pick the best admissible queued ticket (nullptr when none fits).
  /// Caller holds mu_.
  TicketPtr PickNext();

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue/shutdown changes
  std::condition_variable done_cv_;   // ticket completion
  std::deque<TicketPtr> queue_;
  double running_memory_ = 0.0;
  size_t running_ = 0;
  uint64_t next_seq_ = 0;
  Stats stats_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace costdb
