#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/units.h"

namespace costdb {

/// Admission quota of one tenant. The controller schedules tenants by
/// weighted fair share: each admission advances the tenant's virtual work
/// by (predicted latency / weight), and the tenant with the least virtual
/// work owns the next slot — so over a contended window every tenant's
/// share of admitted work is proportional to its weight, regardless of how
/// fast it submits. Quotas bound what one tenant can hold at once.
struct TenantQuota {
  /// Fair-share weight. A weight-3 tenant is admitted 3x the work of a
  /// weight-1 tenant while both have queued queries.
  double weight = 1.0;
  /// Queries of this tenant running at once (0 = only the global cap).
  size_t max_concurrent = 0;
  /// Cap on the summed estimated working set of this tenant's running
  /// queries. Like the global cap, a single oversized query still runs —
  /// alone within the tenant — so it degrades to serial, not starvation.
  double max_estimated_memory_bytes =
      std::numeric_limits<double>::infinity();
};

struct AdmissionOptions {
  /// Queries running at once (admission worker count). 0 = pick up the
  /// facade's batch_threads default (see DatabaseOptions).
  size_t max_concurrent = 0;
  /// Cap on the summed estimated working set of running queries. A query
  /// whose own estimate exceeds the cap still runs — alone — so oversized
  /// requests degrade to serial execution instead of queueing forever.
  double max_estimated_memory_bytes =
      std::numeric_limits<double>::infinity();
  /// Starvation guard: a queued query older than this is admitted next
  /// regardless of its cost ranking. The guard is per *class* (each
  /// submission's query_class), not just global — a stream of cheap
  /// interactive queries cannot indefinitely defer the batch class,
  /// because the oldest ticket of every class is tracked separately.
  Seconds max_queue_wait = 300.0;
  /// Quota applied to tenants without an explicit entry in tenant_quotas.
  TenantQuota default_quota;
  /// Per-tenant quota overrides, keyed by Submission::tenant.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Time source for queue-wait accounting. Tests inject a virtual clock
  /// (tests/admission_testing.h) so starvation/fairness assertions are
  /// schedule-exact instead of sleep-based. Null = steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// Record every admission (tenant, class, predicted work) in order.
  /// Diagnostics for fairness tests and benches; off by default because
  /// the log grows unbounded.
  bool record_admissions = false;
};

/// Cost-aware, tenant-fair admission control for asynchronously submitted
/// queries. The run queue is a weighted fair-share scheduler across
/// tenants layered over the shared CostEstimator's predictions: the tenant
/// with the least weight-normalized admitted work owns the next slot, and
/// within that tenant the cheapest (shortest-predicted) admissible query
/// runs first, with the earlier SLA deadline breaking ties — the
/// scheduling analogue of the paper's cost-intelligence argument:
/// admission, not just plan choice, decides what a query costs at the
/// front door. Per-tenant concurrency/memory quotas bound what one tenant
/// can hold, and a per-class wall-clock starvation guard bounds how long
/// cost ordering can defer any class of query.
class AdmissionController {
 public:
  using RunFn = std::function<void()>;

  /// One submitted query, from the controller's point of view.
  struct Submission {
    Seconds est_latency = 0.0;   // estimator's predicted run time
    Dollars est_cost = 0.0;      // estimator's predicted bill
    double est_memory_bytes = 0.0;  // predicted working set (breakers)
    Seconds sla_deadline = std::numeric_limits<double>::infinity();
    /// Fair-share accounting key ("" = the default tenant).
    std::string tenant;
    /// Starvation-guard class ("" = unclassified). Typically the
    /// workload class: "interactive", "batch", ...
    std::string query_class;
    RunFn run;                   // executed on an admission worker
    /// Invoked (outside the controller lock, at most once) when the
    /// ticket is cancelled while queued — by Cancel() or by controller
    /// shutdown. Owners use it to complete futures/refund ledgers that
    /// the run closure will now never reach.
    RunFn on_cancel;
  };

  class Ticket {
   public:
    enum class State { kQueued, kRunning, kDone, kCancelled };

   private:
    friend class AdmissionController;
    // All fields guarded by the controller's mutex. Tenant/work are
    // copied out of the submission so completion accounting survives the
    // sub reset that breaks owner<->ticket reference cycles.
    State state = State::kQueued;
    uint64_t seq = 0;
    std::string tenant;
    Seconds est_latency = 0.0;
    Submission sub;
    std::chrono::steady_clock::time_point enqueued_at;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  explicit AdmissionController(AdmissionOptions options);
  /// Drains: queued tickets are cancelled, running ones finish.
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Enqueue; returns immediately. The run function executes on an
  /// admission worker once the ticket is admitted.
  TicketPtr Submit(Submission submission);

  /// Cancel a queued ticket. True iff the query had not started — a
  /// running or finished query is past withdrawal and returns false.
  bool Cancel(const TicketPtr& ticket);

  /// Block until the ticket has finished or been cancelled.
  void Await(const TicketPtr& ticket);

  Ticket::State state(const TicketPtr& ticket) const;

  /// Re-evaluate the queue now. Only needed when admissibility changed
  /// without a queue event — e.g. a test advanced the injected clock past
  /// the starvation deadline, or a quota was edited mid-run.
  void Poke();

  /// Replace (or register) one tenant's quota. Applies to queued and
  /// future submissions; running queries are never evicted.
  void SetTenantQuota(const std::string& tenant, TenantQuota quota);

  struct Stats {
    size_t submitted = 0;
    size_t started = 0;
    size_t completed = 0;
    size_t cancelled = 0;
    /// Admissions that jumped ahead of an earlier-submitted, still-queued
    /// query — each one is a reordering the cost model paid for.
    size_t reordered = 0;
  };
  Stats stats() const;

  /// Per-tenant scheduling ledger.
  struct TenantStats {
    size_t submitted = 0;
    size_t admitted = 0;
    size_t completed = 0;
    size_t cancelled = 0;
    size_t queued = 0;   // waiting right now
    size_t running = 0;  // admitted, not yet finished
    /// Sum of predicted latency over admitted queries — the "work" whose
    /// share the fair-share scheduler equalizes by weight.
    double admitted_work = 0.0;
    double weight = 1.0;
  };
  std::map<std::string, TenantStats> tenant_stats() const;

  /// One admission, in order (options.record_admissions only).
  struct AdmissionEvent {
    std::string tenant;
    std::string query_class;
    Seconds est_latency = 0.0;
    uint64_t seq = 0;
  };
  std::vector<AdmissionEvent> admission_log() const;

  size_t max_concurrent() const { return workers_.size(); }

  /// Queries waiting in the queue right now (the admission backlog).
  size_t queued() const;

  /// Backlog per concurrency slot — the pressure signal the elastic
  /// controller reads before growing a running query's worker count.
  double queue_pressure() const;

 private:
  /// Scheduling state of one tenant. Created on first submission; quota
  /// resolved from options (tenant_quotas else default_quota).
  struct TenantState {
    TenantQuota quota;
    size_t running = 0;
    double running_memory = 0.0;
    /// Weight-normalized admitted work (the deficit counter): admitting a
    /// query adds est_latency / weight. The scheduler always serves the
    /// tenant with the least virtual work among those with an admissible
    /// queued query.
    double virtual_work = 0.0;
    TenantStats stats;
  };

  void WorkerLoop() EXCLUDES(mu_);
  /// Pick the best admissible queued ticket (nullptr when none fits).
  TicketPtr PickNext() REQUIRES(mu_);
  std::chrono::steady_clock::time_point Now() const;
  /// Tenant state, created (and fair-share-aligned) on first use.
  TenantState& TenantOf(const std::string& tenant) REQUIRES(mu_);
  /// Global memory cap + the ticket's tenant quotas.
  bool Admissible(const Ticket& t) REQUIRES(mu_);
  /// Tenant quota portion of Admissible — split out so the starvation
  /// guard can distinguish "blocked by its own tenant's quota" (skip it;
  /// that tenant is not starved, it is saturated) from "blocked by the
  /// global memory cap" (hold the door until the pool drains).
  bool TenantBlocked(const Ticket& t) REQUIRES(mu_);

  AdmissionOptions options_;
  mutable Mutex mu_;
  std::condition_variable_any cv_;       // queue/shutdown changes
  std::condition_variable_any done_cv_;  // ticket completion
  std::deque<TicketPtr> queue_ GUARDED_BY(mu_);
  std::map<std::string, TenantState> tenants_ GUARDED_BY(mu_);
  double running_memory_ GUARDED_BY(mu_) = 0.0;
  size_t running_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
  std::vector<AdmissionEvent> admission_log_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace costdb
