#pragma once

#include <memory>
#include <string>
#include <vector>

#include "optimizer/passes.h"

namespace costdb {

/// Owns the optimizer pass pipeline and turns SQL (or a pre-bound query)
/// into a PlannedQuery against a shared cost estimator. This is the single
/// planning entry of the service layer: the Database facade, the sim
/// harness, and the What-If Service all plan through a QueryService (or
/// through a custom pass pipeline spliced from the same stages) instead of
/// hand-wiring binder/planner objects.
class QueryService {
 public:
  QueryService(const MetadataService* meta, const CostEstimator* estimator,
               BiObjectiveOptions options = BiObjectiveOptions());

  /// Run the full pass pipeline on raw SQL: bind -> dag_plan ->
  /// bushy_rewrite -> physical_plan -> dop_plan (plus any spliced custom
  /// passes, in pipeline order). The returned PlannedQuery carries the
  /// physical plan, its pipeline decomposition, and the bi-objective
  /// estimate chosen under `constraint`. Stateless and side-effect-free:
  /// no cache, no calibration write — the Database facade layers those
  /// on top. Pass failures surface the failing stage's status with its
  /// original code preserved.
  Result<PlannedQuery> PlanSql(const std::string& sql,
                               const UserConstraint& constraint) const;

  /// Plan an already-bound query (the bind pass no-ops). Same contract
  /// as PlanSql; used when the caller binds once and plans under several
  /// constraints.
  Result<PlannedQuery> Plan(const BoundQuery& query,
                            const UserConstraint& constraint) const;

  /// Bind only (no planning): name/type resolution against the catalog.
  Result<BoundQuery> Bind(const std::string& sql) const;

  // -- Pass pipeline management ------------------------------------------
  const PassPipeline& passes() const { return passes_; }
  void SetPasses(PassPipeline passes) { passes_ = std::move(passes); }

  /// Splice a custom pass after the named stage. Returns false (and
  /// leaves the pipeline untouched) when the anchor is not found.
  bool InsertPassAfter(const std::string& after_name,
                       std::unique_ptr<OptimizerPass> pass);

  /// Drop a stage by name (e.g. "bushy_rewrite" to pin left-deep shapes).
  bool RemovePass(const std::string& name);

  std::vector<std::string> PassNames() const;

  const MetadataService* meta() const { return meta_; }
  const CostEstimator* estimator() const { return estimator_; }
  const BiObjectiveOptions& options() const { return options_; }

 private:
  Status RunOn(QueryPlanContext* ctx) const;

  const MetadataService* meta_;
  const CostEstimator* estimator_;
  BiObjectiveOptions options_;
  PassPipeline passes_;
};

}  // namespace costdb
