#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "service/admission.h"
#include "service/database.h"
#include "sql/shape.h"

namespace costdb {

class Session;
class PreparedStatement;
using PreparedStatementPtr = std::shared_ptr<PreparedStatement>;
class QueryHandle;
using QueryHandlePtr = std::shared_ptr<QueryHandle>;

struct SessionOptions {
  /// Constraint applied when a call does not pass one explicitly.
  UserConstraint default_constraint;
  /// Session dollar budget: every execution charges its estimated bill to
  /// the ledger; past the cap, calls fail with ResourceExhausted. Ledgers
  /// are per-session — concurrent sessions spend disjoint budgets.
  Dollars budget = std::numeric_limits<double>::infinity();
  /// The tenant this session belongs to. Admission fair-shares across
  /// tenants (AdmissionOptions::tenant_quotas), serial engine locks shard
  /// by tenant, and every run settles into the tenant's cumulative bill
  /// (Database::tenant_billing) — many sessions of one tenant share one
  /// scheduling/billing identity, while their dollar ledgers stay
  /// per-session.
  std::string tenant_id = "default";
};

struct SessionStats {
  size_t executions = 0;        // synchronous Execute/ExecuteSql calls
  size_t submissions = 0;       // asynchronous Submit calls
  size_t plans = 0;             // optimizer runs charged to this session
  size_t replans_avoided = 0;   // calls served by an already-cached plan
};

/// A parameterized statement prepared once and executed many times. The
/// plan is cached in the shared Database plan cache under the statement's
/// normalized *shape* (whitespace/keyword-case/placeholder-value
/// independent) plus the calibration version it was priced under —
/// executing with new parameter vectors binds constants into a copy of
/// the cached plan and re-derives only the cardinality-sensitive terms
/// (volumes + cost estimate); it never re-runs the optimizer unless the
/// calibration moved. Statements are created by Session::Prepare and may
/// outlive the session (they only reference the shared Database).
class PreparedStatement {
 public:
  const std::string& sql() const { return sql_; }
  /// Normalized statement shape — the plan-cache identity.
  const std::string& shape() const { return shape_; }
  size_t param_count() const { return query_.param_types.size(); }
  const std::vector<LogicalType>& param_types() const {
    return query_.param_types;
  }
  const UserConstraint& constraint() const { return constraint_; }

  /// Optimizer runs this statement has paid for (1 after Prepare; grows
  /// only when a calibration move invalidates the cached plan).
  size_t times_planned() const;
  /// Executions that reused a cached plan instead of replanning.
  size_t reuses() const;
  size_t executions() const;

 private:
  friend class Session;
  std::string sql_;
  std::string shape_;
  BoundQuery query_;           // carries param_types and relation handles
  UserConstraint constraint_;  // session default at Prepare time

  mutable Mutex mu_;
  size_t times_planned_ GUARDED_BY(mu_) = 0;
  size_t reuses_ GUARDED_BY(mu_) = 0;
  size_t executions_ GUARDED_BY(mu_) = 0;
};

/// Future-like handle to an asynchronously submitted query. Rows stream
/// from the engine's pull-based result sink: FetchChunk() yields
/// DataChunks incrementally (in deterministic order) while the query may
/// still be running; Take() waits and materializes whatever has not been
/// fetched. Cancel() withdraws a query that has not been admitted yet.
/// Handles stay valid after their Session is destroyed.
class QueryHandle {
 public:
  enum class State { kQueued, kRunning, kDone, kFailed, kCancelled };

  State Poll() const;

  /// Block until the query finished, failed, or was cancelled; returns
  /// the final status (OK only for a successful run).
  Status Wait() const;

  /// Wait, then move out the execution result. Chunks already consumed
  /// via FetchChunk are not replayed — the result holds the remainder.
  Result<ExecutionResult> Take();

  /// Pull the next result chunk, blocking until one is available or the
  /// stream ends. True: `*out` holds rows. False: clean end of stream.
  /// Error status: the query failed or was cancelled.
  Result<bool> FetchChunk(DataChunk* out);

  /// Withdraw from the admission queue. True iff the query had not
  /// started; a running or finished query keeps going and returns false.
  bool Cancel();

  /// The plan this submission will execute (bound and costed at Submit
  /// time, so available immediately).
  const PlannedQuery& plan() const;

  struct SharedState;

 private:
  friend class Session;
  explicit QueryHandle(std::shared_ptr<SharedState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<SharedState> state_;
};

/// Per-client handle over a shared Database — the client entry point of
/// the service layer. A Session carries the client's default
/// UserConstraint, a dollar-budget ledger, and prepared-statement
/// lifetime; queries enter synchronously (Execute*) on the facade's
/// serial engine or asynchronously (Submit) through the shared
/// cost-aware AdmissionController. Sessions are cheap (no threads, no
/// engine of their own) and thread-safe; create one per client.
class Session {
 public:
  explicit Session(Database* db, SessionOptions options = SessionOptions());

  // -- Prepared statements ----------------------------------------------
  /// Parse + bind a statement with '?' placeholders and plan it through
  /// the shape-keyed plan cache. The optimizer prices placeholders at
  /// default selectivity; Execute re-estimates once values are known.
  Result<PreparedStatementPtr> Prepare(const std::string& sql);
  Result<PreparedStatementPtr> Prepare(const std::string& sql,
                                       const UserConstraint& constraint);

  /// Bind `params` positionally and execute synchronously. Validates
  /// arity and types (NULL binds to any type); replans only when the
  /// calibration version moved since the plan was cached.
  Result<ExecutionResult> Execute(const PreparedStatementPtr& statement,
                                  const std::vector<Value>& params = {});

  // -- One-shot SQL ------------------------------------------------------
  Result<ExecutionResult> ExecuteSql(const std::string& sql);
  Result<ExecutionResult> ExecuteSql(const std::string& sql,
                                     const UserConstraint& constraint);

  /// Plan only — "what would this query cost?" — through the shared plan
  /// cache. No execution, no ledger charge.
  Result<PlannedQuery> Plan(const std::string& sql);
  Result<PlannedQuery> Plan(const std::string& sql,
                            const UserConstraint& constraint);

  // -- Asynchronous submission ------------------------------------------
  struct SubmitOptions;
  Result<QueryHandlePtr> Submit(const std::string& sql);
  Result<QueryHandlePtr> Submit(const std::string& sql,
                                const SubmitOptions& options);
  Result<QueryHandlePtr> Submit(const PreparedStatementPtr& statement,
                                const std::vector<Value>& params = {});
  Result<QueryHandlePtr> Submit(const PreparedStatementPtr& statement,
                                const std::vector<Value>& params,
                                const SubmitOptions& options);

  // -- Ledger / stats ----------------------------------------------------
  Dollars spent() const;
  Dollars budget_remaining() const;
  SessionStats stats() const;

  Database* database() { return db_; }
  const SessionOptions& options() const { return options_; }

 private:
  friend class QueryHandle;  // handles hold the shared ledger

  /// Dollar ledger, shared with in-flight handles so a cancelled
  /// submission can refund its reservation even if the session is gone.
  struct Ledger;

  /// A run-ready plan: shared cached plan, or a parameter-bound copy.
  struct RunnablePlan {
    std::shared_ptr<const PlannedQuery> plan;
    bool cache_hit = false;
    /// Result-cache identity (shape + constraint + bound params); empty
    /// disables result caching for this run.
    std::string result_key;
  };

  Result<RunnablePlan> PlanStatement(const PreparedStatementPtr& statement,
                                     const std::vector<Value>& params,
                                     const UserConstraint& constraint);
  Result<RunnablePlan> PlanRaw(const std::string& sql,
                               const UserConstraint& constraint);
  /// Shared synchronous path: charge, execute on the facade's serial
  /// engine, refund on failure, calibrate, count.
  Result<ExecutionResult> RunSync(RunnablePlan runnable);
  Result<QueryHandlePtr> SubmitPlanned(RunnablePlan runnable,
                                       const UserConstraint& constraint,
                                       bool calibrate,
                                       const std::string& query_class);

  Database* db_;
  SessionOptions options_;
  std::shared_ptr<Ledger> ledger_;
  mutable Mutex mu_;
  SessionStats stats_ GUARDED_BY(mu_);
};

struct Session::SubmitOptions {
  /// Constraint override; session default when absent.
  std::optional<UserConstraint> constraint;
  /// Fold the run's timings into the calibration on completion. Batch
  /// drivers defer this and run one serialized feedback round instead.
  bool calibrate = true;
  /// Starvation-guard class for admission ("" = unclassified): the oldest
  /// queued query of *each* class is aged independently, so a flood of
  /// cheap "interactive" queries cannot indefinitely defer "batch".
  std::string query_class;
};

}  // namespace costdb
