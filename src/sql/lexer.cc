#include "sql/lexer.h"

#include <cctype>

namespace costdb {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      t.kind = TokenKind::kIdent;
      t.text = sql.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_val = std::stod(text);
      } else {
        t.kind = TokenKind::kInt;
        t.int_val = std::stoll(text);
      }
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(t.offset));
      }
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        t.kind = TokenKind::kSymbol;
        t.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    if (std::string("=<>+-*/(),.;?").find(c) != std::string::npos) {
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

bool TokenIs(const Token& t, const char* keyword) {
  if (t.kind != TokenKind::kIdent) return false;
  const std::string& s = t.text;
  size_t i = 0;
  for (; keyword[i] != '\0'; ++i) {
    if (i >= s.size()) return false;
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return i == s.size();
}

}  // namespace costdb
