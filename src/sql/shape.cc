#include "sql/shape.h"

#include <cctype>

#include "common/table_printer.h"
#include "sql/lexer.h"

namespace costdb {

namespace {

/// Reserved words of the grammar (sql/parser.cc). Function names (sum,
/// count, ...) are deliberately absent: they are ordinary identifiers to
/// the lexer and could in principle collide with column names, so folding
/// their case would merge semantically distinct statements.
constexpr const char* kKeywords[] = {
    "SELECT", "FROM",    "WHERE", "GROUP", "BY",   "HAVING", "ORDER",
    "LIMIT",  "AND",     "OR",    "NOT",   "IN",   "BETWEEN", "LIKE",
    "AS",     "ON",      "JOIN",  "INNER", "ASC",  "DESC",    "DATE",
    "ESCAPE",
};

bool IsKeyword(const Token& t) {
  for (const char* kw : kKeywords) {
    if (TokenIs(t, kw)) return true;
  }
  return false;
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::string NormalizeStatementShape(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return sql;
  std::string out;
  out.reserve(sql.size());
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kEnd) break;
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case TokenKind::kIdent:
        out += IsKeyword(t) ? Upper(t.text) : t.text;
        break;
      case TokenKind::kInt:
        out += std::to_string(t.int_val);
        break;
      case TokenKind::kFloat:
        out += StrFormat("%.17g", t.float_val);
        break;
      case TokenKind::kString: {
        // Re-quote with the lexer's escaping so the key is unambiguous.
        out += '\'';
        for (char c : t.text) {
          out += c;
          if (c == '\'') out += '\'';
        }
        out += '\'';
        break;
      }
      case TokenKind::kSymbol:
        out += t.text;  // the lexer already folds != into <>
        break;
      case TokenKind::kEnd:
        break;
    }
  }
  // A trailing ';' is statement decoration, not shape.
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace costdb
