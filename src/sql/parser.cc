#include "sql/parser.h"

namespace costdb {

namespace {

/// Recursive-descent parser over the token stream. Grammar (simplified):
///   query      := SELECT select_list FROM from_list [WHERE expr]
///                 [GROUP BY expr_list] [HAVING expr]
///                 [ORDER BY order_list] [LIMIT int] [';']
///   expr       := or_expr
///   or_expr    := and_expr (OR and_expr)*
///   and_expr   := not_expr (AND not_expr)*
///   not_expr   := [NOT] cmp_expr
///   cmp_expr   := add_expr [(=|<>|<|<=|>|>=) add_expr
///                           | LIKE add_expr [ESCAPE 'c']
///                           | IN '(' expr_list ')'
///                           | BETWEEN add_expr AND add_expr]
///   add_expr   := mul_expr (('+'|'-') mul_expr)*
///   mul_expr   := unary (('*'|'/') unary)*
///   unary      := ['-'] primary
///   primary    := literal | DATE 'str' | func '(' [*|expr_list] ')'
///                 | qualified_ident | '(' expr ')'
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    COSTDB_RETURN_NOT_OK(Expect("SELECT"));
    COSTDB_RETURN_NOT_OK(ParseSelectList(&q));
    COSTDB_RETURN_NOT_OK(Expect("FROM"));
    COSTDB_RETURN_NOT_OK(ParseFromList(&q));
    if (AcceptKeyword("WHERE")) {
      COSTDB_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      COSTDB_RETURN_NOT_OK(Expect("BY"));
      do {
        ParsedExprPtr e;
        COSTDB_ASSIGN_OR_RETURN(e, ParseExpr());
        q.group_by.push_back(std::move(e));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("HAVING")) {
      COSTDB_ASSIGN_OR_RETURN(q.having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      COSTDB_RETURN_NOT_OK(Expect("BY"));
      do {
        OrderItem item;
        COSTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        q.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Current().kind != TokenKind::kInt) {
        return ErrorHere("expected integer after LIMIT");
      }
      q.limit = Current().int_val;
      Advance();
    }
    AcceptSymbol(";");
    if (Current().kind != TokenKind::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    q.param_count = param_count_;
    return q;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool AcceptKeyword(const char* kw) {
    if (TokenIs(Current(), kw)) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const char* sym) {
    if (Current().kind == TokenKind::kSymbol && Current().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " near offset " +
                                     std::to_string(Current().offset));
    }
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near offset " +
                                     std::to_string(Current().offset));
    }
    return Status::OK();
  }

  Status ErrorHere(const std::string& msg) {
    return Status::InvalidArgument(msg + " near offset " +
                                   std::to_string(Current().offset));
  }

  Status ParseSelectList(ParsedQuery* q) {
    if (AcceptSymbol("*")) {
      q->select_star = true;
      return Status::OK();
    }
    do {
      SelectItem item;
      COSTDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (Current().kind != TokenKind::kIdent) {
          return ErrorHere("expected alias after AS");
        }
        item.alias = Current().text;
        Advance();
      } else if (Current().kind == TokenKind::kIdent &&
                 !IsClauseKeyword(Current())) {
        item.alias = Current().text;
        Advance();
      }
      q->select_items.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  static bool IsClauseKeyword(const Token& t) {
    for (const char* kw : {"FROM", "WHERE", "GROUP", "HAVING", "ORDER",
                           "LIMIT", "AND", "OR", "AS", "ASC", "DESC", "ON",
                           "JOIN", "INNER", "BY"}) {
      if (TokenIs(t, kw)) return true;
    }
    return false;
  }

  Status ParseFromList(ParsedQuery* q) {
    COSTDB_RETURN_NOT_OK(ParseFromItem(q));
    while (true) {
      if (AcceptSymbol(",")) {
        COSTDB_RETURN_NOT_OK(ParseFromItem(q));
        continue;
      }
      bool is_join = false;
      if (TokenIs(Current(), "INNER")) {
        Advance();
        COSTDB_RETURN_NOT_OK(Expect("JOIN"));
        is_join = true;
      } else if (TokenIs(Current(), "JOIN")) {
        Advance();
        is_join = true;
      }
      if (!is_join) break;
      COSTDB_RETURN_NOT_OK(ParseFromItem(q));
      COSTDB_RETURN_NOT_OK(Expect("ON"));
      ParsedExprPtr cond;
      COSTDB_ASSIGN_OR_RETURN(cond, ParseExpr());
      q->join_conditions.push_back(std::move(cond));
    }
    return Status::OK();
  }

  Status ParseFromItem(ParsedQuery* q) {
    if (Current().kind != TokenKind::kIdent) {
      return ErrorHere("expected table name");
    }
    FromItem item;
    item.table = Current().text;
    Advance();
    AcceptKeyword("AS");
    if (Current().kind == TokenKind::kIdent && !IsClauseKeyword(Current())) {
      item.alias = Current().text;
      Advance();
    } else {
      item.alias = item.table;
    }
    q->from.push_back(std::move(item));
    return Status::OK();
  }

  Result<ParsedExprPtr> ParseExpr() { return ParseOr(); }

  Result<ParsedExprPtr> ParseOr() {
    ParsedExprPtr left;
    COSTDB_ASSIGN_OR_RETURN(left, ParseAnd());
    while (TokenIs(Current(), "OR")) {
      Advance();
      ParsedExprPtr right;
      COSTDB_ASSIGN_OR_RETURN(right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParsedExprPtr> ParseAnd() {
    ParsedExprPtr left;
    COSTDB_ASSIGN_OR_RETURN(left, ParseNot());
    while (TokenIs(Current(), "AND")) {
      Advance();
      ParsedExprPtr right;
      COSTDB_ASSIGN_OR_RETURN(right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParsedExprPtr> ParseNot() {
    if (TokenIs(Current(), "NOT")) {
      Advance();
      ParsedExprPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, ParseNot());
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kNot;
      e->children = {std::move(child)};
      return e;
    }
    return ParseComparison();
  }

  Result<ParsedExprPtr> ParseComparison() {
    ParsedExprPtr left;
    COSTDB_ASSIGN_OR_RETURN(left, ParseAdditive());
    if (Current().kind == TokenKind::kSymbol) {
      const std::string& s = Current().text;
      if (s == "=" || s == "<>" || s == "<" || s == "<=" || s == ">" ||
          s == ">=") {
        std::string op = s;
        Advance();
        ParsedExprPtr right;
        COSTDB_ASSIGN_OR_RETURN(right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    if (TokenIs(Current(), "LIKE")) {
      Advance();
      ParsedExprPtr right;
      COSTDB_ASSIGN_OR_RETURN(right, ParseAdditive());
      ParsedExprPtr like = MakeBinary("LIKE", std::move(left),
                                      std::move(right));
      if (TokenIs(Current(), "ESCAPE")) {
        Advance();
        // A third child carries the escape character; the binder validates
        // it is a single-character string literal.
        ParsedExprPtr esc;
        COSTDB_ASSIGN_OR_RETURN(esc, ParsePrimary());
        like->children.push_back(std::move(esc));
      }
      return like;
    }
    if (TokenIs(Current(), "IN")) {
      Advance();
      COSTDB_RETURN_NOT_OK(ExpectSymbol("("));
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kIn;
      e->children.push_back(std::move(left));
      do {
        ParsedExprPtr item;
        COSTDB_ASSIGN_OR_RETURN(item, ParseExpr());
        e->children.push_back(std::move(item));
      } while (AcceptSymbol(","));
      COSTDB_RETURN_NOT_OK(ExpectSymbol(")"));
      return ParsedExprPtr(e);
    }
    if (TokenIs(Current(), "BETWEEN")) {
      Advance();
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kBetween;
      e->children.push_back(std::move(left));
      ParsedExprPtr lo;
      COSTDB_ASSIGN_OR_RETURN(lo, ParseAdditive());
      e->children.push_back(std::move(lo));
      COSTDB_RETURN_NOT_OK(Expect("AND"));
      ParsedExprPtr hi;
      COSTDB_ASSIGN_OR_RETURN(hi, ParseAdditive());
      e->children.push_back(std::move(hi));
      return ParsedExprPtr(e);
    }
    return left;
  }

  Result<ParsedExprPtr> ParseAdditive() {
    ParsedExprPtr left;
    COSTDB_ASSIGN_OR_RETURN(left, ParseMultiplicative());
    while (Current().kind == TokenKind::kSymbol &&
           (Current().text == "+" || Current().text == "-")) {
      std::string op = Current().text;
      Advance();
      ParsedExprPtr right;
      COSTDB_ASSIGN_OR_RETURN(right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParsedExprPtr> ParseMultiplicative() {
    ParsedExprPtr left;
    COSTDB_ASSIGN_OR_RETURN(left, ParseUnary());
    while (Current().kind == TokenKind::kSymbol &&
           (Current().text == "*" || Current().text == "/")) {
      std::string op = Current().text;
      Advance();
      ParsedExprPtr right;
      COSTDB_ASSIGN_OR_RETURN(right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParsedExprPtr> ParseUnary() {
    if (Current().kind == TokenKind::kSymbol && Current().text == "-") {
      Advance();
      ParsedExprPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, ParseUnary());
      // Fold into literal when possible, else 0 - child.
      if (child->kind == ParsedExpr::Kind::kInt) {
        child->int_val = -child->int_val;
        return child;
      }
      if (child->kind == ParsedExpr::Kind::kFloat) {
        child->float_val = -child->float_val;
        return child;
      }
      auto zero = std::make_shared<ParsedExpr>();
      zero->kind = ParsedExpr::Kind::kInt;
      zero->int_val = 0;
      return MakeBinary("-", std::move(zero), std::move(child));
    }
    return ParsePrimary();
  }

  Result<ParsedExprPtr> ParsePrimary() {
    const Token& t = Current();
    if (t.kind == TokenKind::kInt) {
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kInt;
      e->int_val = t.int_val;
      Advance();
      return ParsedExprPtr(e);
    }
    if (t.kind == TokenKind::kFloat) {
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kFloat;
      e->float_val = t.float_val;
      Advance();
      return ParsedExprPtr(e);
    }
    if (t.kind == TokenKind::kString) {
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kString;
      e->str_val = t.text;
      Advance();
      return ParsedExprPtr(e);
    }
    if (TokenIs(t, "DATE")) {
      Advance();
      if (Current().kind != TokenKind::kString) {
        return ErrorHere("expected 'YYYY-MM-DD' after DATE");
      }
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kDate;
      e->str_val = Current().text;
      Advance();
      return ParsedExprPtr(e);
    }
    if (AcceptSymbol("?")) {
      // Prepared-statement placeholder; ordinals are assigned in SQL text
      // order, so Execute(params...) binds positionally.
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kParam;
      e->int_val = static_cast<int64_t>(param_count_++);
      return ParsedExprPtr(e);
    }
    if (AcceptSymbol("(")) {
      ParsedExprPtr inner;
      COSTDB_ASSIGN_OR_RETURN(inner, ParseExpr());
      COSTDB_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      std::string first = t.text;
      Advance();
      if (AcceptSymbol("(")) {  // function call
        auto e = std::make_shared<ParsedExpr>();
        e->kind = ParsedExpr::Kind::kFunc;
        e->str_val = first;
        if (AcceptSymbol("*")) {
          e->star_arg = true;
        } else if (!AcceptSymbol(")")) {
          do {
            ParsedExprPtr arg;
            COSTDB_ASSIGN_OR_RETURN(arg, ParseExpr());
            e->children.push_back(std::move(arg));
          } while (AcceptSymbol(","));
          COSTDB_RETURN_NOT_OK(ExpectSymbol(")"));
          return ParsedExprPtr(e);
        } else {
          return ParsedExprPtr(e);  // empty arg list
        }
        COSTDB_RETURN_NOT_OK(ExpectSymbol(")"));
        return ParsedExprPtr(e);
      }
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kIdent;
      e->parts.push_back(first);
      while (AcceptSymbol(".")) {
        if (Current().kind != TokenKind::kIdent) {
          return ErrorHere("expected identifier after '.'");
        }
        e->parts.push_back(Current().text);
        Advance();
      }
      return ParsedExprPtr(e);
    }
    return ErrorHere("unexpected token '" + t.text + "'");
  }

  static ParsedExprPtr MakeBinary(std::string op, ParsedExprPtr l,
                                  ParsedExprPtr r) {
    auto e = std::make_shared<ParsedExpr>();
    e->kind = ParsedExpr::Kind::kBinary;
    e->str_val = std::move(op);
    e->children = {std::move(l), std::move(r)};
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t param_count_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& sql) {
  std::vector<Token> tokens;
  COSTDB_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace costdb
