#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/expression.h"
#include "sql/parser.h"

namespace costdb {

/// A FROM-list relation resolved against the catalog.
struct BoundRelation {
  std::string table;
  std::string alias;
  std::shared_ptr<Table> handle;
};

struct BoundOrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// Fully bound query in "query graph" form: relations + conjunctive
/// predicates + aggregation/projection/ordering stages. The optimizer
/// consumes this directly (join ordering works on the relation/predicate
/// sets, not on a pre-shaped tree).
struct BoundQuery {
  std::vector<BoundRelation> relations;
  /// All WHERE and ON conjuncts, bound. Single-table conjuncts get pushed
  /// into scans by the optimizer; cross-table equi-conjuncts become join
  /// edges.
  std::vector<ExprPtr> filters;

  /// Final output expressions and their display names. In aggregate
  /// queries these reference group columns and derived aggregate names.
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> select_names;

  /// Grouping keys (column references).
  std::vector<ExprPtr> group_by;
  /// Distinct aggregate expressions; output name agg_names[i].
  std::vector<ExprPtr> aggregates;
  std::vector<std::string> agg_names;

  ExprPtr having;  // references group columns / aggregate names
  std::vector<BoundOrderItem> order_by;
  int64_t limit = -1;

  /// Inferred type of each '?' placeholder, by ordinal. Empty for plain
  /// (parameter-free) statements. A placeholder adopts the type of the
  /// column or literal it is compared/combined with; statements whose
  /// placeholders cannot be inferred fail to bind.
  std::vector<LogicalType> param_types;

  bool is_aggregate() const {
    return !aggregates.empty() || !group_by.empty();
  }
  bool has_params() const { return !param_types.empty(); }
};

/// Resolves names and types against the metadata service and desugars
/// IN/BETWEEN. Fails with InvalidArgument/NotFound on unknown tables,
/// unknown or ambiguous columns, and type mismatches.
class Binder {
 public:
  explicit Binder(const MetadataService* meta) : meta_(meta) {}

  Result<BoundQuery> Bind(const ParsedQuery& parsed);

  /// Convenience: parse + bind.
  Result<BoundQuery> BindSql(const std::string& sql);

 private:
  struct Scope;

  Result<ExprPtr> BindExpr(const ParsedExpr& e, const Scope& scope);
  Result<ExprPtr> BindIdent(const ParsedExpr& e, const Scope& scope);

  /// If exactly one of a/b is an unresolved placeholder, infer its type
  /// from the other operand; two unresolved placeholders cannot anchor
  /// each other and fail.
  Status UnifyParamTypes(const ExprPtr& a, const ExprPtr& b);
  bool IsUnresolvedParam(const ExprPtr& e) const;
  void ResolveParam(const ExprPtr& e, LogicalType type);

  /// Replace kAgg nodes with kColumn references to derived names, appending
  /// new distinct aggregates to q->aggregates.
  ExprPtr ExtractAggregates(const ExprPtr& e, BoundQuery* q);

  const MetadataService* meta_;
  /// Per-ordinal inferred types of the statement currently being bound;
  /// value-less entries are still unresolved.
  std::vector<std::optional<LogicalType>> param_types_;
};

}  // namespace costdb
