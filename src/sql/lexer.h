#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace costdb {

/// Token kinds produced by the SQL lexer.
enum class TokenKind {
  kIdent,    // bare identifier or keyword (keywords matched case-insensitively
             // by the parser)
  kInt,      // integer literal
  kFloat,    // floating-point literal
  kString,   // 'quoted string' (quotes stripped, '' unescaped)
  kSymbol,   // operator/punctuation: = <> != < <= > >= + - * / ( ) , . ; ?
             // ('?' is the prepared-statement parameter placeholder)
  kEnd,      // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier text (original case), symbol, or literal
  int64_t int_val = 0;
  double float_val = 0.0;
  size_t offset = 0;  // byte offset in the SQL text, for error messages
};

/// Tokenize SQL text. Fails on unterminated strings or unexpected bytes.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// Case-insensitive keyword comparison for identifier tokens.
bool TokenIs(const Token& t, const char* keyword);

}  // namespace costdb
