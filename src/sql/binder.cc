#include "sql/binder.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace costdb {

struct Binder::Scope {
  // "alias.column" -> type
  std::map<std::string, LogicalType> qualified;
  // "column" -> qualified names carrying it (ambiguity detection)
  std::map<std::string, std::vector<std::string>> unqualified;

  void Add(const std::string& alias, const std::string& column,
           LogicalType type) {
    std::string q = alias + "." + column;
    qualified[q] = type;
    unqualified[column].push_back(q);
  }
};

namespace {
std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool IsNumeric(LogicalType t) {
  return PhysicalTypeOf(t) != PhysicalType::kString;
}
}  // namespace

Result<BoundQuery> Binder::Bind(const ParsedQuery& parsed) {
  BoundQuery q;
  Scope scope;
  param_types_.assign(parsed.param_count, std::nullopt);
  if (parsed.from.empty()) {
    return Status::InvalidArgument("query has no FROM relations");
  }
  for (const auto& item : parsed.from) {
    BoundRelation rel;
    rel.table = item.table;
    rel.alias = item.alias;
    COSTDB_ASSIGN_OR_RETURN(rel.handle, meta_->GetTable(item.table));
    for (const auto& other : q.relations) {
      if (other.alias == rel.alias) {
        return Status::InvalidArgument("duplicate relation alias: " +
                                       rel.alias);
      }
    }
    for (const auto& col : rel.handle->columns()) {
      scope.Add(rel.alias, col.name, col.type);
    }
    q.relations.push_back(std::move(rel));
  }

  // WHERE and JOIN..ON conditions all become conjuncts of one filter set.
  std::vector<ParsedExprPtr> predicates = parsed.join_conditions;
  if (parsed.where) predicates.push_back(parsed.where);
  for (const auto& p : predicates) {
    ExprPtr bound;
    COSTDB_ASSIGN_OR_RETURN(bound, BindExpr(*p, scope));
    if (bound->type != LogicalType::kBool) {
      return Status::InvalidArgument("predicate is not boolean: " +
                                     bound->ToString());
    }
    SplitConjuncts(bound, &q.filters);
  }

  // SELECT list.
  std::vector<ExprPtr> raw_select;
  std::vector<std::string> raw_names;
  if (parsed.select_star) {
    for (const auto& rel : q.relations) {
      for (const auto& col : rel.handle->columns()) {
        raw_select.push_back(
            Expr::MakeColumn(rel.alias + "." + col.name, col.type));
        raw_names.push_back(rel.alias + "." + col.name);
      }
    }
  } else {
    for (const auto& item : parsed.select_items) {
      ExprPtr bound;
      COSTDB_ASSIGN_OR_RETURN(bound, BindExpr(*item.expr, scope));
      std::string name = item.alias;
      if (name.empty()) name = bound->ToString();
      raw_select.push_back(std::move(bound));
      raw_names.push_back(std::move(name));
    }
  }

  // GROUP BY keys must be column references.
  for (const auto& g : parsed.group_by) {
    ExprPtr bound;
    COSTDB_ASSIGN_OR_RETURN(bound, BindExpr(*g, scope));
    if (bound->kind != Expr::Kind::kColumn) {
      return Status::NotSupported("GROUP BY supports plain columns, got: " +
                                  bound->ToString());
    }
    q.group_by.push_back(std::move(bound));
  }

  // Pull aggregates out of SELECT/HAVING/ORDER BY.
  for (size_t i = 0; i < raw_select.size(); ++i) {
    q.select_exprs.push_back(ExtractAggregates(raw_select[i], &q));
    q.select_names.push_back(raw_names[i]);
  }
  if (parsed.having) {
    ExprPtr bound;
    COSTDB_ASSIGN_OR_RETURN(bound, BindExpr(*parsed.having, scope));
    q.having = ExtractAggregates(bound, &q);
  }
  for (const auto& item : parsed.order_by) {
    BoundOrderItem out;
    out.descending = item.descending;
    // ORDER BY may name a select alias.
    if (item.expr->kind == ParsedExpr::Kind::kIdent &&
        item.expr->parts.size() == 1) {
      auto it = std::find(q.select_names.begin(), q.select_names.end(),
                          item.expr->parts[0]);
      if (it != q.select_names.end()) {
        size_t idx = static_cast<size_t>(it - q.select_names.begin());
        out.expr = Expr::MakeColumn(q.select_names[idx],
                                    q.select_exprs[idx]->type);
        q.order_by.push_back(std::move(out));
        continue;
      }
    }
    ExprPtr bound;
    COSTDB_ASSIGN_OR_RETURN(bound, BindExpr(*item.expr, scope));
    out.expr = ExtractAggregates(bound, &q);
    q.order_by.push_back(std::move(out));
  }
  q.limit = parsed.limit;

  if (q.is_aggregate()) {
    // Every non-aggregate output must be derivable from the group keys.
    auto is_group_col = [&](const std::string& name) {
      for (const auto& g : q.group_by) {
        if (g->column == name) return true;
      }
      for (const auto& n : q.agg_names) {
        if (n == name) return true;
      }
      return false;
    };
    for (const auto& e : q.select_exprs) {
      std::vector<std::string> cols;
      e->CollectColumns(&cols);
      for (const auto& c : cols) {
        if (!is_group_col(c)) {
          return Status::InvalidArgument(
              "column " + c + " must appear in GROUP BY or an aggregate");
        }
      }
    }
  }

  // Every placeholder must have adopted a type from the expression it
  // appears in; an unanchored '?' has no executable meaning.
  q.param_types.reserve(param_types_.size());
  for (size_t i = 0; i < param_types_.size(); ++i) {
    if (!param_types_[i].has_value()) {
      return Status::InvalidArgument(
          "cannot infer the type of parameter ?" + std::to_string(i) +
          "; compare it against a column or literal");
    }
    q.param_types.push_back(*param_types_[i]);
  }
  return q;
}

Result<BoundQuery> Binder::BindSql(const std::string& sql) {
  ParsedQuery parsed;
  COSTDB_ASSIGN_OR_RETURN(parsed, ParseQuery(sql));
  return Bind(parsed);
}

bool Binder::IsUnresolvedParam(const ExprPtr& e) const {
  return e != nullptr && e->kind == Expr::Kind::kParam &&
         e->param_index >= 0 &&
         static_cast<size_t>(e->param_index) < param_types_.size() &&
         !param_types_[e->param_index].has_value();
}

void Binder::ResolveParam(const ExprPtr& e, LogicalType type) {
  e->type = type;
  param_types_[e->param_index] = type;
}

Status Binder::UnifyParamTypes(const ExprPtr& a, const ExprPtr& b) {
  const bool ua = IsUnresolvedParam(a);
  const bool ub = IsUnresolvedParam(b);
  // Two unresolved placeholders cannot anchor each other; stay silent and
  // let the end-of-bind check report whichever never finds an anchor.
  if (ua == ub) return Status::OK();
  if (ua) ResolveParam(a, b->type);
  if (ub) ResolveParam(b, a->type);
  return Status::OK();
}

Result<ExprPtr> Binder::BindIdent(const ParsedExpr& e, const Scope& scope) {
  if (e.parts.size() == 2) {
    std::string q = e.parts[0] + "." + e.parts[1];
    auto it = scope.qualified.find(q);
    if (it == scope.qualified.end()) {
      return Status::NotFound("unknown column: " + q);
    }
    return Expr::MakeColumn(q, it->second);
  }
  if (e.parts.size() == 1) {
    auto it = scope.unqualified.find(e.parts[0]);
    if (it == scope.unqualified.end()) {
      return Status::NotFound("unknown column: " + e.parts[0]);
    }
    if (it->second.size() > 1) {
      return Status::InvalidArgument("ambiguous column: " + e.parts[0]);
    }
    const std::string& q = it->second[0];
    return Expr::MakeColumn(q, scope.qualified.at(q));
  }
  return Status::InvalidArgument("unsupported identifier depth");
}

Result<ExprPtr> Binder::BindExpr(const ParsedExpr& e, const Scope& scope) {
  switch (e.kind) {
    case ParsedExpr::Kind::kIdent:
      return BindIdent(e, scope);
    case ParsedExpr::Kind::kInt:
      return Expr::MakeConstant(Value(e.int_val), LogicalType::kInt64);
    case ParsedExpr::Kind::kFloat:
      return Expr::MakeConstant(Value(e.float_val), LogicalType::kDouble);
    case ParsedExpr::Kind::kString:
      return Expr::MakeConstant(Value(e.str_val), LogicalType::kVarchar);
    case ParsedExpr::Kind::kDate: {
      int64_t days = 0;
      if (!ParseDate(e.str_val, &days)) {
        return Status::InvalidArgument("malformed date: " + e.str_val);
      }
      return Expr::MakeConstant(Value(days), LogicalType::kDate);
    }
    case ParsedExpr::Kind::kParam:
      // Type is inferred from the surrounding expression (see
      // UnifyParamTypes); kInt64 is only the pre-inference placeholder.
      return Expr::MakeParam(static_cast<int>(e.int_val), LogicalType::kInt64);
    case ParsedExpr::Kind::kNot: {
      ExprPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, BindExpr(*e.children[0], scope));
      return Expr::MakeNot(std::move(child));
    }
    case ParsedExpr::Kind::kBinary: {
      const std::string op = Lower(e.str_val);
      ExprPtr l, r;
      COSTDB_ASSIGN_OR_RETURN(l, BindExpr(*e.children[0], scope));
      COSTDB_ASSIGN_OR_RETURN(r, BindExpr(*e.children[1], scope));
      COSTDB_RETURN_NOT_OK(UnifyParamTypes(l, r));
      if (op == "and") return Expr::MakeAnd({std::move(l), std::move(r)});
      if (op == "or") return Expr::MakeOr({std::move(l), std::move(r)});
      if (op == "like") {
        if (IsUnresolvedParam(l)) ResolveParam(l, LogicalType::kVarchar);
        if (r->kind != Expr::Kind::kConstant || !r->constant.is_string()) {
          return Status::NotSupported("LIKE requires a string literal pattern");
        }
        char escape = '\0';
        if (e.children.size() > 2) {
          ExprPtr esc;
          COSTDB_ASSIGN_OR_RETURN(esc, BindExpr(*e.children[2], scope));
          if (esc->kind != Expr::Kind::kConstant ||
              !esc->constant.is_string() ||
              esc->constant.AsString().size() != 1) {
            return Status::InvalidArgument(
                "ESCAPE requires a single-character string literal");
          }
          escape = esc->constant.AsString()[0];
          if (escape == '\0') {
            return Status::InvalidArgument("ESCAPE character cannot be NUL");
          }
          // SQL-standard strictness at bind time: in the pattern, the
          // escape character must be followed by %, _, or itself.
          const std::string& pattern = r->constant.AsString();
          for (size_t i = 0; i < pattern.size(); ++i) {
            if (pattern[i] != escape) continue;
            if (i + 1 >= pattern.size() ||
                (pattern[i + 1] != '%' && pattern[i + 1] != '_' &&
                 pattern[i + 1] != escape)) {
              return Status::InvalidArgument(
                  "LIKE pattern escape character must precede %, _, or "
                  "itself");
            }
            ++i;  // skip the escaped character
          }
        }
        return Expr::MakeLike(std::move(l), r->constant.AsString(), escape);
      }
      if (op == "+" || op == "-" || op == "*" || op == "/") {
        if (!IsNumeric(l->type) || !IsNumeric(r->type)) {
          return Status::InvalidArgument("arithmetic requires numeric operands");
        }
        return Expr::MakeArith(op[0], std::move(l), std::move(r));
      }
      CompareOp cmp;
      if (op == "=") {
        cmp = CompareOp::kEq;
      } else if (op == "<>") {
        cmp = CompareOp::kNe;
      } else if (op == "<") {
        cmp = CompareOp::kLt;
      } else if (op == "<=") {
        cmp = CompareOp::kLe;
      } else if (op == ">") {
        cmp = CompareOp::kGt;
      } else if (op == ">=") {
        cmp = CompareOp::kGe;
      } else {
        return Status::NotSupported("operator " + e.str_val);
      }
      const bool l_str = PhysicalTypeOf(l->type) == PhysicalType::kString;
      const bool r_str = PhysicalTypeOf(r->type) == PhysicalType::kString;
      if (l_str != r_str) {
        return Status::InvalidArgument("cannot compare " +
                                       std::string(LogicalTypeName(l->type)) +
                                       " with " + LogicalTypeName(r->type));
      }
      return Expr::MakeCompare(cmp, std::move(l), std::move(r));
    }
    case ParsedExpr::Kind::kIn: {
      ExprPtr input;
      COSTDB_ASSIGN_OR_RETURN(input, BindExpr(*e.children[0], scope));
      // Bind every item before desugaring: placeholder types must settle
      // before input->Clone() snapshots the input expression.
      std::vector<ExprPtr> items;
      for (size_t i = 1; i < e.children.size(); ++i) {
        ExprPtr item;
        COSTDB_ASSIGN_OR_RETURN(item, BindExpr(*e.children[i], scope));
        items.push_back(std::move(item));
      }
      if (items.empty()) {
        return Status::InvalidArgument("empty IN list");
      }
      // Two passes: the first may anchor the input off a literal item, the
      // second back-fills placeholder items off the (now typed) input.
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& item : items) {
          COSTDB_RETURN_NOT_OK(UnifyParamTypes(input, item));
        }
      }
      std::vector<ExprPtr> options;
      for (auto& item : items) {
        options.push_back(
            Expr::MakeCompare(CompareOp::kEq, input->Clone(), std::move(item)));
      }
      if (options.size() == 1) return options[0];
      return Expr::MakeOr(std::move(options));
    }
    case ParsedExpr::Kind::kBetween: {
      ExprPtr input, lo, hi;
      COSTDB_ASSIGN_OR_RETURN(input, BindExpr(*e.children[0], scope));
      COSTDB_ASSIGN_OR_RETURN(lo, BindExpr(*e.children[1], scope));
      COSTDB_ASSIGN_OR_RETURN(hi, BindExpr(*e.children[2], scope));
      // Second input/lo pass: hi may have anchored a placeholder input.
      COSTDB_RETURN_NOT_OK(UnifyParamTypes(input, lo));
      COSTDB_RETURN_NOT_OK(UnifyParamTypes(input, hi));
      COSTDB_RETURN_NOT_OK(UnifyParamTypes(input, lo));
      return Expr::MakeAnd(
          {Expr::MakeCompare(CompareOp::kGe, input->Clone(), std::move(lo)),
           Expr::MakeCompare(CompareOp::kLe, std::move(input), std::move(hi))});
    }
    case ParsedExpr::Kind::kFunc: {
      const std::string name = Lower(e.str_val);
      AggFunc agg;
      if (name == "count") {
        agg = e.star_arg || e.children.empty() ? AggFunc::kCountStar
                                               : AggFunc::kCount;
      } else if (name == "sum") {
        agg = AggFunc::kSum;
      } else if (name == "min") {
        agg = AggFunc::kMin;
      } else if (name == "max") {
        agg = AggFunc::kMax;
      } else if (name == "avg") {
        agg = AggFunc::kAvg;
      } else {
        return Status::NotSupported("function " + e.str_val);
      }
      ExprPtr arg;
      if (agg != AggFunc::kCountStar) {
        if (e.children.size() != 1) {
          return Status::InvalidArgument(name + " takes exactly one argument");
        }
        COSTDB_ASSIGN_OR_RETURN(arg, BindExpr(*e.children[0], scope));
        if ((agg == AggFunc::kSum || agg == AggFunc::kAvg) &&
            !IsNumeric(arg->type)) {
          return Status::InvalidArgument(name + " requires a numeric argument");
        }
      }
      return Expr::MakeAgg(agg, std::move(arg));
    }
  }
  return Status::Internal("unreachable parse node");
}

ExprPtr Binder::ExtractAggregates(const ExprPtr& e, BoundQuery* q) {
  if (!e) return e;
  if (e->kind == Expr::Kind::kAgg) {
    // Deduplicate structurally identical aggregates.
    std::string repr = e->ToString();
    for (size_t i = 0; i < q->aggregates.size(); ++i) {
      if (q->aggregates[i]->ToString() == repr) {
        return Expr::MakeColumn(q->agg_names[i], q->aggregates[i]->type);
      }
    }
    std::string name = "agg_" + std::to_string(q->aggregates.size());
    q->aggregates.push_back(e);
    q->agg_names.push_back(name);
    return Expr::MakeColumn(name, e->type);
  }
  auto copy = std::make_shared<Expr>(*e);
  for (auto& c : copy->children) {
    c = ExtractAggregates(c, q);
  }
  return copy;
}

}  // namespace costdb
