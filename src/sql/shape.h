#pragma once

#include <string>

namespace costdb {

/// Canonical "statement shape" of a SQL string, used as the plan-cache
/// key by the service layer: tokens joined by single spaces, reserved
/// keywords uppercased, literals re-rendered canonically ('1.50' and '1.5'
/// agree), and '?' placeholders kept positional. Two statements that
/// differ only in whitespace or keyword case — or, for prepared
/// statements, only in the values later bound to their placeholders —
/// normalize to the same shape and share one cached plan.
///
/// Identifier case is preserved: this dialect resolves table and column
/// names case-sensitively, so folding them would alias distinct queries.
///
/// SQL that does not lex falls back to the raw text (planning will surface
/// the real error; the cache key just has to be stable).
std::string NormalizeStatementShape(const std::string& sql);

}  // namespace costdb
