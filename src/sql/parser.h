#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/lexer.h"

namespace costdb {

/// Unbound expression AST straight out of the parser. The binder turns this
/// into the typed Expr tree (plan/expression.h).
struct ParsedExpr;
using ParsedExprPtr = std::shared_ptr<ParsedExpr>;

struct ParsedExpr {
  enum class Kind {
    kIdent,     // possibly qualified: parts = {"t", "col"} or {"col"}
    kInt,
    kFloat,
    kString,
    kDate,      // DATE 'YYYY-MM-DD'
    kBinary,    // op: = <> < <= > >= + - * / AND OR LIKE
    kNot,
    kFunc,      // name(args...) or name(*)
    kIn,        // children[0] IN (children[1..])
    kBetween,   // children[0] BETWEEN children[1] AND children[2]
    kParam,     // '?' placeholder; int_val = 0-based ordinal in SQL order
  };

  Kind kind = Kind::kInt;
  std::vector<std::string> parts;  // kIdent
  int64_t int_val = 0;
  double float_val = 0.0;
  std::string str_val;             // kString/kDate literal, kBinary op,
                                   // kFunc name
  bool star_arg = false;           // kFunc: COUNT(*)
  std::vector<ParsedExprPtr> children;
};

/// One item of the SELECT list.
struct SelectItem {
  ParsedExprPtr expr;   // nullptr for bare '*'
  std::string alias;    // "" when none
};

/// One relation in FROM (comma-list and INNER JOINs are normalized into a
/// relation list plus ON-predicates folded into WHERE).
struct FromItem {
  std::string table;
  std::string alias;  // defaults to table name
};

struct OrderItem {
  ParsedExprPtr expr;
  bool descending = false;
};

/// A parsed (still unbound) SELECT statement.
struct ParsedQuery {
  std::vector<SelectItem> select_items;
  bool select_star = false;
  std::vector<FromItem> from;
  std::vector<ParsedExprPtr> join_conditions;  // from JOIN ... ON
  ParsedExprPtr where;  // nullptr when absent
  std::vector<ParsedExprPtr> group_by;
  ParsedExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none
  /// Number of '?' placeholders; ordinals run 0..param_count-1 in SQL order.
  size_t param_count = 0;
};

/// Parse one SELECT statement (optionally ';'-terminated).
Result<ParsedQuery> ParseQuery(const std::string& sql);

}  // namespace costdb
