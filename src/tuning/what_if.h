#pragma once

#include <string>
#include <vector>

#include "sim/harness.h"
#include "stats/statistics_service.h"
#include "tuning/actions.h"
#include "tuning/mv.h"
#include "tuning/predictor.h"

namespace costdb {

/// One recurring query of the predicted workload.
struct WorkloadItem {
  std::string query_id;
  std::string sql;
  double runs_per_day = 0.0;
};

/// Per-query line of a what-if report.
struct WhatIfQueryDelta {
  std::string query_id;
  Dollars cost_before = 0.0;
  Dollars cost_after = 0.0;
  double runs_per_day = 0.0;

  Dollars savings_per_day() const {
    return (cost_before - cost_after) * runs_per_day;
  }
};

/// The customer-readable dollar report of paper Section 4: benefit
/// x $/day, cost y $/day, accept iff x - y > 0, with a one-time build
/// price and payback horizon.
struct WhatIfReport {
  TuningAction action;
  Dollars benefit_per_day = 0.0;   // x
  Dollars cost_per_day = 0.0;      // y (storage rent + maintenance)
  Dollars build_cost = 0.0;        // one-time background job
  bool accepted = false;           // x - y > 0
  double payback_days = 0.0;       // build / (x - y); inf when not accepted
  std::vector<WhatIfQueryDelta> per_query;

  Dollars net_per_day() const { return benefit_per_day - cost_per_day; }
  std::string ToString() const;
};

struct WhatIfOptions {
  /// Fraction of the MV's base data rewritten per day (drives maintenance).
  double mv_update_fraction_per_day = 0.02;
  /// Extra machine-time factor for writing the MV/recluster output versus
  /// just computing it.
  double write_amplification = 1.5;
  UserConstraint constraint = UserConstraint::Sla(60.0);
};

/// Prices tuning proposals against a predicted workload: hypothetically
/// applies the action on a cloned catalog, re-plans every workload query,
/// and compares estimated dollars before/after. Leveraging elastic
/// resources, the action's build/maintenance runs on separate background
/// compute, so the report is purely monetary — the paper's key
/// simplification of the auto-tuning problem.
class WhatIfService {
 public:
  WhatIfService(const MetadataService* meta, const CostEstimator* estimator,
                WhatIfOptions options = WhatIfOptions())
      : meta_(meta), estimator_(estimator), options_(options) {}

  Result<WhatIfReport> Evaluate(const TuningAction& action,
                                const std::vector<WorkloadItem>& workload);

  /// Apply an accepted action for real: mutate `meta` (register MV /
  /// recluster the table) and charge the build to `env`'s background
  /// compute bill.
  Status Apply(const WhatIfReport& report, MetadataService* meta,
               CloudEnv* env, LocalEngine* engine, Seconds now);

  /// Estimated dollar cost of one query under a given catalog.
  Result<Dollars> EstimateQueryCost(const MetadataService& meta,
                                    const std::string& sql,
                                    const TuningAction* mv_rewrite,
                                    std::shared_ptr<Table> mv_table) const;

 private:
  Result<Dollars> BuildCost(const MetadataService& meta,
                            const TuningAction& action,
                            double* bytes_out) const;

  const MetadataService* meta_;
  const CostEstimator* estimator_;
  WhatIfOptions options_;
};

}  // namespace costdb
