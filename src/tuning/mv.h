#pragma once

#include "catalog/catalog.h"
#include "exec/engine.h"
#include "plan/logical_plan.h"
#include "tuning/actions.h"

namespace costdb {

/// Materialize the defining join of an MV action over the in-process base
/// tables. The MV table's columns carry the *unqualified* base column
/// names, so a plan rewritten to scan the MV keeps resolving its original
/// qualified references (see SubstituteMvInPlan).
Result<std::shared_ptr<Table>> BuildMaterializedView(
    const MetadataService& meta, const TuningAction& action,
    LocalEngine* engine);

/// SQL text of the MV's defining query ("SELECT * FROM bases WHERE
/// edges"), used both to materialize and to price the build.
std::string MvDefiningSql(const TuningAction& action);

/// Replace the join subtree covering exactly the MV's base tables with a
/// scan of the MV (pushed filters of the replaced scans are re-attached to
/// the MV scan). Returns nullptr when the plan has no matching subtree.
LogicalPlanPtr SubstituteMvInPlan(const LogicalPlanPtr& plan,
                                  const TuningAction& action,
                                  std::shared_ptr<Table> mv_table);

}  // namespace costdb
