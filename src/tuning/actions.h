#pragma once

#include <string>
#include <vector>

namespace costdb {

/// A physical-design change proposed by an advisor and priced by the
/// What-If Service.
struct TuningAction {
  enum class Kind {
    kMaterializedView,  // materialize an equi-join of base tables
    kRecluster,         // re-sort a table on one attribute (paper §4)
  };

  Kind kind = Kind::kMaterializedView;

  // kMaterializedView
  std::string mv_name;
  std::vector<std::string> mv_tables;      // base table names
  std::vector<std::string> mv_join_edges;  // normalized "t1.c1=t2.c2"
  /// Unqualified column to cluster the MV on (typically the workload's
  /// hottest filter attribute) so MV scans can zone-map prune; empty =
  /// unclustered.
  std::string mv_cluster_column;

  // kRecluster
  std::string table;
  std::string column;

  std::string Describe() const;
};

}  // namespace costdb
