#include "tuning/mv.h"

#include <algorithm>
#include <set>

#include "optimizer/passes.h"

namespace costdb {

std::string TuningAction::Describe() const {
  if (kind == Kind::kMaterializedView) {
    std::string out = "CREATE MATERIALIZED VIEW " + mv_name + " AS JOIN(";
    for (size_t i = 0; i < mv_tables.size(); ++i) {
      if (i > 0) out += ", ";
      out += mv_tables[i];
    }
    out += ") ON ";
    for (size_t i = 0; i < mv_join_edges.size(); ++i) {
      if (i > 0) out += " AND ";
      out += mv_join_edges[i];
    }
    return out;
  }
  return "RECLUSTER " + table + " BY " + column;
}

std::string MvDefiningSql(const TuningAction& action) {
  std::string sql = "SELECT * FROM ";
  for (size_t i = 0; i < action.mv_tables.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += action.mv_tables[i];
  }
  sql += " WHERE ";
  for (size_t i = 0; i < action.mv_join_edges.size(); ++i) {
    if (i > 0) sql += " AND ";
    const std::string& edge = action.mv_join_edges[i];
    auto mid = edge.find('=');
    sql += edge.substr(0, mid) + " = " + edge.substr(mid + 1);
  }
  return sql;
}

Result<std::shared_ptr<Table>> BuildMaterializedView(
    const MetadataService& meta, const TuningAction& action,
    LocalEngine* engine) {
  // Plan the defining query through the optimizer's pass facade
  // (bind -> dag_plan -> physical_plan) rather than wiring the internal
  // Binder/DagPlanner/PhysicalPlanner stages directly — the layering rule
  // ci/check_layering.py enforces for src/tuning. No DOP pass: the MV
  // build runs once on the caller's local engine, so the left-deep
  // physical candidate is all that is needed (no estimator required).
  QueryPlanContext ctx;
  ctx.meta = &meta;
  ctx.sql = MvDefiningSql(action);
  PassPipeline passes;
  passes.push_back(std::make_unique<BindPass>());
  passes.push_back(std::make_unique<DagPlanPass>());
  passes.push_back(std::make_unique<PhysicalPlanPass>());
  for (const auto& pass : passes) {
    COSTDB_RETURN_NOT_OK(pass->Run(&ctx).WithContext(
        std::string("materialized view '") + action.mv_name + "', pass '" +
        pass->name() + "'"));
  }
  PhysicalPlanPtr plan = std::move(ctx.candidates.front().plan);
  QueryResult result;
  COSTDB_ASSIGN_OR_RETURN(result, engine->Execute(plan.get()));
  // MV columns: unqualified base column names, so rewritten plans resolve.
  std::vector<ColumnDef> columns;
  for (size_t i = 0; i < result.names.size(); ++i) {
    std::string base = result.names[i].substr(result.names[i].find('.') + 1);
    columns.push_back({base, result.types[i]});
  }
  // Keep the base tables' row-group granularity so zone maps prune at a
  // comparable resolution.
  size_t row_group_size = 8192;
  for (const auto& t : action.mv_tables) {
    auto table = meta.GetTable(t);
    if (table.ok()) {
      row_group_size = std::min(row_group_size, (*table)->row_group_size());
    }
  }
  auto mv = std::make_shared<Table>(action.mv_name, columns, row_group_size);
  mv->Append(result.chunk);
  if (!action.mv_cluster_column.empty()) {
    COSTDB_RETURN_NOT_OK(mv->ClusterBy(action.mv_cluster_column));
  }
  return mv;
}

namespace {

void CollectScans(const LogicalPlanPtr& node,
                  std::vector<const LogicalPlan*>* scans) {
  if (node->kind == LogicalPlan::Kind::kScan) {
    scans->push_back(node.get());
    return;
  }
  for (const auto& c : node->children) CollectScans(c, scans);
}

/// Base table names under a subtree.
std::set<std::string> TableSet(const LogicalPlanPtr& node) {
  std::vector<const LogicalPlan*> scans;
  CollectScans(node, &scans);
  std::set<std::string> out;
  for (const auto* s : scans) out.insert(s->table->name());
  return out;
}

}  // namespace

LogicalPlanPtr SubstituteMvInPlan(const LogicalPlanPtr& plan,
                                  const TuningAction& action,
                                  std::shared_ptr<Table> mv_table) {
  std::set<std::string> target(action.mv_tables.begin(),
                               action.mv_tables.end());
  if (plan->kind == LogicalPlan::Kind::kJoin && TableSet(plan) == target) {
    // Replace this subtree: keep its column set and pushed filters.
    std::vector<const LogicalPlan*> scans;
    CollectScans(plan, &scans);
    std::vector<std::string> columns;
    std::vector<ExprPtr> filters;
    std::vector<std::string> aliases;
    for (const auto* s : scans) {
      columns.insert(columns.end(), s->scan_columns.begin(),
                     s->scan_columns.end());
      filters.insert(filters.end(), s->pushed_filters.begin(),
                     s->pushed_filters.end());
      aliases.push_back(s->alias);
    }
    auto scan = LogicalPlan::MakeScan(std::move(mv_table), action.mv_name,
                                      std::move(columns), std::move(filters));
    // The MV scan stands in for several relations.
    scan->relation_set = aliases;
    scan->est_rows = plan->est_rows;
    return scan;
  }
  bool changed = false;
  auto copy = std::make_shared<LogicalPlan>(*plan);
  for (auto& c : copy->children) {
    LogicalPlanPtr replaced = SubstituteMvInPlan(c, action, mv_table);
    if (replaced != nullptr) {
      c = replaced;
      changed = true;
    }
  }
  return changed ? copy : nullptr;
}

}  // namespace costdb
