#include "tuning/what_if.h"

#include <cmath>

#include "common/table_printer.h"
#include "optimizer/dop_planner.h"
#include "optimizer/passes.h"

namespace costdb {

namespace {

/// Custom optimizer stage spliced between dag_plan and physical_plan:
/// rewrites each logical variant to read from a hypothetical materialized
/// view. The pass pipeline is what makes this kind of what-if surgery
/// possible without re-wiring the planner by hand.
class MvRewritePass : public OptimizerPass {
 public:
  MvRewritePass(const TuningAction* action, std::shared_ptr<Table> mv_table)
      : action_(action), mv_table_(std::move(mv_table)) {}

  const char* name() const override { return "mv_rewrite"; }

  Status Run(QueryPlanContext* ctx) const override {
    for (auto& variant : ctx->variants) {
      LogicalPlanPtr rewritten =
          SubstituteMvInPlan(variant.plan, *action_, mv_table_);
      if (rewritten != nullptr) variant.plan = rewritten;
    }
    return Status::OK();
  }

 private:
  const TuningAction* action_;
  std::shared_ptr<Table> mv_table_;
};

}  // namespace

std::string WhatIfReport::ToString() const {
  std::string out = "What-If Report: " + action.Describe() + "\n";
  TablePrinter t({"query", "runs/day", "$/run before", "$/run after",
                  "savings $/day"});
  for (const auto& q : per_query) {
    t.AddRow({q.query_id, StrFormat("%.1f", q.runs_per_day),
              FormatDollars(q.cost_before), FormatDollars(q.cost_after),
              FormatDollars(q.savings_per_day())});
  }
  out += t.ToString();
  out += "  benefit x = " + FormatDollars(benefit_per_day) + "/day\n";
  out += "  cost    y = " + FormatDollars(cost_per_day) +
         "/day (storage + maintenance)\n";
  out += "  build (one-time, background) = " + FormatDollars(build_cost) +
         "\n";
  out += "  net = " + FormatDollars(net_per_day()) + "/day -> " +
         (accepted ? "ACCEPT" : "REJECT");
  if (accepted && payback_days > 0.0) {
    out += StrFormat(" (payback in %.1f days)", payback_days);
  }
  out += "\n";
  return out;
}

Result<Dollars> WhatIfService::EstimateQueryCost(
    const MetadataService& meta, const std::string& sql,
    const TuningAction* mv_rewrite, std::shared_ptr<Table> mv_table) const {
  // A left-deep pass pipeline with an MV-substitution stage spliced in
  // after DAG planning when a rewrite is hypothesized.
  QueryPlanContext ctx;
  ctx.meta = &meta;
  ctx.estimator = estimator_;
  ctx.sql = sql;
  ctx.constraint = options_.constraint;
  PassPipeline passes;
  passes.push_back(std::make_unique<BindPass>());
  passes.push_back(std::make_unique<DagPlanPass>());
  if (mv_rewrite != nullptr && mv_table != nullptr) {
    passes.push_back(std::make_unique<MvRewritePass>(mv_rewrite, mv_table));
  }
  passes.push_back(std::make_unique<PhysicalPlanPass>());
  passes.push_back(std::make_unique<DopPlanPass>());
  COSTDB_RETURN_NOT_OK(RunPassPipeline(passes, &ctx));
  return ctx.best.estimate.cost;
}

Result<Dollars> WhatIfService::BuildCost(const MetadataService& meta,
                                         const TuningAction& action,
                                         double* bytes_out) const {
  if (action.kind == TuningAction::Kind::kMaterializedView) {
    Dollars compute;
    COSTDB_ASSIGN_OR_RETURN(
        compute, EstimateQueryCost(meta, MvDefiningSql(action), nullptr,
                                   nullptr));
    // Output size ~ widest base table's bytes scaled by join selectivity
    // ~1 for FK joins; approximate with the largest base table.
    double bytes = 0.0;
    for (const auto& t : action.mv_tables) {
      auto table = meta.GetTable(t);
      if (!table.ok()) continue;
      double scaled =
          (*table)->EstimateBytes() * meta.virtual_scale(t);
      bytes = std::max(bytes, scaled);
    }
    if (bytes_out != nullptr) *bytes_out = bytes;
    return compute * options_.write_amplification;
  }
  // Recluster: read + rewrite the whole table on background compute.
  auto table = meta.GetTable(action.table);
  if (!table.ok()) return table.status();
  double bytes =
      (*table)->EstimateBytes() * meta.virtual_scale(action.table);
  if (bytes_out != nullptr) *bytes_out = bytes;
  const InstanceType& node = estimator_->node_type();
  // Read at scan bandwidth, sort+write at half of it, on a 16-node
  // background cluster (machine time is what matters for cost).
  double gib = bytes / kGiB;
  Seconds machine_seconds =
      gib / estimator_->hardware().scan_gibps_per_node * 3.0;
  Dollars compute = machine_seconds * node.price_per_second();
  Dollars puts = bytes / (8.0 * kMiB) / 1000.0 * 0.005;
  return compute + puts;
}

Result<WhatIfReport> WhatIfService::Evaluate(
    const TuningAction& action, const std::vector<WorkloadItem>& workload) {
  WhatIfReport report;
  report.action = action;

  // Hypothetical catalog with the action applied.
  MetadataService hypothetical = *meta_;
  std::shared_ptr<Table> mv_table;
  if (action.kind == TuningAction::Kind::kMaterializedView) {
    LocalEngine engine(4);
    COSTDB_ASSIGN_OR_RETURN(mv_table,
                            BuildMaterializedView(*meta_, action, &engine));
    hypothetical.RegisterTable(mv_table);
    COSTDB_RETURN_NOT_OK(hypothetical.Analyze(action.mv_name));
    double scale = 1.0;
    for (const auto& t : action.mv_tables) {
      scale = std::max(scale, meta_->virtual_scale(t));
    }
    hypothetical.SetVirtualScale(action.mv_name, scale);
  } else {
    auto base = meta_->GetTable(action.table);
    if (!base.ok()) return base.status();
    // Clone and recluster the copy.
    auto clone = std::make_shared<Table>(**base);
    COSTDB_RETURN_NOT_OK(clone->ClusterBy(action.column));
    hypothetical.RegisterTable(clone);
    COSTDB_RETURN_NOT_OK(hypothetical.Analyze(action.table));
    hypothetical.SetVirtualScale(action.table,
                                 meta_->virtual_scale(action.table));
  }

  for (const auto& item : workload) {
    WhatIfQueryDelta delta;
    delta.query_id = item.query_id;
    delta.runs_per_day = item.runs_per_day;
    COSTDB_ASSIGN_OR_RETURN(
        delta.cost_before,
        EstimateQueryCost(*meta_, item.sql, nullptr, nullptr));
    const TuningAction* rewrite =
        action.kind == TuningAction::Kind::kMaterializedView ? &action
                                                             : nullptr;
    COSTDB_ASSIGN_OR_RETURN(
        delta.cost_after,
        EstimateQueryCost(hypothetical, item.sql, rewrite, mv_table));
    report.per_query.push_back(delta);
    report.benefit_per_day +=
        std::max(0.0, delta.cost_before - delta.cost_after) *
        item.runs_per_day;
  }

  double bytes = 0.0;
  COSTDB_ASSIGN_OR_RETURN(report.build_cost,
                          BuildCost(*meta_, action, &bytes));
  if (action.kind == TuningAction::Kind::kMaterializedView) {
    Dollars storage_per_day = bytes / kGiB * 0.023 / 30.0;
    Dollars maintenance_per_day =
        report.build_cost * options_.mv_update_fraction_per_day;
    report.cost_per_day = storage_per_day + maintenance_per_day;
  } else {
    // Reclustering keeps bytes constant; ongoing cost is the incremental
    // re-sorting of newly ingested data.
    report.cost_per_day =
        report.build_cost * options_.mv_update_fraction_per_day * 0.5;
  }

  report.accepted = report.net_per_day() > 0.0;
  report.payback_days = report.accepted
                            ? report.build_cost / report.net_per_day()
                            : std::numeric_limits<double>::infinity();
  return report;
}

Status WhatIfService::Apply(const WhatIfReport& report, MetadataService* meta,
                            CloudEnv* env, LocalEngine* engine, Seconds now) {
  const TuningAction& action = report.action;
  if (action.kind == TuningAction::Kind::kMaterializedView) {
    std::shared_ptr<Table> mv;
    COSTDB_ASSIGN_OR_RETURN(mv, BuildMaterializedView(*meta, action, engine));
    meta->RegisterTable(mv);
    COSTDB_RETURN_NOT_OK(meta->Analyze(action.mv_name));
    double scale = 1.0;
    for (const auto& t : action.mv_tables) {
      scale = std::max(scale, meta->virtual_scale(t));
    }
    meta->SetVirtualScale(action.mv_name, scale);
    MaterializedViewInfo info;
    info.name = action.mv_name;
    info.join_edges = action.mv_join_edges;
    info.base_tables = action.mv_tables;
    meta->RegisterMaterializedView(info);
  } else {
    std::shared_ptr<Table> table;
    COSTDB_ASSIGN_OR_RETURN(table, meta->GetTable(action.table));
    COSTDB_RETURN_NOT_OK(table->ClusterBy(action.column));
    COSTDB_RETURN_NOT_OK(meta->Analyze(action.table));
  }
  // Charge the background compute for the build.
  env->billing()->ChargeFlat("tuning:" + action.Describe(),
                             report.build_cost);
  (void)now;
  return Status::OK();
}

}  // namespace costdb
