#pragma once

#include <vector>

#include "stats/statistics_service.h"
#include "tuning/actions.h"

namespace costdb {

/// Propose materialized views from the Statistics Service's weighted join
/// graph: the top-k most-joined attribute pairs each become an MV
/// candidate over their two tables (the "existing auto-tuning tools" slot
/// of paper Figure 3).
std::vector<TuningAction> ProposeMvActions(const StatisticsService& stats,
                                           int top_k);

/// Propose reclustering candidates from the most frequently filtered
/// columns (ignoring columns of tables already clustered on them).
std::vector<TuningAction> ProposeReclusterActions(
    const StatisticsService& stats, const MetadataService& meta, int top_k);

}  // namespace costdb
