#include "tuning/predictor.h"

#include <algorithm>

#include "common/stats_math.h"

namespace costdb {

WorkloadPredictor::Forecast WorkloadPredictor::Predict(
    const std::vector<double>& hourly) const {
  Forecast f;
  if (hourly.empty()) return f;
  f.confidence = std::min(1.0, static_cast<double>(hourly.size()) /
                                   (3.0 * kPeriod));
  if (hourly.size() >= 2 * kPeriod &&
      Autocorrelation(hourly, kPeriod) > kPeriodicThreshold) {
    // Seasonal: average across whole past days.
    f.periodic = true;
    double sum = 0.0;
    size_t full_days = hourly.size() / kPeriod;
    size_t used = full_days * kPeriod;
    for (size_t i = hourly.size() - used; i < hourly.size(); ++i) {
      sum += hourly[i];
    }
    f.arrivals_per_hour = sum / static_cast<double>(used);
    return f;
  }
  // Trailing moving average.
  size_t window = std::min(kMovingWindow, hourly.size());
  double sum = 0.0;
  for (size_t i = hourly.size() - window; i < hourly.size(); ++i) {
    sum += hourly[i];
  }
  f.arrivals_per_hour = sum / static_cast<double>(window);
  return f;
}

}  // namespace costdb
