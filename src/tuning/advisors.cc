#include "tuning/advisors.h"

#include <algorithm>

namespace costdb {

namespace {
std::vector<std::pair<std::string, double>> TopK(
    const std::map<std::string, double>& counts, int k) {
  std::vector<std::pair<std::string, double>> entries(counts.begin(),
                                                      counts.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (static_cast<int>(entries.size()) > k) entries.resize(k);
  return entries;
}
}  // namespace

std::vector<TuningAction> ProposeMvActions(const StatisticsService& stats,
                                           int top_k) {
  std::vector<TuningAction> actions;
  for (const auto& [edge, weight] : TopK(stats.join_graph(), top_k)) {
    // edge: "t1.c1=t2.c2"
    auto eq = edge.find('=');
    std::string left = edge.substr(0, eq);
    std::string right = edge.substr(eq + 1);
    std::string t1 = left.substr(0, left.find('.'));
    std::string t2 = right.substr(0, right.find('.'));
    if (t1 == t2) continue;
    TuningAction action;
    action.kind = TuningAction::Kind::kMaterializedView;
    action.mv_tables = {t1, t2};
    action.mv_join_edges = {edge};
    action.mv_name = "mv_" + t1 + "_" + t2;
    // Cluster the MV on the hottest filter column of either base table so
    // MV scans can prune.
    double best_weight = 0.0;
    for (const auto& [column, weight] : stats.filter_column_counts()) {
      auto dot = column.find('.');
      if (dot == std::string::npos) continue;
      std::string table = column.substr(0, dot);
      if ((table == t1 || table == t2) && weight > best_weight) {
        best_weight = weight;
        action.mv_cluster_column = column.substr(dot + 1);
      }
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

std::vector<TuningAction> ProposeReclusterActions(
    const StatisticsService& stats, const MetadataService& meta, int top_k) {
  std::vector<TuningAction> actions;
  for (const auto& [column, weight] : TopK(stats.filter_column_counts(),
                                           top_k * 3)) {
    auto dot = column.find('.');
    if (dot == std::string::npos) continue;
    std::string table = column.substr(0, dot);
    std::string attr = column.substr(dot + 1);
    auto handle = meta.GetTable(table);
    if (!handle.ok()) continue;
    if ((*handle)->clustering_key() == attr) continue;  // already clustered
    TuningAction action;
    action.kind = TuningAction::Kind::kRecluster;
    action.table = table;
    action.column = attr;
    actions.push_back(std::move(action));
    if (static_cast<int>(actions.size()) >= top_k) break;
  }
  return actions;
}

}  // namespace costdb
