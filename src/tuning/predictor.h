#pragma once

#include <vector>

#include "common/units.h"

namespace costdb {

/// Explainable workload predictor over the Statistics Service's hourly
/// arrival series. Deliberately not a deep model (paper Section 4 leans on
/// comprehensive statistics, not model sophistication): detects a diurnal
/// period via autocorrelation and predicts with a same-hour seasonal mean,
/// otherwise with a trailing moving average.
class WorkloadPredictor {
 public:
  struct Forecast {
    double arrivals_per_hour = 0.0;  // mean rate over the horizon
    bool periodic = false;           // diurnal pattern detected
    double confidence = 0.0;         // 0..1, grows with history length
  };

  /// `hourly` is the arrival count per past hour (oldest first).
  Forecast Predict(const std::vector<double>& hourly) const;

  /// Expected arrivals per *day* over the horizon.
  double PredictDailyArrivals(const std::vector<double>& hourly) const {
    return Predict(hourly).arrivals_per_hour * 24.0;
  }

 private:
  static constexpr size_t kPeriod = 24;          // hours
  static constexpr double kPeriodicThreshold = 0.4;
  static constexpr size_t kMovingWindow = 24;    // hours
};

}  // namespace costdb
