#pragma once

#include <vector>

#include "cost/cost_model.h"

namespace costdb {

struct PipelineTiming;   // exec/engine.h; kept forward to avoid a cycle
struct ExchangeTiming;   // exec/sharded_engine.h; same

/// One measured fused-chain execution: rows pushed through the fused
/// kernel, morsels dispatched to it, and the wall time of the kernel
/// calls themselves (FusedExecStats, aggregated per query).
struct FusedObservation {
  double rows = 0.0;
  double batches = 0.0;
  Seconds seconds = 0.0;
};

/// One measured cold-block storage read: bytes fetched from the object
/// store, GET requests issued, and the wall time of fetch+decode
/// (BlockCacheStats, aggregated per query).
struct StorageObservation {
  double bytes = 0.0;
  double blocks = 0.0;
  Seconds seconds = 0.0;
};

/// One observed pipeline execution, in the vocabulary of the cost model:
/// what the estimator predicted for it and what the engine measured.
struct CalibrationObservation {
  int pipeline_id = 0;
  Seconds predicted = 0.0;
  Seconds actual = 0.0;
};

/// What one feedback round did to the calibration.
struct CalibrationReport {
  int pipelines_observed = 0;
  /// Geometric-mean q-error max(pred/act, act/pred) before/after the update.
  double q_error_before = 1.0;
  double q_error_after = 1.0;
  /// Multiplier applied to every time term of the calibration this round
  /// (1.0 = no change).
  double applied_scale = 1.0;

  bool changed(double threshold = 0.05) const {
    return applied_scale > 1.0 + threshold ||
           applied_scale < 1.0 / (1.0 + threshold);
  }
};

struct CalibrationUpdaterOptions {
  /// EWMA learning rate: the applied scale is ratio^rate, so repeated
  /// observations converge geometrically instead of chasing one noisy run.
  double learning_rate = 0.5;
  /// Per-round clamp on the applied scale.
  double max_step = 8.0;
  /// Cumulative clamp relative to the initial calibration — a runaway
  /// guard so a pathological measurement cannot destroy the model. Wide,
  /// because a laptop-local engine legitimately sits orders of magnitude
  /// away from the modeled cloud node's fixed latencies.
  double max_total_drift = 1024.0;
};

/// Closes the paper's calibration loop (Section 3.1 calibrates "before the
/// service starts"; this keeps calibrating *while* it runs): wall-clock
/// pipeline timings from the local engine are compared against the
/// estimator's predictions and the shared HardwareCalibration is nudged so
/// subsequent estimates tighten. All time terms are scaled uniformly —
/// rates divided, fixed latencies multiplied — which preserves the
/// *relative* operator costs the DOP planner's decisions depend on while
/// correcting the absolute scale the hardware actually delivers.
class CalibrationUpdater {
 public:
  explicit CalibrationUpdater(
      HardwareCalibration* hw,
      CalibrationUpdaterOptions options = CalibrationUpdaterOptions());

  /// Fold one query's pipeline timings into the calibration. `graph` and
  /// `volumes` must be the plan the timings came from; predictions are
  /// made at `dop` nodes (the local engine stands in for one node).
  CalibrationReport Observe(const PipelineGraph& graph,
                            const VolumeMap& volumes,
                            const std::vector<PipelineTiming>& timings,
                            const CostEstimator& estimator, int dop = 1);

  /// Same loop fed with pre-matched (predicted, actual) pairs.
  CalibrationReport ObservePairs(
      const std::vector<CalibrationObservation>& pairs);

  /// Fold the sharded engine's measured exchange wall times into the
  /// calibration's shuffle term: predictions are made with the current
  /// bytes/shuffle_bw + partitions*dispatch model and only shuffle_gibps /
  /// shuffle_dispatch_seconds are rescaled (geometric-mean ratio under the
  /// same learning rate and clamps as the pipeline loop), so the general
  /// operator rates never chase data-movement noise.
  CalibrationReport ObserveShuffles(
      const std::vector<ExchangeTiming>& timings);

  /// Cumulative movement of the shuffle term relative to the initial
  /// calibration — the product of every ObserveShuffles scale *and* of
  /// the uniform pipeline scales (which move the shuffle term too).
  double shuffle_total_scale() const { return shuffle_total_scale_; }

  /// Fold the serialize+transfer share of measured exchange wall times
  /// (ExchangeTiming::wire_bytes / link_seconds, populated only when the
  /// exchange ran over a serializing transport) into the calibration's
  /// link terms: predictions use the current wire_bytes/serialize_bw +
  /// wire_bytes/link_bw + transfers*rtt model and ONLY
  /// wire_serialize_gibps / link_gibps / link_rtt_seconds are rescaled.
  /// In-process timings carry no link share and are skipped, so the link
  /// terms only ever learn from real serialized transfers.
  CalibrationReport ObserveTransport(
      const std::vector<ExchangeTiming>& timings);

  /// Cumulative movement of the link terms (ObserveTransport scales plus
  /// the uniform pipeline scales, which move them too).
  double link_total_scale() const { return link_total_scale_; }

  /// Fold measured fused-kernel timings into the calibration's fused tier:
  /// predictions use the current rows/fused_rate + batches*fused_dispatch
  /// model and only fused_filter_rows_per_sec / fused_dispatch_seconds are
  /// rescaled, so fusion pricing tracks what the fused kernels actually
  /// deliver on this hardware without disturbing the interpreted rates it
  /// is compared against.
  CalibrationReport ObserveFused(
      const std::vector<FusedObservation>& timings);

  /// Cumulative movement of the fused term (ObserveFused scales plus the
  /// uniform pipeline scales, which move it too).
  double fused_total_scale() const { return fused_total_scale_; }

  /// Fold measured cold-block read timings into the calibration's storage
  /// tier: predictions use the current bytes/storage_read_gibps +
  /// blocks*storage_get_seconds model and only those two terms are
  /// rescaled, so block-cache admission pricing and the LSM compaction
  /// trade track what cold reads actually cost on this hardware.
  CalibrationReport ObserveStorage(
      const std::vector<StorageObservation>& timings);

  /// Cumulative movement of the storage term (ObserveStorage scales plus
  /// the uniform pipeline scales, which move it too).
  double storage_total_scale() const { return storage_total_scale_; }

  /// Product of every scale applied so far (1.0 = still at the initial
  /// calibration).
  double total_scale() const { return total_scale_; }
  int rounds() const { return rounds_; }

 private:
  void ApplyScale(double scale);

  /// Shared EWMA step: the clamped geometric-mean actual/predicted scale
  /// for `pairs`, with the cumulative clamp measured against the given
  /// drift so far (read-only — callers advance their tracker themselves).
  double ScaleFor(const std::vector<CalibrationObservation>& pairs,
                  double total_scale_so_far) const;

  HardwareCalibration* hw_;
  CalibrationUpdaterOptions options_;
  double total_scale_ = 1.0;
  double shuffle_total_scale_ = 1.0;
  double link_total_scale_ = 1.0;
  double fused_total_scale_ = 1.0;
  double storage_total_scale_ = 1.0;
  int rounds_ = 0;
};

}  // namespace costdb
