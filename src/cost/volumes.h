#pragma once

#include <map>

#include "optimizer/cardinality.h"
#include "plan/physical_plan.h"

namespace costdb {

/// Data volumes flowing through one plan node.
struct NodeVolumes {
  double out_rows = 0.0;
  double out_bytes = 0.0;     // out_rows x row width
  double source_rows = 0.0;   // scans: rows fed to filters (post-pruning)
  double scanned_bytes = 0.0; // scans: bytes pulled from object storage
};

using VolumeMap = std::map<const PhysicalPlan*, NodeVolumes>;

/// Recompute the volumes of every node in a physical plan with the given
/// cardinality estimator. Two uses:
///   - estimator view: `cards` built on served (possibly error-injected)
///     statistics — what the optimizer believes;
///   - ground truth: `cards` built with use_true_stats — what the
///     execution simulator charges and times against.
/// The same derivation rules are used for both, so estimate-vs-truth gaps
/// come only from the statistics, exactly as in a real warehouse.
VolumeMap ComputeVolumes(const PhysicalPlan* root,
                         const CardinalityEstimator& cards);

}  // namespace costdb
