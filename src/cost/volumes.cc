#include "cost/volumes.h"

#include <algorithm>

namespace costdb {

namespace {

NodeVolumes Walk(const PhysicalPlan* node, const CardinalityEstimator& cards,
                 VolumeMap* out) {
  std::vector<NodeVolumes> child_volumes;
  for (const auto& c : node->children) {
    child_volumes.push_back(Walk(c.get(), cards, out));
  }
  NodeVolumes v;
  switch (node->kind) {
    case PhysicalPlan::Kind::kTableScan: {
      // Zone-map pruning is table geometry (identical for estimate and
      // truth); the base row count comes from this view's statistics.
      double base = cards.BaseRows(node->alias);
      v.source_rows = base * node->prune_keep_fraction;
      v.scanned_bytes = v.source_rows * node->est_row_bytes;
      double rows = v.source_rows;
      for (const auto& f : node->scan_filters) rows *= cards.Selectivity(f);
      v.out_rows = std::max(rows, 0.0);
      break;
    }
    case PhysicalPlan::Kind::kFilter:
      v.out_rows = child_volumes[0].out_rows * cards.Selectivity(node->predicate);
      break;
    case PhysicalPlan::Kind::kProject:
    case PhysicalPlan::Kind::kExchange:
      v.out_rows = child_volumes[0].out_rows;
      break;
    case PhysicalPlan::Kind::kLimit:
      v.out_rows = node->limit >= 0
                       ? std::min(child_volumes[0].out_rows,
                                  static_cast<double>(node->limit))
                       : child_volumes[0].out_rows;
      break;
    case PhysicalPlan::Kind::kHashJoin: {
      std::vector<std::pair<ExprPtr, ExprPtr>> keys;
      for (size_t i = 0; i < node->probe_keys.size(); ++i) {
        keys.emplace_back(node->probe_keys[i], node->build_keys[i]);
      }
      v.out_rows = cards.EstimateJoinRows(child_volumes[0].out_rows,
                                          child_volumes[1].out_rows, keys);
      break;
    }
    case PhysicalPlan::Kind::kHashAggregate: {
      v.out_rows = cards.EstimateGroupCount(child_volumes[0].out_rows,
                                            node->group_by);
      break;
    }
    case PhysicalPlan::Kind::kSort:
      v.out_rows = child_volumes[0].out_rows;
      break;
  }
  v.out_bytes = v.out_rows * node->est_row_bytes;
  (*out)[node] = v;
  return v;
}

}  // namespace

VolumeMap ComputeVolumes(const PhysicalPlan* root,
                         const CardinalityEstimator& cards) {
  VolumeMap out;
  Walk(root, cards, &out);
  return out;
}

}  // namespace costdb
