#pragma once

#include "common/units.h"

namespace costdb {

/// Exchange transport the calibration prices (cost-model twin of
/// TransportKind in net/transport.h, duplicated so src/cost never includes
/// the net layer). kInProcess pays no link terms; kSocket adds the
/// serialize + link + RTT terms below to every exchange estimate.
enum class LinkTransport {
  kInProcess = 0,
  kSocket = 1,
};

/// Hardware parameters the scalability models refer to, "calibrated before
/// the service starts" (paper Section 3.1). Rates are per node of the
/// default shape; the defaults below correspond to an 8-vCPU node and were
/// chosen so relative operator costs mirror a vectorized engine (scans are
/// storage-bound, exchanges network-bound, hash operators CPU-bound).
struct HardwareCalibration {
  // Storage / network.
  double scan_gibps_per_node = 1.0;      // object-store scan bandwidth
  double network_gibps_per_node = 1.25;  // NIC bandwidth (10 Gbps)

  // Shuffle data-movement term: every byte an exchange moves between
  // workers pays a serialize/copy cost on top of the wire model, and every
  // receiver partition pays a fixed dispatch fee (bucket setup, temp-table
  // build). These are the terms the real ShardedEngine's measured exchange
  // timings calibrate (CalibrationUpdater::ObserveShuffles) — the knob that
  // decides shuffle vs broadcast vs co-partitioned plans and how many
  // workers are worth paying for.
  double shuffle_gibps = 8.0;               // bytes/shuffle_bw copy rate
  Seconds shuffle_dispatch_seconds = 2e-4;  // per receiver partition

  // Per-transport link terms: which transport the engine's exchanges run
  // over (configuration — set by the facade, never calibrated) and what a
  // serializing transport adds on top of the copy term above. A socket
  // exchange pays wire_bytes/serialize_bw (encode+decode+checksum) plus
  // wire_bytes/link_bw (kernel copy through the socket) plus one RTT per
  // transfer. These three are what ObserveTransport recalibrates from the
  // measured serialize+transfer share of exchange wall times, and
  // ObserveShuffles subtracts that share — so the copy term and the link
  // terms each track their own reality and DOP decisions price real
  // serialization + link cost per transport.
  LinkTransport exchange_transport = LinkTransport::kInProcess;
  double wire_serialize_gibps = 4.0;  // encode+decode+verify bandwidth
  double link_gibps = 2.0;            // socket/loopback payload bandwidth
  Seconds link_rtt_seconds = 5e-5;    // fixed per-transfer latency

  // CPU rates, rows per second per node. Filter/project rates are
  // batch-at-a-time throughputs of the vectorized kernels (selection
  // vectors over flat payloads), not per-row interpreter rates — the
  // scalar reference path is roughly an order of magnitude slower (see
  // bench_e12_vectorized).
  double filter_rows_per_sec = 400e6;
  double project_rows_per_sec = 500e6;
  double hash_build_rows_per_sec = 50e6;
  double hash_probe_rows_per_sec = 80e6;
  double agg_rows_per_sec = 60e6;
  double agg_merge_groups_per_sec = 20e6;
  double sort_rows_per_sec = 15e6;       // per comparison-merge unit
  double exchange_rows_per_sec = 100e6;  // partitioning CPU cost

  // Vectorized execution: rows per DataChunk batch and the fixed dispatch
  // cost each batch pays (operator switch, selection-vector setup, kernel
  // entry). Batched operators cost rows/rate + ceil(rows/batch)*dispatch,
  // which is why tiny inputs don't get free and why the morsel size is a
  // real knob. Seeded here, tightened by the same uniform feedback
  // scaling as every other time term.
  // 4096 matches the engine's materialized-input morsel slices; scan
  // morsels are whole row groups whose size is per-table, so this is a
  // seed, not an exact chunk count.
  double vector_batch_rows = 4096;
  Seconds batch_dispatch_seconds = 5e-7;

  // Fused-kernel tier: a compiled conjunction (and the probe/aggregate
  // fused onto it) runs as ONE single-pass kernel per morsel instead of
  // one vectorized kernel invocation per conjunct. The single pass
  // evaluates every surviving conjunct per row with short-circuit, so its
  // row rate is *below* one simple vectorized pass — fusion wins by
  // eliminating the per-conjunct passes and per-kernel dispatch, not by
  // being a faster loop. That makes fusion a genuine costed trade the
  // fuse_kernels pass prices per scan (it loses on single cheap
  // conjuncts), and these two terms are what measured fused-pipeline
  // timings recalibrate (CalibrationUpdater::ObserveFused).
  double fused_filter_rows_per_sec = 300e6;  // whole conjunction, one pass
  Seconds fused_dispatch_seconds = 8e-7;     // per morsel, whole fused chain

  // Persistent block storage (docs/STORAGE.md): a cold block read costs
  // bytes / (storage_read_gibps * GiB) + storage_get_seconds of node time
  // on top of the object-store GET fee. These price the block cache's
  // admission benefit and the LSM compaction trade, and measured cold
  // reads recalibrate them (CalibrationUpdater::ObserveStorage) — the
  // same two-term rate+fixed split as the shuffle and fused tiers. The
  // seed bandwidth is deliberately below scan_gibps_per_node: cold reads
  // pay decode + checksum verification on top of raw I/O.
  double storage_read_gibps = 0.5;     // cold-block fetch+decode bandwidth
  Seconds storage_get_seconds = 2e-3;  // fixed per-GET latency

  // Parallel-efficiency decay: effective speedup of a data-exchange-heavy
  // operator at dop d is d / (1 + alpha * log2(d)).
  double parallel_alpha = 0.12;

  // Fixed coordination cost per node involved in a shuffle (barrier /
  // connection setup); this is what eventually makes *latency* rise when a
  // pipeline is over-scaled, the paper's over-provisioning hazard.
  Seconds shuffle_sync_per_node = 0.01;

  // Fixed pipeline startup: scheduling, code distribution, and the warm-
  // pool acquire latency the elastic compute layer charges per pipeline.
  Seconds pipeline_startup = 0.55;

  // Per-worker spin-up fee of a mid-query grow (warm-pool acquire, engine
  // construction, scheduler registration). Together with the calibrated
  // shuffle term this prices a candidate resize at a fragment boundary:
  // the exchange rebuckets by hash % width anyway, so growing from c to t
  // workers costs (t - c) * spin-up + (t - c) * shuffle_dispatch extra
  // receiver partitions — what the ElasticController weighs against the
  // predicted latency saving before accepting a ResizePolicy's proposal.
  Seconds worker_spinup_seconds = 0.08;
};

}  // namespace costdb
