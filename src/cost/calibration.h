#pragma once

#include "common/units.h"

namespace costdb {

/// Hardware parameters the scalability models refer to, "calibrated before
/// the service starts" (paper Section 3.1). Rates are per node of the
/// default shape; the defaults below correspond to an 8-vCPU node and were
/// chosen so relative operator costs mirror a vectorized engine (scans are
/// storage-bound, exchanges network-bound, hash operators CPU-bound).
struct HardwareCalibration {
  // Storage / network.
  double scan_gibps_per_node = 1.0;      // object-store scan bandwidth
  double network_gibps_per_node = 1.25;  // NIC bandwidth (10 Gbps)

  // CPU rates, rows per second per node.
  double filter_rows_per_sec = 400e6;
  double project_rows_per_sec = 500e6;
  double hash_build_rows_per_sec = 50e6;
  double hash_probe_rows_per_sec = 80e6;
  double agg_rows_per_sec = 60e6;
  double agg_merge_groups_per_sec = 20e6;
  double sort_rows_per_sec = 15e6;       // per comparison-merge unit
  double exchange_rows_per_sec = 100e6;  // partitioning CPU cost

  // Parallel-efficiency decay: effective speedup of a data-exchange-heavy
  // operator at dop d is d / (1 + alpha * log2(d)).
  double parallel_alpha = 0.12;

  // Fixed coordination cost per node involved in a shuffle (barrier /
  // connection setup); this is what eventually makes *latency* rise when a
  // pipeline is over-scaled, the paper's over-provisioning hazard.
  Seconds shuffle_sync_per_node = 0.01;

  // Fixed pipeline startup: scheduling, code distribution, and the warm-
  // pool acquire latency the elastic compute layer charges per pipeline.
  Seconds pipeline_startup = 0.55;
};

}  // namespace costdb
