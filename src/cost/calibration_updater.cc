#include "cost/calibration_updater.h"

#include <algorithm>
#include <cmath>

#include "exec/engine.h"
#include "exec/sharded_engine.h"

namespace costdb {

namespace {

double QError(double predicted, double actual) {
  if (predicted <= 0.0 || actual <= 0.0) return 1.0;
  return std::max(predicted / actual, actual / predicted);
}

double GeoMeanQError(const std::vector<CalibrationObservation>& pairs) {
  if (pairs.empty()) return 1.0;
  double log_sum = 0.0;
  for (const auto& p : pairs) log_sum += std::log(QError(p.predicted, p.actual));
  return std::exp(log_sum / static_cast<double>(pairs.size()));
}

}  // namespace

CalibrationUpdater::CalibrationUpdater(HardwareCalibration* hw,
                                       CalibrationUpdaterOptions options)
    : hw_(hw), options_(options) {}

CalibrationReport CalibrationUpdater::Observe(
    const PipelineGraph& graph, const VolumeMap& volumes,
    const std::vector<PipelineTiming>& timings,
    const CostEstimator& estimator, int dop) {
  std::vector<CalibrationObservation> pairs;
  for (const auto& timing : timings) {
    if (timing.seconds <= 0.0) continue;
    for (const auto& pipeline : graph.pipelines) {
      if (pipeline.id != timing.pipeline_id) continue;
      CalibrationObservation obs;
      obs.pipeline_id = pipeline.id;
      obs.actual = timing.seconds;
      obs.predicted = estimator.PipelineDuration(pipeline, dop, volumes);
      if (obs.predicted > 0.0) pairs.push_back(obs);
      break;
    }
  }
  return ObservePairs(pairs);
}

double CalibrationUpdater::ScaleFor(
    const std::vector<CalibrationObservation>& pairs,
    double total_scale_so_far) const {
  // Geometric mean of actual/predicted: the single multiplier that, applied
  // to every predicted duration, minimizes the aggregate log error.
  double log_ratio = 0.0;
  for (const auto& p : pairs) log_ratio += std::log(p.actual / p.predicted);
  log_ratio /= static_cast<double>(pairs.size());

  double scale = std::exp(log_ratio * options_.learning_rate);
  scale = std::clamp(scale, 1.0 / options_.max_step, options_.max_step);
  // Keep the cumulative drift bounded relative to the initial calibration.
  double proposed_total = total_scale_so_far * scale;
  proposed_total = std::clamp(proposed_total, 1.0 / options_.max_total_drift,
                              options_.max_total_drift);
  return proposed_total / total_scale_so_far;
}

CalibrationReport CalibrationUpdater::ObservePairs(
    const std::vector<CalibrationObservation>& pairs) {
  CalibrationReport report;
  report.pipelines_observed = static_cast<int>(pairs.size());
  if (pairs.empty()) return report;
  report.q_error_before = GeoMeanQError(pairs);

  double scale = ScaleFor(pairs, total_scale_);
  ApplyScale(scale);
  total_scale_ *= scale;
  ++rounds_;
  report.applied_scale = scale;

  // Every time term scales linearly in `scale`, so the post-update q-error
  // is exact without re-invoking the estimator.
  std::vector<CalibrationObservation> after = pairs;
  for (auto& p : after) p.predicted *= scale;
  report.q_error_after = GeoMeanQError(after);
  return report;
}

CalibrationReport CalibrationUpdater::ObserveShuffles(
    const std::vector<ExchangeTiming>& timings) {
  std::vector<CalibrationObservation> pairs;
  for (const auto& t : timings) {
    // The copy term must never chase link time: a serializing transport's
    // serialize+transfer share is priced (and calibrated) separately by
    // ObserveTransport, so subtract it from the measured wall time. A
    // no-op for in-process exchanges, whose link_seconds is 0.
    const double actual = t.seconds - t.link_seconds;
    if (actual <= 0.0) continue;
    CalibrationObservation obs;
    obs.actual = actual;
    obs.predicted = t.bytes / (hw_->shuffle_gibps * kGiB) +
                    static_cast<double>(t.partitions) *
                        hw_->shuffle_dispatch_seconds;
    if (obs.predicted > 0.0) pairs.push_back(obs);
  }
  CalibrationReport report;
  report.pipelines_observed = static_cast<int>(pairs.size());
  if (pairs.empty()) return report;
  report.q_error_before = GeoMeanQError(pairs);

  double scale = ScaleFor(pairs, shuffle_total_scale_);
  // Scale only the shuffle term: the copy rate divides, the per-partition
  // dispatch multiplies, so every predicted exchange duration scales by
  // exactly `scale` while the rest of the calibration stays put.
  hw_->shuffle_gibps /= scale;
  hw_->shuffle_dispatch_seconds *= scale;
  shuffle_total_scale_ *= scale;
  ++rounds_;
  report.applied_scale = scale;

  std::vector<CalibrationObservation> after = pairs;
  for (auto& p : after) p.predicted *= scale;
  report.q_error_after = GeoMeanQError(after);
  return report;
}

CalibrationReport CalibrationUpdater::ObserveTransport(
    const std::vector<ExchangeTiming>& timings) {
  std::vector<CalibrationObservation> pairs;
  for (const auto& t : timings) {
    // Only exchanges that actually serialized bytes over a link carry a
    // signal for the link terms; in-process exchanges have neither.
    if (t.wire_bytes <= 0.0 || t.link_seconds <= 0.0) continue;
    CalibrationObservation obs;
    obs.actual = t.link_seconds;
    obs.predicted = t.wire_bytes / (hw_->wire_serialize_gibps * kGiB) +
                    t.wire_bytes / (hw_->link_gibps * kGiB) +
                    static_cast<double>(t.transfers) * hw_->link_rtt_seconds;
    if (obs.predicted > 0.0) pairs.push_back(obs);
  }
  CalibrationReport report;
  report.pipelines_observed = static_cast<int>(pairs.size());
  if (pairs.empty()) return report;
  report.q_error_before = GeoMeanQError(pairs);

  double scale = ScaleFor(pairs, link_total_scale_);
  // Scale only the link terms: both bandwidths divide and the fixed RTT
  // multiplies, so every predicted serialize+transfer duration scales by
  // exactly `scale` while the copy term (ObserveShuffles' territory) and
  // the rest of the calibration stay put.
  hw_->wire_serialize_gibps /= scale;
  hw_->link_gibps /= scale;
  hw_->link_rtt_seconds *= scale;
  link_total_scale_ *= scale;
  ++rounds_;
  report.applied_scale = scale;

  std::vector<CalibrationObservation> after = pairs;
  for (auto& p : after) p.predicted *= scale;
  report.q_error_after = GeoMeanQError(after);
  return report;
}

CalibrationReport CalibrationUpdater::ObserveFused(
    const std::vector<FusedObservation>& timings) {
  std::vector<CalibrationObservation> pairs;
  for (const auto& t : timings) {
    if (t.seconds <= 0.0) continue;
    CalibrationObservation obs;
    obs.actual = t.seconds;
    obs.predicted = t.rows / hw_->fused_filter_rows_per_sec +
                    t.batches * hw_->fused_dispatch_seconds;
    if (obs.predicted > 0.0) pairs.push_back(obs);
  }
  CalibrationReport report;
  report.pipelines_observed = static_cast<int>(pairs.size());
  if (pairs.empty()) return report;
  report.q_error_before = GeoMeanQError(pairs);

  double scale = ScaleFor(pairs, fused_total_scale_);
  // Scale only the fused tier: rate divides, per-morsel dispatch
  // multiplies, so every predicted fused-chain duration scales by exactly
  // `scale` while the interpreted rates it competes with stay put.
  hw_->fused_filter_rows_per_sec /= scale;
  hw_->fused_dispatch_seconds *= scale;
  fused_total_scale_ *= scale;
  ++rounds_;
  report.applied_scale = scale;

  std::vector<CalibrationObservation> after = pairs;
  for (auto& p : after) p.predicted *= scale;
  report.q_error_after = GeoMeanQError(after);
  return report;
}

CalibrationReport CalibrationUpdater::ObserveStorage(
    const std::vector<StorageObservation>& timings) {
  std::vector<CalibrationObservation> pairs;
  for (const auto& t : timings) {
    if (t.seconds <= 0.0) continue;
    CalibrationObservation obs;
    obs.actual = t.seconds;
    obs.predicted = t.bytes / (hw_->storage_read_gibps * kGiB) +
                    t.blocks * hw_->storage_get_seconds;
    if (obs.predicted > 0.0) pairs.push_back(obs);
  }
  CalibrationReport report;
  report.pipelines_observed = static_cast<int>(pairs.size());
  if (pairs.empty()) return report;
  report.q_error_before = GeoMeanQError(pairs);

  double scale = ScaleFor(pairs, storage_total_scale_);
  // Scale only the storage tier: fetch+decode bandwidth divides, the
  // per-GET fixed latency multiplies, so every predicted cold-read
  // duration scales by exactly `scale` while the rest of the calibration
  // (and the dollar side of block-cache pricing) stays put.
  hw_->storage_read_gibps /= scale;
  hw_->storage_get_seconds *= scale;
  storage_total_scale_ *= scale;
  ++rounds_;
  report.applied_scale = scale;

  std::vector<CalibrationObservation> after = pairs;
  for (auto& p : after) p.predicted *= scale;
  report.q_error_after = GeoMeanQError(after);
  return report;
}

void CalibrationUpdater::ApplyScale(double scale) {
  if (scale == 1.0) return;
  // Times are volume/rate plus fixed seconds: dividing rates and
  // multiplying fixed latencies by `scale` multiplies every predicted
  // duration by exactly `scale`.
  hw_->scan_gibps_per_node /= scale;
  hw_->network_gibps_per_node /= scale;
  hw_->filter_rows_per_sec /= scale;
  hw_->project_rows_per_sec /= scale;
  hw_->hash_build_rows_per_sec /= scale;
  hw_->hash_probe_rows_per_sec /= scale;
  hw_->agg_rows_per_sec /= scale;
  hw_->agg_merge_groups_per_sec /= scale;
  hw_->sort_rows_per_sec /= scale;
  hw_->exchange_rows_per_sec /= scale;
  hw_->shuffle_gibps /= scale;
  hw_->shuffle_dispatch_seconds *= scale;
  // The uniform pipeline scale moves the shuffle term too; record it in
  // the shuffle drift tracker so ObserveShuffles' max_total_drift clamp
  // is measured against the term's true cumulative movement.
  shuffle_total_scale_ *= scale;
  hw_->wire_serialize_gibps /= scale;
  hw_->link_gibps /= scale;
  hw_->link_rtt_seconds *= scale;
  link_total_scale_ *= scale;  // same drift bookkeeping as the shuffle term
  hw_->fused_filter_rows_per_sec /= scale;
  hw_->fused_dispatch_seconds *= scale;
  fused_total_scale_ *= scale;  // same drift bookkeeping as the shuffle term
  hw_->storage_read_gibps /= scale;
  hw_->storage_get_seconds *= scale;
  storage_total_scale_ *= scale;  // ditto for the cold-read storage tier
  hw_->shuffle_sync_per_node *= scale;
  hw_->pipeline_startup *= scale;
  hw_->worker_spinup_seconds *= scale;
  hw_->batch_dispatch_seconds *= scale;  // vector_batch_rows is a size, not a time
}

}  // namespace costdb
