#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cost/calibration.h"
#include "plan/physical_plan.h"

namespace costdb {

/// Work arriving at one operator stage of a pipeline.
struct StageWorkload {
  double rows_in = 0.0;
  double bytes_in = 0.0;
  double rows_out = 0.0;
  double groups = 1.0;  // aggregate output groups / sort runs
  /// Batches the engine will actually dispatch for this stage, when the
  /// caller knows the real batching geometry (a scan pipeline dispatches
  /// one batch per *surviving* zone-map morsel, not ceil(rows/4096)).
  /// Negative = unknown; models fall back to deriving batches from
  /// rows_in and the calibrated vector_batch_rows.
  double dispatch_batches = -1.0;
};

/// Per-operator scalability model: time for the stage to process a
/// workload at a given degree of parallelism. Simple closed-form formulas
/// per the paper ("simple mathematical formulas are good enough for most
/// physical operators"), explainable by construction.
class OperatorModel {
 public:
  virtual ~OperatorModel() = default;
  virtual Seconds StageTime(const StageWorkload& w, int dop) const = 0;
  virtual const char* name() const = 0;
};

/// d / (1 + alpha log2 d): sublinear speedup of exchange-heavy operators.
double EffectiveParallelism(int dop, double alpha);

/// Factory for the analytic model of a physical operator. `hw` must
/// outlive the returned model. Fusion annotations on the node change the
/// model: a fused probe/aggregate pays no per-batch dispatch of its own
/// (the fused chain's single dispatch covers it).
std::unique_ptr<OperatorModel> MakeAnalyticModel(
    const PhysicalPlan& op, const HardwareCalibration* hw);

/// Scan morsels that survive zone-map pruning — the batch-dispatch unit of
/// a scan pipeline. Counted from the table's actual row-group geometry in
/// the node's [scan_group_begin, scan_group_end) range scaled by the
/// planner's prune_keep_fraction (zone maps are metadata, so this is fair
/// game for the cost model). Returns -1 when the node has no table handle
/// (callers fall back to row-derived batching).
double SurvivingScanMorsels(const PhysicalPlan& scan);

/// Cost of running a k-conjunct pushed filter chain with the per-kernel
/// vectorized path: one selection-vector pass per conjunct (progressively
/// narrowed assuming equal per-conjunct selectivity s^(1/k)) plus one
/// batch dispatch per conjunct per surviving morsel. `selectivity` is the
/// overall keep fraction of the whole chain; `batches` < 0 derives from
/// rows and vector_batch_rows.
Seconds InterpretedFilterChainTime(const HardwareCalibration& hw, double rows,
                                   int conjuncts, double selectivity,
                                   double batches, int dop);

/// Cost of the same chain as one fused single-pass kernel: every row is
/// touched once (short-circuit across conjuncts) at the calibrated fused
/// row rate, and each surviving morsel pays one fused dispatch for the
/// whole chain. The fuse_kernels pass compares this against
/// InterpretedFilterChainTime to decide fusion per scan.
Seconds FusedFilterChainTime(const HardwareCalibration& hw, double rows,
                             double batches, int dop);

/// Pre-trained regression model for exchange-heavy operators (paper: "we
/// pre-train regression models for them with synthetic workloads that
/// cover the parameter space"). Log-linear in (rows, bytes, dop):
///   log t = b0 + b1 log(1+rows) + b2 log(1+bytes) + b3 log d + b4 log^2 d
class RegressionOperatorModel : public OperatorModel {
 public:
  struct Sample {
    StageWorkload workload;
    int dop = 1;
    Seconds observed_time = 0.0;
  };

  explicit RegressionOperatorModel(std::string name)
      : name_(std::move(name)) {}

  /// Least-squares fit; returns false with insufficient/degenerate data.
  bool Fit(const std::vector<Sample>& samples);

  bool fitted() const { return fitted_; }

  Seconds StageTime(const StageWorkload& w, int dop) const override;
  const char* name() const override { return name_.c_str(); }

 private:
  static std::vector<double> Features(const StageWorkload& w, int dop);

  std::string name_;
  std::vector<double> beta_;
  bool fitted_ = false;
};

}  // namespace costdb
