#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cost/calibration.h"
#include "plan/physical_plan.h"

namespace costdb {

/// Work arriving at one operator stage of a pipeline.
struct StageWorkload {
  double rows_in = 0.0;
  double bytes_in = 0.0;
  double rows_out = 0.0;
  double groups = 1.0;  // aggregate output groups / sort runs
};

/// Per-operator scalability model: time for the stage to process a
/// workload at a given degree of parallelism. Simple closed-form formulas
/// per the paper ("simple mathematical formulas are good enough for most
/// physical operators"), explainable by construction.
class OperatorModel {
 public:
  virtual ~OperatorModel() = default;
  virtual Seconds StageTime(const StageWorkload& w, int dop) const = 0;
  virtual const char* name() const = 0;
};

/// d / (1 + alpha log2 d): sublinear speedup of exchange-heavy operators.
double EffectiveParallelism(int dop, double alpha);

/// Factory for the analytic model of a physical operator. `hw` must
/// outlive the returned model.
std::unique_ptr<OperatorModel> MakeAnalyticModel(
    const PhysicalPlan& op, const HardwareCalibration* hw);

/// Pre-trained regression model for exchange-heavy operators (paper: "we
/// pre-train regression models for them with synthetic workloads that
/// cover the parameter space"). Log-linear in (rows, bytes, dop):
///   log t = b0 + b1 log(1+rows) + b2 log(1+bytes) + b3 log d + b4 log^2 d
class RegressionOperatorModel : public OperatorModel {
 public:
  struct Sample {
    StageWorkload workload;
    int dop = 1;
    Seconds observed_time = 0.0;
  };

  explicit RegressionOperatorModel(std::string name)
      : name_(std::move(name)) {}

  /// Least-squares fit; returns false with insufficient/degenerate data.
  bool Fit(const std::vector<Sample>& samples);

  bool fitted() const { return fitted_; }

  Seconds StageTime(const StageWorkload& w, int dop) const override;
  const char* name() const override { return name_.c_str(); }

 private:
  static std::vector<double> Features(const StageWorkload& w, int dop);

  std::string name_;
  std::vector<double> beta_;
  bool fitted_ = false;
};

}  // namespace costdb
