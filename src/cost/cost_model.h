#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cloud/pricing.h"
#include "cost/operator_models.h"
#include "cost/volumes.h"
#include "plan/pipeline.h"

namespace costdb {

/// DOP assignment: pipeline id -> number of nodes.
using DopMap = std::map<int, int>;

/// Estimated execution profile of one pipeline.
struct PipelineEstimate {
  int pipeline_id = 0;
  int dop = 1;
  Seconds duration = 0.0;   // processing time at this DOP
  Seconds start = 0.0;      // schedule (filled by the query simulator)
  Seconds finish = 0.0;
  Seconds release = 0.0;    // nodes held until the consumer starts
  double source_rows = 0.0;
  double output_rows = 0.0;
};

/// Whole-plan prediction: the two quantities the bi-objective optimizer
/// trades off.
struct PlanCostEstimate {
  Seconds latency = 0.0;           // makespan of the pipeline schedule
  Seconds machine_seconds = 0.0;   // billed node-time (includes blocking)
  Seconds blocked_machine_seconds = 0.0;  // waste from pipeline waiting
  Dollars cost = 0.0;
  std::vector<PipelineEstimate> pipelines;
};

/// The cost estimator of paper Section 3.1: per-operator scalability
/// models + a query-level simulator over the pipeline DAG. Given a
/// physical plan, per-node volumes (estimated or true), and a DOP
/// assignment, predicts query latency and dollar cost. Lightweight by
/// construction (closed-form models, no data access), explainable (each
/// pipeline's time decomposes into named operator stages).
class CostEstimator {
 public:
  CostEstimator(const HardwareCalibration* hw, const InstanceType* node_type)
      : hw_(hw), node_type_(node_type) {}

  /// Time for `pipeline` to run at `dop` with the given volumes.
  Seconds PipelineDuration(const Pipeline& pipeline, int dop,
                           const VolumeMap& volumes) const;

  /// Full prediction: durations per pipeline + dependency-aware schedule +
  /// machine-time billing. Missing DopMap entries default to 1.
  PlanCostEstimate EstimatePlan(const PipelineGraph& graph,
                                const DopMap& dops,
                                const VolumeMap& volumes) const;

  /// Per-operator stage workload of a pipeline (exposed for the DOP
  /// planner's throughput queries and for explainability output).
  StageWorkload SinkWorkload(const Pipeline& pipeline,
                             const VolumeMap& volumes) const;

  const HardwareCalibration& hardware() const { return *hw_; }
  const InstanceType& node_type() const { return *node_type_; }

  /// Install a pre-trained regression model for an exchange kind; used by
  /// the model-ablation experiment (E11). Analytic formulas remain the
  /// default.
  void SetShuffleRegression(std::shared_ptr<RegressionOperatorModel> model) {
    shuffle_regression_ = std::move(model);
  }

 private:
  Seconds StageTimeFor(const PhysicalPlan& op, const StageWorkload& w,
                       int dop) const;

  const HardwareCalibration* hw_;
  const InstanceType* node_type_;
  std::shared_ptr<RegressionOperatorModel> shuffle_regression_;
};

/// Dependency-aware ASAP schedule of pipeline durations. Nodes of a
/// pipeline are held from its start until its consumer starts (concurrent
/// sibling pipelines that finish early keep paying — the waste the paper's
/// co-termination heuristic minimizes).
void SchedulePipelines(const PipelineGraph& graph,
                       const std::map<int, Seconds>& durations,
                       const DopMap& dops, PlanCostEstimate* out);

}  // namespace costdb
