#include "cost/operator_models.h"

#include <algorithm>
#include <cmath>

#include "common/stats_math.h"

namespace costdb {

double EffectiveParallelism(int dop, double alpha) {
  if (dop <= 1) return 1.0;
  return static_cast<double>(dop) /
         (1.0 + alpha * std::log2(static_cast<double>(dop)));
}

namespace {

class ScanModel : public OperatorModel {
 public:
  explicit ScanModel(const HardwareCalibration* hw) : hw_(hw) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    // Object-store scans are embarrassingly parallel: bandwidth scales
    // linearly with nodes (the paper's canonical elastic operator).
    return w.bytes_in / (hw_->scan_gibps_per_node * kGiB * dop);
  }
  const char* name() const override { return "scan"; }

 private:
  const HardwareCalibration* hw_;
};

/// Per-batch dispatch cost of a vectorized operator: every DataChunk pays
/// a fixed kernel-entry fee on top of its per-row throughput. The ceil
/// keeps a one-row input from costing zero batches. `known_batches` >= 0
/// overrides the row-derived count — scan pipelines dispatch one batch
/// per zone-map-*surviving* morsel, so fully pruned morsels are never
/// charged.
Seconds BatchDispatch(const HardwareCalibration* hw, double rows, int dop,
                      double known_batches = -1.0) {
  if (rows <= 0.0) return 0.0;
  double batches = known_batches >= 0.0
                       ? known_batches
                       : std::ceil(rows / hw->vector_batch_rows);
  return batches * hw->batch_dispatch_seconds / dop;
}

class FilterModel : public OperatorModel {
 public:
  FilterModel(const HardwareCalibration* hw, double rate)
      : hw_(hw), rate_(rate) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    // Batch-at-a-time: selection-vector kernels stream rows at `rate_`,
    // plus a fixed dispatch per chunk.
    return w.rows_in / (rate_ * dop) +
           BatchDispatch(hw_, w.rows_in, dop, w.dispatch_batches);
  }
  const char* name() const override { return "filter"; }

 private:
  const HardwareCalibration* hw_;
  double rate_;
};

class HashBuildModel : public OperatorModel {
 public:
  explicit HashBuildModel(const HardwareCalibration* hw) : hw_(hw) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    double eff = EffectiveParallelism(dop, hw_->parallel_alpha);
    return w.rows_in / (hw_->hash_build_rows_per_sec * eff);
  }
  const char* name() const override { return "hash_build"; }

 private:
  const HardwareCalibration* hw_;
};

class HashProbeModel : public OperatorModel {
 public:
  HashProbeModel(const HardwareCalibration* hw, bool fused)
      : hw_(hw), fused_(fused) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    double eff = EffectiveParallelism(dop, hw_->parallel_alpha);
    double work = w.rows_in + 0.5 * w.rows_out;  // matches cost extra emits
    // Probe hashes column-at-a-time and gathers matches in bulk, so it
    // pays the same per-chunk dispatch fee as the other batch operators —
    // unless it is fused onto the scan's filter chain, whose single fused
    // dispatch already covers it.
    Seconds dispatch =
        fused_ ? 0.0 : BatchDispatch(hw_, w.rows_in, dop, w.dispatch_batches);
    return work / (hw_->hash_probe_rows_per_sec * eff) + dispatch;
  }
  const char* name() const override { return "hash_probe"; }

 private:
  const HardwareCalibration* hw_;
  bool fused_;
};

class AggregateModel : public OperatorModel {
 public:
  AggregateModel(const HardwareCalibration* hw, bool fused)
      : hw_(hw), fused_(fused) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    // Local aggregation parallelizes (morsel partials fold batch-at-a-
    // time, so the per-chunk dispatch fee applies — waived when the fold
    // is fused onto the scan's filter chain); merging per-node partial
    // tables does not — each extra node adds another partial of `groups`
    // entries. This term is why aggregation has a finite cost-optimal DOP.
    Seconds dispatch =
        fused_ ? 0.0 : BatchDispatch(hw_, w.rows_in, dop, w.dispatch_batches);
    Seconds local = w.rows_in / (hw_->agg_rows_per_sec * dop) + dispatch;
    Seconds merge =
        w.groups * std::max(0, dop - 1) / hw_->agg_merge_groups_per_sec;
    return local + merge;
  }
  const char* name() const override { return "aggregate"; }

 private:
  const HardwareCalibration* hw_;
  bool fused_;
};

class SortModel : public OperatorModel {
 public:
  explicit SortModel(const HardwareCalibration* hw) : hw_(hw) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    double n = std::max(w.rows_in, 2.0);
    double log_n = std::log2(n);
    Seconds local = n * log_n / (hw_->sort_rows_per_sec * dop);
    // Final merge of dop sorted runs happens on one node.
    Seconds merge = dop > 1 ? n * std::log2(static_cast<double>(dop)) /
                                  hw_->sort_rows_per_sec
                            : 0.0;
    return local + merge;
  }
  const char* name() const override { return "sort"; }

 private:
  const HardwareCalibration* hw_;
};

/// Calibrated serialize/copy side of the data-movement term: the byte
/// half of `bytes/shuffle_bw + partitions*dispatch`. It overlaps the wire
/// in the exchange models (both sit under a max), so the cloud-shaped NIC
/// model keeps its scaling behavior while the in-process sharded engine —
/// whose "wire" IS this copy — calibrates it from measured exchange times
/// (CalibrationUpdater::ObserveShuffles).
Seconds ShuffleCopyTime(const HardwareCalibration* hw, double moved_bytes) {
  return moved_bytes / (hw->shuffle_gibps * kGiB);
}

/// Per-receiver-partition dispatch fee (bucket setup, temp-table build) —
/// the partition half of the calibrated shuffle term.
Seconds ShuffleDispatch(const HardwareCalibration* hw, int partitions) {
  return static_cast<double>(partitions) * hw->shuffle_dispatch_seconds;
}

/// Per-transport link surcharge of the bytes an exchange moves: zero on
/// the in-process transport (no serialization exists), and the calibrated
/// serialize + link + RTT terms on a serializing transport. Additive on
/// top of the copy/NIC max — serialization and the kernel copy genuinely
/// happen in sequence with the repartition, they don't overlap it
/// (measured as ExchangeTiming::link_seconds; calibrated by
/// CalibrationUpdater::ObserveTransport).
Seconds LinkTime(const HardwareCalibration* hw, double moved_bytes,
                 int transfers) {
  if (hw->exchange_transport != LinkTransport::kSocket) return 0.0;
  if (moved_bytes <= 0.0 && transfers <= 0) return 0.0;
  return moved_bytes / (hw->wire_serialize_gibps * kGiB) +
         moved_bytes / (hw->link_gibps * kGiB) +
         static_cast<double>(transfers) * hw->link_rtt_seconds;
}

class ShuffleModel : public OperatorModel {
 public:
  explicit ShuffleModel(const HardwareCalibration* hw) : hw_(hw) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    // Hash partitioning: every row is hashed (CPU), and (dop-1)/dop of the
    // bytes cross the network whose aggregate bandwidth scales sublinearly.
    // The per-node sync term makes latency *rise* again at large DOP —
    // over-scaling a distributed exchange hurts both cost and latency.
    double cpu = w.rows_in / (hw_->exchange_rows_per_sec * dop);
    double frac_remote =
        dop <= 1 ? 0.0 : static_cast<double>(dop - 1) / dop;
    double eff = EffectiveParallelism(dop, hw_->parallel_alpha);
    double moved = w.bytes_in * frac_remote;
    double net = moved / (hw_->network_gibps_per_node * kGiB * eff);
    return std::max({cpu, net, ShuffleCopyTime(hw_, moved)}) +
           LinkTime(hw_, moved, dop) + ShuffleDispatch(hw_, dop) +
           hw_->shuffle_sync_per_node * dop;
  }
  const char* name() const override { return "shuffle"; }

 private:
  const HardwareCalibration* hw_;
};

/// Co-partitioned pass-through: both sides already live on the right
/// worker, so nothing moves and nothing is dispatched.
class LocalExchangeModel : public OperatorModel {
 public:
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    (void)w;
    (void)dop;
    return 0.0;
  }
  const char* name() const override { return "local"; }
};

class BroadcastModel : public OperatorModel {
 public:
  explicit BroadcastModel(const HardwareCalibration* hw) : hw_(hw) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    // Each consumer must receive the whole input: total bytes on the wire
    // grow linearly with dop, so broadcast *time* is constant-to-rising in
    // dop (tree distribution amortizes some of it).
    double per_node = w.bytes_in / (hw_->network_gibps_per_node * kGiB);
    double fanout_penalty =
        1.0 + 0.1 * std::log2(std::max(1.0, static_cast<double>(dop)));
    double moved = w.bytes_in * static_cast<double>(dop > 1 ? dop - 1 : 0);
    // The transport serializes the broadcast payload once (consumers share
    // the decoded copy), so the link surcharge is per-payload, not per
    // consumer.
    return std::max(per_node * fanout_penalty, ShuffleCopyTime(hw_, moved)) +
           LinkTime(hw_, dop > 1 ? w.bytes_in : 0.0, dop > 1 ? 1 : 0) +
           ShuffleDispatch(hw_, dop) + hw_->shuffle_sync_per_node * dop;
  }
  const char* name() const override { return "broadcast"; }

 private:
  const HardwareCalibration* hw_;
};

class GatherModel : public OperatorModel {
 public:
  explicit GatherModel(const HardwareCalibration* hw) : hw_(hw) {}
  Seconds StageTime(const StageWorkload& w, int dop) const override {
    // Single receiver NIC is the bottleneck regardless of producer count,
    // and the receiver copies the full payload into its buffers either
    // way — gather neither speeds up nor slows down with DOP. Over a
    // serializing transport, the (dop-1)/dop share that leaves its
    // producer pays the link terms, one transfer per remote producer.
    const double frac_remote =
        dop <= 1 ? 0.0 : static_cast<double>(dop - 1) / dop;
    return std::max(w.bytes_in / (hw_->network_gibps_per_node * kGiB),
                    ShuffleCopyTime(hw_, w.bytes_in)) +
           LinkTime(hw_, w.bytes_in * frac_remote, dop > 1 ? dop - 1 : 0) +
           ShuffleDispatch(hw_, 1);
  }
  const char* name() const override { return "gather"; }

 private:
  const HardwareCalibration* hw_;
};

}  // namespace

std::unique_ptr<OperatorModel> MakeAnalyticModel(
    const PhysicalPlan& op, const HardwareCalibration* hw) {
  switch (op.kind) {
    case PhysicalPlan::Kind::kTableScan:
      return std::make_unique<ScanModel>(hw);
    case PhysicalPlan::Kind::kFilter:
      return std::make_unique<FilterModel>(hw, hw->filter_rows_per_sec);
    case PhysicalPlan::Kind::kProject:
    case PhysicalPlan::Kind::kLimit:
      return std::make_unique<FilterModel>(hw, hw->project_rows_per_sec);
    case PhysicalPlan::Kind::kHashJoin:
      return std::make_unique<HashProbeModel>(hw, op.fuse_probe);
    case PhysicalPlan::Kind::kHashAggregate:
      return std::make_unique<AggregateModel>(hw, op.fuse_aggregate);
    case PhysicalPlan::Kind::kSort:
      return std::make_unique<SortModel>(hw);
    case PhysicalPlan::Kind::kExchange:
      switch (op.exchange_kind) {
        case ExchangeKind::kShuffle:
          return std::make_unique<ShuffleModel>(hw);
        case ExchangeKind::kBroadcast:
          return std::make_unique<BroadcastModel>(hw);
        case ExchangeKind::kGather:
          return std::make_unique<GatherModel>(hw);
        case ExchangeKind::kLocal:
          return std::make_unique<LocalExchangeModel>();
      }
  }
  return std::make_unique<FilterModel>(hw, hw->project_rows_per_sec);
}

double SurvivingScanMorsels(const PhysicalPlan& scan) {
  if (scan.kind != PhysicalPlan::Kind::kTableScan || scan.table == nullptr) {
    return -1.0;
  }
  const size_t total_groups = scan.table->row_groups().size();
  const size_t g_end = std::min(total_groups, scan.scan_group_end);
  const size_t g_begin = std::min(scan.scan_group_begin, g_end);
  const double groups = static_cast<double>(g_end - g_begin);
  if (groups <= 0.0) return 0.0;
  const double keep =
      std::min(1.0, std::max(0.0, scan.prune_keep_fraction));
  return std::ceil(groups * keep);
}

Seconds InterpretedFilterChainTime(const HardwareCalibration& hw, double rows,
                                   int conjuncts, double selectivity,
                                   double batches, int dop) {
  if (rows <= 0.0 || conjuncts <= 0) return 0.0;
  if (batches < 0.0) batches = std::ceil(rows / hw.vector_batch_rows);
  const double d = std::max(1, dop);
  const double s = std::min(1.0, std::max(1e-9, selectivity));
  // Progressive narrowing: conjunct c only inspects rows that survived the
  // first c-1 conjuncts; with per-conjunct selectivity s^(1/k) the total
  // rows touched are rows * (1 + s^(1/k) + s^(2/k) + ...).
  const double per = std::pow(s, 1.0 / conjuncts);
  double touched = 0.0;
  double surviving = 1.0;
  for (int c = 0; c < conjuncts; ++c) {
    touched += surviving;
    surviving *= per;
  }
  return rows * touched / (hw.filter_rows_per_sec * d) +
         static_cast<double>(conjuncts) * batches *
             hw.batch_dispatch_seconds / d;
}

Seconds FusedFilterChainTime(const HardwareCalibration& hw, double rows,
                             double batches, int dop) {
  if (rows <= 0.0) return 0.0;
  if (batches < 0.0) batches = std::ceil(rows / hw.vector_batch_rows);
  const double d = std::max(1, dop);
  return rows / (hw.fused_filter_rows_per_sec * d) +
         batches * hw.fused_dispatch_seconds / d;
}

std::vector<double> RegressionOperatorModel::Features(const StageWorkload& w,
                                                      int dop) {
  double ld = std::log(static_cast<double>(std::max(dop, 1)));
  return {1.0, std::log1p(w.rows_in), std::log1p(w.bytes_in), ld, ld * ld};
}

bool RegressionOperatorModel::Fit(const std::vector<Sample>& samples) {
  if (samples.size() < 8) return false;
  std::vector<double> x;
  std::vector<double> y;
  for (const auto& s : samples) {
    if (s.observed_time <= 0.0) continue;
    auto f = Features(s.workload, s.dop);
    x.insert(x.end(), f.begin(), f.end());
    y.push_back(std::log(s.observed_time));
  }
  if (y.size() < 6) return false;
  fitted_ = LeastSquares(x, 5, y, &beta_);
  return fitted_;
}

Seconds RegressionOperatorModel::StageTime(const StageWorkload& w,
                                           int dop) const {
  if (!fitted_) return 0.0;
  auto f = Features(w, dop);
  double log_t = 0.0;
  for (size_t i = 0; i < f.size(); ++i) log_t += beta_[i] * f[i];
  return std::exp(log_t);
}

}  // namespace costdb
