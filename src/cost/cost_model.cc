#include "cost/cost_model.h"

#include <algorithm>

namespace costdb {

namespace {

NodeVolumes VolumeOf(const VolumeMap& volumes, const PhysicalPlan* node) {
  auto it = volumes.find(node);
  return it == volumes.end() ? NodeVolumes{} : it->second;
}

StageWorkload SourceWorkload(const Pipeline& pipeline,
                             const VolumeMap& volumes) {
  StageWorkload w;
  NodeVolumes v = VolumeOf(volumes, pipeline.source);
  if (!pipeline.source_is_breaker) {
    w.rows_in = v.source_rows;
    w.bytes_in = v.scanned_bytes;
    w.rows_out = v.out_rows;
  } else {
    w.rows_in = v.out_rows;
    w.bytes_in = v.out_bytes;
    w.rows_out = v.out_rows;
  }
  return w;
}

}  // namespace

Seconds CostEstimator::StageTimeFor(const PhysicalPlan& op,
                                    const StageWorkload& w, int dop) const {
  if (shuffle_regression_ != nullptr &&
      op.kind == PhysicalPlan::Kind::kExchange &&
      op.exchange_kind == ExchangeKind::kShuffle &&
      shuffle_regression_->fitted()) {
    return shuffle_regression_->StageTime(w, dop);
  }
  auto model = MakeAnalyticModel(op, hw_);
  return model->StageTime(w, dop);
}

StageWorkload CostEstimator::SinkWorkload(const Pipeline& pipeline,
                                          const VolumeMap& volumes) const {
  StageWorkload w;
  if (pipeline.sink == nullptr) return w;
  // Rows flowing into the sink = output of the last streaming operator (or
  // of the source when the pipeline has no operators).
  const PhysicalPlan* last =
      pipeline.operators.empty() ? pipeline.source : pipeline.operators.back();
  NodeVolumes in = VolumeOf(volumes, last);
  // For a build-side pipeline, `last` is the build child subtree root.
  w.rows_in = in.out_rows;
  w.bytes_in = in.out_bytes;
  NodeVolumes sink_out = VolumeOf(volumes, pipeline.sink);
  w.rows_out = sink_out.out_rows;
  w.groups = std::max(1.0, sink_out.out_rows);
  return w;
}

Seconds CostEstimator::PipelineDuration(const Pipeline& pipeline, int dop,
                                        const VolumeMap& volumes) const {
  dop = std::max(1, dop);
  // Resource-aware streaming model: CPU stages share the pipeline's cores,
  // so their times *add up*; storage and network stages overlap with CPU
  // and with each other, so the pipeline is bounded by
  //   max(sum of CPU stages, slowest storage stage, slowest network stage).
  // This is what makes a long left-deep probe chain slower than two
  // concurrent bushy halves (E4).
  Seconds cpu_total = 0.0;
  Seconds io_max = 0.0;
  Seconds net_max = 0.0;
  auto account = [&](const PhysicalPlan& op, const StageWorkload& w) {
    Seconds t = StageTimeFor(op, w, dop);
    switch (op.kind) {
      case PhysicalPlan::Kind::kTableScan:
        io_max = std::max(io_max, t);
        break;
      case PhysicalPlan::Kind::kExchange:
        net_max = std::max(net_max, t);
        break;
      default:
        cpu_total += t;
    }
  };

  // Source stage. A scan source also charges the CPU of its pushed filter
  // chain (the IO model is bytes-only): interpreted per-conjunct kernels
  // or — when the fuse_kernels pass annotated the scan — the fused
  // single-pass kernel. Dispatch is charged per *surviving* morsel: the
  // engine never touches a zone-map-pruned row group, so pruned morsels
  // cost no batch dispatch (SurvivingScanMorsels uses the real row-group
  // geometry; src_w.rows_in is already post-pruning).
  StageWorkload src_w = SourceWorkload(pipeline, volumes);
  double scan_batches = -1.0;
  if (!pipeline.source_is_breaker) {
    account(*pipeline.source, src_w);
    scan_batches = SurvivingScanMorsels(*pipeline.source);
    if (!pipeline.source->scan_filters.empty() && src_w.rows_in > 0.0) {
      const int conjuncts =
          static_cast<int>(pipeline.source->scan_filters.size());
      const double selectivity =
          src_w.rows_in > 0.0
              ? std::min(1.0, src_w.rows_out / src_w.rows_in)
              : 1.0;
      cpu_total +=
          pipeline.source->fuse_scan_filter
              ? FusedFilterChainTime(*hw_, src_w.rows_in, scan_batches, dop)
              : InterpretedFilterChainTime(*hw_, src_w.rows_in, conjuncts,
                                           selectivity, scan_batches, dop);
    }
  } else {
    // Reading a materialized intermediate: memory-speed pass.
    PhysicalPlan pseudo;
    pseudo.kind = PhysicalPlan::Kind::kProject;
    account(pseudo, src_w);
  }

  // Streaming operator stages.
  const PhysicalPlan* prev = pipeline.source;
  for (const PhysicalPlan* op : pipeline.operators) {
    StageWorkload w;
    NodeVolumes in = VolumeOf(volumes, prev);
    NodeVolumes out = VolumeOf(volumes, op);
    // The input to a streaming op inside the pipeline is the previous
    // stage's output; scans feed their filtered output.
    w.rows_in = in.out_rows;
    w.bytes_in = in.out_bytes;
    w.rows_out = out.out_rows;
    // An operator fed directly by the scan is dispatched once per
    // surviving morsel, not once per ceil(rows/4096).
    if (prev == pipeline.source && scan_batches >= 0.0) {
      w.dispatch_batches = scan_batches;
    }
    account(*op, w);
    prev = op;
  }

  // Sink stage (hash build / aggregate / sort).
  if (pipeline.sink != nullptr) {
    StageWorkload w = SinkWorkload(pipeline, volumes);
    if (pipeline.operators.empty() && scan_batches >= 0.0) {
      w.dispatch_batches = scan_batches;
    }
    if (pipeline.sink_is_build_side) {
      double eff = EffectiveParallelism(dop, hw_->parallel_alpha);
      cpu_total += w.rows_in / (hw_->hash_build_rows_per_sec * eff);
    } else {
      PhysicalPlan pseudo;
      pseudo.kind = pipeline.sink->kind;
      StageWorkload sink_w = w;
      Seconds t = StageTimeFor(*pipeline.sink, sink_w, dop);
      (void)pseudo;
      cpu_total += t;
    }
  }

  return hw_->pipeline_startup +
         std::max({cpu_total, io_max, net_max});
}

void SchedulePipelines(const PipelineGraph& graph,
                       const std::map<int, Seconds>& durations,
                       const DopMap& dops, PlanCostEstimate* out) {
  std::map<int, PipelineEstimate*> by_id;
  out->pipelines.clear();
  out->pipelines.reserve(graph.pipelines.size());
  for (const auto& p : graph.pipelines) {
    PipelineEstimate est;
    est.pipeline_id = p.id;
    auto d = dops.find(p.id);
    est.dop = d == dops.end() ? 1 : std::max(1, d->second);
    auto t = durations.find(p.id);
    est.duration = t == durations.end() ? 0.0 : t->second;
    out->pipelines.push_back(est);
  }
  for (auto& est : out->pipelines) by_id[est.pipeline_id] = &est;

  // ASAP schedule (graph is topologically ordered).
  std::map<int, const Pipeline*> pipe_by_id;
  for (const auto& p : graph.pipelines) pipe_by_id[p.id] = &p;
  for (const auto& p : graph.pipelines) {
    Seconds start = 0.0;
    for (int dep : p.dependencies) {
      start = std::max(start, by_id[dep]->finish);
    }
    by_id[p.id]->start = start;
    by_id[p.id]->finish = start + by_id[p.id]->duration;
  }

  // Consumer map: the pipeline that depends on p (unique in our graphs).
  std::map<int, int> consumer;
  for (const auto& p : graph.pipelines) {
    for (int dep : p.dependencies) consumer[dep] = p.id;
  }
  Seconds makespan = 0.0;
  Seconds machine = 0.0;
  Seconds blocked = 0.0;
  for (auto& est : out->pipelines) {
    auto c = consumer.find(est.pipeline_id);
    est.release = c == consumer.end() ? est.finish : by_id[c->second]->start;
    est.release = std::max(est.release, est.finish);
    makespan = std::max(makespan, est.release);
    machine += est.dop * (est.release - est.start);
    blocked += est.dop * (est.release - est.finish);
  }
  out->latency = makespan;
  out->machine_seconds = machine;
  out->blocked_machine_seconds = blocked;
}

PlanCostEstimate CostEstimator::EstimatePlan(const PipelineGraph& graph,
                                             const DopMap& dops,
                                             const VolumeMap& volumes) const {
  std::map<int, Seconds> durations;
  for (const auto& p : graph.pipelines) {
    auto d = dops.find(p.id);
    int dop = d == dops.end() ? 1 : std::max(1, d->second);
    durations[p.id] = PipelineDuration(p, dop, volumes);
  }
  PlanCostEstimate out;
  SchedulePipelines(graph, durations, dops, &out);
  // Machine time to dollars, plus object-store request charges for scans.
  out.cost = out.machine_seconds * node_type_->price_per_second();
  double get_requests = 0.0;
  for (const auto& p : graph.pipelines) {
    if (!p.source_is_breaker && p.source != nullptr &&
        p.source->kind == PhysicalPlan::Kind::kTableScan) {
      NodeVolumes v{};
      auto it = volumes.find(p.source);
      if (it != volumes.end()) v = it->second;
      get_requests += v.scanned_bytes / (8.0 * kMiB);  // 8 MiB range GETs
    }
  }
  out.cost += get_requests / 1000.0 * 0.0004;
  // Per-pipeline row annotations for explainability.
  for (auto& est : out.pipelines) {
    for (const auto& p : graph.pipelines) {
      if (p.id != est.pipeline_id) continue;
      StageWorkload sw = SourceWorkload(p, volumes);
      est.source_rows = sw.rows_in;
      const PhysicalPlan* last =
          p.operators.empty() ? p.source : p.operators.back();
      auto it = volumes.find(last);
      est.output_rows = it == volumes.end() ? 0.0 : it->second.out_rows;
    }
  }
  return out;
}

}  // namespace costdb
