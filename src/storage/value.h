#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "storage/types.h"

namespace costdb {

/// A single scalar: SQL literal, zone-map bound, or query-result cell.
/// Monostate is SQL NULL.
class Value {
 public:
  Value() = default;  // NULL
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(static_cast<int64_t>(b ? 1 : 0)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric values compare numerically across int/double; strings compare
  /// lexicographically; NULL sorts first. Cross-family comparisons order by
  /// family index (stable but arbitrary), mirroring what the engine needs
  /// for sorting mixed zone-map keys.
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace costdb
