#pragma once

/// TableStorage — the persistent tier behind a Table: an LSM-lite layout of
/// immutable, leveled block runs in the SimulatedObjectStore, fronted by a
/// cost-priced BlockCache (docs/STORAGE.md).
///
/// Write path: Table::Append keeps a resident memtable (trailing row
/// groups); once it exceeds the flush threshold the rows are encoded into
/// blocks (BlockWriter) and PUT as a new level-0 run. Compact() merges a
/// whole level into the next — block row budgets double per level, so each
/// merge genuinely reduces block count and the GET fees every future cold
/// scan pays — when the calibrated cost model says the merge pays for
/// itself.
///
/// Read path: Table::PinRowGroup asks PinBlock for a decoded chunk; hits are
/// served from the BlockCache, misses GET real bytes from the store, verify
/// checksums, decode, and admit at the priced miss cost.
///
/// This facade intentionally hides the block format: only src/storage/ and
/// src/catalog/ may include storage/block/ headers (ci/check_layering.py),
/// and engines never see the object store at all.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "storage/cache.h"
#include "storage/data_chunk.h"
#include "storage/zone_map.h"

namespace costdb {

class SimulatedObjectStore;

/// Knobs of the LSM-lite layout (DatabaseOptions::storage).
struct StorageOptions {
  /// Resident rows a table accumulates before Append flushes them to a
  /// level-0 run.
  size_t memtable_flush_rows = 64 * 1024;
  /// Runs a level accumulates before compaction of that level is considered
  /// economical enough to evaluate.
  size_t level_fanout = 4;
  /// Deepest level; compaction of the last level merges in place.
  size_t max_level = 6;
  /// Cold scans the compaction cost model assumes will amortize a merge
  /// (the workload-level horizon of "Saving Money for Analytical
  /// Workloads": compaction is judged against future scans, not one query).
  double expected_scans_per_compaction = 64.0;
};

/// Snapshot of the price terms the storage layer needs; supplied by the
/// service layer from HardwareCalibration + PricingCatalog under its own
/// locks, so storage never reaches into cost/cloud state directly.
struct StoragePricing {
  double read_gibps = 0.5;            // calibrated storage_read_gibps
  Seconds get_seconds = 2e-3;         // calibrated storage_get_seconds
  Dollars get_dollars = 4e-7;         // per single GET request
  Dollars put_dollars = 5e-6;         // per single PUT request
  Dollars node_dollars_per_second = 0.0;

  /// Priced cost of re-materializing `bytes` of cold block: the GET fee
  /// plus the rented node time spent waiting on the read. This is both the
  /// cache's admission priority input and the unit of compaction benefit.
  Dollars MissCost(double bytes) const {
    const Seconds read_time =
        bytes / (read_gibps * kGiB) + get_seconds;
    return get_dollars + read_time * node_dollars_per_second;
  }
};

/// Catalog-facing summary of a table's persistent layout.
struct BlockManifestSummary {
  size_t levels = 0;  // non-empty levels
  size_t runs = 0;
  size_t blocks = 0;
  uint64_t rows = 0;
  double bytes = 0.0;
  size_t flushes = 0;
  size_t compactions = 0;
};

/// Metadata of one cold block in table scan order — what Table keeps
/// resident per evicted row group (zones for pruning, sizes for costing).
struct ColdBlockInfo {
  uint64_t block_id = 0;
  size_t rows = 0;
  double bytes = 0.0;
  std::vector<ZoneMapEntry> zones;
};

class TableStorage {
 public:
  TableStorage(std::string table_name, std::vector<LogicalType> types,
               size_t block_rows, SimulatedObjectStore* store,
               BlockCache* cache, StorageOptions options,
               std::function<StoragePricing()> pricing);
  ~TableStorage();

  TableStorage(const TableStorage&) = delete;
  TableStorage& operator=(const TableStorage&) = delete;

  const StorageOptions& options() const { return options_; }

  /// Encode `rows` into blocks and append them as a new level-0 run.
  [[nodiscard]] Status FlushRun(const DataChunk& rows);

  /// Costed compaction: evaluate every eligible level and merge the one
  /// with the best positive net benefit (GET fees saved by future scans
  /// minus the merge's own request fees and rented read/write time). With
  /// `force`, the best candidate merges even at negative net. Returns
  /// whether a merge happened.
  Result<bool> Compact(bool force);

  /// Delete every object of this table (compaction-independent reset used
  /// by ClusterBy's full rewrite).
  void DropAllRuns();

  /// Pin one block's decoded payload: cache hit or real GET + verify +
  /// decode + priced admission. `stats` (optional) receives the per-query
  /// counters.
  Result<std::shared_ptr<const DataChunk>> PinBlock(uint64_t block_id,
                                                    BlockCacheStats* stats)
      const;

  /// Cold blocks in scan order (deepest level first, then level-0 runs in
  /// flush order) — what Table rebuilds its evicted row groups from.
  std::vector<ColdBlockInfo> ScanOrderBlocks() const;

  /// Encoded bytes of one column across all blocks (EstimateColumnBytes
  /// fallback for evicted payloads).
  double ColumnBytes(size_t column_index) const;

  BlockManifestSummary Summary() const;

  BlockCache* cache() const { return cache_; }

 private:
  struct Impl;  // holds the block/ manifest types; see persistent.cc

  const std::string table_name_;
  const std::vector<LogicalType> types_;
  const size_t block_rows_;  // level-0 row budget; doubles per level
  SimulatedObjectStore* const store_;
  BlockCache* const cache_;
  const StorageOptions options_;
  const std::function<StoragePricing()> pricing_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace costdb
