#include "storage/cache.h"

#include <algorithm>
#include <vector>

namespace costdb {

std::shared_ptr<const DataChunk> BlockCache::Lookup(const std::string& key,
                                                    BlockCacheStats* stats) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  Entry& e = it->second;
  ++e.hits;
  e.priority = PriorityOf(e);
  if (stats != nullptr) {
    ++stats->hits;
    stats->bytes_hit += e.bytes;
  }
  ++totals_.hits;
  totals_.bytes_hit += e.bytes;
  return e.chunk;
}

void BlockCache::Insert(const std::string& key,
                        std::shared_ptr<const DataChunk> chunk, double bytes,
                        Dollars miss_cost_dollars, BlockCacheStats* stats) {
  MutexLock lock(mu_);
  if (bytes > static_cast<double>(capacity_)) {
    if (stats != nullptr) ++stats->rejected;
    ++totals_.rejected;
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Raced with another pin of the same block: keep the resident entry.
    return;
  }
  EvictToFit(bytes, stats);
  Entry e;
  e.chunk = std::move(chunk);
  e.bytes = bytes;
  e.miss_cost = miss_cost_dollars;
  e.hits = 0;
  e.priority = PriorityOf(e);
  used_bytes_ += bytes;
  entries_.emplace(key, std::move(e));
}

void BlockCache::EvictToFit(double incoming_bytes, BlockCacheStats* stats) {
  while (!entries_.empty() &&
         used_bytes_ + incoming_bytes > static_cast<double>(capacity_)) {
    auto victim = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.priority < victim->second.priority) victim = it;
    }
    // GDSF aging: the clock rises to the evicted priority, so entries that
    // stop being hit eventually fall below newly admitted ones regardless
    // of how expensive their misses are.
    clock_ = std::max(clock_, victim->second.priority);
    used_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    if (stats != nullptr) ++stats->evictions;
    ++totals_.evictions;
  }
}

void BlockCache::RecordMiss(double bytes, Seconds seconds,
                            Dollars get_dollars, BlockCacheStats* stats) {
  MutexLock lock(mu_);
  if (stats != nullptr) {
    ++stats->misses;
    stats->bytes_read += bytes;
    stats->miss_seconds += seconds;
    stats->miss_get_dollars += get_dollars;
  }
  ++totals_.misses;
  totals_.bytes_read += bytes;
  totals_.miss_seconds += seconds;
  totals_.miss_get_dollars += get_dollars;
}

void BlockCache::Erase(const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  used_bytes_ -= it->second.bytes;
  entries_.erase(it);
}

size_t BlockCache::bytes_used() const {
  MutexLock lock(mu_);
  return static_cast<size_t>(used_bytes_);
}

size_t BlockCache::entries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

BlockCacheStats BlockCache::totals() const {
  MutexLock lock(mu_);
  return totals_;
}

}  // namespace costdb
