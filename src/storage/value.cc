#include "storage/value.h"

#include <cstdio>

namespace costdb {

namespace {
int FamilyRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_int() || v.is_double()) return 1;
  return 2;
}
}  // namespace

bool Value::operator<(const Value& other) const {
  int fa = FamilyRank(*this);
  int fb = FamilyRank(other);
  if (fa != fb) return fa < fb;
  if (fa == 0) return false;  // NULL == NULL for ordering
  if (fa == 1) return AsDouble() < other.AsDouble();
  return AsString() < other.AsString();
}

bool Value::operator==(const Value& other) const {
  int fa = FamilyRank(*this);
  int fb = FamilyRank(other);
  if (fa != fb) return false;
  if (fa == 0) return true;
  if (fa == 1) {
    if (is_int() && other.is_int()) return AsInt() == other.AsInt();
    return AsDouble() == other.AsDouble();
  }
  return AsString() == other.AsString();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", AsDouble());
    return buf;
  }
  return AsString();
}

}  // namespace costdb
