#pragma once

#include <vector>

#include "storage/column_vector.h"

namespace costdb {

class DataChunk;

/// A non-owning, read-only view over a set of ColumnVectors — what the
/// vectorized kernels consume. Lets the scan evaluate predicates directly
/// on row-group storage (no copy) and materialize only surviving rows.
/// Implicitly convertible from DataChunk so every evaluator entry point
/// accepts either.
class ChunkView {
 public:
  ChunkView() = default;
  ChunkView(const DataChunk& chunk);  // NOLINT: implicit borrow intended

  /// Borrow an already-materialized column. All columns must have the same
  /// row count.
  void AddColumn(const ColumnVector* column);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_; }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }

 private:
  std::vector<const ColumnVector*> columns_;
  size_t rows_ = 0;
};

/// A horizontal slice of rows across a set of columns — the unit flowing
/// between operators in the push-based engine (DuckDB-style).
class DataChunk {
 public:
  DataChunk() = default;
  explicit DataChunk(std::vector<LogicalType> types);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }

  std::vector<LogicalType> Types() const;

  /// Append a full row of values (testing / tiny-data convenience).
  void AppendRow(const std::vector<Value>& row);

  /// Append all rows of `other` (same layout). Bulk column copies.
  void Append(const DataChunk& other);

  /// Bulk-append rows [begin, end) of `other` (same layout) — the morsel
  /// slicer for materialized pipeline sources.
  void AppendRange(const DataChunk& other, size_t begin, size_t end);

  /// Keep only rows in `sel`.
  void Slice(const std::vector<uint32_t>& sel);

  /// Append row `i` of `other` to this chunk.
  void AppendRowFrom(const DataChunk& other, size_t i);

  /// Add an already-built column (layout construction).
  void AddColumn(ColumnVector column);

  void Clear();

  /// Rows as printable strings; head rows only when `limit` >= 0.
  std::string ToString(int64_t limit = 10) const;

 private:
  std::vector<ColumnVector> columns_;
};

}  // namespace costdb
