#pragma once

#include "storage/column_vector.h"
#include "storage/value.h"

namespace costdb {

/// Comparison operators shared by zone maps, expressions, and the SQL
/// binder.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);

/// Flip the operator for swapped operands (a < b  <=>  b > a).
CompareOp SwapCompareOp(CompareOp op);

/// Min/max summary of one column within one row group — the pruning
/// metadata that clustering (paper Section 4's recluster example) improves.
struct ZoneMapEntry {
  Value min;
  Value max;

  /// Build from a column vector (empty vector yields NULL bounds that never
  /// prune).
  static ZoneMapEntry Build(const ColumnVector& column);

  /// True when `col op constant` can match some row in this zone; false
  /// means the whole row group is skippable.
  bool MayMatch(CompareOp op, const Value& constant) const;
};

}  // namespace costdb
