#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/data_chunk.h"
#include "storage/zone_map.h"

namespace costdb {

struct TablePartitioning;  // storage/partition.h
class TableStorage;        // storage/persistent.h
struct BlockCacheStats;    // storage/cache.h

/// Column declaration within a table schema.
struct ColumnDef {
  std::string name;
  LogicalType type = LogicalType::kInt64;
};

/// A horizontal partition of a table with per-column zone maps — the unit
/// of scan pruning and of morsel assignment.
///
/// With persistent storage attached, a row group is either *resident*
/// (payload in `data`; the memtable tail) or *cold* (payload evicted to a
/// block in the object store; only zones and counts stay in RAM, so pruned
/// cold groups never cost a GET). Cold payloads come back through
/// Table::PinRowGroup.
struct RowGroup {
  DataChunk data;
  std::vector<ZoneMapEntry> zones;
  bool resident = true;
  uint64_t block_id = 0;  // valid when !resident
  size_t cold_rows = 0;   // row count when !resident

  size_t num_rows() const { return resident ? data.num_rows() : cold_rows; }
};

/// In-process columnar table: append-only row groups with zone maps and an
/// optional clustering key. RAM-resident by default; AttachStorage() adds a
/// persistent tier (LSM-lite block runs in the simulated object store, see
/// docs/STORAGE.md) under the same row-group scan interface, which is what
/// lets datasets larger than RAM — and larger than the block cache — run
/// through the unchanged vectorized/fused/sharded engines.
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns,
        size_t row_group_size = 8192);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t row_group_size() const { return row_group_size_; }

  Result<size_t> ColumnIndex(const std::string& column_name) const;

  /// Append rows; splits into row groups and maintains zone maps.
  /// Invalidates any recorded partitioning (new rows are unassigned).
  /// On a persistent table the memtable auto-flushes (and compaction is
  /// re-evaluated) once it crosses StorageOptions::memtable_flush_rows;
  /// flush failures latch into last_storage_error().
  void Append(const DataChunk& chunk);

  size_t num_rows() const { return num_rows_; }
  const std::vector<RowGroup>& row_groups() const { return row_groups_; }

  // -- Persistent tier (storage/persistent.h) -----------------------------

  /// Attach a persistent tier and flush every currently resident row into
  /// it. Fails if storage is already attached.
  Status AttachStorage(std::shared_ptr<TableStorage> storage);

  bool persistent() const { return storage_ != nullptr; }
  TableStorage* storage() const { return storage_.get(); }

  /// Flush the resident memtable tail into a new level-0 run (no-op when
  /// empty or when no storage is attached).
  Status FlushMemtable();

  /// Run one costed compaction round (`force` merges the best candidate
  /// even at negative modeled net). Bumps layout_version() when the layout
  /// changed, which invalidates cached plans/results for free.
  Result<bool> CompactStorage(bool force = false);

  /// First error latched by an auto-flush inside Append (OK when none).
  const Status& last_storage_error() const { return storage_error_; }

  /// Rows currently resident in the memtable tail.
  size_t memtable_rows() const;

  /// A scan's borrowed handle on one row group's payload. For resident
  /// groups this points straight at the group; for cold groups `hold`
  /// keeps the cached (or freshly decoded) block alive for the duration
  /// of the morsel even if the cache evicts it mid-scan.
  struct RowGroupPin {
    const DataChunk* chunk = nullptr;
    std::shared_ptr<const DataChunk> hold;
  };

  /// Pin group `group_index`'s payload for reading. Cold groups are served
  /// from the block cache or fetched (one object-store GET), checksum
  /// verified, and decoded; `stats` (optional) accumulates the per-query
  /// hit/miss counters surfaced on ExecutionResult.
  Result<RowGroupPin> PinRowGroup(size_t group_index,
                                  BlockCacheStats* stats = nullptr) const;

  /// Physically re-sort the whole table by `column_name` and rebuild row
  /// groups/zone maps. This is the paper's "recluster table T on attribute
  /// A" tuning action; the advisor prices it via EstimateBytes(). On a
  /// persistent table this rewrites every run.
  Status ClusterBy(const std::string& column_name);

  const std::string& clustering_key() const { return clustering_key_; }

  /// Estimated on-disk bytes of the whole table (sum of column estimates).
  double EstimateBytes() const;

  /// Estimated bytes of one column across all row groups. Resident rows
  /// use a light encoding model (fixed width for numerics, observed average
  /// length for strings); evicted rows use the actual encoded block sizes.
  double EstimateColumnBytes(size_t column_index) const;

  /// Fraction of row groups a predicate `column op constant` can skip via
  /// zone maps (1.0 = everything pruned). The gain reclustering buys.
  Result<double> PruneFraction(const std::string& column_name, CompareOp op,
                               const Value& constant) const;

  /// Materialize all rows into one chunk, pinning cold groups as needed.
  Result<DataChunk> ScanPinned() const;

  /// Materialize all rows into one chunk (tests / small tables only; a
  /// cold-read failure yields an empty chunk — use ScanPinned() where the
  /// error matters).
  DataChunk Scan() const;

  // -- Partitioned layout (storage/partition.h) ---------------------------
  /// Load-time partitioning of this table, or nullptr. Set by
  /// PartitionTable(); the sharded engine assigns whole partitions to
  /// workers and the planner elides exchanges between co-partitioned
  /// tables.
  const TablePartitioning* partitioning() const { return partitioning_.get(); }
  void SetPartitioning(std::shared_ptr<const TablePartitioning> partitioning) {
    partitioning_ = std::move(partitioning);
  }

  /// Rebuild primitives for PartitionTable(): drop all rows (and any
  /// clustering/partitioning claims about them), and force the next
  /// Append to open a fresh row group so partition boundaries align with
  /// row-group boundaries.
  void ClearRows();
  void SealLastRowGroup() { seal_next_append_ = true; }

  /// Bumped on every physical change to the stored rows (Append,
  /// ClearRows, repartition, flush, compaction). Plans are cached against
  /// the layouts they were shaped for — zone-map pruning fractions,
  /// co-partitioned exchanges — so the plan cache validates this version
  /// on every hit and replans instead of serving a plan whose data moved.
  uint64_t layout_version() const { return layout_version_; }

 private:
  void RebuildZones(RowGroup* group);
  /// Re-derive the cold (evicted) row groups from the storage manifest's
  /// scan order, keeping the resident memtable tail in place.
  void RebuildColdGroups();
  /// Flush + costed-compaction check Append runs past the memtable
  /// threshold; errors latch into storage_error_.
  void MaybeFlushAndCompact();
  std::vector<LogicalType> ColumnTypes() const;

  std::string name_;
  std::vector<ColumnDef> columns_;
  size_t row_group_size_;
  size_t num_rows_ = 0;
  std::string clustering_key_;
  std::vector<RowGroup> row_groups_;
  std::shared_ptr<const TablePartitioning> partitioning_;
  std::shared_ptr<TableStorage> storage_;
  Status storage_error_;
  bool seal_next_append_ = false;
  uint64_t layout_version_ = 0;
};

}  // namespace costdb
