#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/data_chunk.h"
#include "storage/zone_map.h"

namespace costdb {

struct TablePartitioning;  // storage/partition.h

/// Column declaration within a table schema.
struct ColumnDef {
  std::string name;
  LogicalType type = LogicalType::kInt64;
};

/// A horizontal partition of a table with per-column zone maps — the unit
/// of scan pruning and of morsel assignment.
struct RowGroup {
  DataChunk data;
  std::vector<ZoneMapEntry> zones;

  size_t num_rows() const { return data.num_rows(); }
};

/// In-process columnar table: append-only row groups with zone maps and an
/// optional clustering key. Stands in for the Parquet-on-S3 layout of the
/// paper's storage layer; EstimateBytes() is what the simulated object
/// store and the cost model account in place of real files.
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns,
        size_t row_group_size = 8192);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t row_group_size() const { return row_group_size_; }

  Result<size_t> ColumnIndex(const std::string& column_name) const;

  /// Append rows; splits into row groups and maintains zone maps.
  /// Invalidates any recorded partitioning (new rows are unassigned).
  void Append(const DataChunk& chunk);

  size_t num_rows() const { return num_rows_; }
  const std::vector<RowGroup>& row_groups() const { return row_groups_; }

  /// Physically re-sort the whole table by `column_name` and rebuild row
  /// groups/zone maps. This is the paper's "recluster table T on attribute
  /// A" tuning action; the advisor prices it via EstimateBytes().
  Status ClusterBy(const std::string& column_name);

  const std::string& clustering_key() const { return clustering_key_; }

  /// Estimated on-disk bytes of the whole table (sum of column estimates).
  double EstimateBytes() const;

  /// Estimated bytes of one column across all row groups. Uses a light
  /// encoding model: fixed width for numerics, observed average length for
  /// strings.
  double EstimateColumnBytes(size_t column_index) const;

  /// Fraction of row groups a predicate `column op constant` can skip via
  /// zone maps (1.0 = everything pruned). The gain reclustering buys.
  Result<double> PruneFraction(const std::string& column_name, CompareOp op,
                               const Value& constant) const;

  /// Materialize all rows into one chunk (tests / small tables only).
  DataChunk Scan() const;

  // -- Partitioned layout (storage/partition.h) ---------------------------
  /// Load-time partitioning of this table, or nullptr. Set by
  /// PartitionTable(); the sharded engine assigns whole partitions to
  /// workers and the planner elides exchanges between co-partitioned
  /// tables.
  const TablePartitioning* partitioning() const { return partitioning_.get(); }
  void SetPartitioning(std::shared_ptr<const TablePartitioning> partitioning) {
    partitioning_ = std::move(partitioning);
  }

  /// Rebuild primitives for PartitionTable(): drop all rows (and any
  /// clustering/partitioning claims about them), and force the next
  /// Append to open a fresh row group so partition boundaries align with
  /// row-group boundaries.
  void ClearRows();
  void SealLastRowGroup() { seal_next_append_ = true; }

  /// Bumped on every physical change to the stored rows (Append,
  /// ClearRows, repartition). Plans are cached against the layouts they
  /// were shaped for — zone-map pruning fractions, co-partitioned
  /// exchanges — so the plan cache validates this version on every hit
  /// and replans instead of serving a plan whose data moved.
  uint64_t layout_version() const { return layout_version_; }

 private:
  void RebuildZones(RowGroup* group);

  std::string name_;
  std::vector<ColumnDef> columns_;
  size_t row_group_size_;
  size_t num_rows_ = 0;
  std::string clustering_key_;
  std::vector<RowGroup> row_groups_;
  std::shared_ptr<const TablePartitioning> partitioning_;
  bool seal_next_append_ = false;
  uint64_t layout_version_ = 0;
};

}  // namespace costdb
