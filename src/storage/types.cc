#include "storage/types.h"

#include <cstdio>

namespace costdb {

PhysicalType PhysicalTypeOf(LogicalType type) {
  switch (type) {
    case LogicalType::kInt64:
    case LogicalType::kBool:
    case LogicalType::kDate:
      return PhysicalType::kInt64;
    case LogicalType::kDouble:
      return PhysicalType::kDouble;
    case LogicalType::kVarchar:
      return PhysicalType::kString;
  }
  return PhysicalType::kInt64;
}

double TypeWidthBytes(LogicalType type, double avg_varchar_len) {
  switch (type) {
    case LogicalType::kInt64:
      return 8.0;
    case LogicalType::kDouble:
      return 8.0;
    case LogicalType::kVarchar:
      return avg_varchar_len;
    case LogicalType::kBool:
      return 1.0;
    case LogicalType::kDate:
      return 4.0;
  }
  return 8.0;
}

const char* LogicalTypeName(LogicalType type) {
  switch (type) {
    case LogicalType::kInt64:
      return "INT64";
    case LogicalType::kDouble:
      return "DOUBLE";
    case LogicalType::kVarchar:
      return "VARCHAR";
    case LogicalType::kBool:
      return "BOOL";
    case LogicalType::kDate:
      return "DATE";
  }
  return "?";
}

namespace {
bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }
const int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's algorithm.
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}
}  // namespace

bool ParseDate(const std::string& text, int64_t* days_out) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1) return false;
  int max_d = kDaysInMonth[m - 1] + (m == 2 && IsLeap(y) ? 1 : 0);
  if (d > max_d) return false;
  *days_out = DaysFromCivil(y, m, d);
  return true;
}

std::string FormatDate(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
  return buf;
}

}  // namespace costdb
