#include "storage/zone_map.h"

namespace costdb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp SwapCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

ZoneMapEntry ZoneMapEntry::Build(const ColumnVector& column) {
  // NULL rows are excluded from the bounds: a comparison predicate is never
  // true on a NULL, so pruning by non-null min/max cannot drop a qualifying
  // row. An all-NULL (or empty) column keeps NULL bounds and never prunes.
  ZoneMapEntry z;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) continue;
    Value v = column.GetValue(i);
    if (z.min.is_null()) {
      z.min = v;
      z.max = v;
      continue;
    }
    if (v < z.min) z.min = v;
    if (z.max < v) z.max = v;
  }
  return z;
}

bool ZoneMapEntry::MayMatch(CompareOp op, const Value& constant) const {
  if (min.is_null() || max.is_null()) return true;  // no metadata -> scan
  switch (op) {
    case CompareOp::kEq:
      return !(constant < min) && !(max < constant);
    case CompareOp::kNe:
      // Only prunable when the zone is a single value equal to the constant.
      return !(min == max && min == constant);
    case CompareOp::kLt:
      return min < constant;
    case CompareOp::kLe:
      return min < constant || min == constant;
    case CompareOp::kGt:
      return constant < max;
    case CompareOp::kGe:
      return constant < max || constant == max;
  }
  return true;
}

}  // namespace costdb
