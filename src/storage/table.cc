#include "storage/table.h"

#include <algorithm>
#include <numeric>

namespace costdb {

Table::Table(std::string name, std::vector<ColumnDef> columns,
             size_t row_group_size)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      row_group_size_(row_group_size) {}

Result<size_t> Table::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return Status::NotFound("no column " + column_name + " in table " + name_);
}

void Table::RebuildZones(RowGroup* group) {
  group->zones.clear();
  group->zones.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    group->zones.push_back(ZoneMapEntry::Build(group->data.column(c)));
  }
}

void Table::ClearRows() {
  row_groups_.clear();
  num_rows_ = 0;
  seal_next_append_ = false;
  partitioning_.reset();
  clustering_key_.clear();  // the rows the claim described are gone
  ++layout_version_;
}

void Table::Append(const DataChunk& chunk) {
  partitioning_.reset();  // new rows are not assigned to any partition
  ++layout_version_;
  size_t offset = 0;
  const size_t total = chunk.num_rows();
  while (offset < total) {
    if (row_groups_.empty() || seal_next_append_ ||
        row_groups_.back().num_rows() >= row_group_size_) {
      seal_next_append_ = false;
      RowGroup g;
      std::vector<LogicalType> types;
      for (const auto& c : columns_) types.push_back(c.type);
      g.data = DataChunk(types);
      row_groups_.push_back(std::move(g));
    }
    RowGroup& group = row_groups_.back();
    size_t space = row_group_size_ - group.num_rows();
    size_t take = std::min(space, total - offset);
    for (size_t i = 0; i < take; ++i) {
      group.data.AppendRowFrom(chunk, offset + i);
    }
    offset += take;
    RebuildZones(&group);
  }
  num_rows_ += total;
}

Status Table::ClusterBy(const std::string& column_name) {
  size_t col = 0;
  COSTDB_ASSIGN_OR_RETURN(col, ColumnIndex(column_name));
  // Materialize, sort row indices by the key column, rebuild groups.
  DataChunk all = Scan();
  std::vector<uint32_t> order(all.num_rows());
  std::iota(order.begin(), order.end(), 0);
  const ColumnVector& key = all.column(col);
  switch (key.physical_type()) {
    case PhysicalType::kInt64: {
      const auto& v = key.ints();
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
    case PhysicalType::kDouble: {
      const auto& v = key.doubles();
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
    case PhysicalType::kString: {
      const auto& v = key.strings();
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
  }
  all.Slice(order);
  row_groups_.clear();
  num_rows_ = 0;
  Append(all);
  clustering_key_ = column_name;
  return Status::OK();
}

double Table::EstimateColumnBytes(size_t column_index) const {
  const LogicalType type = columns_[column_index].type;
  if (PhysicalTypeOf(type) == PhysicalType::kString) {
    double total_len = 0.0;
    size_t n = 0;
    for (const auto& g : row_groups_) {
      const auto& strs = g.data.column(column_index).strings();
      for (const auto& s : strs) total_len += static_cast<double>(s.size());
      n += strs.size();
    }
    double avg = n > 0 ? total_len / static_cast<double>(n) : 16.0;
    return static_cast<double>(num_rows_) * (avg + 4.0);  // + offset word
  }
  return static_cast<double>(num_rows_) * TypeWidthBytes(type);
}

double Table::EstimateBytes() const {
  double total = 0.0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    total += EstimateColumnBytes(c);
  }
  return total;
}

Result<double> Table::PruneFraction(const std::string& column_name,
                                    CompareOp op, const Value& constant) const {
  size_t col = 0;
  COSTDB_ASSIGN_OR_RETURN(col, ColumnIndex(column_name));
  if (row_groups_.empty()) return 0.0;
  size_t pruned = 0;
  for (const auto& g : row_groups_) {
    if (!g.zones[col].MayMatch(op, constant)) ++pruned;
  }
  return static_cast<double>(pruned) / static_cast<double>(row_groups_.size());
}

DataChunk Table::Scan() const {
  std::vector<LogicalType> types;
  for (const auto& c : columns_) types.push_back(c.type);
  DataChunk out(types);
  for (const auto& g : row_groups_) out.Append(g.data);
  return out;
}

}  // namespace costdb
