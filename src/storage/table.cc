#include "storage/table.h"

#include <algorithm>
#include <numeric>

#include "storage/cache.h"
#include "storage/persistent.h"

namespace costdb {

Table::Table(std::string name, std::vector<ColumnDef> columns,
             size_t row_group_size)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      row_group_size_(row_group_size) {}

Result<size_t> Table::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return Status::NotFound("no column " + column_name + " in table " + name_);
}

std::vector<LogicalType> Table::ColumnTypes() const {
  std::vector<LogicalType> types;
  types.reserve(columns_.size());
  for (const auto& c : columns_) types.push_back(c.type);
  return types;
}

void Table::RebuildZones(RowGroup* group) {
  group->zones.clear();
  group->zones.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    group->zones.push_back(ZoneMapEntry::Build(group->data.column(c)));
  }
}

void Table::ClearRows() {
  row_groups_.clear();
  num_rows_ = 0;
  seal_next_append_ = false;
  partitioning_.reset();
  clustering_key_.clear();  // the rows the claim described are gone
  if (storage_ != nullptr) storage_->DropAllRuns();
  ++layout_version_;
}

void Table::Append(const DataChunk& chunk) {
  partitioning_.reset();  // new rows are not assigned to any partition
  ++layout_version_;
  size_t offset = 0;
  const size_t total = chunk.num_rows();
  while (offset < total) {
    if (row_groups_.empty() || seal_next_append_ ||
        !row_groups_.back().resident ||
        row_groups_.back().num_rows() >= row_group_size_) {
      seal_next_append_ = false;
      RowGroup g;
      g.data = DataChunk(ColumnTypes());
      row_groups_.push_back(std::move(g));
    }
    RowGroup& group = row_groups_.back();
    size_t space = row_group_size_ - group.num_rows();
    size_t take = std::min(space, total - offset);
    for (size_t i = 0; i < take; ++i) {
      group.data.AppendRowFrom(chunk, offset + i);
    }
    offset += take;
    RebuildZones(&group);
  }
  num_rows_ += total;
  if (storage_ != nullptr) MaybeFlushAndCompact();
}

// -- Persistent tier --------------------------------------------------------

Status Table::AttachStorage(std::shared_ptr<TableStorage> storage) {
  if (storage_ != nullptr) {
    return Status::AlreadyExists("table " + name_ +
                                 " already has persistent storage");
  }
  storage_ = std::move(storage);
  return FlushMemtable();
}

size_t Table::memtable_rows() const {
  size_t rows = 0;
  for (const auto& g : row_groups_) {
    if (g.resident) rows += g.num_rows();
  }
  return rows;
}

Status Table::FlushMemtable() {
  if (storage_ == nullptr) return Status::OK();
  DataChunk pending(ColumnTypes());
  for (const auto& g : row_groups_) {
    if (g.resident) pending.Append(g.data);
  }
  if (pending.num_rows() == 0) return Status::OK();
  COSTDB_RETURN_NOT_OK(storage_->FlushRun(pending));
  row_groups_.erase(
      std::remove_if(row_groups_.begin(), row_groups_.end(),
                     [](const RowGroup& g) { return g.resident; }),
      row_groups_.end());
  RebuildColdGroups();
  partitioning_.reset();
  ++layout_version_;
  return Status::OK();
}

Result<bool> Table::CompactStorage(bool force) {
  if (storage_ == nullptr) return false;
  bool compacted = false;
  COSTDB_ASSIGN_OR_RETURN(compacted, storage_->Compact(force));
  if (compacted) {
    RebuildColdGroups();
    partitioning_.reset();
    ++layout_version_;
  }
  return compacted;
}

void Table::MaybeFlushAndCompact() {
  if (memtable_rows() < storage_->options().memtable_flush_rows) return;
  Status flushed = FlushMemtable();
  if (!flushed.ok()) {
    if (storage_error_.ok()) storage_error_ = flushed;
    return;
  }
  auto compacted = CompactStorage(/*force=*/false);
  if (!compacted.ok() && storage_error_.ok()) {
    storage_error_ = compacted.status();
  }
}

void Table::RebuildColdGroups() {
  std::vector<RowGroup> resident;
  for (auto& g : row_groups_) {
    if (g.resident) resident.push_back(std::move(g));
  }
  row_groups_.clear();
  for (ColdBlockInfo& b : storage_->ScanOrderBlocks()) {
    RowGroup g;
    g.resident = false;
    g.block_id = b.block_id;
    g.cold_rows = b.rows;
    g.zones = std::move(b.zones);
    row_groups_.push_back(std::move(g));
  }
  for (auto& g : resident) row_groups_.push_back(std::move(g));
}

Result<Table::RowGroupPin> Table::PinRowGroup(size_t group_index,
                                              BlockCacheStats* stats) const {
  if (group_index >= row_groups_.size()) {
    return Status::OutOfRange("table " + name_ + ": no row group " +
                              std::to_string(group_index));
  }
  const RowGroup& group = row_groups_[group_index];
  RowGroupPin pin;
  if (group.resident) {
    pin.chunk = &group.data;
    return pin;
  }
  COSTDB_ASSIGN_OR_RETURN(pin.hold,
                          storage_->PinBlock(group.block_id, stats));
  pin.chunk = pin.hold.get();
  return pin;
}

// -- Layout operations ------------------------------------------------------

Status Table::ClusterBy(const std::string& column_name) {
  size_t col = 0;
  COSTDB_ASSIGN_OR_RETURN(col, ColumnIndex(column_name));
  // Materialize, sort row indices by the key column, rebuild groups.
  DataChunk all{ColumnTypes()};
  COSTDB_ASSIGN_OR_RETURN(all, ScanPinned());
  std::vector<uint32_t> order(all.num_rows());
  std::iota(order.begin(), order.end(), 0);
  const ColumnVector& key = all.column(col);
  switch (key.physical_type()) {
    case PhysicalType::kInt64: {
      const auto& v = key.ints();
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
    case PhysicalType::kDouble: {
      const auto& v = key.doubles();
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
    case PhysicalType::kString: {
      const auto& v = key.strings();
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) { return v[a] < v[b]; });
      break;
    }
  }
  all.Slice(order);
  // A persistent table's runs are rewritten wholesale: the sorted rows
  // re-enter through Append (auto-flushing past the memtable threshold)
  // and the old blocks are dropped.
  if (storage_ != nullptr) storage_->DropAllRuns();
  row_groups_.clear();
  num_rows_ = 0;
  Append(all);
  COSTDB_RETURN_NOT_OK(FlushMemtable());
  clustering_key_ = column_name;
  return Status::OK();
}

double Table::EstimateColumnBytes(size_t column_index) const {
  const LogicalType type = columns_[column_index].type;
  // Evicted rows: actual encoded block bytes from the manifest.
  const double cold_bytes =
      storage_ != nullptr ? storage_->ColumnBytes(column_index) : 0.0;
  size_t resident_rows = 0;
  for (const auto& g : row_groups_) {
    if (g.resident) resident_rows += g.num_rows();
  }
  if (PhysicalTypeOf(type) == PhysicalType::kString) {
    double total_len = 0.0;
    size_t n = 0;
    for (const auto& g : row_groups_) {
      if (!g.resident) continue;
      const auto& strs = g.data.column(column_index).strings();
      for (const auto& s : strs) total_len += static_cast<double>(s.size());
      n += strs.size();
    }
    double avg = n > 0 ? total_len / static_cast<double>(n) : 16.0;
    return cold_bytes +
           static_cast<double>(resident_rows) * (avg + 4.0);  // + offset word
  }
  return cold_bytes +
         static_cast<double>(resident_rows) * TypeWidthBytes(type);
}

double Table::EstimateBytes() const {
  double total = 0.0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    total += EstimateColumnBytes(c);
  }
  return total;
}

Result<double> Table::PruneFraction(const std::string& column_name,
                                    CompareOp op, const Value& constant) const {
  size_t col = 0;
  COSTDB_ASSIGN_OR_RETURN(col, ColumnIndex(column_name));
  if (row_groups_.empty()) return 0.0;
  size_t pruned = 0;
  for (const auto& g : row_groups_) {
    if (!g.zones[col].MayMatch(op, constant)) ++pruned;
  }
  return static_cast<double>(pruned) / static_cast<double>(row_groups_.size());
}

Result<DataChunk> Table::ScanPinned() const {
  DataChunk out(ColumnTypes());
  for (size_t g = 0; g < row_groups_.size(); ++g) {
    RowGroupPin pin;
    COSTDB_ASSIGN_OR_RETURN(pin, PinRowGroup(g));
    out.Append(*pin.chunk);
  }
  return out;
}

DataChunk Table::Scan() const {
  return ScanPinned().ValueOr(DataChunk(ColumnTypes()));
}

}  // namespace costdb
