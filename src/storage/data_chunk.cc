#include "storage/data_chunk.h"

namespace costdb {

ChunkView::ChunkView(const DataChunk& chunk) {
  columns_.reserve(chunk.num_columns());
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    columns_.push_back(&chunk.column(c));
  }
  rows_ = chunk.num_rows();
}

void ChunkView::AddColumn(const ColumnVector* column) {
  columns_.push_back(column);
  rows_ = column->size();
}

DataChunk::DataChunk(std::vector<LogicalType> types) {
  columns_.reserve(types.size());
  for (LogicalType t : types) columns_.emplace_back(t);
}

std::vector<LogicalType> DataChunk::Types() const {
  std::vector<LogicalType> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.type());
  return out;
}

void DataChunk::AppendRow(const std::vector<Value>& row) {
  for (size_t i = 0; i < columns_.size() && i < row.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
}

void DataChunk::Append(const DataChunk& other) {
  AppendRange(other, 0, other.num_rows());
}

void DataChunk::AppendRange(const DataChunk& other, size_t begin, size_t end) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendRange(other.columns_[c], begin, end);
  }
}

void DataChunk::Slice(const std::vector<uint32_t>& sel) {
  for (auto& c : columns_) c = c.Gather(sel);
}

void DataChunk::AppendRowFrom(const DataChunk& other, size_t i) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], i);
  }
}

void DataChunk::AddColumn(ColumnVector column) {
  columns_.push_back(std::move(column));
}

void DataChunk::Clear() {
  for (auto& c : columns_) c.Clear();
}

std::string DataChunk::ToString(int64_t limit) const {
  std::string out;
  size_t n = num_rows();
  if (limit >= 0 && static_cast<size_t>(limit) < n) {
    n = static_cast<size_t>(limit);
  }
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c].GetValue(r).ToString();
    }
    out += "\n";
  }
  if (n < num_rows()) {
    out += "... (" + std::to_string(num_rows() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace costdb
