#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace costdb {

/// How a table's rows are assigned to horizontal partitions at load time.
enum class PartitionKind {
  kNone,   // unpartitioned (sharded scans fall back to row-group ranges)
  kHash,   // partition p owns rows with hash(column) % partitions == p
  kRange,  // partition p owns the p-th quantile range of `column`
};

const char* PartitionKindName(PartitionKind k);

/// Partitioning declaration: the key column and the partition count. Two
/// tables are *co-partitioned* on a join key when both carry a spec of the
/// same kind, the same partition count, and the join key is exactly the
/// partition column on each side — then partition p of one side can only
/// join partition p of the other and no rows need to move.
struct PartitionSpec {
  PartitionKind kind = PartitionKind::kNone;
  std::string column;     // base (unqualified) column name
  size_t partitions = 1;

  static PartitionSpec Hash(std::string column, size_t partitions) {
    PartitionSpec s;
    s.kind = PartitionKind::kHash;
    s.column = std::move(column);
    s.partitions = partitions;
    return s;
  }
  static PartitionSpec Range(std::string column, size_t partitions) {
    PartitionSpec s;
    s.kind = PartitionKind::kRange;
    s.column = std::move(column);
    s.partitions = partitions;
    return s;
  }
};

/// Physical layout of a partitioned table: rows are clustered by partition
/// id, row-group boundaries are aligned to partition boundaries, and
/// partition p owns row groups [group_begin[p], group_begin[p + 1]).
/// This keeps partitions zero-copy views over the table's own row groups:
/// a worker scanning "its" partitions just scans a contiguous group range.
struct TablePartitioning {
  PartitionSpec spec;
  std::vector<size_t> group_begin;  // spec.partitions + 1 entries

  size_t partitions() const { return spec.partitions; }
};

/// The bucket `value` falls into under a hash partitioning with
/// `partitions` buckets. Numeric values are normalized to double first so
/// an int64 key lands in the same bucket as the double it joins with
/// (mirroring the join hash's numeric normalization). NULLs go to
/// bucket 0.
size_t HashPartitionOf(const Value& value, size_t partitions);

/// Physically repartition `table` in place: rows are bucketed by the spec
/// (hash of the key column, or equi-depth ranges of its sorted values),
/// the table is rebuilt clustered by partition id with row-group
/// boundaries aligned to partition boundaries, and the partitioning is
/// recorded on the table (Table::partitioning()).
///
/// This is the load-time step of the sharded execution path: the
/// ShardedEngine assigns whole partitions to workers, and the physical
/// planner elides join/aggregate shuffles when both sides are
/// co-partitioned on the key. Errors: unknown column, partitions == 0,
/// or a kNone spec.
Status PartitionTable(Table* table, const PartitionSpec& spec);

/// Contiguous [begin, end) share of `total` units owned by `worker` out of
/// `workers` (the deterministic assignment used for both partitions and
/// raw row groups — gather in worker order then reproduces source order).
std::pair<size_t, size_t> WorkerShare(size_t total, size_t worker,
                                      size_t workers);

/// Row-group range [begin, end) that `worker` of `workers` scans. For a
/// partitioned table the split respects partition boundaries (a partition
/// is never split across workers — the invariant co-partitioned joins
/// rely on); otherwise it is a contiguous row-group split.
std::pair<size_t, size_t> WorkerGroupRange(const Table& table, size_t worker,
                                           size_t workers);

}  // namespace costdb
