#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "storage/value.h"

namespace costdb {

/// A typed column of values, the unit the vectorized kernels operate on.
/// One physical family is active at a time (see PhysicalTypeOf). NULLs are
/// not represented — the workload generator produces complete data, which
/// matches the paper's analytical setting and keeps kernels branch-free.
class ColumnVector {
 public:
  ColumnVector() : type_(LogicalType::kInt64) {}
  explicit ColumnVector(LogicalType type) : type_(type) {}

  LogicalType type() const { return type_; }
  PhysicalType physical_type() const { return PhysicalTypeOf(type_); }

  size_t size() const;
  void Reserve(size_t n);
  void Clear();

  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v) { strings_.push_back(std::move(v)); }

  /// Append a Value coerced to this column's physical family.
  void AppendValue(const Value& v);

  int64_t GetInt(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }

  /// Value at row i (for result materialization / tests; not a hot path).
  Value GetValue(size_t i) const;

  /// Direct access to the typed payload for kernels.
  std::vector<int64_t>& ints() { return ints_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  std::vector<double>& doubles() { return doubles_; }
  const std::vector<double>& doubles() const { return doubles_; }
  std::vector<std::string>& strings() { return strings_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Copy the rows selected by `sel` into a new vector (filter compaction).
  ColumnVector Gather(const std::vector<uint32_t>& sel) const;

  /// Append row i of `other` (same physical family) to this vector.
  void AppendFrom(const ColumnVector& other, size_t i);

 private:
  LogicalType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace costdb
