#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "storage/value.h"

namespace costdb {

/// A typed column of values, the unit the vectorized kernels operate on.
/// One physical family is active at a time (see PhysicalTypeOf).
///
/// NULLs are represented by an optional validity mask that is materialized
/// lazily: a vector with no mask is all-valid and kernels stay branch-free
/// on it (the workload generator produces complete data, matching the
/// paper's analytical setting). When a NULL is appended, the payload slot
/// holds a type-default filler so the flat arrays remain fully populated
/// and kernels can compute first and mask afterwards.
class ColumnVector {
 public:
  ColumnVector() : type_(LogicalType::kInt64) {}
  explicit ColumnVector(LogicalType type) : type_(type) {}

  LogicalType type() const { return type_; }
  PhysicalType physical_type() const { return PhysicalTypeOf(type_); }

  size_t size() const;
  void Reserve(size_t n);
  void Clear();

  // The raw appends keep the (usually absent) validity mask in step; the
  // branch is free on mask-less vectors.
  void AppendInt(int64_t v) {
    ints_.push_back(v);
    if (!valid_.empty()) valid_.push_back(1);
  }
  void AppendDouble(double v) {
    doubles_.push_back(v);
    if (!valid_.empty()) valid_.push_back(1);
  }
  void AppendString(std::string v) {
    strings_.push_back(std::move(v));
    if (!valid_.empty()) valid_.push_back(1);
  }

  /// Append a Value coerced to this column's physical family; a NULL Value
  /// appends a NULL row.
  void AppendValue(const Value& v);

  /// Append a NULL row (default payload + invalid mask bit).
  void AppendNull();

  /// True when row i is NULL. Cheap: one branch on the (usually absent)
  /// validity mask.
  bool IsNull(size_t i) const { return !valid_.empty() && valid_[i] == 0; }

  /// True when this vector carries a validity mask (conservative: the mask
  /// may exist while every row is valid).
  bool has_nulls() const { return !valid_.empty(); }

  /// Raw validity payload (empty means all-valid); 1 = valid, 0 = NULL.
  const std::vector<uint8_t>& validity() const { return valid_; }

  /// Materialize the validity mask (all-valid) so kernels can write it.
  std::vector<uint8_t>& MutableValidity();

  int64_t GetInt(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }

  /// Value at row i (for result materialization / tests; not a hot path).
  /// NULL rows come back as Value::Null().
  Value GetValue(size_t i) const;

  /// Direct access to the typed payload for kernels.
  std::vector<int64_t>& ints() { return ints_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  std::vector<double>& doubles() { return doubles_; }
  const std::vector<double>& doubles() const { return doubles_; }
  std::vector<std::string>& strings() { return strings_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Copy the rows selected by `sel` into a new vector (filter compaction).
  ColumnVector Gather(const std::vector<uint32_t>& sel) const;

  /// Append row i of `other` (same physical family) to this vector.
  void AppendFrom(const ColumnVector& other, size_t i);

  /// Bulk-append rows [begin, end) of `other` (same physical family) — the
  /// vectorized replacement for a per-row AppendFrom loop.
  void AppendRange(const ColumnVector& other, size_t begin, size_t end);

 private:
  void EnsureValidity();

  LogicalType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> valid_;  // empty = all rows valid
};

}  // namespace costdb
