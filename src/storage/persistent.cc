#include "storage/persistent.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "cloud/object_store.h"
#include "common/annotated_mutex.h"
#include "storage/block/block_reader.h"
#include "storage/block/block_writer.h"
#include "storage/block/manifest.h"

namespace costdb {

namespace {

Seconds WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ObjectKeyFor(const std::string& table, uint64_t block_id) {
  return "lsm/" + table + "/" + std::to_string(block_id);
}

std::string CacheKeyFor(const std::string& table, uint64_t block_id) {
  return "blk/" + table + "/" + std::to_string(block_id);
}

/// Row budget of a block at `level`: doubles per level (capped), so a merge
/// into the next level re-cuts the same rows into roughly half the blocks —
/// the mechanism by which compaction buys down future GET fees.
size_t BudgetRows(size_t block_rows, size_t level) {
  const size_t shift = std::min<size_t>(level, 20);
  return block_rows << shift;
}

}  // namespace

/// All block/ manifest state lives here so the public header exposes none
/// of the internal format types.
struct TableStorage::Impl {
  mutable SharedMutex mu;
  block::Manifest manifest GUARDED_BY(mu);
  // block_id -> (object key, encoded bytes, rows): the copy PinBlock takes
  // under the reader lock so fetch+decode run unlocked.
  struct Locator {
    std::string object_key;
    double bytes = 0.0;
    size_t rows = 0;
  };
  std::map<uint64_t, Locator> locators GUARDED_BY(mu);
  size_t flushes GUARDED_BY(mu) = 0;

  void ReindexLocators() REQUIRES(mu);
  /// Encode `rows` into blocks at `level`'s budget and append them as one
  /// new run at that level.
  Status AppendRun(const std::string& table,
                   const std::vector<LogicalType>& types, size_t block_rows,
                   size_t level, SimulatedObjectStore* store,
                   const DataChunk& rows) REQUIRES(mu);
};

void TableStorage::Impl::ReindexLocators() {
  locators.clear();
  for (const auto& level : manifest.levels) {
    for (const block::RunMeta& run : level) {
      for (const block::BlockMeta& b : run.blocks) {
        locators[b.block_id] = Locator{b.object_key, b.bytes, b.rows};
      }
    }
  }
}

Status TableStorage::Impl::AppendRun(const std::string& table,
                                     const std::vector<LogicalType>& types,
                                     size_t block_rows, size_t level,
                                     SimulatedObjectStore* store,
                                     const DataChunk& rows) {
  if (manifest.levels.size() <= level) manifest.levels.resize(level + 1);

  block::RunMeta run;
  run.run_id = manifest.next_run_id++;
  const size_t budget = BudgetRows(block_rows, level);
  const size_t total = rows.num_rows();
  block::BlockWriter writer(types);
  for (size_t begin = 0; begin < total; begin += budget) {
    const size_t end = std::min(begin + budget, total);
    DataChunk slice{types};
    slice.AppendRange(rows, begin, end);

    block::BlockMeta meta;
    meta.block_id = manifest.next_block_id++;
    meta.object_key = ObjectKeyFor(table, meta.block_id);
    meta.rows = end - begin;

    block::BlockLayout layout;
    const std::string bytes = writer.Encode(slice, &meta.zones, &layout);
    meta.bytes = layout.total_bytes;
    meta.column_bytes = layout.column_bytes;
    COSTDB_RETURN_NOT_OK(store->PutObject(meta.object_key, bytes));
    run.blocks.push_back(std::move(meta));
  }
  manifest.levels[level].push_back(std::move(run));
  ReindexLocators();
  return Status::OK();
}

TableStorage::TableStorage(std::string table_name,
                           std::vector<LogicalType> types, size_t block_rows,
                           SimulatedObjectStore* store, BlockCache* cache,
                           StorageOptions options,
                           std::function<StoragePricing()> pricing)
    : table_name_(std::move(table_name)),
      types_(std::move(types)),
      block_rows_(std::max<size_t>(block_rows, 1)),
      store_(store),
      cache_(cache),
      options_(options),
      pricing_(std::move(pricing)),
      impl_(std::make_unique<Impl>()) {}

TableStorage::~TableStorage() = default;

Status TableStorage::FlushRun(const DataChunk& rows) {
  if (rows.num_rows() == 0) return Status::OK();
  WriterMutexLock lock(impl_->mu);
  COSTDB_RETURN_NOT_OK(impl_->AppendRun(table_name_, types_, block_rows_,
                                        /*level=*/0, store_, rows));
  ++impl_->flushes;
  return Status::OK();
}

Result<bool> TableStorage::Compact(bool force) {
  // Snapshot the prices before locking: the supplier reads service-layer
  // state under its own locks (hw calibration), and planning threads read
  // this table's manifest while holding those — taking them in the other
  // order here would be a lock-order inversion.
  const StoragePricing price = pricing_();
  WriterMutexLock lock(impl_->mu);
  block::Manifest& m = impl_->manifest;
  const Dollars per_get = price.get_dollars +
                          price.get_seconds * price.node_dollars_per_second;

  // Evaluate every level: what would merging it into the next cost, and
  // what does the thinner layout save future cold scans?
  struct Candidate {
    size_t level = 0;
    size_t target = 0;
    Dollars net = 0.0;
  };
  bool have_best = false;
  Candidate best;
  for (size_t level = 0; level < m.levels.size(); ++level) {
    const auto& runs = m.levels[level];
    if (runs.empty()) continue;
    if (!force && runs.size() < options_.level_fanout) continue;
    const size_t target = std::min(level + 1, options_.max_level);

    size_t cur_blocks = 0, rows = 0;
    double bytes = 0.0;
    for (const block::RunMeta& run : runs) {
      cur_blocks += run.blocks.size();
      rows += run.rows();
      bytes += run.bytes();
    }
    const size_t budget = BudgetRows(block_rows_, target);
    const size_t new_blocks = (rows + budget - 1) / budget;
    // Merging a single run that would not get thinner is a no-op.
    if (runs.size() <= 1 && new_blocks >= cur_blocks) continue;

    // Merge cost: GET every old block, stream the bytes twice (read +
    // write-back) at the calibrated storage bandwidth on rented nodes,
    // PUT every new block.
    const Seconds merge_seconds =
        2.0 * bytes / (price.read_gibps * kGiB) +
        static_cast<double>(cur_blocks) * price.get_seconds;
    const Dollars merge_dollars =
        static_cast<double>(cur_blocks) * price.get_dollars +
        static_cast<double>(new_blocks) * price.put_dollars +
        merge_seconds * price.node_dollars_per_second;
    // Benefit: every future cold scan of these rows issues new_blocks GETs
    // instead of cur_blocks, over the configured amortization horizon.
    const size_t blocks_saved =
        cur_blocks > new_blocks ? cur_blocks - new_blocks : 0;
    const Dollars saved = options_.expected_scans_per_compaction *
                          static_cast<double>(blocks_saved) * per_get;
    const Dollars net = saved - merge_dollars;
    if (!have_best || net > best.net) {
      have_best = true;
      best = Candidate{level, target, net};
    }
  }
  if (!have_best) return false;
  if (!force && best.net <= 0.0) return false;

  // Execute: read the level in scan order (real GETs — compaction pays its
  // own request fees), concatenate preserving row order, re-cut at the
  // target level's budget, retire the old blocks.
  DataChunk merged{types_};
  std::vector<std::pair<uint64_t, std::string>> retired;  // id, object key
  for (const block::RunMeta& run : m.levels[best.level]) {
    for (const block::BlockMeta& b : run.blocks) {
      auto bytes = store_->GetObject(b.object_key);
      if (!bytes.ok()) return bytes.status();
      auto decoded = block::BlockReader::Decode(*bytes, types_);
      if (!decoded.ok()) return decoded.status();
      merged.Append(decoded->chunk);
      retired.emplace_back(b.block_id, b.object_key);
    }
  }
  m.levels[best.level].clear();
  COSTDB_RETURN_NOT_OK(impl_->AppendRun(table_name_, types_, block_rows_,
                                        best.target, store_, merged));
  for (const auto& [id, key] : retired) {
    store_->Delete(key);
    if (cache_ != nullptr) cache_->Erase(CacheKeyFor(table_name_, id));
  }
  ++m.compactions;
  return true;
}

void TableStorage::DropAllRuns() {
  WriterMutexLock lock(impl_->mu);
  block::Manifest& m = impl_->manifest;
  for (const auto& level : m.levels) {
    for (const block::RunMeta& run : level) {
      for (const block::BlockMeta& b : run.blocks) {
        store_->Delete(b.object_key);
        if (cache_ != nullptr) {
          cache_->Erase(CacheKeyFor(table_name_, b.block_id));
        }
      }
    }
  }
  // Block ids stay monotonic across the reset so retired cache keys can
  // never alias future blocks.
  m.levels.clear();
  impl_->locators.clear();
}

Result<std::shared_ptr<const DataChunk>> TableStorage::PinBlock(
    uint64_t block_id, BlockCacheStats* stats) const {
  const std::string cache_key = CacheKeyFor(table_name_, block_id);
  if (cache_ != nullptr) {
    if (auto hit = cache_->Lookup(cache_key, stats)) return hit;
  }

  Impl::Locator loc;
  {
    ReaderMutexLock lock(impl_->mu);
    auto it = impl_->locators.find(block_id);
    if (it == impl_->locators.end()) {
      return Status::NotFound("table '" + table_name_ + "': no block " +
                              std::to_string(block_id));
    }
    loc = it->second;
  }

  // Cold read outside every lock: fetch real bytes, verify, decode.
  const Seconds t0 = WallNow();
  auto bytes = store_->GetObject(loc.object_key);
  if (!bytes.ok()) return bytes.status();
  auto decoded = block::BlockReader::Decode(*bytes, types_);
  if (!decoded.ok()) return decoded.status();
  const Seconds elapsed = WallNow() - t0;

  auto chunk = std::make_shared<const DataChunk>(std::move(decoded->chunk));
  const StoragePricing price = pricing_();
  if (cache_ != nullptr) {
    cache_->RecordMiss(loc.bytes, elapsed, price.get_dollars, stats);
    cache_->Insert(cache_key, chunk, loc.bytes, price.MissCost(loc.bytes),
                   stats);
  }
  return chunk;
}

std::vector<ColdBlockInfo> TableStorage::ScanOrderBlocks() const {
  ReaderMutexLock lock(impl_->mu);
  std::vector<ColdBlockInfo> out;
  const block::Manifest& m = impl_->manifest;
  for (size_t level = m.levels.size(); level-- > 0;) {
    for (const block::RunMeta& run : m.levels[level]) {
      for (const block::BlockMeta& b : run.blocks) {
        ColdBlockInfo info;
        info.block_id = b.block_id;
        info.rows = b.rows;
        info.bytes = b.bytes;
        info.zones = b.zones;
        out.push_back(std::move(info));
      }
    }
  }
  return out;
}

double TableStorage::ColumnBytes(size_t column_index) const {
  ReaderMutexLock lock(impl_->mu);
  double total = 0.0;
  for (const auto& level : impl_->manifest.levels) {
    for (const block::RunMeta& run : level) {
      for (const block::BlockMeta& b : run.blocks) {
        if (column_index < b.column_bytes.size()) {
          total += b.column_bytes[column_index];
        }
      }
    }
  }
  return total;
}

BlockManifestSummary TableStorage::Summary() const {
  ReaderMutexLock lock(impl_->mu);
  const block::Manifest& m = impl_->manifest;
  BlockManifestSummary s;
  for (const auto& level : m.levels) {
    if (!level.empty()) ++s.levels;
    s.runs += level.size();
    for (const block::RunMeta& run : level) {
      s.blocks += run.blocks.size();
      for (const block::BlockMeta& b : run.blocks) {
        s.rows += b.rows;
        s.bytes += b.bytes;
      }
    }
  }
  s.flushes = impl_->flushes;
  s.compactions = m.compactions;
  return s;
}

}  // namespace costdb
