#include "storage/partition.h"

#include <algorithm>
#include <utility>

#include "catalog/hll.h"

namespace costdb {

const char* PartitionKindName(PartitionKind k) {
  switch (k) {
    case PartitionKind::kNone:
      return "none";
    case PartitionKind::kHash:
      return "hash";
    case PartitionKind::kRange:
      return "range";
  }
  return "?";
}

size_t HashPartitionOf(const Value& value, size_t partitions) {
  if (partitions <= 1) return 0;
  if (value.is_null()) return 0;
  uint64_t h;
  if (value.is_string()) {
    h = HashString(value.AsString());
  } else {
    // Normalize numerics so an int64 key buckets with the double it joins
    // with, and the two equal zeros bucket together.
    double d = value.AsDouble();
    if (d == 0.0) d = 0.0;
    h = HashDouble(d);
  }
  return static_cast<size_t>(h % static_cast<uint64_t>(partitions));
}

namespace {

/// Partition id per row for a range spec: equi-depth buckets of the sorted
/// key values (ties stay in one bucket, so equal keys never straddle a
/// partition boundary). Hardened for heavily-duplicated and all-equal key
/// columns, where partitions > distinct keys leaves some partitions empty:
///  - a tie run larger than its equi-depth share is consumed whole by the
///    partition it starts in (one linear sweep total, not a rescan per
///    partition, so an all-equal column is O(n), not O(n * partitions));
///  - a partition whose share was swallowed by an earlier tie run stays
///    empty rather than stealing rows from the next run;
///  - NULL keys sort first (Value ordering) and compare equal to each
///    other, so they form one tie run owned by a single partition.
std::vector<size_t> RangeBuckets(const ColumnVector& key, size_t partitions) {
  const size_t n = key.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return key.GetValue(a) < key.GetValue(b);
  });
  std::vector<size_t> bucket(n, 0);
  size_t pos = 0;
  for (size_t p = 0; p < partitions && pos < n; ++p) {
    size_t end = (p + 1) * n / partitions;
    // A partition whose equi-depth share was already consumed by an
    // earlier partition's tie run contributes no rows (it must not grab
    // the *next* run and shift every later boundary).
    if (end <= pos) continue;
    // Grow the bucket until the value changes so equal keys stay together.
    while (end < n &&
           key.GetValue(order[end]) == key.GetValue(order[end - 1])) {
      ++end;
    }
    for (; pos < end; ++pos) bucket[order[pos]] = p;
  }
  return bucket;
}

}  // namespace

Status PartitionTable(Table* table, const PartitionSpec& spec) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (spec.kind == PartitionKind::kNone) {
    return Status::InvalidArgument("PartitionTable requires a hash or range spec");
  }
  if (spec.partitions == 0) {
    return Status::InvalidArgument("partition count must be positive");
  }
  if (table->persistent()) {
    // Repartitioning would rewrite every cold run; persistent tables keep
    // their LSM scan order and shard across workers by contiguous
    // row-group shares instead.
    return Status::NotSupported(
        "PartitionTable: table '" + table->name() +
        "' has persistent storage attached");
  }
  size_t key_col = 0;
  COSTDB_ASSIGN_OR_RETURN(key_col, table->ColumnIndex(spec.column));

  std::vector<LogicalType> types;
  for (const auto& c : table->columns()) types.push_back(c.type);

  // Range buckets need the global key distribution; materialize just the
  // key column (one column, not the whole table).
  std::vector<size_t> range_bucket_of;
  if (spec.kind == PartitionKind::kRange) {
    ColumnVector all_keys(table->columns()[key_col].type);
    for (const auto& g : table->row_groups()) {
      all_keys.AppendRange(g.data.column(key_col), 0, g.num_rows());
    }
    range_bucket_of = RangeBuckets(all_keys, spec.partitions);
  }

  // Bucket row group by row group into per-partition accumulators — the
  // one full copy this rebuild makes (the original groups are dropped
  // before the table is refilled, bounding peak memory near 2x). Stable:
  // rows keep their relative order inside a partition, so repartitioning
  // is deterministic and idempotent.
  std::vector<DataChunk> parts(spec.partitions);
  for (auto& pc : parts) pc = DataChunk(types);
  size_t row_offset = 0;
  for (const auto& g : table->row_groups()) {
    const size_t rows = g.num_rows();
    const ColumnVector& key = g.data.column(key_col);
    std::vector<std::vector<uint32_t>> sel(spec.partitions);
    for (size_t r = 0; r < rows; ++r) {
      const size_t p = spec.kind == PartitionKind::kHash
                           ? HashPartitionOf(key.GetValue(r), spec.partitions)
                           : range_bucket_of[row_offset + r];
      sel[p].push_back(static_cast<uint32_t>(r));
    }
    for (size_t p = 0; p < spec.partitions; ++p) {
      if (sel[p].empty()) continue;
      DataChunk gathered(types);
      for (size_t c = 0; c < g.data.num_columns(); ++c) {
        gathered.column(c) = g.data.column(c).Gather(sel[p]);
      }
      parts[p].Append(gathered);
    }
    row_offset += rows;
  }

  auto partitioning = std::make_shared<TablePartitioning>();
  partitioning->spec = spec;
  partitioning->group_begin.reserve(spec.partitions + 1);

  table->ClearRows();
  for (size_t p = 0; p < spec.partitions; ++p) {
    partitioning->group_begin.push_back(table->row_groups().size());
    if (parts[p].num_rows() == 0) continue;
    table->Append(parts[p]);
    table->SealLastRowGroup();  // next partition starts a fresh row group
    parts[p].Clear();           // release the accumulator as we go
  }
  partitioning->group_begin.push_back(table->row_groups().size());
  table->SetPartitioning(std::move(partitioning));
  return Status::OK();
}

std::pair<size_t, size_t> WorkerShare(size_t total, size_t worker,
                                      size_t workers) {
  if (workers == 0) return {0, 0};
  size_t begin = worker * total / workers;
  size_t end = (worker + 1) * total / workers;
  return {begin, std::max(begin, end)};
}

std::pair<size_t, size_t> WorkerGroupRange(const Table& table, size_t worker,
                                           size_t workers) {
  const TablePartitioning* parts = table.partitioning();
  if (parts == nullptr || parts->group_begin.size() < 2) {
    return WorkerShare(table.row_groups().size(), worker, workers);
  }
  auto [p_lo, p_hi] = WorkerShare(parts->partitions(), worker, workers);
  return {parts->group_begin[p_lo], parts->group_begin[p_hi]};
}

}  // namespace costdb
