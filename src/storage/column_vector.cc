#include "storage/column_vector.h"

namespace costdb {

size_t ColumnVector::size() const {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      return ints_.size();
    case PhysicalType::kDouble:
      return doubles_.size();
    case PhysicalType::kString:
      return strings_.size();
  }
  return 0;
}

void ColumnVector::Reserve(size_t n) {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_.reserve(n);
      break;
    case PhysicalType::kDouble:
      doubles_.reserve(n);
      break;
    case PhysicalType::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
}

void ColumnVector::AppendValue(const Value& v) {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      AppendInt(v.is_double() ? static_cast<int64_t>(v.AsDouble()) : v.AsInt());
      break;
    case PhysicalType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case PhysicalType::kString:
      AppendString(v.AsString());
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      return Value(ints_[i]);
    case PhysicalType::kDouble:
      return Value(doubles_[i]);
    case PhysicalType::kString:
      return Value(strings_[i]);
  }
  return Value::Null();
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  ColumnVector out(type_);
  out.Reserve(sel.size());
  switch (physical_type()) {
    case PhysicalType::kInt64:
      for (uint32_t i : sel) out.ints_.push_back(ints_[i]);
      break;
    case PhysicalType::kDouble:
      for (uint32_t i : sel) out.doubles_.push_back(doubles_[i]);
      break;
    case PhysicalType::kString:
      for (uint32_t i : sel) out.strings_.push_back(strings_[i]);
      break;
  }
  return out;
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t i) {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_.push_back(other.ints_[i]);
      break;
    case PhysicalType::kDouble:
      doubles_.push_back(other.doubles_[i]);
      break;
    case PhysicalType::kString:
      strings_.push_back(other.strings_[i]);
      break;
  }
}

}  // namespace costdb
