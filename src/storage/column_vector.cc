#include "storage/column_vector.h"

namespace costdb {

size_t ColumnVector::size() const {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      return ints_.size();
    case PhysicalType::kDouble:
      return doubles_.size();
    case PhysicalType::kString:
      return strings_.size();
  }
  return 0;
}

void ColumnVector::Reserve(size_t n) {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_.reserve(n);
      break;
    case PhysicalType::kDouble:
      doubles_.reserve(n);
      break;
    case PhysicalType::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  valid_.clear();
}

void ColumnVector::EnsureValidity() {
  if (valid_.empty()) valid_.assign(size(), 1);
}

std::vector<uint8_t>& ColumnVector::MutableValidity() {
  EnsureValidity();
  return valid_;
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (physical_type()) {
    case PhysicalType::kInt64:
      AppendInt(v.is_double() ? static_cast<int64_t>(v.AsDouble()) : v.AsInt());
      break;
    case PhysicalType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case PhysicalType::kString:
      AppendString(v.AsString());
      break;
  }
}

void ColumnVector::AppendNull() {
  EnsureValidity();
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_.push_back(0);
      break;
    case PhysicalType::kDouble:
      doubles_.push_back(0.0);
      break;
    case PhysicalType::kString:
      strings_.emplace_back();
      break;
  }
  valid_.push_back(0);
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (physical_type()) {
    case PhysicalType::kInt64:
      return Value(ints_[i]);
    case PhysicalType::kDouble:
      return Value(doubles_[i]);
    case PhysicalType::kString:
      return Value(strings_[i]);
  }
  return Value::Null();
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  ColumnVector out(type_);
  out.Reserve(sel.size());
  switch (physical_type()) {
    case PhysicalType::kInt64:
      for (uint32_t i : sel) out.ints_.push_back(ints_[i]);
      break;
    case PhysicalType::kDouble:
      for (uint32_t i : sel) out.doubles_.push_back(doubles_[i]);
      break;
    case PhysicalType::kString:
      for (uint32_t i : sel) out.strings_.push_back(strings_[i]);
      break;
  }
  if (!valid_.empty()) {
    out.valid_.reserve(sel.size());
    for (uint32_t i : sel) out.valid_.push_back(valid_[i]);
  }
  return out;
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t i) {
  const size_t old_rows = size();
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_.push_back(other.ints_[i]);
      break;
    case PhysicalType::kDouble:
      doubles_.push_back(other.doubles_[i]);
      break;
    case PhysicalType::kString:
      strings_.push_back(other.strings_[i]);
      break;
  }
  const bool null = other.IsNull(i);
  if (null || !valid_.empty()) {
    if (valid_.empty()) valid_.assign(old_rows, 1);
    valid_.push_back(null ? 0 : 1);
  }
}

void ColumnVector::AppendRange(const ColumnVector& other, size_t begin,
                               size_t end) {
  if (begin >= end) return;
  const size_t old_rows = size();
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_.insert(ints_.end(), other.ints_.begin() + begin,
                   other.ints_.begin() + end);
      break;
    case PhysicalType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                      other.doubles_.begin() + end);
      break;
    case PhysicalType::kString:
      strings_.insert(strings_.end(), other.strings_.begin() + begin,
                      other.strings_.begin() + end);
      break;
  }
  if (other.valid_.empty() && valid_.empty()) return;
  if (valid_.empty()) valid_.assign(old_rows, 1);
  if (other.valid_.empty()) {
    valid_.resize(size(), 1);
  } else {
    valid_.insert(valid_.end(), other.valid_.begin() + begin,
                  other.valid_.begin() + end);
  }
}

}  // namespace costdb
