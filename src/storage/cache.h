#pragma once

/// BlockCache — a byte-budgeted cache for decoded cold blocks, with
/// admission and eviction priced in dollars rather than recency alone.
///
/// Each entry's retention priority follows GDSF (greedy-dual-size-frequency):
///
///   priority = clock + hits * miss_cost_dollars / bytes
///
/// where miss_cost_dollars is what re-materializing the block would cost —
/// the object-store GET fee plus (bytes / storage_read_gibps +
/// storage_get_seconds) of rented node time (docs/STORAGE.md works the
/// formula through with the calibrated terms). Eviction removes the lowest
/// priority entries; `clock` rises to each victim's priority so long-idle
/// entries age out no matter how expensive they once were. The upshot:
/// between two blocks of equal size, the one that is dearer to re-fetch
/// survives.
///
/// Thread-safe: sharded-engine workers pin blocks concurrently.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "common/annotated_mutex.h"
#include "common/units.h"
#include "storage/data_chunk.h"

namespace costdb {

/// Per-query (and cache-lifetime) counters for the cold-read path; surfaced
/// on ExecutionResult::storage. See docs/STORAGE.md for how to read them.
struct BlockCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;          // cold reads: each issued one object-store GET
  int64_t evictions = 0;
  int64_t rejected = 0;        // blocks larger than the whole cache budget
  double bytes_read = 0.0;     // decoded bytes fetched on misses
  double bytes_hit = 0.0;      // decoded bytes served from cache
  Seconds miss_seconds = 0.0;  // measured wall time of fetch+decode
  Dollars miss_get_dollars = 0.0;  // GET fees attributable to the misses

  void MergeFrom(const BlockCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    rejected += other.rejected;
    bytes_read += other.bytes_read;
    bytes_hit += other.bytes_hit;
    miss_seconds += other.miss_seconds;
    miss_get_dollars += other.miss_get_dollars;
  }
};

class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Look up a decoded block. On a hit the shared_ptr keeps the chunk alive
  /// for the caller even if the entry is evicted mid-scan. Updates `stats`
  /// (hit counters) when non-null.
  std::shared_ptr<const DataChunk> Lookup(const std::string& key,
                                          BlockCacheStats* stats);

  /// Admit a freshly decoded block. `bytes` is its decoded footprint and
  /// `miss_cost_dollars` the priced cost of re-materializing it (GET fee +
  /// rented read/decode time) — the GDSF benefit density. Evicts lowest
  /// priority entries to fit; a block larger than the whole budget is
  /// rejected (counted in `stats->rejected`).
  void Insert(const std::string& key, std::shared_ptr<const DataChunk> chunk,
              double bytes, Dollars miss_cost_dollars, BlockCacheStats* stats);

  /// Account one cold read (fetch + decode) in the per-query stats and the
  /// cache-lifetime totals. Called by the storage layer on every miss it
  /// services, whether or not the block is then admitted.
  void RecordMiss(double bytes, Seconds seconds, Dollars get_dollars,
                  BlockCacheStats* stats);

  /// Drop an entry if present (compaction retires its blocks eagerly).
  void Erase(const std::string& key);

  size_t bytes_used() const;
  size_t capacity_bytes() const { return capacity_; }
  size_t entries() const;

  /// Lifetime totals across all queries (the per-query stats passed to
  /// Lookup/Insert only see their own traffic).
  BlockCacheStats totals() const;

 private:
  struct Entry {
    std::shared_ptr<const DataChunk> chunk;
    double bytes = 0.0;
    Dollars miss_cost = 0.0;
    int64_t hits = 0;
    double priority = 0.0;
  };

  double PriorityOf(const Entry& e) const REQUIRES(mu_) {
    const double density =
        e.bytes > 0.0 ? e.miss_cost / e.bytes : e.miss_cost;
    return clock_ + static_cast<double>(e.hits + 1) * density;
  }
  void EvictToFit(double incoming_bytes, BlockCacheStats* stats)
      REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
  double used_bytes_ GUARDED_BY(mu_) = 0.0;
  double clock_ GUARDED_BY(mu_) = 0.0;  // GDSF aging floor
  BlockCacheStats totals_ GUARDED_BY(mu_);
};

}  // namespace costdb
