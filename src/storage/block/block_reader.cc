#include "storage/block/block_reader.h"

namespace costdb {
namespace block {

namespace {

Value GetValueBound(ByteCursor* cur) {
  if (!cur->Need(1)) return Value::Null();
  const uint8_t tag = static_cast<uint8_t>(cur->data[cur->pos++]);
  switch (tag) {
    case 0:
      return Value::Null();
    case 1:
      return Value(static_cast<int64_t>(cur->GetU64()));
    case 2:
      return Value(cur->GetDouble());
    case 3: {
      const uint32_t len = cur->GetU32();
      return Value(cur->GetBytes(len));
    }
    default:
      cur->ok = false;
      return Value::Null();
  }
}

Status Corrupt(const std::string& what) {
  return Status::Internal("block decode: " + what);
}

}  // namespace

Result<BlockFooter> BlockReader::ReadFooter(const std::string& bytes) {
  // Trailer: [footer_size u32][footer_fnv u64][magic u64].
  constexpr size_t kTrailer = 4 + 8 + 8;
  if (bytes.size() < 8 + kTrailer) return Corrupt("file too small");

  ByteCursor head{bytes.data(), bytes.size(), 0, true};
  if (head.GetU64() != kBlockMagic) return Corrupt("bad leading magic");

  ByteCursor tail{bytes.data(), bytes.size(), bytes.size() - kTrailer, true};
  const uint32_t footer_size = tail.GetU32();
  const uint64_t footer_fnv = tail.GetU64();
  if (tail.GetU64() != kBlockMagic) return Corrupt("bad trailing magic");

  const size_t footer_end = bytes.size() - kTrailer;
  if (footer_size > footer_end - 8) return Corrupt("footer size out of range");
  const size_t footer_begin = footer_end - footer_size;
  if (Fnv1a64(bytes.data() + footer_begin, footer_size) != footer_fnv) {
    return Corrupt("footer checksum mismatch");
  }

  ByteCursor cur{bytes.data(), footer_end, footer_begin, true};
  BlockFooter footer;
  footer.version = cur.GetU32();
  if (footer.version != kBlockFormatVersion) {
    return Corrupt("unsupported format version");
  }
  footer.rows = cur.GetU64();
  const uint32_t num_columns = cur.GetU32();
  if (!cur.ok || num_columns > 1u << 16) return Corrupt("bad column count");
  footer.columns.resize(num_columns);
  for (ColumnEntry& ce : footer.columns) {
    if (!cur.Need(1)) return Corrupt("truncated schema");
    ce.type = static_cast<LogicalType>(cur.data[cur.pos++]);
    ce.payload_page = cur.GetU32();
    ce.validity_page = cur.GetU32();
  }
  const uint32_t num_pages = cur.GetU32();
  if (!cur.ok || num_pages > 1u << 20) return Corrupt("bad page count");
  footer.pages.resize(num_pages);
  for (PageEntry& pe : footer.pages) {
    pe.offset = cur.GetU64();
    pe.size = cur.GetU64();
    pe.checksum = cur.GetU64();
    if (!cur.Need(1)) return Corrupt("truncated page table");
    pe.kind = static_cast<PageKind>(cur.data[cur.pos++]);
    pe.column = cur.GetU32();
    if (!cur.ok || pe.offset < 8 || pe.offset + pe.size > footer_begin) {
      return Corrupt("page out of range");
    }
  }
  footer.zones.resize(num_columns);
  for (ZoneMapEntry& z : footer.zones) {
    z.min = GetValueBound(&cur);
    z.max = GetValueBound(&cur);
  }
  if (!cur.ok) return Corrupt("truncated footer");
  return footer;
}

Result<DecodedBlock> BlockReader::Decode(
    const std::string& bytes, const std::vector<LogicalType>& expected_types) {
  BlockFooter footer;
  COSTDB_ASSIGN_OR_RETURN(footer, ReadFooter(bytes));
  if (footer.columns.size() != expected_types.size()) {
    return Corrupt("column count does not match table schema");
  }

  // Verify every page before decoding any of them.
  for (const PageEntry& pe : footer.pages) {
    if (Fnv1a64(bytes.data() + pe.offset, pe.size) != pe.checksum) {
      return Corrupt("page checksum mismatch");
    }
  }

  DecodedBlock out;
  const size_t rows = footer.rows;
  for (size_t c = 0; c < footer.columns.size(); ++c) {
    const ColumnEntry& ce = footer.columns[c];
    if (ce.type != expected_types[c]) {
      return Corrupt("column type does not match table schema");
    }
    if (ce.payload_page >= footer.pages.size()) {
      return Corrupt("payload page index out of range");
    }
    const PageEntry& pe = footer.pages[ce.payload_page];
    ByteCursor cur{bytes.data(), pe.offset + pe.size, pe.offset, true};

    ColumnVector col(ce.type);
    col.Reserve(rows);
    switch (pe.kind) {
      case PageKind::kInt64:
        if (pe.size != rows * 8) return Corrupt("int64 page size mismatch");
        for (size_t i = 0; i < rows; ++i) {
          col.ints().push_back(static_cast<int64_t>(cur.GetU64()));
        }
        break;
      case PageKind::kDouble:
        if (pe.size != rows * 8) return Corrupt("double page size mismatch");
        for (size_t i = 0; i < rows; ++i) {
          col.doubles().push_back(cur.GetDouble());
        }
        break;
      case PageKind::kString:
        for (size_t i = 0; i < rows; ++i) {
          const uint32_t len = cur.GetU32();
          col.strings().push_back(cur.GetBytes(len));
        }
        if (cur.pos != pe.offset + pe.size) {
          return Corrupt("string page size mismatch");
        }
        break;
      case PageKind::kValidity:
      default:
        return Corrupt("payload page has validity kind");
    }
    if (!cur.ok) return Corrupt("truncated payload page");

    if (ce.validity_page != kNoPage) {
      if (ce.validity_page >= footer.pages.size()) {
        return Corrupt("validity page index out of range");
      }
      const PageEntry& vp = footer.pages[ce.validity_page];
      if (vp.kind != PageKind::kValidity || vp.size != rows) {
        return Corrupt("validity page size mismatch");
      }
      std::vector<uint8_t>& mask = col.MutableValidity();
      const unsigned char* src =
          reinterpret_cast<const unsigned char*>(bytes.data() + vp.offset);
      mask.assign(src, src + rows);
    }
    out.chunk.AddColumn(std::move(col));
  }
  out.zones = std::move(footer.zones);
  return out;
}

}  // namespace block
}  // namespace costdb
