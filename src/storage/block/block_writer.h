#pragma once

/// BlockWriter — encodes one immutable columnar block (see block_format.h).
/// Internal to the storage layer: only src/storage/ and src/catalog/ may
/// include this (ci/check_layering.py rule "storage-internal"); engines and
/// the service layer reach blocks through Table::PinRowGroup.

#include <string>
#include <vector>

#include "storage/data_chunk.h"
#include "storage/zone_map.h"

namespace costdb {
namespace block {

/// Encoded-size accounting the cost model and EstimateColumnBytes consume
/// once the payload is evicted from RAM.
struct BlockLayout {
  size_t rows = 0;
  double total_bytes = 0.0;          // whole block file, incl. footer
  std::vector<double> column_bytes;  // payload (+validity) bytes per column
};

class BlockWriter {
 public:
  explicit BlockWriter(std::vector<LogicalType> types)
      : types_(std::move(types)) {}

  /// Encode `chunk` (whose columns must match the writer's types) into a
  /// self-contained block file image. Zone maps are built per column and
  /// embedded in the footer; `zones_out`/`layout_out` receive copies for
  /// the resident manifest (either may be null).
  std::string Encode(const DataChunk& chunk,
                     std::vector<ZoneMapEntry>* zones_out,
                     BlockLayout* layout_out) const;

  const std::vector<LogicalType>& types() const { return types_; }

 private:
  std::vector<LogicalType> types_;
};

}  // namespace block
}  // namespace costdb
