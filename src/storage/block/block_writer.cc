#include "storage/block/block_writer.h"

#include <cassert>

#include "storage/block/block_format.h"

namespace costdb {
namespace block {

namespace {

/// Serialize a zone-map bound. Tag mirrors Value's variant order.
void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    out->push_back(0);
  } else if (v.is_int()) {
    out->push_back(1);
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_double()) {
    out->push_back(2);
    PutDouble(out, v.AsDouble());
  } else {
    out->push_back(3);
    PutU32(out, static_cast<uint32_t>(v.AsString().size()));
    out->append(v.AsString());
  }
}

/// Append one payload page and record it in the page table.
uint32_t AddPage(std::string* out, std::vector<PageEntry>* pages,
                 PageKind kind, uint32_t column, std::string payload) {
  PageEntry entry;
  entry.offset = out->size();
  entry.size = payload.size();
  entry.checksum = Fnv1a64(payload.data(), payload.size());
  entry.kind = kind;
  entry.column = column;
  out->append(payload);
  pages->push_back(entry);
  return static_cast<uint32_t>(pages->size() - 1);
}

}  // namespace

std::string BlockWriter::Encode(const DataChunk& chunk,
                                std::vector<ZoneMapEntry>* zones_out,
                                BlockLayout* layout_out) const {
  assert(chunk.num_columns() == types_.size());
  const size_t rows = chunk.num_rows();

  std::string out;
  PutU64(&out, kBlockMagic);

  std::vector<PageEntry> pages;
  std::vector<ColumnEntry> columns(types_.size());
  std::vector<ZoneMapEntry> zones;
  std::vector<double> column_bytes(types_.size(), 0.0);
  zones.reserve(types_.size());

  for (size_t c = 0; c < types_.size(); ++c) {
    const ColumnVector& col = chunk.column(c);
    assert(col.size() == rows);
    columns[c].type = types_[c];
    zones.push_back(ZoneMapEntry::Build(col));

    std::string payload;
    PageKind kind;
    switch (col.physical_type()) {
      case PhysicalType::kInt64:
        kind = PageKind::kInt64;
        payload.reserve(rows * 8);
        for (size_t i = 0; i < rows; ++i) {
          PutU64(&payload, static_cast<uint64_t>(col.ints()[i]));
        }
        break;
      case PhysicalType::kDouble:
        kind = PageKind::kDouble;
        payload.reserve(rows * 8);
        for (size_t i = 0; i < rows; ++i) PutDouble(&payload, col.doubles()[i]);
        break;
      case PhysicalType::kString:
      default:
        kind = PageKind::kString;
        for (size_t i = 0; i < rows; ++i) {
          const std::string& s = col.strings()[i];
          PutU32(&payload, static_cast<uint32_t>(s.size()));
          payload.append(s);
        }
        break;
    }
    const size_t before = out.size();
    columns[c].payload_page = AddPage(&out, &pages, kind,
                                      static_cast<uint32_t>(c),
                                      std::move(payload));

    // Validity travels as its own page only when a mask exists; NULL slots
    // keep their type-default payload fillers above, so decode restores the
    // vector bit-for-bit (payload and mask both identical).
    if (col.has_nulls()) {
      std::string mask(reinterpret_cast<const char*>(col.validity().data()),
                       col.validity().size());
      columns[c].validity_page = AddPage(&out, &pages, PageKind::kValidity,
                                         static_cast<uint32_t>(c),
                                         std::move(mask));
    }
    column_bytes[c] = static_cast<double>(out.size() - before);
  }

  // Footer: schema, page table, zone maps.
  std::string footer;
  PutU32(&footer, kBlockFormatVersion);
  PutU64(&footer, rows);
  PutU32(&footer, static_cast<uint32_t>(columns.size()));
  for (const ColumnEntry& ce : columns) {
    footer.push_back(static_cast<char>(ce.type));
    PutU32(&footer, ce.payload_page);
    PutU32(&footer, ce.validity_page);
  }
  PutU32(&footer, static_cast<uint32_t>(pages.size()));
  for (const PageEntry& pe : pages) {
    PutU64(&footer, pe.offset);
    PutU64(&footer, pe.size);
    PutU64(&footer, pe.checksum);
    footer.push_back(static_cast<char>(pe.kind));
    PutU32(&footer, pe.column);
  }
  for (const ZoneMapEntry& z : zones) {
    PutValue(&footer, z.min);
    PutValue(&footer, z.max);
  }

  out.append(footer);
  PutU32(&out, static_cast<uint32_t>(footer.size()));
  PutU64(&out, Fnv1a64(footer.data(), footer.size()));
  PutU64(&out, kBlockMagic);

  if (zones_out != nullptr) *zones_out = zones;
  if (layout_out != nullptr) {
    layout_out->rows = rows;
    layout_out->total_bytes = static_cast<double>(out.size());
    layout_out->column_bytes = std::move(column_bytes);
  }
  return out;
}

}  // namespace block
}  // namespace costdb
