#pragma once

/// BlockReader — verifies and decodes a block file image back into a
/// DataChunk whose columns feed the borrowed-column ChunkView scan path
/// unchanged. Internal to the storage layer (see block_writer.h).

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/block/block_format.h"
#include "storage/data_chunk.h"

namespace costdb {
namespace block {

/// A fully decoded block: payload chunk plus the footer's zone maps.
struct DecodedBlock {
  DataChunk chunk;
  std::vector<ZoneMapEntry> zones;
};

class BlockReader {
 public:
  /// Parse and checksum-verify only the footer (magic, schema, page table,
  /// zone maps). Cheap relative to payload decode; used to rebuild resident
  /// manifests and by tests.
  static Result<BlockFooter> ReadFooter(const std::string& bytes);

  /// Verify every page checksum and decode the full block. Column types
  /// must match `expected_types` (the table schema); mismatches and any
  /// corruption come back as a non-OK Status, never as wrong data.
  static Result<DecodedBlock> Decode(const std::string& bytes,
                                     const std::vector<LogicalType>&
                                         expected_types);
};

}  // namespace block
}  // namespace costdb
