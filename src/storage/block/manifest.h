#pragma once

/// Resident manifest of a table's persistent layout: which blocks exist, in
/// which leveled runs, holding which rows — the LSM-lite bookkeeping that
/// TableStorage maintains. Zone maps live here (always in RAM) so pruning
/// decisions never touch cold bytes; payloads live in the object store and
/// come back through the BlockCache.
///
/// Internal to the storage layer (ci/check_layering.py rule
/// "storage-internal"); catalog/service code sees BlockManifestSummary from
/// storage/persistent.h instead.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/zone_map.h"

namespace costdb {
namespace block {

/// One immutable block: object-store key plus resident metadata.
struct BlockMeta {
  uint64_t block_id = 0;  // monotonic per table, never reused — stale cache
                          // entries for compacted-away blocks are simply
                          // unreachable under their old ids
  std::string object_key;
  size_t rows = 0;
  double bytes = 0.0;                // encoded block file size
  std::vector<double> column_bytes;  // encoded bytes per column
  std::vector<ZoneMapEntry> zones;   // one per column
};

/// One immutable sorted run: the unit a memtable flush produces and
/// compaction consumes. Blocks within a run are in row order.
struct RunMeta {
  uint64_t run_id = 0;
  std::vector<BlockMeta> blocks;

  size_t rows() const {
    size_t n = 0;
    for (const BlockMeta& b : blocks) n += b.rows;
    return n;
  }
  double bytes() const {
    double n = 0.0;
    for (const BlockMeta& b : blocks) n += b.bytes;
    return n;
  }
};

/// Leveled manifest. Age invariant (docs/STORAGE.md): rows only ever move
/// from level L to L+1 and every compaction moves ALL of level L, so runs
/// within a level are oldest-first and every run at L+1 predates every run
/// at L. Scan order is therefore deepest level first, then level-0 runs in
/// flush order — which reproduces insertion order exactly and is what makes
/// cold scans bit-identical to the RAM-resident path.
struct Manifest {
  std::vector<std::vector<RunMeta>> levels;  // levels[0] = freshest
  uint64_t next_block_id = 0;
  uint64_t next_run_id = 0;
  size_t compactions = 0;

  size_t total_blocks() const {
    size_t n = 0;
    for (const auto& level : levels) {
      for (const RunMeta& run : level) n += run.blocks.size();
    }
    return n;
  }
  size_t total_runs() const {
    size_t n = 0;
    for (const auto& level : levels) n += level.size();
    return n;
  }
};

}  // namespace block
}  // namespace costdb
