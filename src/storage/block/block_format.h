#pragma once

/// On-"disk" layout of an immutable columnar block — the persistent unit of
/// the tiered storage layer (docs/STORAGE.md has the annotated diagram).
///
/// A block holds one sorted row slice of a table, column at a time:
///
///   [magic u64]
///   [page 0][page 1]...[page N-1]        typed column payload + validity
///   [footer]                             schema, page table, zone maps
///   [footer_size u32][footer_fnv u64][magic u64]
///
/// Every page and the footer carry an FNV-1a checksum; the reader verifies
/// before handing bytes to the engine so a corrupt spill file surfaces as a
/// Status instead of wrong query results. All integers are fixed-width
/// little-endian so blocks round-trip across toolchains.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "storage/types.h"
#include "storage/zone_map.h"

namespace costdb {
namespace block {

/// "CDBBLK1\0" — leading and trailing magic of every block file.
inline constexpr uint64_t kBlockMagic = 0x0031'4B4C'4242'4443ULL;
inline constexpr uint32_t kBlockFormatVersion = 1;
/// Sentinel page index meaning "column has no validity page" (all valid).
inline constexpr uint32_t kNoPage = 0xFFFFFFFFu;

/// What a page stores. Fixed-width payloads are rows*8 bytes; strings are
/// u32-length-prefixed; validity is one byte per row (1 = valid, 0 = NULL),
/// mirroring ColumnVector's in-memory mask exactly.
enum class PageKind : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kValidity = 3,
};

/// One entry of the footer's page table.
struct PageEntry {
  uint64_t offset = 0;  // from start of block
  uint64_t size = 0;    // payload bytes
  uint64_t checksum = 0;
  PageKind kind = PageKind::kInt64;
  uint32_t column = 0;  // owning column index
};

/// Per-column schema entry in the footer.
struct ColumnEntry {
  LogicalType type = LogicalType::kInt64;
  uint32_t payload_page = kNoPage;
  uint32_t validity_page = kNoPage;  // kNoPage when the column is all-valid
};

/// Decoded footer: everything needed to interpret the pages, plus the
/// block's zone maps (kept resident so pruning never touches cold bytes).
struct BlockFooter {
  uint32_t version = kBlockFormatVersion;
  uint64_t rows = 0;
  std::vector<ColumnEntry> columns;
  std::vector<PageEntry> pages;
  std::vector<ZoneMapEntry> zones;  // one per column
};

/// 64-bit FNV-1a over a byte range — the block format's checksum. Not
/// cryptographic; it catches torn writes and bit rot, which is the failure
/// mode a local spill directory actually has.
inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// -- Little-endian primitives ----------------------------------------------
// memcpy-based so they are safe on any alignment; the compiler folds them
// to plain loads/stores on little-endian targets.

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

/// Bounds-checked little-endian cursor used by the reader; `ok` latches
/// false on any out-of-range read so decode loops can check once at the end.
struct ByteCursor {
  const char* data = nullptr;
  size_t size = 0;
  size_t pos = 0;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || size - pos < n || pos > size) {
      ok = false;
      return false;
    }
    return true;
  }
  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    return v;
  }
  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return v;
  }
  double GetDouble() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string GetBytes(size_t n) {
    if (!Need(n)) return {};
    std::string s(data + pos, n);
    pos += n;
    return s;
  }
};

}  // namespace block
}  // namespace costdb
