#pragma once

#include <cstdint>
#include <string>

namespace costdb {

/// Logical column types exposed to SQL. Physically, INT64/DATE/BOOL share an
/// int64 representation (DATE = days since 1970-01-01, BOOL = 0/1), DOUBLE
/// is double, VARCHAR is std::string — three physical families keep the
/// vectorized kernels small without losing the type information the
/// optimizer and cost model need.
enum class LogicalType {
  kInt64,
  kDouble,
  kVarchar,
  kBool,
  kDate,
};

/// Physical storage family of a logical type.
enum class PhysicalType {
  kInt64,
  kDouble,
  kString,
};

PhysicalType PhysicalTypeOf(LogicalType type);

/// Uncompressed width in bytes of one value (VARCHAR uses an average width
/// estimate; the storage layer refines it with observed data).
double TypeWidthBytes(LogicalType type, double avg_varchar_len = 16.0);

const char* LogicalTypeName(LogicalType type);

/// Parse "YYYY-MM-DD" into days since epoch. Proleptic Gregorian; no
/// timezone. Returns false on malformed input.
bool ParseDate(const std::string& text, int64_t* days_out);

/// Inverse of ParseDate.
std::string FormatDate(int64_t days);

}  // namespace costdb
