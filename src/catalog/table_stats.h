#pragma once

#include <map>
#include <string>

#include "catalog/histogram.h"
#include "catalog/hll.h"
#include "storage/table.h"

namespace costdb {

/// Optimizer-facing statistics of one column.
struct ColumnStats {
  double ndv = 0.0;          // distinct values (HLL estimate)
  Value min;
  Value max;
  double avg_width = 8.0;    // bytes per value
  EquiDepthHistogram histogram;  // numeric columns only
  bool has_histogram = false;
};

/// Optimizer-facing statistics of one table. Built by ANALYZE
/// (TableStats::Analyze) and served by the metadata service. Experiments
/// inject cardinality misestimation by scaling `row_count` (see
/// MetadataService::SetStatsErrorFactor) — precisely the failure mode the
/// paper's DOP monitor exists to absorb.
struct TableStats {
  double row_count = 0.0;
  std::map<std::string, ColumnStats> columns;

  static TableStats Analyze(const Table& table, size_t histogram_buckets = 64);

  const ColumnStats* Find(const std::string& column) const {
    auto it = columns.find(column);
    return it == columns.end() ? nullptr : &it->second;
  }
};

}  // namespace costdb
