#include "catalog/catalog.h"

namespace costdb {

void MetadataService::RegisterTable(std::shared_ptr<Table> table) {
  tables_[table->name()] = std::move(table);
}

Result<std::shared_ptr<Table>> MetadataService::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return it->second;
}

Status MetadataService::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no table " + name);
  true_stats_.erase(name);
  MutexLock lock(stats_mu_);
  stats_.erase(name);
  true_served_.erase(name);
  return Status::OK();
}

Status MetadataService::Analyze(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  true_stats_[name] = TableStats::Analyze(*it->second);
  MutexLock lock(stats_mu_);
  stats_.erase(name);  // invalidate served copies
  true_served_.erase(name);
  return Status::OK();
}

void MetadataService::AnalyzeAll() {
  for (const auto& [name, table] : tables_) {
    true_stats_[name] = TableStats::Analyze(*table);
  }
  MutexLock lock(stats_mu_);
  stats_.clear();
  true_served_.clear();
}

namespace {
/// A scaled table is modeled as a uniformly grown/shrunk one. Near-unique
/// (key-like) columns keep their uniqueness, so their NDV scales with the
/// row count; non-unique columns (foreign keys into fixed dimensions,
/// value domains like quantity or region) keep their original domain size.
/// Both stay bounded by the new row count.
TableStats ScaleStats(const TableStats& stats, double factor) {
  TableStats out = stats;
  out.row_count *= factor;
  for (auto& [col, cs] : out.columns) {
    const bool key_like =
        stats.row_count > 0.0 && cs.ndv >= 0.5 * stats.row_count;
    if (key_like) {
      cs.ndv = std::min(cs.ndv * factor, out.row_count);
    } else {
      cs.ndv = std::min(cs.ndv, out.row_count);
    }
  }
  return out;
}
}  // namespace

MetadataService::MetadataService(const MetadataService& other) {
  MutexLock lock(other.stats_mu_);
  tables_ = other.tables_;
  stats_ = other.stats_;
  true_served_ = other.true_served_;
  true_stats_ = other.true_stats_;
  error_factors_ = other.error_factors_;
  virtual_scales_ = other.virtual_scales_;
  mvs_ = other.mvs_;
}

MetadataService& MetadataService::operator=(const MetadataService& other) {
  if (this == &other) return *this;
  MetadataService copy(other);
  MutexLock lock(stats_mu_);
  tables_ = std::move(copy.tables_);
  stats_ = std::move(copy.stats_);
  true_served_ = std::move(copy.true_served_);
  true_stats_ = std::move(copy.true_stats_);
  error_factors_ = std::move(copy.error_factors_);
  virtual_scales_ = std::move(copy.virtual_scales_);
  mvs_ = std::move(copy.mvs_);
  return *this;
}

const TableStats* MetadataService::GetStats(const std::string& name) const {
  auto it = true_stats_.find(name);
  if (it == true_stats_.end()) return nullptr;
  MutexLock lock(stats_mu_);
  auto cached = stats_.find(name);
  if (cached != stats_.end()) return &cached->second;
  double factor = VirtualScaleLocked(name) * StatsErrorFactorLocked(name);
  auto [pos, _] = stats_.emplace(name, ScaleStats(it->second, factor));
  return &pos->second;
}

const TableStats* MetadataService::GetTrueStats(
    const std::string& name) const {
  auto it = true_stats_.find(name);
  if (it == true_stats_.end()) return nullptr;
  MutexLock lock(stats_mu_);
  double scale = VirtualScaleLocked(name);
  if (scale == 1.0) return &it->second;
  auto cached = true_served_.find(name);
  if (cached != true_served_.end()) return &cached->second;
  auto [pos, _] = true_served_.emplace(name, ScaleStats(it->second, scale));
  return &pos->second;
}

void MetadataService::SetStatsErrorFactor(const std::string& table,
                                          double factor) {
  MutexLock lock(stats_mu_);
  error_factors_[table] = factor;
  stats_.erase(table);
}

double MetadataService::stats_error_factor(const std::string& table) const {
  MutexLock lock(stats_mu_);
  return StatsErrorFactorLocked(table);
}

double MetadataService::StatsErrorFactorLocked(
    const std::string& table) const {
  auto it = error_factors_.find(table);
  return it == error_factors_.end() ? 1.0 : it->second;
}

void MetadataService::SetVirtualScale(const std::string& table,
                                      double scale) {
  MutexLock lock(stats_mu_);
  virtual_scales_[table] = scale;
  stats_.erase(table);
  true_served_.erase(table);
}

double MetadataService::virtual_scale(const std::string& table) const {
  MutexLock lock(stats_mu_);
  return VirtualScaleLocked(table);
}

double MetadataService::VirtualScaleLocked(const std::string& table) const {
  auto it = virtual_scales_.find(table);
  return it == virtual_scales_.end() ? 1.0 : it->second;
}

void MetadataService::SyncToObjectStore(CloudEnv* env) const {
  for (const auto& [name, table] : tables_) {
    const auto& groups = table->row_groups();
    double bytes_per_group =
        groups.empty() ? 0.0
                       : table->EstimateBytes() /
                             static_cast<double>(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      env->object_store()->Put(name + "/part-" + std::to_string(g),
                               bytes_per_group);
    }
  }
}

Result<BlockManifestSummary> MetadataService::GetBlockManifest(
    const std::string& name) const {
  std::shared_ptr<Table> table;
  COSTDB_ASSIGN_OR_RETURN(table, GetTable(name));
  if (!table->persistent()) {
    return Status::InvalidArgument("table '" + name +
                                   "' has no persistent storage attached");
  }
  return table->storage()->Summary();
}

void MetadataService::RegisterMaterializedView(MaterializedViewInfo info) {
  mvs_.push_back(std::move(info));
}

std::vector<std::string> MetadataService::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace costdb
