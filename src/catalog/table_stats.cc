#include "catalog/table_stats.h"

namespace costdb {

TableStats TableStats::Analyze(const Table& table, size_t histogram_buckets) {
  TableStats stats;
  stats.row_count = static_cast<double>(table.num_rows());
  for (size_t c = 0; c < table.columns().size(); ++c) {
    const ColumnDef& def = table.columns()[c];
    ColumnStats cs;
    HyperLogLog hll;
    std::vector<double> numeric_values;
    const bool is_numeric =
        PhysicalTypeOf(def.type) != PhysicalType::kString;
    if (is_numeric) numeric_values.reserve(table.num_rows());
    double total_width = 0.0;
    bool first = true;
    // Pin each group: resident groups borrow in place, evicted groups come
    // back through the block cache. A cold-read failure skips that group —
    // stats stay usable (slightly under-counted) instead of failing ANALYZE.
    for (size_t g = 0; g < table.row_groups().size(); ++g) {
      auto pin = table.PinRowGroup(g);
      if (!pin.ok()) continue;
      const ColumnVector& col = pin->chunk->column(c);
      for (size_t i = 0; i < col.size(); ++i) {
        switch (col.physical_type()) {
          case PhysicalType::kInt64: {
            int64_t v = col.GetInt(i);
            hll.AddInt(v);
            numeric_values.push_back(static_cast<double>(v));
            total_width += TypeWidthBytes(def.type);
            break;
          }
          case PhysicalType::kDouble: {
            double v = col.GetDouble(i);
            hll.AddDouble(v);
            numeric_values.push_back(v);
            total_width += 8.0;
            break;
          }
          case PhysicalType::kString: {
            const std::string& v = col.GetString(i);
            hll.AddString(v);
            total_width += static_cast<double>(v.size());
            break;
          }
        }
        Value v = col.GetValue(i);
        if (first) {
          cs.min = v;
          cs.max = v;
          first = false;
        } else {
          if (v < cs.min) cs.min = v;
          if (cs.max < v) cs.max = v;
        }
      }
    }
    cs.ndv = hll.Estimate();
    if (table.num_rows() > 0) {
      cs.avg_width = total_width / static_cast<double>(table.num_rows());
      // NDV can't exceed the row count; HLL noise on tiny inputs can.
      cs.ndv = std::min(cs.ndv, stats.row_count);
    }
    if (is_numeric && !numeric_values.empty()) {
      cs.histogram = EquiDepthHistogram::Build(std::move(numeric_values),
                                               histogram_buckets);
      cs.has_histogram = true;
    }
    stats.columns[def.name] = std::move(cs);
  }
  return stats;
}

}  // namespace costdb
