#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace costdb {

/// HyperLogLog distinct-count sketch (p = 12, 4096 registers, ~1.6% typical
/// error). Backs the NDV statistics the optimizer's join cardinality model
/// and the tuning advisors rely on.
class HyperLogLog {
 public:
  explicit HyperLogLog(int precision = 12);

  void AddInt(int64_t v);
  void AddDouble(double v);
  void AddString(const std::string& v);
  void AddHash(uint64_t hash);

  /// Estimated number of distinct values added.
  double Estimate() const;

  /// Merge another sketch (same precision) into this one.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }

 private:
  int precision_;
  uint64_t num_registers_;
  std::vector<uint8_t> registers_;
};

/// 64-bit mix hash used by the sketch and the join hash tables.
uint64_t HashInt64(int64_t v);
uint64_t HashDouble(double v);
uint64_t HashString(const std::string& v);
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace costdb
