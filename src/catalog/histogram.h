#pragma once

#include <cstdint>
#include <vector>

#include "storage/zone_map.h"

namespace costdb {

/// Equi-depth histogram over a numeric column. The explainable statistic
/// the cost estimator leans on for predicate selectivity — the paper trades
/// black-box ML accuracy for estimators engineers can reason about.
class EquiDepthHistogram {
 public:
  /// Build with ~`num_buckets` buckets from (unsorted) values.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  size_t num_buckets = 64);

  /// Fraction of rows satisfying `x op constant`, in [0, 1]. Uses linear
  /// interpolation within buckets.
  double EstimateSelectivity(CompareOp op, double constant) const;

  bool empty() const { return total_count_ == 0; }
  size_t num_buckets() const { return bounds_.empty() ? 0 : bounds_.size() - 1; }
  double min() const { return bounds_.empty() ? 0.0 : bounds_.front(); }
  double max() const { return bounds_.empty() ? 0.0 : bounds_.back(); }

 private:
  double SelectivityLessThan(double constant, bool inclusive) const;

  // bounds_[i], bounds_[i+1] delimit bucket i; counts_[i] rows in bucket i.
  std::vector<double> bounds_;
  std::vector<double> counts_;
  double total_count_ = 0;
};

}  // namespace costdb
