#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table_stats.h"
#include "common/annotated_mutex.h"
#include "cloud/cloud_env.h"
#include "common/result.h"
#include "storage/persistent.h"
#include "storage/table.h"

namespace costdb {

/// Descriptor of a materialized view registered by the auto-tuner: the view
/// is a regular table plus the join fingerprint it can substitute for.
struct MaterializedViewInfo {
  std::string name;
  /// Sorted "table.column=table.column" equi-join edges the MV covers.
  std::vector<std::string> join_edges;
  /// Base tables folded into the view.
  std::vector<std::string> base_tables;
  /// Rows written per maintenance refresh (drives the update cost).
  double refresh_rows = 0.0;
};

/// The metadata service of paper Figure 3: catalog of tables, their
/// statistics, and registered materialized views, with low-latency lookup
/// for query planning. Also the injection point for the stats-error
/// experiments.
class MetadataService {
 public:
  MetadataService() = default;
  // Copyable (the What-If Service clones the catalog to hypothesize
  // tuning actions); the stats-cache mutex is per-instance, not copied.
  MetadataService(const MetadataService& other);
  MetadataService& operator=(const MetadataService& other);

  /// Register a table; replaces an existing one with the same name.
  void RegisterTable(std::shared_ptr<Table> table);

  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Status DropTable(const std::string& name);

  /// ANALYZE one table (rebuild statistics).
  Status Analyze(const std::string& name);

  /// ANALYZE every registered table.
  void AnalyzeAll();

  /// Statistics as the optimizer sees them: true stats scaled by the
  /// configured error factor. Returns nullptr when the table is unknown or
  /// not analyzed.
  const TableStats* GetStats(const std::string& name) const;

  /// Ground-truth statistics (no error injection) — what the execution
  /// simulator uses as reality.
  const TableStats* GetTrueStats(const std::string& name) const;

  /// Scale the *served* row counts of `table` by `factor` (1.0 = truthful).
  /// Lets experiments reproduce cardinality misestimation without touching
  /// data. Safe to call while planners run concurrently: the served-stats
  /// caches invalidate under the same lock that fills them.
  void SetStatsErrorFactor(const std::string& table, double factor)
      EXCLUDES(stats_mu_);
  double stats_error_factor(const std::string& table) const
      EXCLUDES(stats_mu_);

  /// Pretend `table` is `scale`x its in-process size — applied to BOTH the
  /// true and the served statistics (key NDVs scale along, bounded by the
  /// row count). This is how experiments run warehouse-sized workloads on
  /// the simulator while keeping in-process data small; the error factor
  /// then injects *disagreement* on top.
  void SetVirtualScale(const std::string& table, double scale)
      EXCLUDES(stats_mu_);
  double virtual_scale(const std::string& table) const EXCLUDES(stats_mu_);

  /// Mirror every table as objects in the cloud object store so storage
  /// rent accrues (one object per row group, Parquet-file style).
  void SyncToObjectStore(CloudEnv* env) const;

  /// Block-manifest summary of a persistent table (levels, runs, blocks,
  /// bytes, flush/compaction counts). NotFound for unknown tables,
  /// InvalidArgument for RAM-resident ones — the catalog is the only way
  /// service-layer code observes the block layout (docs/STORAGE.md).
  Result<BlockManifestSummary> GetBlockManifest(const std::string& name)
      const;

  /// Materialized views (registered by the background tuner).
  void RegisterMaterializedView(MaterializedViewInfo info);
  const std::vector<MaterializedViewInfo>& materialized_views() const {
    return mvs_;
  }

  std::vector<std::string> TableNames() const;

 private:
  /// Error factor / virtual scale for `table`; caller holds stats_mu_
  /// (the public accessors lock and delegate — the cache-fill paths call
  /// these while already holding the non-recursive lock).
  double StatsErrorFactorLocked(const std::string& table) const
      REQUIRES(stats_mu_);
  double VirtualScaleLocked(const std::string& table) const
      REQUIRES(stats_mu_);

  std::map<std::string, std::shared_ptr<Table>> tables_;
  /// Guards the lazily memoized served-stats maps below: concurrent
  /// planners (Database::ExecuteSql from several threads) race on the
  /// first GetStats for a table otherwise, and the error/scale knobs are
  /// flipped mid-run by experiments. Returned pointers stay valid
  /// without the lock — map nodes are stable and entries are only erased
  /// by catalog mutations, which don't run concurrently with planning.
  mutable Mutex stats_mu_;
  mutable std::map<std::string, TableStats> stats_
      GUARDED_BY(stats_mu_);  // served copies
  mutable std::map<std::string, TableStats> true_served_
      GUARDED_BY(stats_mu_);  // scaled truth
  std::map<std::string, TableStats> true_stats_;  // as analyzed
  std::map<std::string, double> error_factors_ GUARDED_BY(stats_mu_);
  std::map<std::string, double> virtual_scales_ GUARDED_BY(stats_mu_);
  std::vector<MaterializedViewInfo> mvs_;
};

}  // namespace costdb
