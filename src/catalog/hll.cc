#include "catalog/hll.h"

#include <cmath>
#include <cstring>

namespace costdb {

uint64_t HashInt64(int64_t v) {
  uint64_t x = static_cast<uint64_t>(v);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashDouble(double v) {
  if (v == 0.0) v = 0.0;  // normalize -0.0
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashInt64(static_cast<int64_t>(bits));
}

uint64_t HashString(const std::string& v) {
  // FNV-1a with a finalizer mix.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : v) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return HashInt64(static_cast<int64_t>(h));
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashInt64(static_cast<int64_t>(a ^ (b + 0x9e3779b97f4a7c15ULL +
                                             (a << 6) + (a >> 2))));
}

HyperLogLog::HyperLogLog(int precision)
    : precision_(precision),
      num_registers_(1ULL << precision),
      registers_(num_registers_, 0) {}

void HyperLogLog::AddHash(uint64_t hash) {
  const uint64_t idx = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank = leading zeros of the remaining bits + 1, capped.
  uint8_t rank;
  if (rest == 0) {
    rank = static_cast<uint8_t>(64 - precision_ + 1);
  } else {
    rank = static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  }
  if (rank > registers_[idx]) registers_[idx] = rank;
}

void HyperLogLog::AddInt(int64_t v) { AddHash(HashInt64(v)); }
void HyperLogLog::AddDouble(double v) { AddHash(HashDouble(v)); }
void HyperLogLog::AddString(const std::string& v) { AddHash(HashString(v)); }

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(num_registers_);
  double alpha;
  if (num_registers_ >= 128) {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  } else if (num_registers_ == 64) {
    alpha = 0.709;
  } else if (num_registers_ == 32) {
    alpha = 0.697;
  } else {
    alpha = 0.673;
  }
  double sum = 0.0;
  uint64_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear counting for the small range.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) return;
  for (uint64_t i = 0; i < num_registers_; ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace costdb
