#include "catalog/histogram.h"

#include <algorithm>
#include <cmath>

namespace costdb {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             size_t num_buckets) {
  EquiDepthHistogram h;
  if (values.empty() || num_buckets == 0) return h;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  num_buckets = std::min(num_buckets, n);
  h.total_count_ = static_cast<double>(n);
  h.bounds_.push_back(values.front());
  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    size_t end = (b + 1) * n / num_buckets;  // exclusive
    if (end <= start) continue;
    h.bounds_.push_back(values[end - 1]);
    h.counts_.push_back(static_cast<double>(end - start));
    start = end;
  }
  return h;
}

double EquiDepthHistogram::SelectivityLessThan(double constant,
                                               bool inclusive) const {
  if (empty()) return 0.5;
  if (constant < bounds_.front()) return 0.0;
  if (constant > bounds_.back()) return 1.0;
  double acc = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    double lo = bounds_[b];
    double hi = bounds_[b + 1];
    if (constant >= hi) {
      acc += counts_[b];
      continue;
    }
    // Partially covered bucket: interpolate.
    double width = hi - lo;
    double frac;
    if (width <= 0.0) {
      frac = inclusive ? 1.0 : 0.0;
    } else {
      frac = (constant - lo) / width;
    }
    acc += counts_[b] * std::clamp(frac, 0.0, 1.0);
    break;
  }
  return acc / total_count_;
}

double EquiDepthHistogram::EstimateSelectivity(CompareOp op,
                                               double constant) const {
  if (empty()) return 0.5;
  switch (op) {
    case CompareOp::kLt:
      return SelectivityLessThan(constant, /*inclusive=*/false);
    case CompareOp::kLe:
      return SelectivityLessThan(constant, /*inclusive=*/true);
    case CompareOp::kGt:
      return 1.0 - SelectivityLessThan(constant, /*inclusive=*/true);
    case CompareOp::kGe:
      return 1.0 - SelectivityLessThan(constant, /*inclusive=*/false);
    case CompareOp::kEq: {
      // Width of an epsilon-slice around the constant, bounded below by a
      // uniform within-bucket guess.
      if (constant < bounds_.front() || constant > bounds_.back()) return 0.0;
      for (size_t b = 0; b < counts_.size(); ++b) {
        if (constant <= bounds_[b + 1]) {
          double width = bounds_[b + 1] - bounds_[b];
          double rows = counts_[b];
          double distinct_guess = width <= 0.0 ? 1.0 : std::max(1.0, width);
          return std::min(1.0, rows / distinct_guess / total_count_);
        }
      }
      return 0.0;
    }
    case CompareOp::kNe:
      return 1.0 - EstimateSelectivity(CompareOp::kEq, constant);
  }
  return 0.5;
}

}  // namespace costdb
