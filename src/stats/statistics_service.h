#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "optimizer/bi_objective.h"

namespace costdb {

/// One query execution's footprint, as logged by the engine's built-in
/// lightweight profiler (the paper's Statistics Service input).
struct ExecutionRecord {
  Seconds at = 0.0;
  std::string query_id;
  std::vector<std::string> tables;
  std::vector<std::string> columns;        // qualified "alias.column"
  std::vector<std::string> filter_columns; // columns under pushed predicates
  std::vector<std::string> join_edges;     // normalized "t1.c1=t2.c2"
  Seconds latency = 0.0;
  Seconds machine_seconds = 0.0;
  Dollars cost = 0.0;
  double rows_scanned = 0.0;
};

/// Build a record from a bound + planned query (tables, columns, join
/// edges, filter columns) and its measured execution outcome.
ExecutionRecord MakeExecutionRecord(const std::string& query_id, Seconds at,
                                    const BoundQuery& query,
                                    Seconds latency, Seconds machine_seconds,
                                    Dollars cost);

/// The Statistics Service of paper Figure 3/Section 4: ingests execution
/// logs and maintains queryable workload summaries — file/attribute access
/// counts, a weighted join graph, run-time resource usage, and per-template
/// arrival series for workload prediction. It is itself cost-conscious:
/// ingestion is sampled (counts are rescaled by 1/rate) and per-record
/// detail older than the hot window is compacted into hourly aggregates.
class StatisticsService {
 public:
  struct Options {
    double sampling_rate = 1.0;         // fraction of records ingested
    Seconds hot_window = kSecondsPerDay;  // raw-record retention
    uint64_t seed = 11;
  };

  StatisticsService() : StatisticsService(Options()) {}
  explicit StatisticsService(const Options& options);

  /// Ingest one record (subject to sampling).
  void Ingest(const ExecutionRecord& record);

  // ---- workload summaries (rescaled to full-population estimates) ----
  const std::map<std::string, double>& table_access_counts() const {
    return table_counts_;
  }
  const std::map<std::string, double>& column_access_counts() const {
    return column_counts_;
  }
  const std::map<std::string, double>& filter_column_counts() const {
    return filter_counts_;
  }
  /// Weighted join graph: normalized equi-join edge -> access weight.
  const std::map<std::string, double>& join_graph() const {
    return join_graph_;
  }

  Dollars total_cost() const { return total_cost_; }
  Seconds total_machine_seconds() const { return total_machine_seconds_; }
  double records_ingested() const { return records_ingested_; }

  /// Estimated arrivals per hour of one query template, hour-bucketed from
  /// the first ingested timestamp (for the workload predictor).
  std::vector<double> HourlyArrivals(const std::string& query_id) const;

  /// Mean observed execution cost of one template.
  Dollars MeanCost(const std::string& query_id) const;

  /// Per-query profiling overhead the engine pays to feed this service —
  /// proportional to how much is recorded (the paper's requirement that
  /// the Statistics Service itself be cheap).
  Seconds ProfilingOverhead(Seconds query_latency) const {
    return query_latency * (0.001 + 0.015 * options_.sampling_rate);
  }

  /// Raw records still in the hot window vs. compacted history size
  /// (tiered storage accounting).
  size_t hot_record_count() const { return hot_records_.size(); }
  size_t cold_bucket_count() const;

  /// Advance the service clock, compacting raw records that fall out of
  /// the hot window.
  void AdvanceTo(Seconds now);

 private:
  Options options_;
  Rng rng_;
  double scale_ = 1.0;  // 1 / sampling_rate

  std::map<std::string, double> table_counts_;
  std::map<std::string, double> column_counts_;
  std::map<std::string, double> filter_counts_;
  std::map<std::string, double> join_graph_;
  Dollars total_cost_ = 0.0;
  Seconds total_machine_seconds_ = 0.0;
  double records_ingested_ = 0.0;

  // query_id -> hour index -> (scaled) arrivals; cost sums for MeanCost.
  std::map<std::string, std::map<int64_t, double>> hourly_;
  std::map<std::string, std::pair<double, double>> cost_sums_;  // (sum, n)

  std::deque<ExecutionRecord> hot_records_;
};

}  // namespace costdb
