#include "stats/statistics_service.h"

#include <algorithm>
#include <set>

namespace costdb {

ExecutionRecord MakeExecutionRecord(const std::string& query_id, Seconds at,
                                    const BoundQuery& query, Seconds latency,
                                    Seconds machine_seconds, Dollars cost) {
  ExecutionRecord rec;
  rec.query_id = query_id;
  rec.at = at;
  rec.latency = latency;
  rec.machine_seconds = machine_seconds;
  rec.cost = cost;
  for (const auto& rel : query.relations) rec.tables.push_back(rel.table);

  std::set<std::string> columns;
  auto collect = [&columns](const ExprPtr& e) {
    if (!e) return;
    std::vector<std::string> cols;
    e->CollectColumns(&cols);
    columns.insert(cols.begin(), cols.end());
  };
  for (const auto& f : query.filters) collect(f);
  for (const auto& e : query.select_exprs) collect(e);
  for (const auto& g : query.group_by) collect(g);
  for (const auto& a : query.aggregates) collect(a);
  rec.columns.assign(columns.begin(), columns.end());

  // Map aliases to table names so summaries aggregate across queries that
  // alias the same table differently.
  std::map<std::string, std::string> alias_to_table;
  for (const auto& rel : query.relations) {
    alias_to_table[rel.alias] = rel.table;
  }
  auto canonical = [&](const std::string& qualified) {
    auto dot = qualified.find('.');
    if (dot == std::string::npos) return qualified;
    auto it = alias_to_table.find(qualified.substr(0, dot));
    if (it == alias_to_table.end()) return qualified;
    return it->second + "." + qualified.substr(dot + 1);
  };
  for (auto& c : rec.columns) c = canonical(c);

  for (const auto& f : query.filters) {
    std::string col;
    CompareOp op;
    Value constant;
    if (MatchColumnCompareConstant(f, &col, &op, &constant)) {
      rec.filter_columns.push_back(canonical(col));
      continue;
    }
    std::string l, r;
    if (MatchEquiJoin(f, &l, &r)) {
      std::string a = canonical(l);
      std::string b = canonical(r);
      if (b < a) std::swap(a, b);
      rec.join_edges.push_back(a + "=" + b);
    }
  }
  return rec;
}

StatisticsService::StatisticsService(const Options& options)
    : options_(options), rng_(options.seed) {
  scale_ = options_.sampling_rate > 0.0 ? 1.0 / options_.sampling_rate : 0.0;
}

void StatisticsService::Ingest(const ExecutionRecord& record) {
  if (options_.sampling_rate < 1.0 &&
      rng_.NextDouble() >= options_.sampling_rate) {
    return;
  }
  records_ingested_ += scale_;
  for (const auto& t : record.tables) table_counts_[t] += scale_;
  for (const auto& c : record.columns) column_counts_[c] += scale_;
  for (const auto& c : record.filter_columns) filter_counts_[c] += scale_;
  for (const auto& e : record.join_edges) join_graph_[e] += scale_;
  total_cost_ += record.cost * scale_;
  total_machine_seconds_ += record.machine_seconds * scale_;
  int64_t hour = static_cast<int64_t>(record.at / kSecondsPerHour);
  hourly_[record.query_id][hour] += scale_;
  auto& [sum, n] = cost_sums_[record.query_id];
  sum += record.cost;
  n += 1.0;
  hot_records_.push_back(record);
  AdvanceTo(record.at);
}

void StatisticsService::AdvanceTo(Seconds now) {
  while (!hot_records_.empty() &&
         hot_records_.front().at < now - options_.hot_window) {
    hot_records_.pop_front();  // aggregates above already hold the history
  }
}

std::vector<double> StatisticsService::HourlyArrivals(
    const std::string& query_id) const {
  auto it = hourly_.find(query_id);
  if (it == hourly_.end()) return {};
  int64_t max_hour = 0;
  for (const auto& [hour, _] : it->second) max_hour = std::max(max_hour, hour);
  std::vector<double> out(static_cast<size_t>(max_hour) + 1, 0.0);
  for (const auto& [hour, count] : it->second) {
    out[static_cast<size_t>(hour)] = count;
  }
  return out;
}

Dollars StatisticsService::MeanCost(const std::string& query_id) const {
  auto it = cost_sums_.find(query_id);
  if (it == cost_sums_.end() || it->second.second == 0.0) return 0.0;
  return it->second.first / it->second.second;
}

size_t StatisticsService::cold_bucket_count() const {
  size_t buckets = 0;
  for (const auto& [id, hours] : hourly_) buckets += hours.size();
  return buckets;
}

}  // namespace costdb
