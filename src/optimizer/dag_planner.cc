#include "optimizer/dag_planner.h"

#include <algorithm>
#include <set>

namespace costdb {

namespace {
/// Left-deep DP state for a relation subset (bitmask).
struct DpEntry {
  double cost = 0.0;  // sum of intermediate cardinalities (C_out)
  double rows = 0.0;
  LogicalPlanPtr plan;
};
}  // namespace

Result<LogicalPlanPtr> DagPlanner::Plan(const BoundQuery& query) const {
  CardinalityEstimator cards(meta_, &query.relations);
  JoinGraph graph;
  COSTDB_ASSIGN_OR_RETURN(graph, BuildJoinGraph(query, cards));
  LogicalPlanPtr joined;
  COSTDB_ASSIGN_OR_RETURN(joined, PlanJoinTree(query, graph));
  return FinishPlan(query, graph, std::move(joined));
}

Result<LogicalPlanPtr> DagPlanner::PlanJoinTree(const BoundQuery& query,
                                                const JoinGraph& graph) const {
  const size_t n = query.relations.size();
  if (n == 0) return Status::InvalidArgument("query without relations");
  if (n > 20) {
    return Status::NotSupported("more than 20 relations in one query");
  }
  CardinalityEstimator cards(meta_, &query.relations);
  if (n == 1) return graph.scans[0];

  const uint32_t full = (1u << n) - 1;
  std::vector<DpEntry> dp(1u << n);
  std::vector<bool> has(1u << n, false);
  for (size_t i = 0; i < n; ++i) {
    uint32_t s = 1u << i;
    dp[s] = {0.0, graph.scans[i]->est_rows, graph.scans[i]};
    has[s] = true;
  }
  for (uint32_t size = 2; size <= n; ++size) {
    for (uint32_t s = 1; s <= full; ++s) {
      if (static_cast<uint32_t>(__builtin_popcount(s)) != size) continue;
      for (size_t r = 0; r < n; ++r) {
        if (!(s & (1u << r))) continue;
        uint32_t rest = s & ~(1u << r);
        if (!has[rest]) continue;
        auto keys = graph.EdgesBetween(rest, 1u << r);
        // Cross products only as a last resort for disconnected graphs.
        if (keys.empty() && size < n) continue;
        double rows =
            keys.empty()
                ? dp[rest].rows * graph.scans[r]->est_rows
                : cards.EstimateJoinRows(dp[rest].rows,
                                         graph.scans[r]->est_rows, keys);
        double cost = dp[rest].cost + rows;
        if (!has[s] || cost < dp[s].cost) {
          auto plan = LogicalPlan::MakeJoin(dp[rest].plan, graph.scans[r],
                                            keys);
          plan->est_rows = rows;
          dp[s] = {cost, rows, plan};
          has[s] = true;
        }
      }
    }
  }
  if (has[full]) return dp[full].plan;

  // Disconnected join graph: stitch with cross joins in alias order.
  LogicalPlanPtr joined = graph.scans[0];
  double rows = graph.scans[0]->est_rows;
  for (size_t i = 1; i < n; ++i) {
    auto keys = graph.EdgesBetween((1u << i) - 1, 1u << i);
    joined = LogicalPlan::MakeJoin(joined, graph.scans[i], keys);
    rows = keys.empty()
               ? rows * graph.scans[i]->est_rows
               : cards.EstimateJoinRows(rows, graph.scans[i]->est_rows, keys);
    joined->est_rows = rows;
  }
  return joined;
}

LogicalPlanPtr DagPlanner::FinishPlan(const BoundQuery& query,
                                      const JoinGraph& graph,
                                      LogicalPlanPtr joined) const {
  CardinalityEstimator cards(meta_, &query.relations);
  LogicalPlanPtr plan = std::move(joined);

  if (!graph.residual_filters.empty()) {
    ExprPtr pred = CombineConjuncts(graph.residual_filters);
    double sel = cards.Selectivity(pred);
    double in_rows = plan->est_rows;
    plan = LogicalPlan::MakeFilter(plan, pred);
    plan->est_rows = std::max(1.0, in_rows * sel);
  }

  if (query.is_aggregate()) {
    double input_rows = plan->est_rows;
    auto agg = LogicalPlan::MakeAggregate(plan, query.group_by,
                                          query.aggregates, query.agg_names);
    agg->est_rows = cards.EstimateGroupCount(input_rows, query.group_by);
    plan = agg;
    if (query.having) {
      auto hav = LogicalPlan::MakeFilter(plan, query.having);
      hav->est_rows =
          std::max(1.0, plan->est_rows * cards.Selectivity(query.having));
      plan = hav;
    }
  }

  // ORDER BY keys referencing select-list names sort after the projection;
  // keys referencing pre-projection columns sort before it.
  bool sort_after_project = true;
  {
    std::set<std::string> out_names(query.select_names.begin(),
                                    query.select_names.end());
    for (const auto& o : query.order_by) {
      std::vector<std::string> cols;
      o.expr->CollectColumns(&cols);
      for (const auto& c : cols) {
        if (!out_names.count(c)) sort_after_project = false;
      }
    }
  }
  if (!query.order_by.empty() && !sort_after_project) {
    auto sort = LogicalPlan::MakeSort(plan, query.order_by);
    sort->est_rows = plan->est_rows;
    plan = sort;
  }
  auto project = LogicalPlan::MakeProject(plan, query.select_exprs,
                                          query.select_names);
  project->est_rows = plan->est_rows;
  plan = project;
  if (!query.order_by.empty() && sort_after_project) {
    auto sort = LogicalPlan::MakeSort(plan, query.order_by);
    sort->est_rows = plan->est_rows;
    plan = sort;
  }
  if (query.limit >= 0) {
    auto limit = LogicalPlan::MakeLimit(plan, query.limit);
    limit->est_rows =
        std::min(plan->est_rows, static_cast<double>(query.limit));
    plan = limit;
  }
  return plan;
}

}  // namespace costdb
