#pragma once

#include <string>

#include "optimizer/dag_planner.h"
#include "optimizer/physical_planner.h"
#include "sql/binder.h"

namespace costdb {

/// Front door of the DAG-planning stage: SQL (or a bound query) in,
/// distributed physical plan out. DOP planning — the second stage of the
/// paper's two-stage optimizer — lives in optimizer/dop_planner.h and runs
/// on the plan this produces.
class Optimizer {
 public:
  explicit Optimizer(const MetadataService* meta,
                     PhysicalPlannerOptions physical_options =
                         PhysicalPlannerOptions())
      : meta_(meta), physical_options_(physical_options) {}

  Result<PhysicalPlanPtr> OptimizeQuery(const BoundQuery& query) const {
    DagPlanner dag(meta_);
    LogicalPlanPtr logical;
    COSTDB_ASSIGN_OR_RETURN(logical, dag.Plan(query));
    PhysicalPlanner physical(meta_, &query.relations, physical_options_);
    return physical.Plan(logical);
  }

  /// Parse + bind + plan.
  Result<PhysicalPlanPtr> OptimizeSql(const std::string& sql) const {
    Binder binder(meta_);
    BoundQuery query;
    COSTDB_ASSIGN_OR_RETURN(query, binder.BindSql(sql));
    return OptimizeQuery(query);
  }

  const MetadataService* meta() const { return meta_; }

 private:
  const MetadataService* meta_;
  PhysicalPlannerOptions physical_options_;
};

}  // namespace costdb
