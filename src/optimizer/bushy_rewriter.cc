#include "optimizer/bushy_rewriter.h"

#include <algorithm>
#include <cmath>

namespace costdb {

namespace {

/// Collect the left-deep spine order: leaves of the join tree, leftmost
/// relation first.
void CollectSpine(const LogicalPlanPtr& node,
                  std::vector<LogicalPlanPtr>* leaves) {
  if (node->kind == LogicalPlan::Kind::kScan) {
    leaves->push_back(node);
    return;
  }
  for (const auto& c : node->children) CollectSpine(c, leaves);
}

struct TreeBuilder {
  const JoinGraph* graph;
  const CardinalityEstimator* cards;
  const std::vector<size_t>* order;  // relation indices in join order
  double expansion_limit = 1.5;

  uint32_t MaskOf(size_t begin, size_t end) const {
    uint32_t m = 0;
    for (size_t i = begin; i < end; ++i) m |= 1u << (*order)[i];
    return m;
  }

  /// Left-deep tree over order[begin, end).
  LogicalPlanPtr LeftDeep(size_t begin, size_t end) const {
    LogicalPlanPtr plan = graph->scans[(*order)[begin]];
    uint32_t accumulated = 1u << (*order)[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      uint32_t next = 1u << (*order)[i];
      auto keys = graph->EdgesBetween(accumulated, next);
      double rows = keys.empty()
                        ? plan->est_rows * graph->scans[(*order)[i]]->est_rows
                        : cards->EstimateJoinRows(
                              plan->est_rows,
                              graph->scans[(*order)[i]]->est_rows, keys);
      plan = LogicalPlan::MakeJoin(plan, graph->scans[(*order)[i]], keys);
      plan->est_rows = rows;
      accumulated |= next;
    }
    return plan;
  }

  /// Recursive splitter: depth 0 -> left-deep; otherwise try to split
  /// order[begin, end) into two connected halves joined by an edge, with a
  /// non-expanding top join. Falls back to left-deep when no valid split
  /// exists.
  LogicalPlanPtr Build(size_t begin, size_t end, int depth) const {
    const size_t len = end - begin;
    if (depth <= 0 || len < 3) return LeftDeep(begin, end);
    // Candidate split points, preferring balanced halves by estimated
    // subtree volume.
    size_t best_split = 0;
    double best_imbalance = 0.0;
    bool found = false;
    for (size_t split = begin + 1; split + 1 < end; ++split) {
      uint32_t left = MaskOf(begin, split + 1);
      uint32_t right = MaskOf(split + 1, end);
      if (!graph->Connected(left) || !graph->Connected(right)) continue;
      auto keys = graph->EdgesBetween(left, right);
      if (keys.empty()) continue;
      double left_vol = 0.0, right_vol = 0.0;
      for (size_t i = begin; i <= split; ++i) {
        left_vol += graph->scans[(*order)[i]]->est_rows;
      }
      for (size_t i = split + 1; i < end; ++i) {
        right_vol += graph->scans[(*order)[i]]->est_rows;
      }
      double imbalance = std::abs(left_vol - right_vol);
      if (!found || imbalance < best_imbalance) {
        best_imbalance = imbalance;
        best_split = split;
        found = true;
      }
    }
    if (!found) return LeftDeep(begin, end);

    LogicalPlanPtr left = Build(begin, best_split + 1, depth - 1);
    LogicalPlanPtr right = Build(best_split + 1, end, depth - 1);
    auto keys = graph->EdgesBetween(MaskOf(begin, best_split + 1),
                                    MaskOf(best_split + 1, end));
    double rows = cards->EstimateJoinRows(left->est_rows, right->est_rows,
                                          keys);
    // Non-expanding guard: reject splits whose top join blows up.
    if (rows > expansion_limit * std::max(left->est_rows, right->est_rows)) {
      return LeftDeep(begin, end);
    }
    auto plan = LogicalPlan::MakeJoin(std::move(left), std::move(right), keys);
    plan->est_rows = rows;
    return plan;
  }
};

}  // namespace

Result<std::vector<BushyVariant>> BushyRewriter::MakeVariants(
    const BoundQuery& query, int max_depth) const {
  CardinalityEstimator cards(meta_, &query.relations);
  JoinGraph graph;
  COSTDB_ASSIGN_OR_RETURN(graph, BuildJoinGraph(query, cards));
  DagPlanner dag(meta_);
  LogicalPlanPtr left_deep_tree;
  COSTDB_ASSIGN_OR_RETURN(left_deep_tree, dag.PlanJoinTree(query, graph));

  std::vector<BushyVariant> variants;
  variants.push_back({dag.FinishPlan(query, graph, left_deep_tree), 0});

  std::vector<BushyVariant> rungs;
  COSTDB_ASSIGN_OR_RETURN(rungs,
                          MakeRungs(query, max_depth, graph, left_deep_tree));
  for (auto& rung : rungs) variants.push_back(std::move(rung));
  return variants;
}

Result<std::vector<BushyVariant>> BushyRewriter::MakeRungs(
    const BoundQuery& query, int max_depth, const JoinGraph& graph,
    const LogicalPlanPtr& left_deep_tree) const {
  std::vector<BushyVariant> variants;
  if (query.relations.size() < 3) return variants;

  CardinalityEstimator cards(meta_, &query.relations);
  DagPlanner dag(meta_);

  // Extract the DP's join order from the left-deep spine.
  std::vector<LogicalPlanPtr> leaves;
  CollectSpine(left_deep_tree, &leaves);
  std::vector<size_t> order;
  for (const auto& leaf : leaves) {
    for (size_t i = 0; i < query.relations.size(); ++i) {
      if (query.relations[i].alias == leaf->alias) {
        order.push_back(i);
        break;
      }
    }
  }
  if (order.size() != query.relations.size()) return variants;

  TreeBuilder builder{&graph, &cards, &order};
  std::string prev_shape = left_deep_tree->ToString();
  for (int depth = 1; depth <= max_depth; ++depth) {
    LogicalPlanPtr tree = builder.Build(0, order.size(), depth);
    std::string shape = tree->ToString();
    if (shape == prev_shape) break;  // no bushier shape exists
    prev_shape = shape;
    variants.push_back({dag.FinishPlan(query, graph, tree), depth});
  }
  return variants;
}

}  // namespace costdb
