#pragma once

#include "optimizer/bushy_rewriter.h"
#include "optimizer/dop_planner.h"
#include "optimizer/physical_planner.h"

namespace costdb {

/// Everything the bi-objective optimizer decides for one query: the plan
/// shape, the pipeline decomposition, the DOP per pipeline, and the
/// predicted time/cost. PhysicalPlanPtr keeps the tree alive for the
/// pipeline/volume pointers.
struct PlannedQuery {
  PhysicalPlanPtr plan;
  PipelineGraph pipelines;
  DopMap dops;
  PlanCostEstimate estimate;
  VolumeMap volumes;        // the optimizer's believed volumes
  int bushiness = 0;
  bool feasible = true;
  int states_explored = 0;
  /// Execution workers the facade should run this plan on (resolved from
  /// UserConstraint::workers; 0-auto becomes the DOP plan's parallelism).
  /// > 1 routes real execution to the ShardedEngine.
  int workers = 1;
};

/// Resolve the constraint's worker knob against a finished DOP plan:
/// explicit counts are honored up to max_workers; 0 (auto) becomes the
/// largest pipeline DOP the planner chose, clamped the same way — the
/// optimizer's own latency-vs-dollars answer to "how wide should this
/// query run". The result is always in [1, max_workers], so downstream
/// code reads PlannedQuery::workers without re-clamping.
int ResolveWorkerCount(const UserConstraint& constraint, const DopMap& dops,
                       int max_workers = 8);

struct BiObjectiveOptions {
  DopPlannerOptions dop;
  PhysicalPlannerOptions physical;
  int max_bushy_depth = 2;
  bool explore_bushy = true;
  /// Cap on UserConstraint::workers == 0 auto-resolution (the facade
  /// syncs this from DatabaseOptions::max_workers).
  int max_workers = 8;
};

/// The paper's two-stage bi-objective optimizer (Section 3.2):
///   stage 1 (DAG planning) fixes a left-deep shape;
///   stage 2 (DOP planning) assigns per-pipeline parallelism under the
///   user's latency-SLA or budget constraint, exploring a ladder of
///   increasingly bushy variants of the chosen join order and keeping the
///   best shape under the constraint.
/// The Pareto problem is deliberately downgraded to constrained
/// single-objective search to keep optimizer complexity near a classic
/// cost-based optimizer (experiment E3 quantifies this).
class BiObjectiveOptimizer {
 public:
  BiObjectiveOptimizer(const MetadataService* meta,
                       const CostEstimator* estimator,
                       BiObjectiveOptions options = BiObjectiveOptions())
      : meta_(meta), estimator_(estimator), options_(options) {}

  Result<PlannedQuery> Plan(const BoundQuery& query,
                            const UserConstraint& constraint) const;

  Result<PlannedQuery> PlanSql(const std::string& sql,
                               const UserConstraint& constraint) const;

  /// Plan one already-shaped logical plan (no bushy exploration) — used by
  /// experiments that pin the shape.
  Result<PlannedQuery> PlanShaped(const BoundQuery& query,
                                  const LogicalPlanPtr& logical,
                                  const UserConstraint& constraint) const;

  const MetadataService* meta() const { return meta_; }
  const CostEstimator* estimator() const { return estimator_; }

 private:
  const MetadataService* meta_;
  const CostEstimator* estimator_;
  BiObjectiveOptions options_;
};

}  // namespace costdb
