#pragma once

#include <limits>

#include "cost/cost_model.h"

namespace costdb {

/// What the user asks for instead of a T-shirt size (paper Section 2):
/// either a latency SLA (minimize dollars subject to it) or a cloud budget
/// (minimize latency subject to it).
struct UserConstraint {
  enum class Mode {
    kMinCostUnderSla,
    kMinLatencyUnderBudget,
  };
  Mode mode = Mode::kMinCostUnderSla;
  Seconds latency_sla = std::numeric_limits<double>::infinity();
  Dollars budget = std::numeric_limits<double>::infinity();
  /// Execution workers for real (non-simulated) runs: 1 = the single-node
  /// LocalEngine, > 1 = the partitioned ShardedEngine with that many
  /// workers, 0 = let the optimizer pick from its DOP plan (the pipeline
  /// parallelism it already priced under this constraint, clamped to the
  /// node's cores). Part of the plan-cache key.
  int workers = 1;

  static UserConstraint Sla(Seconds sla) {
    UserConstraint c;
    c.mode = Mode::kMinCostUnderSla;
    c.latency_sla = sla;
    return c;
  }
  static UserConstraint Budget(Dollars budget) {
    UserConstraint c;
    c.mode = Mode::kMinLatencyUnderBudget;
    c.budget = budget;
    return c;
  }
  UserConstraint WithWorkers(int n) const {
    UserConstraint c = *this;
    c.workers = n;
    return c;
  }
};

struct DopPlannerOptions {
  int max_dop = 256;  // per-pipeline node cap
  /// Co-termination pruning (paper Section 3.2): concurrent sibling
  /// pipelines are rebalanced so C1/T1(d1) ~= C2/T2(d2) instead of being
  /// searched independently.
  bool use_cotermination = true;
  /// Exhaustive per-pipeline downsizing sweep after the greedy escalation.
  /// More estimator calls; the co-termination heuristic recovers most of
  /// its waste reduction at a fraction of the states (ablation E5).
  bool use_trim_phase = true;
};

struct DopPlanResult {
  DopMap dops;
  PlanCostEstimate estimate;
  bool feasible = true;       // constraint achievable?
  int states_explored = 0;    // cost-estimator invocations (search effort)
};

/// The second stage of the paper's two-stage optimizer: assign a DOP to
/// every pipeline of an already-shaped plan so that the user constraint is
/// met at minimal cost (or minimal latency within budget). Greedy
/// steepest-descent over per-pipeline DOP moves, with optional
/// co-termination rebalancing of concurrent siblings.
class DopPlanner {
 public:
  DopPlanner(const CostEstimator* estimator,
             DopPlannerOptions options = DopPlannerOptions())
      : estimator_(estimator), options_(options) {}

  DopPlanResult Plan(const PipelineGraph& graph, const VolumeMap& volumes,
                     const UserConstraint& constraint) const;

  /// Exhaustive grid search over per-pipeline DOP candidates; returns the
  /// Pareto frontier of (latency, cost). Exponential — the baseline the
  /// paper argues against (E3) and the oracle for small plans.
  std::vector<PlanCostEstimate> EnumeratePareto(const PipelineGraph& graph,
                                                const VolumeMap& volumes,
                                                int* states_explored) const;

  /// Apply only the co-termination rebalancing to an existing assignment
  /// (exposed for the E5 ablation and for the DOP monitor's replans).
  void CoTerminateForTest(const PipelineGraph& graph, const VolumeMap& volumes,
                          DopMap* dops, int* states) const {
    CoTerminate(graph, volumes, dops, states);
  }

 private:
  std::vector<int> CandidateDops() const;

  /// Rebalance concurrent sibling groups: shrink every sibling to the
  /// smallest DOP whose duration still matches the group's slowest member.
  void CoTerminate(const PipelineGraph& graph, const VolumeMap& volumes,
                   DopMap* dops, int* states) const;

  const CostEstimator* estimator_;
  DopPlannerOptions options_;
};

}  // namespace costdb
