#pragma once

#include <vector>

#include "optimizer/dag_planner.h"

namespace costdb {

/// One join-shape variant produced by the rewriter.
struct BushyVariant {
  LogicalPlanPtr plan;   // full plan (finishing stages applied)
  int bushiness = 0;     // 0 = the original left-deep plan
};

/// The paper's bushy-plan exploration, run at DOP-planning time: starting
/// from the left-deep join order chosen by DAG planning, reorganize the
/// spine into a ladder of increasingly bushy trees. A split is admitted
/// only when the two halves are internally connected, an equi-join edge
/// crosses them, and the resulting join is non-expanding (bounded
/// cardinality, cf. MemSQL-style safe bushy joins). Bushier trees expose
/// more concurrent pipelines — potentially lower latency at a (bounded)
/// machine-time premium; the DOP planner prices each rung and the
/// bi-objective controller picks under the user constraint.
class BushyRewriter {
 public:
  explicit BushyRewriter(const MetadataService* meta) : meta_(meta) {}

  /// Variants[0] is always the left-deep plan; deeper entries split the
  /// spine recursively up to `max_depth` times.
  Result<std::vector<BushyVariant>> MakeVariants(const BoundQuery& query,
                                                 int max_depth) const;

  /// Only the bushy rungs (bushiness > 0), built on a join graph and
  /// left-deep join tree the caller already computed — lets the pass
  /// pipeline reuse DAG planning's DP instead of re-running it.
  Result<std::vector<BushyVariant>> MakeRungs(
      const BoundQuery& query, int max_depth, const JoinGraph& graph,
      const LogicalPlanPtr& left_deep_tree) const;

 private:
  const MetadataService* meta_;
};

}  // namespace costdb
