#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/expression.h"
#include "sql/binder.h"

namespace costdb {

/// Classic statistics-driven cardinality estimation: histogram selectivity
/// for numeric predicates, 1/NDV for equality, independence across
/// conjuncts, and |L||R| / max(ndv) for equi-joins. Deliberately simple and
/// explainable — the paper's position is that estimation errors are
/// inevitable and should be absorbed at run time by the DOP monitor, not
/// fought with opaque models.
class CardinalityEstimator {
 public:
  /// `meta` provides the (possibly error-injected) statistics that the
  /// optimizer sees. With `use_true_stats`, ground-truth statistics are
  /// consulted instead — that is how the execution simulator derives the
  /// reality the optimizer's estimates are judged against.
  CardinalityEstimator(const MetadataService* meta,
                       const std::vector<BoundRelation>* relations,
                       bool use_true_stats = false);

  /// Selectivity in [0,1] of one bound predicate over its relation(s).
  double Selectivity(const ExprPtr& predicate) const;

  /// Rows surviving a scan of `alias` with the given pushed filters.
  double EstimateScanRows(const std::string& alias,
                          const std::vector<ExprPtr>& filters) const;

  /// Raw row count of the relation behind `alias` (as served by stats).
  double BaseRows(const std::string& alias) const;

  /// Join cardinality for `left_rows x right_rows` with equi-key pairs.
  double EstimateJoinRows(
      double left_rows, double right_rows,
      const std::vector<std::pair<ExprPtr, ExprPtr>>& keys) const;

  /// Number of groups produced by grouping `input_rows` on `group_cols`.
  double EstimateGroupCount(double input_rows,
                            const std::vector<ExprPtr>& group_by) const;

  /// NDV of a qualified column ("alias.col"), falling back to `fallback`.
  double ColumnNdv(const std::string& qualified, double fallback) const;

  /// Average width in bytes of a qualified column.
  double ColumnWidth(const std::string& qualified) const;

 private:
  const ColumnStats* FindColumn(const std::string& qualified,
                                double* table_rows) const;
  const TableStats* StatsFor(const std::string& table) const;

  const MetadataService* meta_;
  bool use_true_stats_;
  std::map<std::string, std::string> alias_to_table_;
};

}  // namespace costdb
