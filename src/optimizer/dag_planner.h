#pragma once

#include "common/result.h"
#include "optimizer/join_graph.h"

namespace costdb {

/// The paper's "DAG planning" stage: traditional single-machine query
/// optimization. Pushes filters into scans, prunes columns, and orders
/// joins with a left-deep dynamic program over the join graph (bushy
/// shapes are deliberately *not* explored here — the paper defers them to
/// DOP planning, see optimizer/bushy_rewriter.h). Produces a logical plan
/// annotated with cardinality estimates.
class DagPlanner {
 public:
  explicit DagPlanner(const MetadataService* meta) : meta_(meta) {}

  /// Full pipeline: join graph -> left-deep join tree -> finishing stages.
  Result<LogicalPlanPtr> Plan(const BoundQuery& query) const;

  /// Left-deep DP over the join graph (exposed for the bushy rewriter,
  /// which re-shapes this tree's spine).
  Result<LogicalPlanPtr> PlanJoinTree(const BoundQuery& query,
                                      const JoinGraph& graph) const;

  /// Apply residual filters, aggregation, HAVING, projection, ORDER BY and
  /// LIMIT on top of a join tree.
  LogicalPlanPtr FinishPlan(const BoundQuery& query, const JoinGraph& graph,
                            LogicalPlanPtr joined) const;

 private:
  const MetadataService* meta_;
};

}  // namespace costdb
