#include "optimizer/passes.h"

#include <algorithm>

#include "cost/operator_models.h"
#include "exec/fused.h"
#include "optimizer/cardinality.h"

namespace costdb {

Result<BoundQuery> BindSql(const MetadataService* meta,
                           const std::string& sql) {
  Binder binder(meta);
  return binder.BindSql(sql);
}

Status BindPass::Run(QueryPlanContext* ctx) const {
  if (ctx->bound) return Status::OK();
  COSTDB_ASSIGN_OR_RETURN(ctx->query, BindSql(ctx->meta, ctx->sql));
  ctx->bound = true;
  return Status::OK();
}

Status DagPlanPass::Run(QueryPlanContext* ctx) const {
  if (!ctx->bound) return Status::Internal("dag_plan: query not bound");
  CardinalityEstimator cards(ctx->meta, &ctx->query.relations);
  COSTDB_ASSIGN_OR_RETURN(ctx->join_graph, BuildJoinGraph(ctx->query, cards));
  DagPlanner dag(ctx->meta);
  COSTDB_ASSIGN_OR_RETURN(ctx->left_deep_join_tree,
                          dag.PlanJoinTree(ctx->query, ctx->join_graph));
  ctx->has_join_graph = true;
  LogicalPlanPtr plan =
      dag.FinishPlan(ctx->query, ctx->join_graph, ctx->left_deep_join_tree);
  ctx->variants.insert(ctx->variants.begin(), {std::move(plan), 0});
  return Status::OK();
}

Status BushyRewritePass::Run(QueryPlanContext* ctx) const {
  if (!ctx->bound) return Status::Internal("bushy_rewrite: query not bound");
  BushyRewriter rewriter(ctx->meta);
  std::vector<BushyVariant> variants;
  if (ctx->has_join_graph) {
    // Reuse DAG planning's join graph and spine: rungs only, no second DP.
    COSTDB_ASSIGN_OR_RETURN(
        variants,
        rewriter.MakeRungs(ctx->query, ctx->options.max_bushy_depth,
                           ctx->join_graph, ctx->left_deep_join_tree));
  } else {
    COSTDB_ASSIGN_OR_RETURN(variants,
                            rewriter.MakeVariants(ctx->query,
                                                  ctx->options.max_bushy_depth));
  }
  for (auto& v : variants) {
    // When a base shape is already present, append only the genuinely
    // bushy rungs so this pass composes with DagPlanPass.
    if (v.bushiness > 0 || ctx->variants.empty()) {
      ctx->variants.push_back(std::move(v));
    }
  }
  return Status::OK();
}

Status PhysicalPlanPass::Run(QueryPlanContext* ctx) const {
  if (ctx->variants.empty()) {
    return Status::Internal("physical_plan: no logical variants to plan");
  }
  CardinalityEstimator cards(ctx->meta, &ctx->query.relations);
  for (const auto& variant : ctx->variants) {
    PhysicalPlanner physical(ctx->meta, &ctx->query.relations,
                             ctx->options.physical);
    auto plan = physical.Plan(variant.plan);
    if (!plan.ok()) continue;  // a variant may be unplannable; price the rest
    PlannedQuery candidate;
    candidate.plan = std::move(*plan);
    candidate.pipelines = BuildPipelines(candidate.plan.get());
    candidate.volumes = ComputeVolumes(candidate.plan.get(), cards);
    candidate.bushiness = variant.bushiness;
    ctx->candidates.push_back(std::move(candidate));
  }
  if (ctx->candidates.empty()) {
    return Status::Internal("physical_plan: no variant could be planned");
  }
  return Status::OK();
}

namespace {

/// Scan leaf reachable from `child` through exchanges only (the shapes the
/// engine can run fused: nothing between the fused kernel and its consumer
/// but data movement). nullptr when any other operator intervenes.
PhysicalPlan* ScanThroughExchanges(const PhysicalPlanPtr& child) {
  PhysicalPlan* n = child.get();
  while (n != nullptr && n->kind == PhysicalPlan::Kind::kExchange &&
         n->children.size() == 1) {
    n = n->children[0].get();
  }
  return (n != nullptr && n->kind == PhysicalPlan::Kind::kTableScan) ? n
                                                                     : nullptr;
}

/// All keys are bare references to columns the scan outputs — the fused
/// probe hashes them straight off the borrowed row-group payloads.
bool KeysAreScanColumns(const std::vector<ExprPtr>& keys,
                        const PhysicalPlan& scan) {
  if (keys.empty()) return false;
  for (const auto& k : keys) {
    if (k == nullptr || k->kind != Expr::Kind::kColumn) return false;
    if (scan.FindColumn(k->column) == static_cast<size_t>(-1)) return false;
  }
  return true;
}

/// Bottom-up fusion annotation of one candidate plan. Scans decide first
/// (cost-modeled), then probes/aggregates ride on a fused (or filterless)
/// scan when their shape has an instantiation.
void AnnotateFusion(PhysicalPlan* node, const VolumeMap& volumes,
                    const HardwareCalibration& hw) {
  if (node == nullptr) return;
  for (auto& c : node->children) AnnotateFusion(c.get(), volumes, hw);
  const FusedKernelRegistry& registry = FusedKernelRegistry::Global();

  if (node->kind == PhysicalPlan::Kind::kTableScan &&
      !node->scan_filters.empty()) {
    ExprPtr combined = CombineConjuncts(node->scan_filters);
    if (combined != nullptr &&
        registry.CanCompile(*combined, node->output_names,
                            node->output_types)) {
      NodeVolumes v;
      auto it = volumes.find(node);
      if (it != volumes.end()) v = it->second;
      const double rows = v.source_rows;
      const double selectivity =
          rows > 0.0 ? std::min(1.0, v.out_rows / rows) : 1.0;
      const double batches = SurvivingScanMorsels(*node);
      // dop cancels out of the comparison; price at 1 node.
      const Seconds interpreted = InterpretedFilterChainTime(
          hw, rows, static_cast<int>(node->scan_filters.size()), selectivity,
          batches, 1);
      const Seconds fused = FusedFilterChainTime(hw, rows, batches, 1);
      node->fuse_scan_filter = fused < interpreted;
    }
  }

  if (node->kind == PhysicalPlan::Kind::kHashJoin &&
      !node->children.empty()) {
    PhysicalPlan* scan = ScanThroughExchanges(node->children[0]);
    if (scan != nullptr &&
        (scan->scan_filters.empty() || scan->fuse_scan_filter) &&
        KeysAreScanColumns(node->probe_keys, *scan)) {
      node->fuse_probe = true;
    }
  }

  if (node->kind == PhysicalPlan::Kind::kHashAggregate &&
      node->group_by.empty() && node->children.size() == 1) {
    PhysicalPlan* scan = ScanThroughExchanges(node->children[0]);
    if (scan != nullptr &&
        (scan->scan_filters.empty() || scan->fuse_scan_filter)) {
      std::vector<FusedAggSpec> specs;
      if (registry.CompileAggregates(node->aggregates, scan->output_names,
                                     scan->output_types, &specs)) {
        node->fuse_aggregate = true;
      }
    }
  }
}

}  // namespace

Status FuseKernelsPass::Run(QueryPlanContext* ctx) const {
  if (ctx->candidates.empty()) {
    return Status::Internal("fuse_kernels: no physical candidates");
  }
  if (ctx->estimator == nullptr) return Status::OK();  // nothing to price with
  const HardwareCalibration& hw = ctx->estimator->hardware();
  for (auto& candidate : ctx->candidates) {
    AnnotateFusion(candidate.plan.get(), candidate.volumes, hw);
  }
  return Status::OK();
}

Status DopPlanPass::Run(QueryPlanContext* ctx) const {
  if (ctx->candidates.empty()) {
    return Status::Internal("dop_plan: no physical candidates");
  }
  DopPlanner planner(ctx->estimator, ctx->options.dop);
  bool have_best = false;
  int total_states = 0;
  for (auto& candidate : ctx->candidates) {
    DopPlanResult dop =
        planner.Plan(candidate.pipelines, candidate.volumes, ctx->constraint);
    candidate.dops = dop.dops;
    candidate.estimate = dop.estimate;
    candidate.feasible = dop.feasible;
    candidate.states_explored = dop.states_explored;
    total_states += dop.states_explored;
    if (!have_best) {
      ctx->best = std::move(candidate);
      have_best = true;
      continue;
    }
    // Prefer feasible over infeasible; then the constrained objective.
    if (candidate.feasible && !ctx->best.feasible) {
      ctx->best = std::move(candidate);
      continue;
    }
    if (!candidate.feasible && ctx->best.feasible) continue;
    bool better;
    if (ctx->constraint.mode == UserConstraint::Mode::kMinCostUnderSla) {
      better = candidate.feasible
                   ? candidate.estimate.cost < ctx->best.estimate.cost
                   : candidate.estimate.latency < ctx->best.estimate.latency;
    } else {
      better = candidate.estimate.latency < ctx->best.estimate.latency;
    }
    if (better) ctx->best = std::move(candidate);
  }
  ctx->candidates.clear();  // moved-from shells
  if (!have_best) return Status::Internal("dop_plan: no plannable candidate");
  ctx->best.states_explored = total_states;
  ctx->best.workers = ResolveWorkerCount(ctx->constraint, ctx->best.dops,
                                         ctx->options.max_workers);
  ctx->planned = true;
  return Status::OK();
}

PassPipeline MakeDefaultPassPipeline(bool explore_bushy) {
  PassPipeline passes;
  passes.push_back(std::make_unique<BindPass>());
  passes.push_back(std::make_unique<DagPlanPass>());
  if (explore_bushy) passes.push_back(std::make_unique<BushyRewritePass>());
  passes.push_back(std::make_unique<PhysicalPlanPass>());
  passes.push_back(std::make_unique<FuseKernelsPass>());
  passes.push_back(std::make_unique<DopPlanPass>());
  return passes;
}

Status RunPassPipeline(const PassPipeline& passes, QueryPlanContext* ctx) {
  for (const auto& pass : passes) {
    Status s = pass->Run(ctx);
    if (!s.ok()) {
      return s.WithContext(std::string("optimizer pass '") + pass->name() +
                           "'");
    }
  }
  if (!ctx->planned) {
    return Status::Internal("pass pipeline finished without producing a plan");
  }
  return Status::OK();
}

}  // namespace costdb
