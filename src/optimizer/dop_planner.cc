#include "optimizer/dop_planner.h"

#include <algorithm>
#include <map>

namespace costdb {

std::vector<int> DopPlanner::CandidateDops() const {
  std::vector<int> dops;
  for (int d = 1; d <= options_.max_dop; d *= 2) dops.push_back(d);
  return dops;
}

void DopPlanner::CoTerminate(const PipelineGraph& graph,
                             const VolumeMap& volumes, DopMap* dops,
                             int* states) const {
  // Sibling groups: pipelines sharing a consumer.
  std::map<int, std::vector<const Pipeline*>> groups;
  for (const auto& p : graph.pipelines) {
    for (int dep : p.dependencies) {
      for (const auto& q : graph.pipelines) {
        if (q.id == dep) groups[p.id].push_back(&q);
      }
    }
  }
  auto candidates = CandidateDops();
  for (auto& [consumer, siblings] : groups) {
    if (siblings.size() < 2) continue;
    // Slowest sibling at current DOPs sets the group target.
    Seconds target = 0.0;
    for (const auto* s : siblings) {
      Seconds t = estimator_->PipelineDuration(*s, (*dops)[s->id], volumes);
      ++*states;
      target = std::max(target, t);
    }
    // Every other sibling shrinks to the smallest DOP that still finishes
    // by the target: C_i / T_i(d_i) aligned across the group.
    for (const auto* s : siblings) {
      for (int d : candidates) {
        Seconds t = estimator_->PipelineDuration(*s, d, volumes);
        ++*states;
        if (t <= target * 1.05) {
          if (d < (*dops)[s->id]) (*dops)[s->id] = d;
          break;
        }
      }
    }
  }
}

DopPlanResult DopPlanner::Plan(const PipelineGraph& graph,
                               const VolumeMap& volumes,
                               const UserConstraint& constraint) const {
  DopPlanResult result;
  int states = 0;
  auto candidates = CandidateDops();
  DopMap dops;
  for (const auto& p : graph.pipelines) dops[p.id] = 1;

  auto evaluate = [&](const DopMap& d) {
    ++states;
    return estimator_->EstimatePlan(graph, d, volumes);
  };
  PlanCostEstimate current = evaluate(dops);

  auto objective_met = [&](const PlanCostEstimate& e) {
    return constraint.mode == UserConstraint::Mode::kMinCostUnderSla
               ? e.latency <= constraint.latency_sla
               : e.cost <= constraint.budget;
  };

  // Phase 1 — greedy escalation: repeatedly take the single-pipeline DOP
  // increase with the best latency gain per extra dollar.
  const int kMaxMoves = 256;
  for (int move = 0; move < kMaxMoves; ++move) {
    bool need_speed =
        constraint.mode == UserConstraint::Mode::kMinCostUnderSla
            ? current.latency > constraint.latency_sla
            : true;
    if (!need_speed) break;
    int best_pipeline = -1;
    int best_dop = 0;
    double best_ratio = 0.0;
    PlanCostEstimate best_estimate;
    for (const auto& p : graph.pipelines) {
      int cur = dops[p.id];
      auto it = std::find(candidates.begin(), candidates.end(), cur);
      if (it == candidates.end() || it + 1 == candidates.end()) continue;
      int next = *(it + 1);
      DopMap trial = dops;
      trial[p.id] = next;
      PlanCostEstimate est = evaluate(trial);
      double latency_gain = current.latency - est.latency;
      if (latency_gain <= 1e-12) continue;
      if (constraint.mode == UserConstraint::Mode::kMinLatencyUnderBudget &&
          est.cost > constraint.budget) {
        continue;
      }
      double extra_cost = std::max(est.cost - current.cost, 1e-12);
      double ratio = latency_gain / extra_cost;
      if (est.cost <= current.cost) ratio = 1e18 + latency_gain;  // free win
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_pipeline = p.id;
        best_dop = next;
        best_estimate = est;
      }
    }
    if (best_pipeline < 0) break;  // no improving move
    dops[best_pipeline] = best_dop;
    current = best_estimate;
  }

  // Phase 2 — co-termination rebalancing of concurrent siblings.
  if (options_.use_cotermination) {
    CoTerminate(graph, volumes, &dops, &states);
    current = evaluate(dops);
  }

  // Phase 3 — cost trimming: lower any DOP whose reduction keeps the
  // constraint satisfied and strictly reduces cost.
  bool improved = options_.use_trim_phase;
  while (improved) {
    improved = false;
    for (const auto& p : graph.pipelines) {
      int cur = dops[p.id];
      if (cur <= 1) continue;
      auto it = std::find(candidates.begin(), candidates.end(), cur);
      if (it == candidates.begin() || it == candidates.end()) continue;
      DopMap trial = dops;
      trial[p.id] = *(it - 1);
      PlanCostEstimate est = evaluate(trial);
      bool ok = constraint.mode == UserConstraint::Mode::kMinCostUnderSla
                    ? est.latency <= constraint.latency_sla
                    : est.cost <= constraint.budget &&
                          est.latency <= current.latency * 1.001;
      if (ok && est.cost < current.cost) {
        dops = trial;
        current = est;
        improved = true;
      }
    }
  }

  result.dops = dops;
  result.estimate = current;
  result.feasible = objective_met(current);
  result.states_explored = states;
  return result;
}

std::vector<PlanCostEstimate> DopPlanner::EnumeratePareto(
    const PipelineGraph& graph, const VolumeMap& volumes,
    int* states_explored) const {
  auto candidates = CandidateDops();
  std::vector<int> ids;
  for (const auto& p : graph.pipelines) ids.push_back(p.id);
  std::vector<PlanCostEstimate> all;
  int states = 0;
  // Odometer over the full cartesian space.
  std::vector<size_t> idx(ids.size(), 0);
  while (true) {
    DopMap dops;
    for (size_t i = 0; i < ids.size(); ++i) dops[ids[i]] = candidates[idx[i]];
    all.push_back(estimator_->EstimatePlan(graph, dops, volumes));
    ++states;
    size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < candidates.size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) break;
  }
  if (states_explored != nullptr) *states_explored = states;
  // Pareto filter on (latency, cost).
  std::vector<PlanCostEstimate> frontier;
  for (const auto& e : all) {
    bool dominated = false;
    for (const auto& o : all) {
      if (o.latency <= e.latency && o.cost <= e.cost &&
          (o.latency < e.latency || o.cost < e.cost)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(e);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const PlanCostEstimate& a, const PlanCostEstimate& b) {
              return a.latency < b.latency;
            });
  return frontier;
}

}  // namespace costdb
