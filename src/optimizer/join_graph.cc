#include "optimizer/join_graph.h"

#include <map>
#include <set>

namespace costdb {

namespace {
std::string AliasOf(const std::string& qualified) {
  auto dot = qualified.find('.');
  return dot == std::string::npos ? qualified : qualified.substr(0, dot);
}
}  // namespace

std::vector<std::pair<ExprPtr, ExprPtr>> JoinGraph::EdgesBetween(
    uint32_t left, uint32_t right) const {
  std::vector<std::pair<ExprPtr, ExprPtr>> keys;
  for (const auto& e : edges) {
    uint32_t l = 1u << e.left_rel;
    uint32_t r = 1u << e.right_rel;
    if ((left & l) && (right & r)) {
      keys.emplace_back(e.left_key, e.right_key);
    } else if ((left & r) && (right & l)) {
      keys.emplace_back(e.right_key, e.left_key);
    }
  }
  return keys;
}

bool JoinGraph::Connected(uint32_t set) const {
  if (set == 0) return false;
  uint32_t seed = set & static_cast<uint32_t>(-static_cast<int32_t>(set));
  uint32_t reached = seed;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& e : edges) {
      uint32_t l = 1u << e.left_rel;
      uint32_t r = 1u << e.right_rel;
      if (!(set & l) || !(set & r)) continue;
      if ((reached & l) && !(reached & r)) {
        reached |= r;
        grew = true;
      } else if ((reached & r) && !(reached & l)) {
        reached |= l;
        grew = true;
      }
    }
  }
  return reached == set;
}

Result<JoinGraph> BuildJoinGraph(const BoundQuery& query,
                                 const CardinalityEstimator& cards) {
  const size_t n = query.relations.size();
  JoinGraph graph;
  std::map<std::string, size_t> alias_index;
  for (size_t i = 0; i < n; ++i) alias_index[query.relations[i].alias] = i;

  std::vector<std::vector<ExprPtr>> pushed(n);
  for (const auto& f : query.filters) {
    std::vector<std::string> cols;
    f->CollectColumns(&cols);
    std::set<std::string> aliases;
    for (const auto& c : cols) aliases.insert(AliasOf(c));
    if (aliases.size() <= 1) {
      size_t rel = aliases.empty() ? 0 : alias_index.at(*aliases.begin());
      pushed[rel].push_back(f);
      continue;
    }
    std::string lcol, rcol;
    if (aliases.size() == 2 && MatchEquiJoin(f, &lcol, &rcol)) {
      JoinGraphEdge e;
      e.left_rel = alias_index.at(AliasOf(lcol));
      e.right_rel = alias_index.at(AliasOf(rcol));
      const auto& rel_l = query.relations[e.left_rel];
      std::string base = lcol.substr(lcol.find('.') + 1);
      LogicalType lt = LogicalType::kInt64;
      auto idx = rel_l.handle->ColumnIndex(base);
      if (idx.ok()) lt = rel_l.handle->columns()[*idx].type;
      e.left_key = Expr::MakeColumn(lcol, lt);
      e.right_key = Expr::MakeColumn(rcol, lt);
      graph.edges.push_back(std::move(e));
      continue;
    }
    graph.residual_filters.push_back(f);
  }

  // Column pruning.
  std::vector<std::string> used;
  auto collect = [&used](const ExprPtr& e) {
    if (e) e->CollectColumns(&used);
  };
  for (const auto& f : query.filters) collect(f);
  for (const auto& e : query.select_exprs) collect(e);
  for (const auto& g : query.group_by) collect(g);
  for (const auto& a : query.aggregates) collect(a);
  collect(query.having);
  for (const auto& o : query.order_by) collect(o.expr);
  std::set<std::string> used_set(used.begin(), used.end());

  graph.scans.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& rel = query.relations[i];
    std::vector<std::string> columns;
    for (const auto& col : rel.handle->columns()) {
      std::string q = rel.alias + "." + col.name;
      if (used_set.count(q)) columns.push_back(q);
    }
    if (columns.empty() && !rel.handle->columns().empty()) {
      columns.push_back(rel.alias + "." + rel.handle->columns()[0].name);
    }
    graph.scans[i] =
        LogicalPlan::MakeScan(rel.handle, rel.alias, columns, pushed[i]);
    graph.scans[i]->est_rows = cards.EstimateScanRows(rel.alias, pushed[i]);
  }
  return graph;
}

}  // namespace costdb
