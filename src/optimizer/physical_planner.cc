#include "optimizer/physical_planner.h"

#include <utility>

#include "storage/partition.h"

namespace costdb {

namespace {

/// Hash-partitioning of the base table feeding `node`. The walk is
/// deliberately conservative — only filters (which preserve both row
/// partitioning and column names) and earlier kLocal pass-throughs are
/// crossed; projections may rename the partition column, so they stop
/// detection. The sharded engine's staleness validator walks the chains
/// this detection *creates* (sharded_engine.cc LocalExchangeSource); the
/// partitioning check itself is shared (ScanHashPartitioning).
bool HashPartitionSourceOf(const PhysicalPlan* node,
                           std::string* qualified_column,
                           size_t* partitions) {
  while (node->kind == PhysicalPlan::Kind::kFilter ||
         (node->kind == PhysicalPlan::Kind::kExchange &&
          node->exchange_kind == ExchangeKind::kLocal)) {
    node = node->children[0].get();
  }
  auto [parts, qualified] = ScanHashPartitioning(*node);
  if (parts == 0) return false;
  *qualified_column = std::move(qualified);
  *partitions = parts;
  return true;
}

/// True when `keys` contains a plain reference to `qualified_column`;
/// reports its position so the paired key on the other side can be
/// checked.
bool KeysReferenceColumn(const std::vector<ExprPtr>& keys,
                         const std::string& qualified_column, size_t* index) {
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i]->kind == Expr::Kind::kColumn &&
        keys[i]->column == qualified_column) {
      *index = i;
      return true;
    }
  }
  return false;
}

}  // namespace

double PhysicalPlanner::RowBytes(const std::vector<std::string>& names,
                                 const std::vector<LogicalType>& types) const {
  double total = 0.0;
  for (size_t i = 0; i < names.size(); ++i) {
    if (PhysicalTypeOf(types[i]) == PhysicalType::kString) {
      total += cards_.ColumnWidth(names[i]) + 4.0;
    } else {
      total += TypeWidthBytes(types[i]);
    }
  }
  return std::max(total, 1.0);
}

PhysicalPlanPtr PhysicalPlanner::WrapExchange(PhysicalPlanPtr child,
                                              ExchangeKind kind) const {
  auto ex = std::make_shared<PhysicalPlan>();
  ex->kind = PhysicalPlan::Kind::kExchange;
  ex->exchange_kind = kind;
  ex->output_names = child->output_names;
  ex->output_types = child->output_types;
  ex->est_rows = child->est_rows;
  ex->est_row_bytes = child->est_row_bytes;
  ex->children = {std::move(child)};
  return ex;
}

Result<PhysicalPlanPtr> PhysicalPlanner::Plan(
    const LogicalPlanPtr& logical) const {
  PhysicalPlanPtr root;
  COSTDB_ASSIGN_OR_RETURN(root, Lower(logical));
  // The coordinator receives the final result: make sure the top of the
  // plan funnels to one node.
  if (root->kind != PhysicalPlan::Kind::kExchange ||
      root->exchange_kind != ExchangeKind::kGather) {
    bool gathered = false;
    // A sort already gathers; a limit/project over a gathered child keeps it.
    const PhysicalPlan* p = root.get();
    while (p != nullptr) {
      if (p->kind == PhysicalPlan::Kind::kExchange) {
        gathered = p->exchange_kind == ExchangeKind::kGather;
        break;
      }
      if (p->kind == PhysicalPlan::Kind::kSort ||
          (p->kind == PhysicalPlan::Kind::kHashAggregate &&
           p->group_by.empty())) {
        gathered = true;
        break;
      }
      if (p->children.empty()) break;
      if (p->kind == PhysicalPlan::Kind::kFilter ||
          p->kind == PhysicalPlan::Kind::kProject ||
          p->kind == PhysicalPlan::Kind::kLimit) {
        p = p->children[0].get();
        continue;
      }
      break;
    }
    if (!gathered) root = WrapExchange(std::move(root), ExchangeKind::kGather);
  }
  return root;
}

Result<PhysicalPlanPtr> PhysicalPlanner::Lower(
    const LogicalPlanPtr& node) const {
  auto p = std::make_shared<PhysicalPlan>();
  p->est_rows = node->est_rows;
  switch (node->kind) {
    case LogicalPlan::Kind::kScan: {
      p->kind = PhysicalPlan::Kind::kTableScan;
      p->table = node->table;
      p->alias = node->alias;
      p->scan_filters = node->pushed_filters;
      for (const auto& qualified : node->scan_columns) {
        std::string base = qualified.substr(qualified.find('.') + 1);
        size_t idx = 0;
        COSTDB_ASSIGN_OR_RETURN(idx, node->table->ColumnIndex(base));
        p->scan_column_indices.push_back(idx);
        p->output_names.push_back(qualified);
        p->output_types.push_back(node->table->columns()[idx].type);
      }
      p->est_row_bytes = RowBytes(p->output_names, p->output_types);
      // Bytes read from object storage: selected columns of every
      // non-pruned row group. Zone-map pruning is metadata, so the planner
      // may consult it without peeking at data.
      double prune_frac = 0.0;
      for (const auto& f : p->scan_filters) {
        std::string col;
        CompareOp op;
        Value constant;
        if (!MatchColumnCompareConstant(f, &col, &op, &constant)) continue;
        std::string base = col.substr(col.find('.') + 1);
        auto frac = node->table->PruneFraction(base, op, constant);
        if (frac.ok()) prune_frac = std::max(prune_frac, *frac);
      }
      // Derive scanned bytes from the *served* statistics so that injected
      // cardinality misestimation consistently distorts the whole scan
      // estimate (rows and bytes), like a stale catalog would.
      double base_rows = cards_.BaseRows(node->alias);
      p->prune_keep_fraction = 1.0 - prune_frac;
      p->est_source_rows = base_rows * p->prune_keep_fraction;
      p->est_scanned_bytes = p->est_source_rows * p->est_row_bytes;
      return PhysicalPlanPtr(p);
    }
    case LogicalPlan::Kind::kJoin: {
      p->kind = PhysicalPlan::Kind::kHashJoin;
      PhysicalPlanPtr probe, build;
      COSTDB_ASSIGN_OR_RETURN(probe, Lower(node->children[0]));
      COSTDB_ASSIGN_OR_RETURN(build, Lower(node->children[1]));
      // Hash the smaller side regardless of the logical join order
      // (downstream consumers reference columns by name, so the physical
      // column order is free to change).
      const bool swap_sides = build->est_rows > probe->est_rows;
      if (swap_sides) std::swap(probe, build);
      for (const auto& [l, r] : node->join_keys) {
        p->probe_keys.push_back(swap_sides ? r : l);
        p->build_keys.push_back(swap_sides ? l : r);
      }
      // Partition-wise join: when both sides arrive hash-partitioned on a
      // joined key pair with the same partition count, matching rows are
      // already co-located — kLocal pass-through exchanges move nothing
      // and cost ~nothing, strictly dominating broadcast and shuffle.
      bool copartitioned = false;
      size_t pi = 0, bi = 0;
      if (options_.enable_copartition) {
        std::string probe_part, build_part;
        size_t probe_n = 0, build_n = 0;
        copartitioned =
            HashPartitionSourceOf(probe.get(), &probe_part, &probe_n) &&
            HashPartitionSourceOf(build.get(), &build_part, &build_n) &&
            probe_n == build_n &&
            KeysReferenceColumn(p->probe_keys, probe_part, &pi) &&
            KeysReferenceColumn(p->build_keys, build_part, &bi) && pi == bi;
      }
      double build_bytes = build->est_rows * build->est_row_bytes;
      if (copartitioned) {
        // kLocal exchanges remember the partition key they were elided
        // on, so the sharded engine can refuse a cached plan whose table
        // was since repartitioned on a different column.
        build = WrapExchange(std::move(build), ExchangeKind::kLocal);
        build->partition_exprs = {p->build_keys[bi]};
        probe = WrapExchange(std::move(probe), ExchangeKind::kLocal);
        probe->partition_exprs = {p->probe_keys[pi]};
      } else if (build_bytes < options_.broadcast_threshold_bytes) {
        build = WrapExchange(std::move(build), ExchangeKind::kBroadcast);
      } else {
        build = WrapExchange(std::move(build), ExchangeKind::kShuffle);
        build->partition_exprs = p->build_keys;
        probe = WrapExchange(std::move(probe), ExchangeKind::kShuffle);
        probe->partition_exprs = p->probe_keys;
      }
      p->output_names = probe->output_names;
      p->output_types = probe->output_types;
      p->output_names.insert(p->output_names.end(),
                             build->output_names.begin(),
                             build->output_names.end());
      p->output_types.insert(p->output_types.end(),
                             build->output_types.begin(),
                             build->output_types.end());
      p->est_row_bytes = probe->est_row_bytes + build->est_row_bytes;
      p->children = {std::move(probe), std::move(build)};
      return PhysicalPlanPtr(p);
    }
    case LogicalPlan::Kind::kFilter: {
      p->kind = PhysicalPlan::Kind::kFilter;
      PhysicalPlanPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, Lower(node->children[0]));
      p->predicate = node->predicate;
      p->output_names = child->output_names;
      p->output_types = child->output_types;
      p->est_row_bytes = child->est_row_bytes;
      p->children = {std::move(child)};
      return PhysicalPlanPtr(p);
    }
    case LogicalPlan::Kind::kAggregate: {
      // Two-phase aggregation: partial aggregate on each producer node,
      // exchange only the (small) partial states, then combine. AVG is
      // decomposed into SUM/COUNT partials and restored by a projection.
      PhysicalPlanPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, Lower(node->children[0]));

      auto partial = std::make_shared<PhysicalPlan>();
      partial->kind = PhysicalPlan::Kind::kHashAggregate;
      partial->agg_is_partial = true;
      partial->group_by = node->group_by;
      partial->est_rows = node->est_rows;
      for (const auto& g : node->group_by) {
        partial->output_names.push_back(g->column);
        partial->output_types.push_back(g->type);
      }
      // Final aggregate built alongside.
      auto final_agg = std::make_shared<PhysicalPlan>();
      final_agg->kind = PhysicalPlan::Kind::kHashAggregate;
      final_agg->group_by = node->group_by;
      final_agg->est_rows = node->est_rows;
      for (const auto& g : node->group_by) {
        final_agg->output_names.push_back(g->column);
        final_agg->output_types.push_back(g->type);
      }
      bool needs_avg_projection = false;
      for (size_t i = 0; i < node->aggregates.size(); ++i) {
        const ExprPtr& agg = node->aggregates[i];
        const std::string& name = node->agg_names[i];
        auto add_partial = [&](AggFunc f, ExprPtr arg, const std::string& col) {
          ExprPtr pagg = Expr::MakeAgg(f, std::move(arg));
          partial->aggregates.push_back(pagg);
          partial->agg_names.push_back(col);
          partial->output_names.push_back(col);
          partial->output_types.push_back(pagg->type);
          return pagg->type;
        };
        auto add_final = [&](AggFunc f, const std::string& in_col,
                             LogicalType in_type, const std::string& out) {
          ExprPtr fagg = Expr::MakeAgg(f, Expr::MakeColumn(in_col, in_type));
          final_agg->aggregates.push_back(fagg);
          final_agg->agg_names.push_back(out);
          final_agg->output_names.push_back(out);
          final_agg->output_types.push_back(fagg->type);
        };
        ExprPtr arg = agg->children.empty() ? nullptr : agg->children[0];
        switch (agg->agg) {
          case AggFunc::kCountStar:
          case AggFunc::kCount: {
            LogicalType t = add_partial(agg->agg, arg, name + "__c");
            add_final(AggFunc::kSum, name + "__c", t, name);
            break;
          }
          case AggFunc::kSum: {
            LogicalType t = add_partial(AggFunc::kSum, arg, name + "__s");
            add_final(AggFunc::kSum, name + "__s", t, name);
            break;
          }
          case AggFunc::kMin: {
            LogicalType t = add_partial(AggFunc::kMin, arg, name + "__m");
            add_final(AggFunc::kMin, name + "__m", t, name);
            break;
          }
          case AggFunc::kMax: {
            LogicalType t = add_partial(AggFunc::kMax, arg, name + "__m");
            add_final(AggFunc::kMax, name + "__m", t, name);
            break;
          }
          case AggFunc::kAvg: {
            needs_avg_projection = true;
            LogicalType ts = add_partial(AggFunc::kSum, arg, name + "__s");
            LogicalType tc =
                add_partial(AggFunc::kCount, arg, name + "__c");
            add_final(AggFunc::kSum, name + "__s", ts, name + "__s");
            add_final(AggFunc::kSum, name + "__c", tc, name + "__c");
            break;
          }
        }
      }
      partial->est_row_bytes =
          RowBytes(partial->output_names, partial->output_types);
      final_agg->est_row_bytes =
          RowBytes(final_agg->output_names, final_agg->output_types);
      // Pre-partitioned aggregation: when the input is hash-partitioned on
      // a group column, every group already lives on one worker and the
      // partial states need not move.
      bool group_copartitioned = false;
      size_t gi = 0;
      if (options_.enable_copartition && !node->group_by.empty()) {
        std::string part_col;
        size_t parts = 0;
        group_copartitioned =
            HashPartitionSourceOf(child.get(), &part_col, &parts) &&
            KeysReferenceColumn(node->group_by, part_col, &gi);
      }
      partial->children = {std::move(child)};
      // Partial states move to their group's owner (or to one node for a
      // global aggregate) — tiny compared to the raw input.
      ExchangeKind agg_exchange =
          node->group_by.empty()
              ? ExchangeKind::kGather
              : (group_copartitioned ? ExchangeKind::kLocal
                                     : ExchangeKind::kShuffle);
      PhysicalPlanPtr exchanged = WrapExchange(partial, agg_exchange);
      if (agg_exchange == ExchangeKind::kShuffle) {
        // Shuffle keys: the group columns as the partial emits them.
        for (const auto& g : node->group_by) {
          exchanged->partition_exprs.push_back(g);
        }
      } else if (agg_exchange == ExchangeKind::kLocal) {
        // Remember the group column the elision relied on (see the join
        // case above).
        exchanged->partition_exprs = {node->group_by[gi]};
      }
      final_agg->children = {std::move(exchanged)};

      if (!needs_avg_projection) return PhysicalPlanPtr(final_agg);

      // Restore the declared schema: group columns + agg_i, with
      // agg_i = sum/count for AVG.
      auto project = std::make_shared<PhysicalPlan>();
      project->kind = PhysicalPlan::Kind::kProject;
      project->est_rows = node->est_rows;
      for (const auto& g : node->group_by) {
        project->projections.push_back(g->Clone());
        project->output_names.push_back(g->column);
        project->output_types.push_back(g->type);
      }
      for (size_t i = 0; i < node->aggregates.size(); ++i) {
        const ExprPtr& agg = node->aggregates[i];
        const std::string& name = node->agg_names[i];
        ExprPtr expr;
        if (agg->agg == AggFunc::kAvg) {
          expr = Expr::MakeArith(
              '/', Expr::MakeColumn(name + "__s", LogicalType::kDouble),
              Expr::MakeColumn(name + "__c", LogicalType::kInt64));
        } else {
          expr = Expr::MakeColumn(name, agg->type);
        }
        project->output_types.push_back(expr->type);
        project->projections.push_back(std::move(expr));
        project->output_names.push_back(name);
      }
      project->est_row_bytes =
          RowBytes(project->output_names, project->output_types);
      project->children = {PhysicalPlanPtr(final_agg)};
      return PhysicalPlanPtr(project);
    }
    case LogicalPlan::Kind::kProject: {
      p->kind = PhysicalPlan::Kind::kProject;
      PhysicalPlanPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, Lower(node->children[0]));
      p->projections = node->projections;
      p->output_names = node->projection_names;
      for (const auto& e : node->projections) {
        p->output_types.push_back(e->type);
      }
      p->est_row_bytes = RowBytes(p->output_names, p->output_types);
      p->children = {std::move(child)};
      return PhysicalPlanPtr(p);
    }
    case LogicalPlan::Kind::kSort: {
      p->kind = PhysicalPlan::Kind::kSort;
      PhysicalPlanPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, Lower(node->children[0]));
      child = WrapExchange(std::move(child), ExchangeKind::kGather);
      p->sort_keys = node->sort_keys;
      p->output_names = child->output_names;
      p->output_types = child->output_types;
      p->est_row_bytes = child->est_row_bytes;
      p->children = {std::move(child)};
      return PhysicalPlanPtr(p);
    }
    case LogicalPlan::Kind::kLimit: {
      p->kind = PhysicalPlan::Kind::kLimit;
      PhysicalPlanPtr child;
      COSTDB_ASSIGN_OR_RETURN(child, Lower(node->children[0]));
      p->limit = node->limit;
      p->output_names = child->output_names;
      p->output_types = child->output_types;
      p->est_row_bytes = child->est_row_bytes;
      p->children = {std::move(child)};
      return PhysicalPlanPtr(p);
    }
  }
  return Status::Internal("unknown logical node");
}

}  // namespace costdb
