#include "optimizer/bi_objective.h"

#include "optimizer/cardinality.h"
#include "optimizer/passes.h"

namespace costdb {

Result<PlannedQuery> BiObjectiveOptimizer::PlanShaped(
    const BoundQuery& query, const LogicalPlanPtr& logical,
    const UserConstraint& constraint) const {
  PlannedQuery out;
  PhysicalPlanner physical(meta_, &query.relations, options_.physical);
  COSTDB_ASSIGN_OR_RETURN(out.plan, physical.Plan(logical));
  out.pipelines = BuildPipelines(out.plan.get());
  CardinalityEstimator cards(meta_, &query.relations);
  out.volumes = ComputeVolumes(out.plan.get(), cards);
  DopPlanner dop_planner(estimator_, options_.dop);
  DopPlanResult dop = dop_planner.Plan(out.pipelines, out.volumes, constraint);
  out.dops = dop.dops;
  out.estimate = dop.estimate;
  out.feasible = dop.feasible;
  out.states_explored = dop.states_explored;
  return out;
}

Result<PlannedQuery> BiObjectiveOptimizer::Plan(
    const BoundQuery& query, const UserConstraint& constraint) const {
  // The two-stage optimization is implemented as the explicit pass
  // pipeline (optimizer/passes.h); this entry point keeps the historical
  // pre-bound API for experiments.
  QueryPlanContext ctx;
  ctx.meta = meta_;
  ctx.estimator = estimator_;
  ctx.options = options_;
  ctx.constraint = constraint;
  ctx.query = query;
  ctx.bound = true;
  PassPipeline passes = MakeDefaultPassPipeline(options_.explore_bushy);
  COSTDB_RETURN_NOT_OK(RunPassPipeline(passes, &ctx));
  return std::move(ctx.best);
}

Result<PlannedQuery> BiObjectiveOptimizer::PlanSql(
    const std::string& sql, const UserConstraint& constraint) const {
  QueryPlanContext ctx;
  ctx.meta = meta_;
  ctx.estimator = estimator_;
  ctx.options = options_;
  ctx.constraint = constraint;
  ctx.sql = sql;
  PassPipeline passes = MakeDefaultPassPipeline(options_.explore_bushy);
  COSTDB_RETURN_NOT_OK(RunPassPipeline(passes, &ctx));
  return std::move(ctx.best);
}

}  // namespace costdb
