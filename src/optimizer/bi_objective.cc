#include "optimizer/bi_objective.h"

namespace costdb {

Result<PlannedQuery> BiObjectiveOptimizer::PlanShaped(
    const BoundQuery& query, const LogicalPlanPtr& logical,
    const UserConstraint& constraint) const {
  PlannedQuery out;
  PhysicalPlanner physical(meta_, &query.relations, options_.physical);
  COSTDB_ASSIGN_OR_RETURN(out.plan, physical.Plan(logical));
  out.pipelines = BuildPipelines(out.plan.get());
  CardinalityEstimator cards(meta_, &query.relations);
  out.volumes = ComputeVolumes(out.plan.get(), cards);
  DopPlanner dop_planner(estimator_, options_.dop);
  DopPlanResult dop = dop_planner.Plan(out.pipelines, out.volumes, constraint);
  out.dops = dop.dops;
  out.estimate = dop.estimate;
  out.feasible = dop.feasible;
  out.states_explored = dop.states_explored;
  return out;
}

Result<PlannedQuery> BiObjectiveOptimizer::Plan(
    const BoundQuery& query, const UserConstraint& constraint) const {
  std::vector<BushyVariant> variants;
  if (options_.explore_bushy) {
    BushyRewriter rewriter(meta_);
    COSTDB_ASSIGN_OR_RETURN(variants,
                            rewriter.MakeVariants(query,
                                                  options_.max_bushy_depth));
  } else {
    DagPlanner dag(meta_);
    LogicalPlanPtr plan;
    COSTDB_ASSIGN_OR_RETURN(plan, dag.Plan(query));
    variants.push_back({std::move(plan), 0});
  }

  bool have_best = false;
  PlannedQuery best;
  int total_states = 0;
  for (const auto& variant : variants) {
    auto planned = PlanShaped(query, variant.plan, constraint);
    if (!planned.ok()) continue;
    planned->bushiness = variant.bushiness;
    total_states += planned->states_explored;
    if (!have_best) {
      best = std::move(*planned);
      have_best = true;
      continue;
    }
    // Prefer feasible over infeasible; then the constrained objective.
    if (planned->feasible && !best.feasible) {
      best = std::move(*planned);
      continue;
    }
    if (!planned->feasible && best.feasible) continue;
    bool better;
    if (constraint.mode == UserConstraint::Mode::kMinCostUnderSla) {
      better = planned->feasible
                   ? planned->estimate.cost < best.estimate.cost
                   : planned->estimate.latency < best.estimate.latency;
    } else {
      better = planned->estimate.latency < best.estimate.latency;
    }
    if (better) best = std::move(*planned);
  }
  if (!have_best) {
    return Status::Internal("no plan variant could be planned");
  }
  best.states_explored = total_states;
  return best;
}

Result<PlannedQuery> BiObjectiveOptimizer::PlanSql(
    const std::string& sql, const UserConstraint& constraint) const {
  Binder binder(meta_);
  BoundQuery query;
  COSTDB_ASSIGN_OR_RETURN(query, binder.BindSql(sql));
  return Plan(query, constraint);
}

}  // namespace costdb
