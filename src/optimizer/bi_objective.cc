#include "optimizer/bi_objective.h"

#include <algorithm>

#include "optimizer/cardinality.h"
#include "optimizer/passes.h"

namespace costdb {

int ResolveWorkerCount(const UserConstraint& constraint, const DopMap& dops,
                       int max_workers) {
  max_workers = std::max(1, max_workers);
  // Explicit requests are honored up to the cap, so PlannedQuery::workers
  // is always an executable width — every execution-path decision
  // (backend routing, engine construction) reads it without re-clamping.
  if (constraint.workers > 0) return std::min(constraint.workers, max_workers);
  int widest = 1;
  for (const auto& [id, dop] : dops) widest = std::max(widest, dop);
  return std::min(widest, max_workers);
}

Result<PlannedQuery> BiObjectiveOptimizer::PlanShaped(
    const BoundQuery& query, const LogicalPlanPtr& logical,
    const UserConstraint& constraint) const {
  PlannedQuery out;
  PhysicalPlanner physical(meta_, &query.relations, options_.physical);
  COSTDB_ASSIGN_OR_RETURN(out.plan, physical.Plan(logical));
  out.pipelines = BuildPipelines(out.plan.get());
  CardinalityEstimator cards(meta_, &query.relations);
  out.volumes = ComputeVolumes(out.plan.get(), cards);
  DopPlanner dop_planner(estimator_, options_.dop);
  DopPlanResult dop = dop_planner.Plan(out.pipelines, out.volumes, constraint);
  out.dops = dop.dops;
  out.estimate = dop.estimate;
  out.feasible = dop.feasible;
  out.states_explored = dop.states_explored;
  out.workers = ResolveWorkerCount(constraint, out.dops, options_.max_workers);
  return out;
}

Result<PlannedQuery> BiObjectiveOptimizer::Plan(
    const BoundQuery& query, const UserConstraint& constraint) const {
  // The two-stage optimization is implemented as the explicit pass
  // pipeline (optimizer/passes.h); this entry point keeps the historical
  // pre-bound API for experiments.
  QueryPlanContext ctx;
  ctx.meta = meta_;
  ctx.estimator = estimator_;
  ctx.options = options_;
  ctx.constraint = constraint;
  ctx.query = query;
  ctx.bound = true;
  PassPipeline passes = MakeDefaultPassPipeline(options_.explore_bushy);
  COSTDB_RETURN_NOT_OK(RunPassPipeline(passes, &ctx));
  return std::move(ctx.best);
}

Result<PlannedQuery> BiObjectiveOptimizer::PlanSql(
    const std::string& sql, const UserConstraint& constraint) const {
  QueryPlanContext ctx;
  ctx.meta = meta_;
  ctx.estimator = estimator_;
  ctx.options = options_;
  ctx.constraint = constraint;
  ctx.sql = sql;
  PassPipeline passes = MakeDefaultPassPipeline(options_.explore_bushy);
  COSTDB_RETURN_NOT_OK(RunPassPipeline(passes, &ctx));
  return std::move(ctx.best);
}

}  // namespace costdb
