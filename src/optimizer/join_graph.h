#pragma once

#include <vector>

#include "common/result.h"
#include "optimizer/cardinality.h"
#include "plan/logical_plan.h"

namespace costdb {

/// One equi-join edge of the query graph.
struct JoinGraphEdge {
  size_t left_rel = 0;
  size_t right_rel = 0;
  ExprPtr left_key;
  ExprPtr right_key;
};

/// The query graph the join-ordering stages work on: per-relation scan
/// plans (filters pushed, columns pruned, cardinalities estimated), the
/// equi-join edges, and whatever predicates remain for post-join filtering.
struct JoinGraph {
  std::vector<LogicalPlanPtr> scans;  // aligned with BoundQuery::relations
  std::vector<JoinGraphEdge> edges;
  std::vector<ExprPtr> residual_filters;

  /// All key pairs connecting relation subsets `left` and `right`
  /// (bitmasks); keys oriented left-to-right.
  std::vector<std::pair<ExprPtr, ExprPtr>> EdgesBetween(uint32_t left,
                                                        uint32_t right) const;

  /// True when the relations in `set` form a connected subgraph.
  bool Connected(uint32_t set) const;
};

/// Build the join graph of a bound query: classify predicates into pushed
/// single-relation filters, equi-join edges, and residuals; prune columns;
/// estimate scan cardinalities.
Result<JoinGraph> BuildJoinGraph(const BoundQuery& query,
                                 const CardinalityEstimator& cards);

}  // namespace costdb
