#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace costdb {

namespace {
constexpr double kDefaultSelectivity = 0.25;   // unknown predicate shapes
constexpr double kEqualityFallback = 0.01;     // equality without stats
constexpr double kLikeSelectivity = 0.1;
}  // namespace

CardinalityEstimator::CardinalityEstimator(
    const MetadataService* meta, const std::vector<BoundRelation>* relations,
    bool use_true_stats)
    : meta_(meta), use_true_stats_(use_true_stats) {
  for (const auto& rel : *relations) {
    alias_to_table_[rel.alias] = rel.table;
  }
}

const TableStats* CardinalityEstimator::StatsFor(
    const std::string& table) const {
  return use_true_stats_ ? meta_->GetTrueStats(table) : meta_->GetStats(table);
}

const ColumnStats* CardinalityEstimator::FindColumn(
    const std::string& qualified, double* table_rows) const {
  auto dot = qualified.find('.');
  if (dot == std::string::npos) return nullptr;
  std::string alias = qualified.substr(0, dot);
  std::string column = qualified.substr(dot + 1);
  auto it = alias_to_table_.find(alias);
  // Unknown aliases fall back to direct table names: materialized-view
  // scans introduced by plan rewrites are not part of the original query's
  // relation list.
  const std::string& table = it == alias_to_table_.end() ? alias : it->second;
  const TableStats* stats = StatsFor(table);
  if (stats == nullptr) return nullptr;
  if (table_rows != nullptr) *table_rows = stats->row_count;
  return stats->Find(column);
}

double CardinalityEstimator::BaseRows(const std::string& alias) const {
  auto it = alias_to_table_.find(alias);
  const std::string& table = it == alias_to_table_.end() ? alias : it->second;
  const TableStats* stats = StatsFor(table);
  return stats == nullptr ? 0.0 : stats->row_count;
}

double CardinalityEstimator::ColumnNdv(const std::string& qualified,
                                       double fallback) const {
  const ColumnStats* cs = FindColumn(qualified, nullptr);
  return cs == nullptr || cs->ndv <= 0.0 ? fallback : cs->ndv;
}

double CardinalityEstimator::ColumnWidth(const std::string& qualified) const {
  const ColumnStats* cs = FindColumn(qualified, nullptr);
  return cs == nullptr ? 8.0 : cs->avg_width;
}

double CardinalityEstimator::Selectivity(const ExprPtr& predicate) const {
  if (!predicate) return 1.0;
  switch (predicate->kind) {
    case Expr::Kind::kAnd: {
      double s = 1.0;
      for (const auto& c : predicate->children) s *= Selectivity(c);
      return s;
    }
    case Expr::Kind::kOr: {
      // Inclusion-exclusion under independence.
      double keep = 1.0;
      for (const auto& c : predicate->children) keep *= 1.0 - Selectivity(c);
      return 1.0 - keep;
    }
    case Expr::Kind::kNot:
      return 1.0 - Selectivity(predicate->children[0]);
    case Expr::Kind::kLike:
      return kLikeSelectivity;
    case Expr::Kind::kCompare: {
      std::string column;
      CompareOp op;
      Value constant;
      if (MatchColumnCompareConstant(predicate, &column, &op, &constant)) {
        // A comparison with NULL matches no rows (three-valued logic) —
        // reachable via a NULL prepared-statement parameter.
        if (constant.is_null()) return 0.0;
        const ColumnStats* cs = FindColumn(column, nullptr);
        if (cs == nullptr) {
          return op == CompareOp::kEq ? kEqualityFallback
                                      : kDefaultSelectivity;
        }
        if (cs->has_histogram && !constant.is_string()) {
          return cs->histogram.EstimateSelectivity(op, constant.AsDouble());
        }
        // NDV-based fallback (strings and statless columns).
        double eq = cs->ndv > 0.0 ? 1.0 / cs->ndv : kEqualityFallback;
        switch (op) {
          case CompareOp::kEq:
            return eq;
          case CompareOp::kNe:
            return 1.0 - eq;
          default:
            return kDefaultSelectivity;
        }
      }
      // column-to-column (non-join context) or expression compare.
      return kDefaultSelectivity;
    }
    default:
      return kDefaultSelectivity;
  }
}

double CardinalityEstimator::EstimateScanRows(
    const std::string& alias, const std::vector<ExprPtr>& filters) const {
  double rows = BaseRows(alias);
  for (const auto& f : filters) rows *= Selectivity(f);
  return std::max(rows, 0.0);
}

double CardinalityEstimator::EstimateJoinRows(
    double left_rows, double right_rows,
    const std::vector<std::pair<ExprPtr, ExprPtr>>& keys) const {
  double rows = left_rows * right_rows;
  for (const auto& [l, r] : keys) {
    double ndv_l = l->kind == Expr::Kind::kColumn
                       ? ColumnNdv(l->column, left_rows)
                       : left_rows;
    double ndv_r = r->kind == Expr::Kind::kColumn
                       ? ColumnNdv(r->column, right_rows)
                       : right_rows;
    double denom = std::max(1.0, std::max(ndv_l, ndv_r));
    rows /= denom;
  }
  return std::max(rows, 1.0);
}

double CardinalityEstimator::EstimateGroupCount(
    double input_rows, const std::vector<ExprPtr>& group_by) const {
  if (group_by.empty()) return 1.0;
  double groups = 1.0;
  for (const auto& g : group_by) {
    groups *= g->kind == Expr::Kind::kColumn ? ColumnNdv(g->column, 100.0)
                                             : 100.0;
  }
  // Groups cannot exceed input rows; apply the classic sqrt damping for
  // multi-column keys to avoid wild overestimates.
  if (group_by.size() > 1) {
    groups = std::min(groups, input_rows / 2.0 + 1.0);
  }
  return std::max(1.0, std::min(groups, input_rows));
}

}  // namespace costdb
