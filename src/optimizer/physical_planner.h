#pragma once

#include "common/result.h"
#include "optimizer/cardinality.h"
#include "plan/physical_plan.h"

namespace costdb {

struct PhysicalPlannerOptions {
  /// Build sides estimated below this many bytes are broadcast instead of
  /// shuffled (both sides).
  double broadcast_threshold_bytes = 64.0 * kMiB;
  /// Elide exchanges when both sides are already hash-partitioned on the
  /// key (partition-wise joins / pre-partitioned aggregation): the join or
  /// aggregate gets kLocal pass-through exchanges, which cost ~nothing and
  /// move no rows in the sharded engine. Off reverts to shuffle/broadcast
  /// (the ablation knob for bench_e14_sharded).
  bool enable_copartition = true;
};

/// Lowers an annotated logical plan to a distributed physical plan:
/// hash-join/hash-aggregate operator selection, exchange placement
/// (shuffle / broadcast / gather), schema propagation, and byte-size
/// estimates for the cost model.
class PhysicalPlanner {
 public:
  PhysicalPlanner(const MetadataService* meta,
                  const std::vector<BoundRelation>* relations,
                  PhysicalPlannerOptions options = PhysicalPlannerOptions())
      : cards_(meta, relations), options_(options) {}

  Result<PhysicalPlanPtr> Plan(const LogicalPlanPtr& logical) const;

 private:
  Result<PhysicalPlanPtr> Lower(const LogicalPlanPtr& node) const;
  PhysicalPlanPtr WrapExchange(PhysicalPlanPtr child, ExchangeKind kind) const;
  double RowBytes(const std::vector<std::string>& names,
                  const std::vector<LogicalType>& types) const;

  CardinalityEstimator cards_;
  PhysicalPlannerOptions options_;
};

}  // namespace costdb
