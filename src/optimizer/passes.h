#pragma once

#include <memory>
#include <string>
#include <vector>

#include "optimizer/bi_objective.h"

namespace costdb {

/// Mutable state flowing through the optimizer pass pipeline. A pass reads
/// what earlier passes produced and fills in the next stage; the pipeline
/// is data-driven, so passes can be reordered, dropped, or interleaved with
/// custom rewrites (the What-If Service splices an MV-substitution pass
/// between DAG planning and physical planning, for example).
struct QueryPlanContext {
  // Immutable inputs, set by the pipeline driver before the first pass.
  const MetadataService* meta = nullptr;
  const CostEstimator* estimator = nullptr;
  BiObjectiveOptions options;
  std::string sql;
  UserConstraint constraint;

  // Stage 1 (bind): SQL resolved against the catalog.
  BoundQuery query;
  bool bound = false;

  // Stage 2 (logical shaping): candidate join shapes. variants[0] is the
  // left-deep DAG-planner shape; bushy rungs append after it. DagPlanPass
  // also stashes its join graph and raw join tree so BushyRewritePass can
  // reshape the spine without re-running the join-order DP.
  std::vector<BushyVariant> variants;
  JoinGraph join_graph;
  LogicalPlanPtr left_deep_join_tree;
  bool has_join_graph = false;

  // Stage 3 (physical planning): one costed candidate per variant, with
  // pipelines and believed volumes but no DOP assignment yet.
  std::vector<PlannedQuery> candidates;

  // Stage 4 (DOP planning): the winner under the user constraint.
  PlannedQuery best;
  bool planned = false;
};

/// One reorderable stage of the query optimizer. Implementations must be
/// stateless with respect to queries (all per-query state lives in the
/// context), so a pass pipeline can be shared across threads.
class OptimizerPass {
 public:
  virtual ~OptimizerPass() = default;
  virtual const char* name() const = 0;
  virtual Status Run(QueryPlanContext* ctx) const = 0;
};

using PassPipeline = std::vector<std::unique_ptr<OptimizerPass>>;

/// sql -> BoundQuery (no-op when the driver supplied a pre-bound query).
class BindPass : public OptimizerPass {
 public:
  const char* name() const override { return "bind"; }
  Status Run(QueryPlanContext* ctx) const override;
};

/// BoundQuery -> left-deep logical plan (variants[0]).
class DagPlanPass : public OptimizerPass {
 public:
  const char* name() const override { return "dag_plan"; }
  Status Run(QueryPlanContext* ctx) const override;
};

/// Appends increasingly bushy reshapes of the left-deep spine
/// (bushiness > 0 only, so it composes with DagPlanPass without
/// duplicating the base shape).
class BushyRewritePass : public OptimizerPass {
 public:
  const char* name() const override { return "bushy_rewrite"; }
  Status Run(QueryPlanContext* ctx) const override;
};

/// Each logical variant -> physical plan + pipeline DAG + believed volumes.
class PhysicalPlanPass : public OptimizerPass {
 public:
  const char* name() const override { return "physical_plan"; }
  Status Run(QueryPlanContext* ctx) const override;
};

/// Annotates each physical candidate with fused-kernel decisions the
/// engine honors (PhysicalPlan::fuse_scan_filter / fuse_probe /
/// fuse_aggregate). Fusion is chosen per scan only where the calibrated
/// cost model prices the fused single-pass chain below the per-kernel
/// vectorized chain (FusedFilterChainTime vs InterpretedFilterChainTime
/// over the candidate's believed volumes and real surviving-morsel
/// geometry), and only for shapes the FusedKernelRegistry can actually
/// instantiate — the same registry the engine compiles through, so plan
/// and runtime can never disagree about fusability. Runs before
/// dop_plan so DOP pricing sees the fused operator costs.
class FuseKernelsPass : public OptimizerPass {
 public:
  const char* name() const override { return "fuse_kernels"; }
  Status Run(QueryPlanContext* ctx) const override;
};

/// Prices every candidate with the DOP planner and selects the best one
/// under the user constraint (feasible first, then the constrained
/// objective).
class DopPlanPass : public OptimizerPass {
 public:
  const char* name() const override { return "dop_plan"; }
  Status Run(QueryPlanContext* ctx) const override;
};

/// The paper's two-stage bi-objective optimizer as an explicit pipeline:
/// bind -> dag_plan [-> bushy_rewrite] -> physical_plan -> fuse_kernels
/// -> dop_plan.
PassPipeline MakeDefaultPassPipeline(bool explore_bushy = true);

/// Run `passes` in order over `ctx`; fails if no pass produced a plan.
Status RunPassPipeline(const PassPipeline& passes, QueryPlanContext* ctx);

/// Front door for binding alone — callers outside the optimizer (service
/// facade, sim harness, stats ingestion) use this instead of constructing
/// a Binder by hand.
Result<BoundQuery> BindSql(const MetadataService* meta, const std::string& sql);

}  // namespace costdb
