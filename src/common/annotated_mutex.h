#pragma once

/// Clang thread-safety-annotated mutex wrappers (no-ops off Clang).
///
/// Clang's -Wthread-safety analysis proves locking discipline at compile
/// time: every member annotated GUARDED_BY(mu) may only be touched while
/// `mu` is held, every function annotated REQUIRES(mu) may only be called
/// with `mu` held, and the analysis runs on every build for every path —
/// unlike TSAN, which only sees the interleavings a test happens to hit.
/// The analysis needs the mutex *type* to be a declared capability, which
/// std::mutex is not under libstdc++, so the service layer uses these thin
/// wrappers instead of the std types directly. On GCC (and on Clang
/// without the warning enabled) every macro expands to nothing and the
/// wrappers compile down to the underlying std types.
///
/// Conventions (enforced by ci/check_thread_safety.sh when a clang++ is
/// available):
///   - A member protected by a lock is declared `T x_ GUARDED_BY(mu_);`.
///   - A private helper that expects the caller to hold the lock is
///     declared `void Helper() REQUIRES(mu_);` — replacing the prose
///     "Caller holds mu_." comments with a machine-checked contract.
///   - Scoped locking uses MutexLock / ReaderMutexLock / WriterMutexLock;
///     condition-variable waits use UniqueMutexLock (relockable) with
///     std::condition_variable_any, and are written as explicit
///     `while (!cond) cv.wait(lock);` loops — the analysis cannot see
///     into a wait-predicate lambda, so predicate-form waits would flag
///     every guarded access inside the lambda as unlocked.

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define COSTDB_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define COSTDB_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) COSTDB_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY COSTDB_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) COSTDB_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) COSTDB_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  COSTDB_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
#endif

namespace costdb {

/// std::mutex declared as a capability. Keeps the standard BasicLockable
/// interface so std::condition_variable_any and generic lockers work.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex declared as a capability (exclusive + shared modes).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock (std::lock_guard equivalent the analysis can see).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock that can be dropped and re-taken mid-scope — the
/// std::unique_lock role, usable with std::condition_variable_any.
class SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueMutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace costdb
