#include "common/stats_math.h"

#include <algorithm>
#include <cmath>

namespace costdb {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double GeoMean(const std::vector<double>& v) {
  double log_sum = 0.0;
  size_t n = 0;
  for (double x : v) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

double QError(double estimate, double truth, double eps) {
  double e = std::max(std::abs(estimate), eps);
  double t = std::max(std::abs(truth), eps);
  return std::max(e / t, t / e);
}

bool LeastSquares(const std::vector<double>& x_rowmajor, size_t cols,
                  const std::vector<double>& y, std::vector<double>* beta) {
  if (cols == 0 || y.empty()) return false;
  size_t rows = y.size();
  if (x_rowmajor.size() != rows * cols) return false;

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const double* xr = &x_rowmajor[r * cols];
    for (size_t i = 0; i < cols; ++i) {
      xty[i] += xr[i] * y[r];
      for (size_t j = 0; j < cols; ++j) xtx[i * cols + j] += xr[i] * xr[j];
    }
  }

  // Gaussian elimination with partial pivoting on the augmented system.
  std::vector<double> a(xtx);
  std::vector<double> b(xty);
  for (size_t col = 0; col < cols; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < cols; ++r) {
      if (std::abs(a[r * cols + col]) > std::abs(a[pivot * cols + col])) {
        pivot = r;
      }
    }
    if (std::abs(a[pivot * cols + col]) < 1e-12) return false;
    if (pivot != col) {
      for (size_t j = 0; j < cols; ++j) {
        std::swap(a[col * cols + j], a[pivot * cols + j]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < cols; ++r) {
      double f = a[r * cols + col] / a[col * cols + col];
      for (size_t j = col; j < cols; ++j) a[r * cols + j] -= f * a[col * cols + j];
      b[r] -= f * b[col];
    }
  }
  beta->assign(cols, 0.0);
  for (size_t i = cols; i-- > 0;) {
    double acc = b[i];
    for (size_t j = i + 1; j < cols; ++j) acc -= a[i * cols + j] * (*beta)[j];
    (*beta)[i] = acc / a[i * cols + i];
  }
  return true;
}

double RSquared(const std::vector<double>& predicted,
                const std::vector<double>& observed) {
  if (predicted.size() != observed.size() || observed.empty()) return 0.0;
  double mean_obs = Mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean_obs) * (observed[i] - mean_obs);
  }
  if (ss_tot < 1e-12) return ss_res < 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Autocorrelation(const std::vector<double>& series, size_t lag) {
  if (lag == 0 || series.size() <= lag) return 0.0;
  double m = Mean(series);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    den += (series[i] - m) * (series[i] - m);
  }
  if (den < 1e-12) return 0.0;
  for (size_t i = lag; i < series.size(); ++i) {
    num += (series[i] - m) * (series[i - lag] - m);
  }
  return num / den;
}

}  // namespace costdb
