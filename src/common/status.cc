#include "common/status.h"

namespace costdb {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kSlaViolation:
      return "SlaViolation";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace costdb
