#include "common/thread_pool.h"

namespace costdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  UniqueMutexLock lock(mu_);
  while (!(queue_.empty() && in_flight_ == 0)) cv_idle_.wait(lock);
}

std::function<void()> ThreadPool::TakeTask() {
  std::function<void()> task = std::move(queue_.front());
  queue_.pop();
  ++in_flight_;
  return task;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      UniqueMutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_task_.wait(lock);
      if (shutdown_ && queue_.empty()) return;
      task = TakeTask();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace costdb
