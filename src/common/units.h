#pragma once

#include <cstdint>
#include <string>

namespace costdb {

/// Units used across the warehouse. Time is virtual seconds (the simulator
/// clock), money is US dollars, data is bytes. Plain doubles keep the
/// arithmetic natural; the formatting helpers make experiment output and
/// tuning reports readable.

using Seconds = double;
using Dollars = double;

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kTiB = kGiB * 1024.0;

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;

/// "$1.2345" with four decimals (sub-cent amounts matter for per-query cost).
std::string FormatDollars(Dollars d);

/// "12.3 s", "4.5 min", "2.1 h" — picks the natural scale.
std::string FormatSeconds(Seconds s);

/// "1.5 GiB" etc.
std::string FormatBytes(double bytes);

/// "1.23M", "456K" — compact row counts for experiment tables.
std::string FormatCount(double count);

}  // namespace costdb
