#include "common/table_printer.h"

#include <cstdarg>
#include <cstdio>

namespace costdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      *out += "  ";
      *out += cell;
      out->append(widths[c] - cell.size(), ' ');
    }
    *out += "\n";
  };
  std::string out;
  emit_row(headers_, &out);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace costdb
