#pragma once

#include <cstddef>
#include <vector>

namespace costdb {

/// Descriptive statistics and small numeric kernels shared by the cost
/// estimator (regression fitting), the statistics service, and the
/// experiment harnesses in bench/.

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& v);

/// p-th percentile (p in [0,100]) with linear interpolation; input need not
/// be sorted. Returns 0 for empty input.
double Percentile(std::vector<double> v, double p);

/// Geometric mean; ignores non-positive entries. 0 for empty input.
double GeoMean(const std::vector<double>& v);

/// Q-error of an estimate vs. a true value: max(est/true, true/est), the
/// standard cardinality/cost estimation accuracy metric. Values are clamped
/// to be at least `eps` to avoid division by zero.
double QError(double estimate, double truth, double eps = 1e-9);

/// Ordinary least squares for y ~ X*beta. X is row-major with `cols`
/// features per row (include a 1-column for the intercept yourself).
/// Solves the normal equations with Gaussian elimination and partial
/// pivoting. Returns false when the system is singular.
bool LeastSquares(const std::vector<double>& x_rowmajor, size_t cols,
                  const std::vector<double>& y, std::vector<double>* beta);

/// Coefficient of determination R^2 of predictions vs. observations.
double RSquared(const std::vector<double>& predicted,
                const std::vector<double>& observed);

/// Pearson autocorrelation of a series at the given lag (for the workload
/// predictor's periodicity detection). Returns 0 when undefined.
double Autocorrelation(const std::vector<double>& series, size_t lag);

}  // namespace costdb
