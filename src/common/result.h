#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace costdb {

/// Holds either a value of type T or an error Status. Arrow-style companion
/// to Status for functions that produce a value. [[nodiscard]] like Status:
/// ignoring a returned Result silently drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {     // NOLINT(implicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assign an OK result's value to `lhs`, or return its error status.
#define COSTDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define COSTDB_ASSIGN_OR_RETURN(lhs, expr)                                 \
  COSTDB_ASSIGN_OR_RETURN_IMPL(                                            \
      COSTDB_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define COSTDB_CONCAT_INNER_(a, b) a##b
#define COSTDB_CONCAT_(a, b) COSTDB_CONCAT_INNER_(a, b)

}  // namespace costdb
