#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace costdb {

/// Minimal fixed-size worker pool for morsel-parallel pipeline execution.
/// Tasks are fire-and-forget; WaitIdle() blocks until every submitted task
/// has finished.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Block until the queue is drained and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace costdb
