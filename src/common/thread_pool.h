#pragma once

#include <condition_variable>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace costdb {

/// Minimal fixed-size worker pool for morsel-parallel pipeline execution.
/// Tasks are fire-and-forget; WaitIdle() blocks until every submitted task
/// has finished.
///
/// The queue state is annotated for Clang's thread-safety analysis: every
/// member below `mu_` is GUARDED_BY(mu_), so a build with
/// -Werror=thread-safety (ci/check_thread_safety.sh) refuses any access
/// outside the lock. For example, this "fast path" — a real bug class, an
/// unguarded read racing Submit's push — does not compile under the
/// analysis:
///
///   bool HasWork() const {
///     return !queue_.empty();   // error: reading variable 'queue_'
///   }                           //        requires holding mutex 'mu_'
///
/// whereas the correct form passes:
///
///   bool HasWork() const {
///     MutexLock lock(mu_);
///     return !queue_.empty();
///   }
///
/// Internal helpers that expect the caller to hold the lock say so with
/// REQUIRES(mu_) instead of a comment — calling them unlocked is a
/// compile error, not a latent race.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Block until the queue is drained and all workers are idle.
  void WaitIdle() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// Pop the next task; caller holds the lock (enforced at compile time).
  std::function<void()> TakeTask() REQUIRES(mu_);

  std::vector<std::thread> workers_;  // set in the constructor only
  mutable Mutex mu_;
  std::condition_variable_any cv_task_;
  std::condition_variable_any cv_idle_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace costdb
