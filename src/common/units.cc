#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace costdb {

namespace {
std::string FormatF(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string FormatDollars(Dollars d) {
  if (std::abs(d) >= 100.0) return "$" + FormatF("%.2f", d);
  return "$" + FormatF("%.4f", d);
}

std::string FormatSeconds(Seconds s) {
  if (s < 1e-3) return FormatF("%.1f", s * 1e6) + " us";
  if (s < 1.0) return FormatF("%.1f", s * 1e3) + " ms";
  if (s < 120.0) return FormatF("%.2f", s) + " s";
  if (s < 2.0 * kSecondsPerHour) return FormatF("%.1f", s / 60.0) + " min";
  if (s < 2.0 * kSecondsPerDay) return FormatF("%.1f", s / kSecondsPerHour) + " h";
  return FormatF("%.1f", s / kSecondsPerDay) + " d";
}

std::string FormatBytes(double bytes) {
  if (bytes < kKiB) return FormatF("%.0f", bytes) + " B";
  if (bytes < kMiB) return FormatF("%.1f", bytes / kKiB) + " KiB";
  if (bytes < kGiB) return FormatF("%.1f", bytes / kMiB) + " MiB";
  if (bytes < kTiB) return FormatF("%.2f", bytes / kGiB) + " GiB";
  return FormatF("%.2f", bytes / kTiB) + " TiB";
}

std::string FormatCount(double count) {
  if (count < 1e3) return FormatF("%.0f", count);
  if (count < 1e6) return FormatF("%.1f", count / 1e3) + "K";
  if (count < 1e9) return FormatF("%.2f", count / 1e6) + "M";
  return FormatF("%.2f", count / 1e9) + "B";
}

}  // namespace costdb
