#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace costdb {

/// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed.
/// All simulations, data generators, and workload traces are seeded so that
/// every experiment in bench/ prints identical numbers across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int64_t Poisson(double mean);

  /// Zipf-distributed integer in [1, n] with skew parameter `theta`
  /// (theta = 0 is uniform). The CDF is precomputed per (n, theta) pair and
  /// sampled by binary search, so repeated draws are O(log n).
  int64_t Zipf(int64_t n, double theta);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  // Cached Zipf CDF: recomputed when (n, theta) changes.
  int64_t zipf_n_ = -1;
  double zipf_theta_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace costdb
