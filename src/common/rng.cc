#include "common/rng.h"

#include <algorithm>

#include <cmath>

namespace costdb {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 for seeding.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double lambda) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    double v = Normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  int64_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= NextDouble();
  }
  return n;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 1;
  if (theta <= 0.0) return UniformInt(1, n);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_cdf_.resize(static_cast<size_t>(n));
    double sum = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
      zipf_cdf_[static_cast<size_t>(i - 1)] = sum;
    }
    for (auto& c : zipf_cdf_) c /= sum;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return 1 + static_cast<int64_t>(it - zipf_cdf_.begin());
}

}  // namespace costdb
