#pragma once

#include <string>
#include <utility>

namespace costdb {

/// RocksDB-style status object used for error handling throughout the
/// warehouse. Core paths never throw; every fallible function returns a
/// Status (or a Result<T>, see result.h).
///
/// [[nodiscard]] on the class makes dropping any returned Status a
/// compile-time warning (an error under the -Werror CI build): a caller
/// must check it, propagate it, or explicitly discard with a (void) cast.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kNotSupported,
    kOutOfRange,
    kResourceExhausted,  // budget/cluster capacity exceeded
    kSlaViolation,       // latency SLA cannot be met
    kCancelled,          // query withdrawn before/while running
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status SlaViolation(std::string msg) {
    return Status(Code::kSlaViolation, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsSlaViolation() const { return code_ == Code::kSlaViolation; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Same code, message prefixed with caller context — so wrappers can
  /// add provenance without laundering a NotFound into an Internal.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  /// "OK" or "<CodeName>: <message>" for logs and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Propagate a non-OK status to the caller (RocksDB/Arrow idiom).
#define COSTDB_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::costdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace costdb
