#pragma once

#include <string>
#include <vector>

namespace costdb {

/// Fixed-width ASCII table writer used by every experiment binary in bench/
/// to print the rows/series a paper figure or claim is reproduced from.
///
///   TablePrinter t({"dop", "latency", "cost"});
///   t.AddRow({"4", "12.3 s", "$0.0123"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule and right-padded columns.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style convenience for building table cells.
std::string StrFormat(const char* fmt, ...);

}  // namespace costdb
