#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace costdb {

/// One query arrival in a simulated workload trace.
struct TraceEvent {
  Seconds at = 0.0;
  std::string query_id;
};

/// Workload-trace generator for the Statistics Service and What-If
/// experiments: a Poisson mixture of recurring query templates, with an
/// optional diurnal intensity pattern and a share of ad-hoc one-off
/// queries (the workloads the paper says ML predictors struggle with).
struct TraceOptions {
  Seconds duration = 7.0 * kSecondsPerDay;
  double queries_per_hour = 60.0;
  /// template id -> relative weight; empty = uniform over Q1..Q12.
  std::map<std::string, double> template_weights;
  /// Fraction of arrivals tagged as unique ad-hoc queries ("adhoc_<n>").
  double adhoc_fraction = 0.0;
  /// Amplitude of a 24h sinusoidal intensity modulation in [0,1).
  double diurnal_amplitude = 0.0;
  uint64_t seed = 7;
};

std::vector<TraceEvent> GenerateTrace(const TraceOptions& options);

/// Count events per query id.
std::map<std::string, int64_t> CountByTemplate(
    const std::vector<TraceEvent>& trace);

}  // namespace costdb
