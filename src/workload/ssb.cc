#include "workload/ssb.h"

#include <cmath>

#include "common/rng.h"

namespace costdb {

namespace {

const char* kRegions[] = {"AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDEAST"};
const char* kNations[] = {"UNITED STATES", "CHINA", "GERMANY", "BRAZIL",
                          "JAPAN", "FRANCE", "INDIA", "CANADA", "EGYPT",
                          "KENYA"};
const char* kCities[] = {"BEIJING", "SHANGHAI", "HAMBURG", "LYON", "OSAKA",
                         "CHICAGO", "TORONTO", "MUMBAI", "CAIRO", "NAIROBI"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kCategories[] = {"MFGR#11", "MFGR#12", "MFGR#13", "MFGR#14",
                             "MFGR#21", "MFGR#22", "MFGR#23", "MFGR#24"};
const char* kColors[] = {"red", "green", "blue", "ivory", "black", "plum",
                         "navy", "gold"};
const char* kShipmodes[] = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"};

int64_t DaysOf(const char* date) {
  int64_t d = 0;
  ParseDate(date, &d);
  return d;
}

std::shared_ptr<Table> MakeDates(size_t row_group_size) {
  auto t = std::make_shared<Table>(
      "dates",
      std::vector<ColumnDef>{{"d_datekey", LogicalType::kInt64},
                             {"d_date", LogicalType::kDate},
                             {"d_year", LogicalType::kInt64},
                             {"d_month", LogicalType::kInt64},
                             {"d_weeknum", LogicalType::kInt64}},
      row_group_size);
  DataChunk c({LogicalType::kInt64, LogicalType::kDate, LogicalType::kInt64,
               LogicalType::kInt64, LogicalType::kInt64});
  const int64_t start = DaysOf("1992-01-01");
  const int64_t kNumDays = 2556;  // 7 years
  for (int64_t i = 0; i < kNumDays; ++i) {
    int64_t date = start + i;
    std::string iso = FormatDate(date);
    int64_t year = std::stoll(iso.substr(0, 4));
    int64_t month = std::stoll(iso.substr(5, 2));
    c.AppendRow({Value(i), Value(date), Value(year), Value(month),
                 Value(i / 7 % 53 + 1)});
  }
  t->Append(c);
  return t;
}

std::shared_ptr<Table> MakeCustomer(int64_t rows, Rng* rng,
                                    size_t row_group_size) {
  auto t = std::make_shared<Table>(
      "customer",
      std::vector<ColumnDef>{{"c_custkey", LogicalType::kInt64},
                             {"c_name", LogicalType::kVarchar},
                             {"c_city", LogicalType::kVarchar},
                             {"c_nation", LogicalType::kVarchar},
                             {"c_region", LogicalType::kVarchar},
                             {"c_mktsegment", LogicalType::kVarchar}},
      row_group_size);
  DataChunk c({LogicalType::kInt64, LogicalType::kVarchar,
               LogicalType::kVarchar, LogicalType::kVarchar,
               LogicalType::kVarchar, LogicalType::kVarchar});
  for (int64_t i = 0; i < rows; ++i) {
    int64_t nation = rng->UniformInt(0, 9);
    c.AppendRow({Value(i), Value("Customer#" + std::to_string(i)),
                 Value(std::string(kCities[rng->UniformInt(0, 9)])),
                 Value(std::string(kNations[nation])),
                 Value(std::string(kRegions[nation % 5])),
                 Value(std::string(kSegments[rng->UniformInt(0, 4)]))});
  }
  t->Append(c);
  return t;
}

std::shared_ptr<Table> MakeSupplier(int64_t rows, Rng* rng,
                                    size_t row_group_size) {
  auto t = std::make_shared<Table>(
      "supplier",
      std::vector<ColumnDef>{{"s_suppkey", LogicalType::kInt64},
                             {"s_name", LogicalType::kVarchar},
                             {"s_city", LogicalType::kVarchar},
                             {"s_nation", LogicalType::kVarchar},
                             {"s_region", LogicalType::kVarchar}},
      row_group_size);
  DataChunk c({LogicalType::kInt64, LogicalType::kVarchar,
               LogicalType::kVarchar, LogicalType::kVarchar,
               LogicalType::kVarchar});
  for (int64_t i = 0; i < rows; ++i) {
    int64_t nation = rng->UniformInt(0, 9);
    c.AppendRow({Value(i), Value("Supplier#" + std::to_string(i)),
                 Value(std::string(kCities[rng->UniformInt(0, 9)])),
                 Value(std::string(kNations[nation])),
                 Value(std::string(kRegions[nation % 5]))});
  }
  t->Append(c);
  return t;
}

std::shared_ptr<Table> MakePart(int64_t rows, Rng* rng,
                                size_t row_group_size) {
  auto t = std::make_shared<Table>(
      "part",
      std::vector<ColumnDef>{{"p_partkey", LogicalType::kInt64},
                             {"p_name", LogicalType::kVarchar},
                             {"p_category", LogicalType::kVarchar},
                             {"p_brand", LogicalType::kInt64},
                             {"p_color", LogicalType::kVarchar}},
      row_group_size);
  DataChunk c({LogicalType::kInt64, LogicalType::kVarchar,
               LogicalType::kVarchar, LogicalType::kInt64,
               LogicalType::kVarchar});
  for (int64_t i = 0; i < rows; ++i) {
    c.AppendRow({Value(i), Value("Part#" + std::to_string(i)),
                 Value(std::string(kCategories[rng->UniformInt(0, 7)])),
                 Value(rng->UniformInt(1, 40)),
                 Value(std::string(kColors[rng->UniformInt(0, 7)]))});
  }
  t->Append(c);
  return t;
}

int64_t PickKey(Rng* rng, int64_t n, double skew) {
  if (skew <= 0.0) return rng->UniformInt(0, n - 1);
  return rng->Zipf(n, skew) - 1;
}

std::shared_ptr<Table> MakeFact(const std::string& name, const char* prefix,
                                int64_t rows, int64_t customers,
                                int64_t suppliers, int64_t parts,
                                double skew, Rng* rng,
                                size_t row_group_size) {
  std::string p = prefix;
  auto t = std::make_shared<Table>(
      name,
      std::vector<ColumnDef>{{p + "orderkey", LogicalType::kInt64},
                             {p + "custkey", LogicalType::kInt64},
                             {p + "suppkey", LogicalType::kInt64},
                             {p + "partkey", LogicalType::kInt64},
                             {p + "datekey", LogicalType::kInt64},
                             {p + "quantity", LogicalType::kInt64},
                             {p + "discount", LogicalType::kInt64},
                             {p + "extendedprice", LogicalType::kDouble},
                             {p + "revenue", LogicalType::kDouble},
                             {p + "shipmode", LogicalType::kVarchar}},
      row_group_size);
  DataChunk c(
      {LogicalType::kInt64, LogicalType::kInt64, LogicalType::kInt64,
       LogicalType::kInt64, LogicalType::kInt64, LogicalType::kInt64,
       LogicalType::kInt64, LogicalType::kDouble, LogicalType::kDouble,
       LogicalType::kVarchar});
  const int64_t kNumDays = 2556;
  for (int64_t i = 0; i < rows; ++i) {
    int64_t quantity = rng->UniformInt(1, 50);
    int64_t discount = rng->UniformInt(0, 10);
    double price = 100.0 + rng->NextDouble() * 9900.0;
    c.AppendRow({Value(i), Value(PickKey(rng, customers, skew)),
                 Value(PickKey(rng, suppliers, skew)),
                 Value(PickKey(rng, parts, skew)),
                 Value(rng->UniformInt(0, kNumDays - 1)), Value(quantity),
                 Value(discount), Value(price),
                 Value(price * (100.0 - discount) / 100.0),
                 Value(std::string(kShipmodes[rng->UniformInt(0, 4)]))});
    if (c.num_rows() >= 65536) {
      t->Append(c);
      c.Clear();
    }
  }
  if (c.num_rows() > 0) t->Append(c);
  return t;
}

}  // namespace

void LoadSsb(MetadataService* meta, const SsbOptions& options) {
  Rng rng(options.seed);
  const double sf = options.scale;
  const int64_t customers = std::max<int64_t>(30, std::llround(30000 * sf));
  const int64_t suppliers = std::max<int64_t>(20, std::llround(2000 * sf));
  const int64_t parts = std::max<int64_t>(50, std::llround(20000 * sf));
  const int64_t orders = std::max<int64_t>(100, std::llround(600000 * sf));
  const int64_t shipments = std::max<int64_t>(100, std::llround(400000 * sf));

  meta->RegisterTable(MakeDates(options.row_group_size));
  meta->RegisterTable(MakeCustomer(customers, &rng, options.row_group_size));
  meta->RegisterTable(MakeSupplier(suppliers, &rng, options.row_group_size));
  meta->RegisterTable(MakePart(parts, &rng, options.row_group_size));
  meta->RegisterTable(MakeFact("lineorder", "lo_", orders, customers,
                               suppliers, parts, options.fk_skew, &rng,
                               options.row_group_size));
  meta->RegisterTable(MakeFact("shipments", "sh_", shipments, customers,
                               suppliers, parts, options.fk_skew, &rng,
                               options.row_group_size));
  meta->AnalyzeAll();
}

std::vector<QueryTemplate> SsbQueries() {
  using F = QueryTemplate::Family;
  return {
      {"Q1",
       "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder "
       "WHERE lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25",
       F::kScanAgg},
      {"Q2",
       "SELECT lo_shipmode, count(*) AS n, sum(lo_revenue) AS rev "
       "FROM lineorder GROUP BY lo_shipmode ORDER BY rev DESC",
       F::kScanAgg},
      {"Q3",
       "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, dates "
       "WHERE lo_datekey = d_datekey AND d_year = 1994 GROUP BY d_year",
       F::kSmallJoin},
      {"Q4",
       "SELECT p_category, sum(lo_revenue) AS rev FROM lineorder, part "
       "WHERE lo_partkey = p_partkey GROUP BY p_category ORDER BY rev DESC",
       F::kSmallJoin},
      {"Q5",
       "SELECT s_nation, d_year, sum(lo_revenue) AS rev "
       "FROM lineorder, supplier, dates "
       "WHERE lo_suppkey = s_suppkey AND lo_datekey = d_datekey "
       "AND s_region = 'ASIA' GROUP BY s_nation, d_year",
       F::kStarJoin},
      {"Q6",
       "SELECT c_nation, s_nation, sum(lo_revenue) AS rev "
       "FROM lineorder, customer, supplier "
       "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
       "AND c_region = 'AMERICA' AND s_region = 'ASIA' "
       "GROUP BY c_nation, s_nation",
       F::kStarJoin},
      {"Q7",
       "SELECT d_year, p_brand, sum(lo_revenue) AS rev "
       "FROM lineorder, dates, part, supplier "
       "WHERE lo_datekey = d_datekey AND lo_partkey = p_partkey "
       "AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' "
       "AND s_region = 'AMERICA' GROUP BY d_year, p_brand ORDER BY d_year",
       F::kStarJoin},
      {"Q8",
       "SELECT c_region, s_region, d_year, sum(lo_revenue) AS rev "
       "FROM lineorder, customer, supplier, dates, part "
       "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
       "AND lo_datekey = d_datekey AND lo_partkey = p_partkey "
       "AND p_color = 'red' GROUP BY c_region, s_region, d_year",
       F::kStarJoin},
      {"Q9",
       "SELECT count(*) AS n, sum(lo_revenue) AS rev FROM lineorder "
       "WHERE lo_orderkey < 1000",
       F::kScanAgg},
      {"Q10",
       "SELECT lo_orderkey, lo_revenue FROM lineorder "
       "WHERE lo_quantity > 45 ORDER BY lo_revenue DESC LIMIT 10",
       F::kTopN},
      {"Q11",
       "SELECT d_year, sum(lo_revenue) AS order_rev, sum(sh_revenue) AS "
       "ship_rev FROM lineorder, shipments, dates, supplier "
       "WHERE lo_orderkey = sh_orderkey AND lo_datekey = d_datekey "
       "AND sh_suppkey = s_suppkey AND s_region = 'ASIA' "
       "AND d_year >= 1994 GROUP BY d_year",
       F::kTwoFact},
      {"Q12",
       "SELECT s_region, count(*) AS n FROM shipments, supplier "
       "WHERE sh_suppkey = s_suppkey AND sh_quantity < 10 "
       "GROUP BY s_region ORDER BY n DESC",
       F::kSmallJoin},
  };
}

QueryTemplate FindQuery(const std::string& id) {
  for (const auto& q : SsbQueries()) {
    if (q.id == id) return q;
  }
  return QueryTemplate{};
}

}  // namespace costdb
