#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace costdb {

/// Star Schema Benchmark–inspired warehouse: one order fact table
/// (`lineorder`), a second fact table (`shipments`, for bushy-join
/// shapes), and four dimensions (`dates`, `customer`, `supplier`, `part`).
/// Deterministic per seed; scale 1.0 ~ 600k lineorder rows (use 0.01–0.1
/// for in-process execution; the distributed simulator handles the rest by
/// scaling statistics).
struct SsbOptions {
  double scale = 0.01;
  uint64_t seed = 42;
  /// Zipf skew of fact->dimension foreign keys (0 = uniform).
  double fk_skew = 0.0;
  size_t row_group_size = 8192;
};

/// Generate and register all tables, then ANALYZE them.
void LoadSsb(MetadataService* meta, const SsbOptions& options);

/// A named query of the benchmark suite.
struct QueryTemplate {
  std::string id;
  std::string sql;
  /// Broad family used by experiment harnesses to slice results.
  enum class Family { kScanAgg, kSmallJoin, kStarJoin, kTopN, kTwoFact };
  Family family = Family::kScanAgg;
};

/// The 12-query evaluation suite (see DESIGN.md): scan-heavy aggregates,
/// selective filters, star joins of increasing width, top-n, and two-fact
/// joins that reward bushy plans.
std::vector<QueryTemplate> SsbQueries();

/// Lookup by id ("Q1".."Q12"); empty sql when unknown.
QueryTemplate FindQuery(const std::string& id);

}  // namespace costdb
