#include "workload/trace.h"

#include <cmath>

#include "common/rng.h"
#include "workload/ssb.h"

namespace costdb {

std::vector<TraceEvent> GenerateTrace(const TraceOptions& options) {
  Rng rng(options.seed);
  std::map<std::string, double> weights = options.template_weights;
  if (weights.empty()) {
    for (const auto& q : SsbQueries()) weights[q.id] = 1.0;
  }
  double total_weight = 0.0;
  for (const auto& [id, w] : weights) total_weight += w;

  std::vector<TraceEvent> trace;
  const double base_rate = options.queries_per_hour / kSecondsPerHour;
  Seconds t = 0.0;
  int64_t adhoc_counter = 0;
  while (t < options.duration) {
    // Thinning for the diurnal profile: draw at the peak rate, accept with
    // the instantaneous intensity ratio.
    double peak = base_rate * (1.0 + options.diurnal_amplitude);
    t += rng.Exponential(peak);
    if (t >= options.duration) break;
    double phase = 2.0 * M_PI * t / kSecondsPerDay;
    double intensity =
        base_rate * (1.0 + options.diurnal_amplitude * std::sin(phase));
    if (rng.NextDouble() > intensity / peak) continue;

    TraceEvent ev;
    ev.at = t;
    if (rng.NextDouble() < options.adhoc_fraction) {
      ev.query_id = "adhoc_" + std::to_string(adhoc_counter++);
    } else {
      double u = rng.NextDouble() * total_weight;
      double acc = 0.0;
      for (const auto& [id, w] : weights) {
        acc += w;
        if (u <= acc) {
          ev.query_id = id;
          break;
        }
      }
      if (ev.query_id.empty()) ev.query_id = weights.begin()->first;
    }
    trace.push_back(std::move(ev));
  }
  return trace;
}

std::map<std::string, int64_t> CountByTemplate(
    const std::vector<TraceEvent>& trace) {
  std::map<std::string, int64_t> counts;
  for (const auto& ev : trace) ++counts[ev.query_id];
  return counts;
}

}  // namespace costdb
