#pragma once

#include <memory>

#include "cloud/billing.h"
#include "cloud/cluster.h"
#include "cloud/object_store.h"
#include "cloud/pricing.h"

namespace costdb {

/// Bundles the simulated provider: price list, bill, object storage, and
/// elastic compute. One CloudEnv per tenant/experiment; everything in it is
/// deterministic.
class CloudEnv {
 public:
  explicit CloudEnv(ClusterOptions cluster_options = ClusterOptions())
      : pricing_(PricingCatalog::Default()),
        billing_(),
        object_store_(&pricing_),
        clusters_(&pricing_, &billing_, cluster_options) {}

  const PricingCatalog& pricing() const { return pricing_; }
  PricingCatalog* mutable_pricing() { return &pricing_; }
  BillingMeter* billing() { return &billing_; }
  const BillingMeter& billing() const { return billing_; }
  SimulatedObjectStore* object_store() { return &object_store_; }
  ClusterManager* clusters() { return &clusters_; }

 private:
  PricingCatalog pricing_;
  BillingMeter billing_;
  SimulatedObjectStore object_store_;
  ClusterManager clusters_;
};

}  // namespace costdb
