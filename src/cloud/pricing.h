#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"

namespace costdb {

/// A purchasable VM shape. The paper assumes symmetric nodes within a
/// cluster; the catalog still carries several shapes so calibration and the
/// instance-selection hooks (out of the paper's scope, see Leis &
/// Kuschewski [19]) have something to work with.
struct InstanceType {
  std::string name;
  int vcpus = 0;
  double memory_gib = 0.0;
  double network_gbps = 0.0;     // per-node NIC bandwidth
  double scan_gbps = 0.0;        // per-node sustainable scan rate from object store
  Dollars price_per_hour = 0.0;

  Dollars price_per_second() const { return price_per_hour / kSecondsPerHour; }
};

/// One level of a tiered volume price: consumption up to `upto` units
/// (cumulative, from the start of the billing window) is charged at
/// `price_per_unit`. Tiers are ordered by ascending `upto`; consumption
/// beyond the last tier's boundary stays at the last tier's rate.
struct PriceTier {
  double upto = 0.0;            // cumulative-units upper bound of this tier
  Dollars price_per_unit = 0.0;
};

/// A tiered volume price schedule (production clouds price storage and
/// egress this way: the first N units at one rate, the next M cheaper,
/// ...). Empty = flat pricing at whatever rate the caller falls back to.
using TieredSchedule = std::vector<PriceTier>;

/// Price the marginal consumption (from, to] against a tiered schedule by
/// folding it across the tier boundaries: each tier charges only the
/// slice of (from, to] that falls inside it. Cumulative positioning is
/// what makes the schedule "volume" pricing — a tenant resuming at 150
/// units pays tier-2 rates even for a small increment. With an empty
/// schedule the whole span is charged at `flat_price_per_unit`; beyond
/// the last tier boundary the last tier's rate applies.
Dollars TieredCost(double from, double to, const TieredSchedule& schedule,
                   Dollars flat_price_per_unit);

/// Price list for the simulated provider. Prices are modeled on typical
/// public-cloud on-demand rates circa the paper (general-purpose 8 vCPU
/// node ~ $0.40/h); absolute values only scale the dollar axis of every
/// experiment, relative values are what the trade-offs depend on.
class PricingCatalog {
 public:
  /// Catalog with the default node shapes ("c8", "c16", "c32", "c64").
  static PricingCatalog Default();

  void AddInstanceType(InstanceType type);

  Result<InstanceType> Find(const std::string& name) const;

  const std::vector<InstanceType>& instance_types() const { return types_; }

  /// The symmetric node shape used by the elastic compute layer unless a
  /// caller overrides it.
  const InstanceType& default_node() const;

  /// Object storage rates (S3-like).
  Dollars storage_per_gib_month = 0.023;
  Dollars per_1k_get_requests = 0.0004;
  Dollars per_1k_put_requests = 0.005;

  /// Egress-style rate on bytes exchanges serialize over a real transport
  /// (intra-cluster link fee, an order below internet egress). In-process
  /// exchanges move no wire bytes and are free; the facade bills
  /// wire_bytes/GiB x this per sharded run (ExecutionResult::egress_dollars).
  Dollars egress_per_gib = 0.01;

 private:
  std::vector<InstanceType> types_;
};

}  // namespace costdb
