#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace costdb {

/// One billed interval of machine time. The paper is explicit that the
/// user-observable cost is proportional to *total machine time*, not CPU
/// time: nodes blocked waiting for input are still charged.
struct UsageRecord {
  std::string label;          // e.g. "query:Q5", "tuning:mv_build", "storage"
  Seconds start = 0.0;
  Seconds duration = 0.0;
  int node_count = 0;
  Dollars price_per_node_second = 0.0;

  Dollars dollars() const {
    return duration * node_count * price_per_node_second;
  }
  Seconds machine_seconds() const { return duration * node_count; }
};

/// Accumulates the cloud bill of a tenant across foreground queries,
/// background tuning jobs, and storage. The per-label breakdown is what the
/// What-If Service's dollar reports are built from.
class BillingMeter {
 public:
  /// Minimum billed duration per usage record (public clouds round up;
  /// 0 keeps billing exactly linear, 60 models per-minute minimums).
  explicit BillingMeter(Seconds min_billing_increment = 0.0)
      : min_increment_(min_billing_increment) {}

  void Charge(const UsageRecord& record);

  /// Flat storage charge (already converted to dollars by the caller).
  void ChargeFlat(const std::string& label, Dollars amount);

  Dollars total() const { return total_; }
  Seconds total_machine_seconds() const { return machine_seconds_; }

  /// Bill for one label prefix, e.g. "tuning:" sums all tuning jobs.
  Dollars TotalForPrefix(const std::string& prefix) const;

  const std::vector<UsageRecord>& records() const { return records_; }

  /// label -> dollars, aggregated.
  std::map<std::string, Dollars> Breakdown() const;

  void Reset();

 private:
  Seconds min_increment_;
  Dollars total_ = 0.0;
  Seconds machine_seconds_ = 0.0;
  std::vector<UsageRecord> records_;
  std::map<std::string, Dollars> flat_charges_;
};

}  // namespace costdb
