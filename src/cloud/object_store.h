#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cloud/billing.h"
#include "cloud/pricing.h"
#include "common/result.h"
#include "common/units.h"

namespace costdb {

/// Simulated S3-like object store. It does not hold real bytes — table data
/// lives in the in-process column store — it accounts for the *economics*
/// and *bandwidth* of the storage layer that the disaggregated architecture
/// (paper Figure 3) rests on: object sizes, request counts, storage rent,
/// and the per-node scan bandwidth that bounds table-scan throughput.
class SimulatedObjectStore {
 public:
  explicit SimulatedObjectStore(const PricingCatalog* pricing)
      : pricing_(pricing) {}

  /// Create or replace an object of the given size.
  void Put(const std::string& key, double bytes);

  /// Size of an object, or NotFound.
  Result<double> Size(const std::string& key) const;

  void Delete(const std::string& key);

  bool Exists(const std::string& key) const {
    return objects_.count(key) > 0;
  }

  double total_bytes() const { return total_bytes_; }
  int64_t get_requests() const { return get_requests_; }
  int64_t put_requests() const { return put_requests_; }

  /// Record `n` GET requests (issued by scans; charged per 1000).
  void CountGets(int64_t n) { get_requests_ += n; }

  /// Storage rent for holding the current bytes for `duration` seconds.
  Dollars StorageRent(Seconds duration) const;

  /// Request charges accumulated so far.
  Dollars RequestCharges() const;

  /// Time for `node_count` nodes of shape `node` to cooperatively read
  /// `bytes` from the store (bandwidth scales with nodes; the store itself
  /// is assumed not to be the bottleneck, which matches S3 at warehouse
  /// scale).
  Seconds ScanTime(double bytes, const InstanceType& node,
                   int node_count) const;

 private:
  const PricingCatalog* pricing_;
  std::map<std::string, double> objects_;
  double total_bytes_ = 0.0;
  int64_t get_requests_ = 0;
  int64_t put_requests_ = 0;
};

}  // namespace costdb
