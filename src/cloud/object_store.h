#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cloud/billing.h"
#include "cloud/pricing.h"
#include "common/annotated_mutex.h"
#include "common/result.h"
#include "common/units.h"

namespace costdb {

/// Simulated S3-like object store. Two kinds of objects coexist behind the
/// same billing counters:
///
///   - metadata-only objects (`Put(key, bytes)`): the catalog's accounting
///     of table layouts — no real payload, only economics (sizes, request
///     counts, storage rent, scan bandwidth), as in the paper's Figure 3
///     disaggregated setting;
///   - byte-backed objects (`PutObject`/`GetObject`): real payloads spilled
///     to a local directory by the persistent block storage layer, so cold
///     scans move actual bytes while GET/PUT fees accrue on exactly the
///     same meters.
///
/// Thread-safe: sharded-engine workers fetch cold blocks concurrently.
class SimulatedObjectStore {
 public:
  explicit SimulatedObjectStore(const PricingCatalog* pricing)
      : pricing_(pricing) {}
  ~SimulatedObjectStore();

  SimulatedObjectStore(const SimulatedObjectStore&) = delete;
  SimulatedObjectStore& operator=(const SimulatedObjectStore&) = delete;

  /// Create or replace a metadata-only object of the given size.
  void Put(const std::string& key, double bytes);

  /// Size of an object, or NotFound.
  Result<double> Size(const std::string& key) const;

  /// Delete an object (and its spill file, when byte-backed).
  void Delete(const std::string& key);

  bool Exists(const std::string& key) const;

  // -- Byte-backed objects (persistent block storage) ----------------------

  /// Direct byte payloads to `directory` (created if missing). Must be set
  /// before the first PutObject.
  Status EnableSpill(const std::string& directory);

  bool spill_enabled() const;
  std::string spill_directory() const;

  /// Write a real payload. Counts one PUT and the payload size on the same
  /// meters as metadata objects.
  Status PutObject(const std::string& key, const std::string& bytes);

  /// Read a payload back. Counts one GET — the unit the pricing catalog
  /// bills per 1000.
  Result<std::string> GetObject(const std::string& key);

  double total_bytes() const;
  int64_t get_requests() const;
  int64_t put_requests() const;

  /// Record `n` GET requests (issued by scans; charged per 1000).
  void CountGets(int64_t n);

  /// Storage rent for holding the current bytes for `duration` seconds.
  Dollars StorageRent(Seconds duration) const;

  /// Request charges accumulated so far.
  Dollars RequestCharges() const;

  /// Time for `node_count` nodes of shape `node` to cooperatively read
  /// `bytes` from the store (bandwidth scales with nodes; the store itself
  /// is assumed not to be the bottleneck, which matches S3 at warehouse
  /// scale).
  Seconds ScanTime(double bytes, const InstanceType& node,
                   int node_count) const;

 private:
  std::string SpillPathFor(const std::string& key) const REQUIRES(mu_);
  void PutLocked(const std::string& key, double bytes) REQUIRES(mu_);

  const PricingCatalog* pricing_;
  mutable Mutex mu_;
  std::map<std::string, double> objects_ GUARDED_BY(mu_);
  // key -> spill file path for byte-backed objects; files are removed on
  // Delete and (those still present) when the store is destroyed.
  std::map<std::string, std::string> spill_files_ GUARDED_BY(mu_);
  std::string spill_dir_ GUARDED_BY(mu_);
  double total_bytes_ GUARDED_BY(mu_) = 0.0;
  int64_t get_requests_ GUARDED_BY(mu_) = 0;
  int64_t put_requests_ GUARDED_BY(mu_) = 0;
};

}  // namespace costdb
