#include "cloud/billing.h"

#include <algorithm>

namespace costdb {

void BillingMeter::Charge(const UsageRecord& record) {
  UsageRecord billed = record;
  billed.duration = std::max(billed.duration, min_increment_);
  records_.push_back(billed);
  total_ += billed.dollars();
  machine_seconds_ += billed.machine_seconds();
}

void BillingMeter::ChargeFlat(const std::string& label, Dollars amount) {
  flat_charges_[label] += amount;
  total_ += amount;
}

Dollars BillingMeter::TotalForPrefix(const std::string& prefix) const {
  Dollars sum = 0.0;
  for (const auto& r : records_) {
    if (r.label.rfind(prefix, 0) == 0) sum += r.dollars();
  }
  for (const auto& [label, amount] : flat_charges_) {
    if (label.rfind(prefix, 0) == 0) sum += amount;
  }
  return sum;
}

std::map<std::string, Dollars> BillingMeter::Breakdown() const {
  std::map<std::string, Dollars> out = flat_charges_;
  for (const auto& r : records_) out[r.label] += r.dollars();
  return out;
}

void BillingMeter::Reset() {
  total_ = 0.0;
  machine_seconds_ = 0.0;
  records_.clear();
  flat_charges_.clear();
}

}  // namespace costdb
