#include "cloud/cluster.h"

#include <algorithm>

namespace costdb {

ClusterManager::ClusterManager(const PricingCatalog* pricing,
                               BillingMeter* billing, Options options)
    : pricing_(pricing), billing_(billing), options_(options) {}

int ClusterManager::warm_available(Seconds now) const {
  int cooling_not_ready = 0;
  for (const auto& [ready_at, count] : cooling_) {
    if (ready_at > now) cooling_not_ready += count;
  }
  return std::max(0, options_.warm_pool_size - nodes_in_use_ -
                         cooling_not_ready);
}

Seconds ClusterManager::AcquireLatency(int n, Seconds now) {
  const int warm = warm_available(now);
  if (n <= warm) return options_.warm_acquire_latency;
  return options_.cold_acquire_latency;
}

Result<Cluster> ClusterManager::Acquire(int node_count, Seconds now,
                                        const std::string& label) {
  if (node_count <= 0) {
    return Status::InvalidArgument("node_count must be positive");
  }
  last_acquire_latency_ = AcquireLatency(node_count, now);
  Cluster c;
  c.id = next_id_++;
  c.node = pricing_->default_node();
  c.node_count = node_count;
  c.acquired_at = now + last_acquire_latency_;
  c.label = label;
  nodes_in_use_ += node_count;
  return c;
}

Result<ResizeEvent> ClusterManager::Resize(Cluster* cluster,
                                           int new_node_count, Seconds now) {
  if (new_node_count <= 0) {
    return Status::InvalidArgument("new_node_count must be positive");
  }
  ResizeEvent ev;
  ev.at = now;
  ev.from_nodes = cluster->node_count;
  ev.to_nodes = new_node_count;
  const int delta = new_node_count - cluster->node_count;
  if (delta > 0) {
    ev.latency = AcquireLatency(delta, now) + options_.morsel_resize_overhead;
    nodes_in_use_ += delta;
  } else if (delta < 0) {
    ev.latency = options_.morsel_resize_overhead;
    nodes_in_use_ += delta;  // negative
    cooling_.emplace_back(now + options_.node_cooldown, -delta);
  }
  // Bill the old size up to the effective point; the caller owns billing of
  // the new size via Release (which charges the whole interval at the final
  // size), so instead we charge the delta interval here: simplest correct
  // scheme is to charge the *old* size for [acquired_at, now+latency) and
  // restart the clock at the new size.
  UsageRecord rec;
  rec.label = cluster->label;
  rec.start = cluster->acquired_at;
  rec.duration = std::max(0.0, now + ev.latency - cluster->acquired_at);
  rec.node_count = cluster->node_count;
  rec.price_per_node_second = cluster->node.price_per_second();
  billing_->Charge(rec);
  cluster->node_count = new_node_count;
  cluster->acquired_at = now + ev.latency;
  return ev;
}

Status ClusterManager::Release(Cluster* cluster, Seconds now) {
  if (cluster->node_count <= 0) {
    return Status::InvalidArgument("cluster already released");
  }
  UsageRecord rec;
  rec.label = cluster->label;
  rec.start = cluster->acquired_at;
  rec.duration = std::max(0.0, now - cluster->acquired_at);
  rec.node_count = cluster->node_count;
  rec.price_per_node_second = cluster->node.price_per_second();
  billing_->Charge(rec);
  nodes_in_use_ -= cluster->node_count;
  cooling_.emplace_back(now + options_.node_cooldown, cluster->node_count);
  cluster->node_count = 0;
  return Status::OK();
}

}  // namespace costdb
