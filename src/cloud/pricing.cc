#include "cloud/pricing.h"

namespace costdb {

PricingCatalog PricingCatalog::Default() {
  PricingCatalog c;
  // Shape progression doubles compute, memory, and NIC per step, with a
  // linear price ladder: the paper's "1 machine x 100 min == 100 machines x
  // 1 min" arithmetic requires price linear in capacity.
  c.AddInstanceType({"c8", 8, 32.0, 10.0, 1.0, 0.40});
  c.AddInstanceType({"c16", 16, 64.0, 12.5, 1.8, 0.80});
  c.AddInstanceType({"c32", 32, 128.0, 16.0, 3.2, 1.60});
  c.AddInstanceType({"c64", 64, 256.0, 25.0, 5.5, 3.20});
  return c;
}

void PricingCatalog::AddInstanceType(InstanceType type) {
  types_.push_back(std::move(type));
}

Result<InstanceType> PricingCatalog::Find(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return t;
  }
  return Status::NotFound("unknown instance type: " + name);
}

const InstanceType& PricingCatalog::default_node() const {
  return types_.front();
}

}  // namespace costdb
