#include "cloud/pricing.h"

#include <algorithm>

namespace costdb {

Dollars TieredCost(double from, double to, const TieredSchedule& schedule,
                   Dollars flat_price_per_unit) {
  if (to <= from) return 0.0;
  if (schedule.empty()) return (to - from) * flat_price_per_unit;
  Dollars total = 0.0;
  double cursor = from;
  for (const PriceTier& tier : schedule) {
    if (cursor >= to) break;
    if (tier.upto <= cursor) continue;  // tier fully below the span
    const double slice_end = std::min(to, tier.upto);
    total += (slice_end - cursor) * tier.price_per_unit;
    cursor = slice_end;
  }
  // Consumption past the last boundary keeps the last tier's rate.
  if (cursor < to) {
    total += (to - cursor) * schedule.back().price_per_unit;
  }
  return total;
}

PricingCatalog PricingCatalog::Default() {
  PricingCatalog c;
  // Shape progression doubles compute, memory, and NIC per step, with a
  // linear price ladder: the paper's "1 machine x 100 min == 100 machines x
  // 1 min" arithmetic requires price linear in capacity.
  c.AddInstanceType({"c8", 8, 32.0, 10.0, 1.0, 0.40});
  c.AddInstanceType({"c16", 16, 64.0, 12.5, 1.8, 0.80});
  c.AddInstanceType({"c32", 32, 128.0, 16.0, 3.2, 1.60});
  c.AddInstanceType({"c64", 64, 256.0, 25.0, 5.5, 3.20});
  return c;
}

void PricingCatalog::AddInstanceType(InstanceType type) {
  types_.push_back(std::move(type));
}

Result<InstanceType> PricingCatalog::Find(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return t;
  }
  return Status::NotFound("unknown instance type: " + name);
}

const InstanceType& PricingCatalog::default_node() const {
  return types_.front();
}

}  // namespace costdb
