#include "cloud/object_store.h"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace costdb {

namespace {

/// Keys contain '/' (e.g. "lsm/table/42"); flatten to one spill file name.
/// '_' escapes itself so distinct keys cannot collide.
std::string EscapeKey(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (c == '/') {
      out += "_s";
    } else if (c == '_') {
      out += "__";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

SimulatedObjectStore::~SimulatedObjectStore() {
  // Best-effort cleanup of spill files this store wrote; the directory is
  // left in place (it may be shared or user-provided).
  MutexLock lock(mu_);
  std::error_code ec;
  for (const auto& [key, path] : spill_files_) {
    std::filesystem::remove(path, ec);
  }
}

void SimulatedObjectStore::PutLocked(const std::string& key, double bytes) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    total_bytes_ -= it->second;
    it->second = bytes;
  } else {
    objects_[key] = bytes;
  }
  total_bytes_ += bytes;
  ++put_requests_;
}

void SimulatedObjectStore::Put(const std::string& key, double bytes) {
  MutexLock lock(mu_);
  PutLocked(key, bytes);
}

Result<double> SimulatedObjectStore::Size(const std::string& key) const {
  MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  return it->second;
}

void SimulatedObjectStore::Delete(const std::string& key) {
  MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return;
  total_bytes_ -= it->second;
  objects_.erase(it);
  auto sf = spill_files_.find(key);
  if (sf != spill_files_.end()) {
    std::error_code ec;
    std::filesystem::remove(sf->second, ec);
    spill_files_.erase(sf);
  }
}

bool SimulatedObjectStore::Exists(const std::string& key) const {
  MutexLock lock(mu_);
  return objects_.count(key) > 0;
}

Status SimulatedObjectStore::EnableSpill(const std::string& directory) {
  MutexLock lock(mu_);
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("object store: cannot create spill directory '" +
                            directory + "': " + ec.message());
  }
  spill_dir_ = directory;
  return Status::OK();
}

bool SimulatedObjectStore::spill_enabled() const {
  MutexLock lock(mu_);
  return !spill_dir_.empty();
}

std::string SimulatedObjectStore::spill_directory() const {
  MutexLock lock(mu_);
  return spill_dir_;
}

std::string SimulatedObjectStore::SpillPathFor(const std::string& key) const {
  return (std::filesystem::path(spill_dir_) / EscapeKey(key)).string();
}

Status SimulatedObjectStore::PutObject(const std::string& key,
                                       const std::string& bytes) {
  MutexLock lock(mu_);
  if (spill_dir_.empty()) {
    return Status::InvalidArgument(
        "object store: PutObject before EnableSpill");
  }
  const std::string path = SpillPathFor(key);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("object store: cannot open '" + path +
                              "' for write");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return Status::Internal("object store: short write to '" + path + "'");
    }
  }
  PutLocked(key, static_cast<double>(bytes.size()));
  spill_files_[key] = path;
  return Status::OK();
}

Result<std::string> SimulatedObjectStore::GetObject(const std::string& key) {
  std::string path;
  double expect_bytes = 0.0;
  {
    MutexLock lock(mu_);
    auto sf = spill_files_.find(key);
    if (sf == spill_files_.end()) {
      return Status::NotFound("no byte-backed object: " + key);
    }
    path = sf->second;
    expect_bytes = objects_[key];
    ++get_requests_;
  }
  // File I/O outside the lock: concurrent scan workers fetch in parallel.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Internal("object store: cannot open '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("object store: read error on '" + path + "'");
  }
  if (static_cast<double>(bytes.size()) != expect_bytes) {
    return Status::Internal("object store: size mismatch reading '" + key +
                            "' (spill file truncated or replaced)");
  }
  return bytes;
}

double SimulatedObjectStore::total_bytes() const {
  MutexLock lock(mu_);
  return total_bytes_;
}

int64_t SimulatedObjectStore::get_requests() const {
  MutexLock lock(mu_);
  return get_requests_;
}

int64_t SimulatedObjectStore::put_requests() const {
  MutexLock lock(mu_);
  return put_requests_;
}

void SimulatedObjectStore::CountGets(int64_t n) {
  MutexLock lock(mu_);
  get_requests_ += n;
}

Dollars SimulatedObjectStore::StorageRent(Seconds duration) const {
  MutexLock lock(mu_);
  const double gib_months =
      (total_bytes_ / kGiB) * (duration / (30.0 * kSecondsPerDay));
  return gib_months * pricing_->storage_per_gib_month;
}

Dollars SimulatedObjectStore::RequestCharges() const {
  MutexLock lock(mu_);
  return static_cast<double>(get_requests_) / 1000.0 *
             pricing_->per_1k_get_requests +
         static_cast<double>(put_requests_) / 1000.0 *
             pricing_->per_1k_put_requests;
}

Seconds SimulatedObjectStore::ScanTime(double bytes, const InstanceType& node,
                                       int node_count) const {
  if (node_count <= 0) return 0.0;
  const double aggregate_gbps = node.scan_gbps * node_count;
  return bytes / (aggregate_gbps * kGiB);
}

}  // namespace costdb
