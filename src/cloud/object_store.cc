#include "cloud/object_store.h"

namespace costdb {

void SimulatedObjectStore::Put(const std::string& key, double bytes) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    total_bytes_ -= it->second;
    it->second = bytes;
  } else {
    objects_[key] = bytes;
  }
  total_bytes_ += bytes;
  ++put_requests_;
}

Result<double> SimulatedObjectStore::Size(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  return it->second;
}

void SimulatedObjectStore::Delete(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return;
  total_bytes_ -= it->second;
  objects_.erase(it);
}

Dollars SimulatedObjectStore::StorageRent(Seconds duration) const {
  const double gib_months =
      (total_bytes_ / kGiB) * (duration / (30.0 * kSecondsPerDay));
  return gib_months * pricing_->storage_per_gib_month;
}

Dollars SimulatedObjectStore::RequestCharges() const {
  return static_cast<double>(get_requests_) / 1000.0 *
             pricing_->per_1k_get_requests +
         static_cast<double>(put_requests_) / 1000.0 *
             pricing_->per_1k_put_requests;
}

Seconds SimulatedObjectStore::ScanTime(double bytes, const InstanceType& node,
                                       int node_count) const {
  if (node_count <= 0) return 0.0;
  const double aggregate_gbps = node.scan_gbps * node_count;
  return bytes / (aggregate_gbps * kGiB);
}

}  // namespace costdb
