#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/pricing.h"
#include "common/result.h"
#include "common/units.h"

namespace costdb {

/// Handle to an acquired set of symmetric compute nodes.
struct Cluster {
  int64_t id = 0;
  InstanceType node;
  int node_count = 0;
  Seconds acquired_at = 0.0;
  std::string label;  // billing label, e.g. "query:Q3"
};

/// One resize applied to a live cluster, kept for overhead accounting and
/// the experiment on resizing overhead (E7).
struct ResizeEvent {
  Seconds at = 0.0;
  int from_nodes = 0;
  int to_nodes = 0;
  Seconds latency = 0.0;  // time until the new size is effective
};

/// Knobs of the elastic compute layer.
struct ClusterOptions {
  int warm_pool_size = 512;
  Seconds warm_acquire_latency = 0.5;
  Seconds cold_acquire_latency = 30.0;
  Seconds node_cooldown = 5.0;  // released nodes rejoin pool after this
  /// Fixed coordination overhead added to every resize of a *running*
  /// pipeline (task redistribution under morsel-driven scheduling).
  Seconds morsel_resize_overhead = 0.25;
};

/// Elastic compute layer: acquire/resize/release node sets against a warm
/// pool. The provider keeps `warm_pool_size` nodes pre-booted; acquiring
/// within the pool takes `warm_acquire_latency`, beyond it a cold boot.
/// Released nodes return to the pool after a cool-down. This models the
/// paper's assumption of "a warm server pool to facilitate rapid cluster
/// creation, resizing, and reclamation".
class ClusterManager {
 public:
  using Options = ClusterOptions;

  ClusterManager(const PricingCatalog* pricing, BillingMeter* billing,
                 Options options = Options());

  /// Acquire `node_count` nodes of the default shape. Returns the cluster
  /// handle; the `latency()` of the acquisition is available via
  /// last_acquire_latency(). Charges begin at `now + latency`.
  Result<Cluster> Acquire(int node_count, Seconds now,
                          const std::string& label);

  /// Resize a live cluster. Returns the resize event describing when the
  /// new size becomes effective. Billing for the delta starts/stops at the
  /// effective time; the resize overhead is borne by the query (modeled by
  /// the simulator).
  Result<ResizeEvent> Resize(Cluster* cluster, int new_node_count,
                             Seconds now);

  /// Release the cluster at `now` and charge `label` for the whole
  /// acquired interval.
  Status Release(Cluster* cluster, Seconds now);

  Seconds last_acquire_latency() const { return last_acquire_latency_; }
  int nodes_in_use() const { return nodes_in_use_; }
  int warm_available(Seconds now) const;

  const Options& options() const { return options_; }

 private:
  /// Latency to obtain `n` additional nodes at `now`.
  Seconds AcquireLatency(int n, Seconds now);

  const PricingCatalog* pricing_;
  BillingMeter* billing_;
  Options options_;
  int64_t next_id_ = 1;
  int nodes_in_use_ = 0;
  Seconds last_acquire_latency_ = 0.0;
  // (time_available, count) for nodes cooling down back into the pool.
  std::vector<std::pair<Seconds, int>> cooling_;
};

}  // namespace costdb
