#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "catalog/hll.h"

namespace costdb {

double DistributedSimulator::SkewFactor(int pipeline_id) const {
  // Deterministic per-(seed, pipeline) multiplier in
  // [1, 1 + skew_amplitude]: stragglers make real pipelines slower than
  // the closed-form models predict, never faster.
  uint64_t h = HashCombine(options_.seed,
                           HashInt64(static_cast<int64_t>(pipeline_id)));
  double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 + options_.skew_amplitude * unit;
}

Seconds DistributedSimulator::TrueDuration(const Pipeline& pipeline, int dop,
                                           const VolumeMap& truth) const {
  Seconds base = estimator_->PipelineDuration(pipeline, dop, truth);
  // Morsel quantization: at high DOP some workers idle on the last wave.
  double quant = 1.0 + options_.quantization * std::log2(std::max(1, dop));
  return base * SkewFactor(pipeline.id) * quant;
}

SimResult DistributedSimulator::Run(const Request& request,
                                    ResizePolicy* policy,
                                    CloudEnv* env) const {
  const PipelineGraph& graph = *request.graph;
  const VolumeMap& truth = *request.truth;
  SimResult result;

  // Static-plan reference schedule (believed volumes, planned DOPs) gives
  // each pipeline its planned start/finish — the budgets adaptive policies
  // correct against.
  PlanCostEstimate planned;
  {
    std::map<int, Seconds> durations;
    for (const auto& p : graph.pipelines) {
      auto it = request.planned_dops.find(p.id);
      int dop = it == request.planned_dops.end() ? 1 : it->second;
      durations[p.id] =
          estimator_->PipelineDuration(p, dop, *request.believed);
    }
    SchedulePipelines(graph, durations, request.planned_dops, &planned);
  }
  std::map<int, const PipelineEstimate*> planned_by_id;
  for (const auto& pe : planned.pipelines) planned_by_id[pe.pipeline_id] = &pe;

  PolicyContext ctx;
  ctx.graph = &graph;
  ctx.estimator = estimator_;
  ctx.believed = request.believed;
  ctx.truth = &truth;
  ctx.constraint = request.constraint;
  ctx.query_deadline =
      request.constraint.mode == UserConstraint::Mode::kMinCostUnderSla
          ? request.constraint.latency_sla
          : planned.latency;
  ctx.planned_makespan = planned.latency;

  const PolicyTraits traits = policy->traits();

  struct RunState {
    const Pipeline* pipeline = nullptr;
    enum class Phase { kWaiting, kMaterializing, kRunning, kFinished };
    Phase phase = Phase::kWaiting;
    int dop = 1;
    double progress = 0.0;
    Seconds start = 0.0;
    Seconds finish = 0.0;
    Seconds blocked_until = 0.0;  // resize/materialization stall
    Cluster cluster;
    bool cluster_released = false;
    int resizes = 0;
    Seconds observed_duration = 0.0;
  };
  std::map<int, RunState> runs;
  std::map<int, int> consumer;  // pipeline -> consumer pipeline
  for (const auto& p : graph.pipelines) {
    RunState rs;
    rs.pipeline = &p;
    runs[p.id] = rs;
    for (int dep : p.dependencies) consumer[dep] = p.id;
  }

  auto deps_done = [&](const Pipeline& p) {
    for (int dep : p.dependencies) {
      if (runs[dep].phase != RunState::Phase::kFinished) return false;
    }
    return true;
  };

  Seconds now = 0.0;
  size_t finished = 0;
  while (finished < graph.pipelines.size() && now < options_.max_sim_time) {
    ctx.now = now;
    // ---- start ready pipelines ----
    for (const auto& p : graph.pipelines) {
      RunState& rs = runs[p.id];
      if (rs.phase != RunState::Phase::kWaiting || !deps_done(p)) continue;
      const PipelineEstimate* pe = planned_by_id[p.id];
      PipelineRunView view;
      view.pipeline_id = p.id;
      view.planned_dop = pe->dop;
      view.dop = pe->dop;
      view.planned_finish = pe->finish;
      view.planned_duration = pe->duration;
      rs.dop = std::max(1, policy->OnPipelineStart(ctx, view));
      auto cluster = env->clusters()->Acquire(
          rs.dop, now, request.billing_label + ":p" +
                           std::to_string(p.id));
      if (!cluster.ok()) continue;  // try again next tick
      rs.cluster = *cluster;
      rs.start = now;
      Seconds ready_at = rs.cluster.acquired_at;
      // Stage materialization tax ("clean cuts"): such engines write and
      // re-read every exchanged data flow instead of streaming it, so the
      // tax applies to the full volume entering each exchange of this
      // pipeline (plus materialized breaker outputs it consumes).
      if (traits.materialization_secs_per_gib > 0.0) {
        double gib = 0.0;
        if (p.source_is_breaker) {
          auto it = truth.find(p.source);
          if (it != truth.end()) gib += it->second.out_bytes / kGiB;
        }
        for (const PhysicalPlan* op : p.operators) {
          if (op->kind != PhysicalPlan::Kind::kExchange) continue;
          auto it = truth.find(op->children[0].get());
          if (it != truth.end()) gib += it->second.out_bytes / kGiB;
        }
        Seconds mat = gib * traits.materialization_secs_per_gib /
                      std::max(1, rs.dop);
        ready_at += mat;
        result.materialization_seconds += mat;
      }
      rs.blocked_until = ready_at;
      rs.phase = RunState::Phase::kRunning;
    }

    // ---- advance running pipelines by one tick ----
    for (auto& [id, rs] : runs) {
      if (rs.phase != RunState::Phase::kRunning) continue;
      Seconds t0 = std::max(now, rs.blocked_until);
      Seconds t1 = now + options_.tick;
      if (t0 >= t1) continue;  // fully stalled this tick
      Seconds total = TrueDuration(*rs.pipeline, rs.dop, truth);
      rs.observed_duration = total;
      rs.progress += (t1 - t0) / std::max(total, 1e-9);
      if (rs.progress >= 1.0) {
        rs.progress = 1.0;
        rs.finish = t1;
        rs.phase = RunState::Phase::kFinished;
        ++finished;
      }
    }
    now += options_.tick;
    ctx.now = now;

    // ---- release clusters of finished pipelines whose consumer started
    // (co-termination billing: nodes are held while siblings straggle) ----
    for (auto& [id, rs] : runs) {
      if (rs.phase != RunState::Phase::kFinished || rs.cluster_released) {
        continue;
      }
      auto c = consumer.find(id);
      bool release = c == consumer.end() ||
                     runs[c->second].phase == RunState::Phase::kRunning ||
                     runs[c->second].phase == RunState::Phase::kFinished;
      if (release) {
        // Release fails only on double-release, which cluster_released
        // excludes; marking released only on success keeps the billing
        // ledger and the flag in agreement either way.
        rs.cluster_released = env->clusters()->Release(&rs.cluster, now).ok();
      }
    }

    // ---- policy ticks on running pipelines ----
    for (auto& [id, rs] : runs) {
      if (rs.phase != RunState::Phase::kRunning) continue;
      if (now < rs.blocked_until) continue;
      const PipelineEstimate* pe = planned_by_id[id];
      PipelineRunView view;
      view.pipeline_id = id;
      view.dop = rs.dop;
      view.planned_dop = pe->dop;
      view.started_at = rs.start;
      view.progress = rs.progress;
      view.planned_finish = pe->finish;
      view.planned_duration = pe->duration;
      view.observed_duration = rs.observed_duration;
      view.observed_remaining = (1.0 - rs.progress) * rs.observed_duration;
      int new_dop = std::clamp(policy->OnTick(ctx, view), 1, ctx.max_dop);
      if (new_dop != rs.dop && traits.mid_pipeline_resize) {
        auto ev = env->clusters()->Resize(&rs.cluster, new_dop, now);
        if (ev.ok()) {
          rs.dop = new_dop;
          rs.blocked_until = now + ev->latency;
          result.resize_overhead_seconds += ev->latency;
          ++rs.resizes;
          ++result.total_resizes;
        }
      }
    }
  }

  // Release anything still held (e.g. root pipeline).
  for (auto& [id, rs] : runs) {
    if (!rs.cluster_released && rs.cluster.node_count > 0) {
      rs.cluster_released = env->clusters()->Release(&rs.cluster, now).ok();
    }
  }

  result.latency = now;
  // Recompute exact latency as the max finish (the loop overshoots by up
  // to one tick).
  Seconds max_finish = 0.0;
  for (const auto& [id, rs] : runs) {
    max_finish = std::max(max_finish, rs.finish);
  }
  if (max_finish > 0.0) result.latency = max_finish;
  result.machine_seconds = env->billing()->total_machine_seconds();
  result.cost = env->billing()->TotalForPrefix(request.billing_label);
  if (request.constraint.mode == UserConstraint::Mode::kMinCostUnderSla) {
    result.sla_met = result.latency <= request.constraint.latency_sla * 1.001;
  } else {
    result.sla_met = result.cost <= request.constraint.budget * 1.001;
  }
  for (const auto& p : graph.pipelines) {
    const RunState& rs = runs[p.id];
    PipelineRunStats stats;
    stats.pipeline_id = p.id;
    stats.initial_dop = planned_by_id[p.id]->dop;
    stats.final_dop = rs.dop;
    stats.start = rs.start;
    stats.finish = rs.finish;
    stats.resizes = rs.resizes;
    stats.true_duration_at_planned_dop =
        TrueDuration(p, planned_by_id[p.id]->dop, truth);
    result.pipelines.push_back(stats);
  }
  return result;
}

}  // namespace costdb
