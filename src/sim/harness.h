#pragma once

#include <string>

#include "optimizer/bi_objective.h"
#include "sim/simulator.h"

namespace costdb {

/// Everything needed to simulate one planned query: the bound query (kept
/// alive for its relation handles), the bi-objective plan, and the
/// ground-truth volumes the simulator executes against.
struct PreparedQuery {
  BoundQuery query;
  PlannedQuery planned;
  VolumeMap truth;
};

/// Bind + bi-objective-plan + derive true volumes for one SQL query.
Result<PreparedQuery> PrepareQuery(const MetadataService* meta,
                                   const BiObjectiveOptimizer& optimizer,
                                   const std::string& sql,
                                   const UserConstraint& constraint);

/// Simulate a prepared query on a fresh CloudEnv under `policy`; the
/// returned SimResult's dollars are exactly this query's bill.
SimResult SimulateQuery(const PreparedQuery& prepared,
                        const DistributedSimulator& simulator,
                        ResizePolicy* policy,
                        const UserConstraint& constraint,
                        CloudEnv* env = nullptr);

}  // namespace costdb
