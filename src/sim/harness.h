#pragma once

#include <string>

#include "exec/sharded_engine.h"
#include "optimizer/bi_objective.h"
#include "sim/simulator.h"

namespace costdb {

/// Everything needed to simulate one planned query: the bound query (kept
/// alive for its relation handles), the bi-objective plan, and the
/// ground-truth volumes the simulator executes against.
struct PreparedQuery {
  BoundQuery query;
  PlannedQuery planned;
  VolumeMap truth;
};

/// Bind + bi-objective-plan + derive true volumes for one SQL query.
Result<PreparedQuery> PrepareQuery(const MetadataService* meta,
                                   const BiObjectiveOptimizer& optimizer,
                                   const std::string& sql,
                                   const UserConstraint& constraint);

/// Simulate a prepared query on a fresh CloudEnv under `policy`; the
/// returned SimResult's dollars are exactly this query's bill.
SimResult SimulateQuery(const PreparedQuery& prepared,
                        const DistributedSimulator& simulator,
                        ResizePolicy* policy,
                        const UserConstraint& constraint,
                        CloudEnv* env = nullptr);

/// Simulator-vs-reality cross-check for the sharded backend. Until now the
/// resize policies and the bi-objective optimizer were validated only
/// against the DistributedSimulator — a *model* of execution; the
/// ShardedEngine makes the same plan runnable on real rows, so the model
/// becomes checkable: does the cost model, fed ground-truth volumes,
/// predict the same scaling direction the real engine measures, and do the
/// bytes it believes an exchange moves line up with the bytes that moved?
struct ShardedParity {
  Seconds predicted_single = 0.0;   // estimator latency, every pipeline dop 1
  Seconds predicted_sharded = 0.0;  // same at dop = workers
  Seconds measured_single = 0.0;    // caller-measured wall times
  Seconds measured_sharded = 0.0;
  double predicted_exchange_bytes = 0.0;  // model's moved bytes at `workers`
  double measured_exchange_bytes = 0.0;   // engine's ExchangeStats
  /// Serialized-transport side (all zero for in-process runs): do the link
  /// terms the estimator was calibrated with predict the serialize+transfer
  /// share the engine actually measured?
  double measured_wire_bytes = 0.0;       // serialized frame bytes
  Seconds predicted_link_seconds = 0.0;   // estimator's link-term total
  Seconds measured_link_seconds = 0.0;    // engine's link_seconds total
  double link_q_error = 1.0;  // max(pred/meas, meas/pred); 1 when either is 0
  bool scaling_direction_agrees = false;
};

/// Fill the predicted side from the prepared query's ground-truth volumes
/// and compare against the measured side (wall times + exchange stats of a
/// real ShardedEngine run at `workers`, and of a single-worker run).
ShardedParity CheckShardedParity(const PreparedQuery& prepared,
                                 const CostEstimator& estimator, int workers,
                                 Seconds measured_single,
                                 Seconds measured_sharded,
                                 const ExchangeStats& measured);

/// The same cross-check for *elastic* execution: until now the resize
/// policies were exercised only by the DistributedSimulator's clock; the
/// elastic ShardedEngine makes the same policy drive a real run, so the
/// simulator's resize predictions become checkable against a real
/// machine-time ledger — does the simulated run resize when the real one
/// does, and are the billed machine-seconds the same order of magnitude?
struct ElasticParity {
  int simulated_resizes = 0;
  Seconds simulated_machine_seconds = 0.0;
  Dollars simulated_cost = 0.0;
  size_t real_resizes = 0;
  Seconds real_machine_seconds = 0.0;  // WorkerUsage::worker_seconds
  double machine_seconds_ratio = 0.0;  // simulated / real (0 if real == 0)
  /// Both runs resized, or both held their width.
  bool resize_direction_agrees = false;
};

/// Simulate the prepared query under `policy` and compare the simulator's
/// resize behavior and machine-time bill against the worker-second ledger
/// of a real elastic ShardedEngine run (`real_usage`).
ElasticParity CheckElasticParity(const PreparedQuery& prepared,
                                 const DistributedSimulator& simulator,
                                 ResizePolicy* policy,
                                 const UserConstraint& constraint,
                                 const WorkerUsage& real_usage);

}  // namespace costdb
