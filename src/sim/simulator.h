#pragma once

#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "runtime/resize_policy.h"

namespace costdb {

/// Per-pipeline outcome of a simulated distributed execution.
struct PipelineRunStats {
  int pipeline_id = 0;
  int initial_dop = 1;
  int final_dop = 1;
  Seconds start = 0.0;
  Seconds finish = 0.0;
  Seconds true_duration_at_planned_dop = 0.0;
  int resizes = 0;
};

/// Whole-query outcome.
struct SimResult {
  Seconds latency = 0.0;
  Seconds machine_seconds = 0.0;
  Dollars cost = 0.0;
  bool sla_met = true;
  int total_resizes = 0;
  Seconds resize_overhead_seconds = 0.0;
  Seconds materialization_seconds = 0.0;
  std::vector<PipelineRunStats> pipelines;
};

/// Deterministic discrete-time simulator of distributed query execution —
/// the stand-in for the cloud testbed the paper's authors would run on
/// (see DESIGN.md §2). It executes the pipeline DAG against *true* volumes
/// with effects the cost estimator's closed-form models do not capture
/// (per-pipeline skew, morsel quantization, acquire/resize latencies,
/// stage materialization), drives a ResizePolicy through monitor ticks,
/// and bills machine time through the CloudEnv's cluster manager —
/// including the blocked time of finished pipelines whose nodes are held
/// until their consumer starts.
struct SimOptions {
  uint64_t seed = 42;
  Seconds tick = 0.25;             // simulation/monitor granularity
  double skew_amplitude = 0.15;    // per-pipeline duration perturbation
  double quantization = 0.04;      // morsel rounding losses at high DOP
  Seconds max_sim_time = 48.0 * kSecondsPerHour;
};

class DistributedSimulator {
 public:
  using Options = SimOptions;

  explicit DistributedSimulator(const CostEstimator* estimator,
                                Options options = Options())
      : estimator_(estimator), options_(options) {}

  struct Request {
    const PipelineGraph* graph = nullptr;
    const VolumeMap* truth = nullptr;     // ground-truth volumes
    const VolumeMap* believed = nullptr;  // optimizer's volumes
    DopMap planned_dops;
    UserConstraint constraint;
    std::string billing_label = "query";
  };

  /// Run one query under `policy`, charging `env`'s billing meter.
  SimResult Run(const Request& request, ResizePolicy* policy,
                CloudEnv* env) const;

  /// True pipeline duration at a DOP: estimator models over true volumes
  /// plus the simulator-only effects (skew, quantization). Exposed so
  /// experiments can report estimate-vs-truth q-errors.
  Seconds TrueDuration(const Pipeline& pipeline, int dop,
                       const VolumeMap& truth) const;

 private:
  double SkewFactor(int pipeline_id) const;

  const CostEstimator* estimator_;
  Options options_;
};

}  // namespace costdb
