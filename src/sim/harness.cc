#include "sim/harness.h"

#include "optimizer/passes.h"

namespace costdb {

Result<PreparedQuery> PrepareQuery(const MetadataService* meta,
                                   const BiObjectiveOptimizer& optimizer,
                                   const std::string& sql,
                                   const UserConstraint& constraint) {
  PreparedQuery out;
  COSTDB_ASSIGN_OR_RETURN(out.query, BindSql(meta, sql));
  PlannedQuery planned;
  COSTDB_ASSIGN_OR_RETURN(planned, optimizer.Plan(out.query, constraint));
  out.planned = std::move(planned);
  CardinalityEstimator truth_cards(meta, &out.query.relations,
                                   /*use_true_stats=*/true);
  out.truth = ComputeVolumes(out.planned.plan.get(), truth_cards);
  return out;
}

SimResult SimulateQuery(const PreparedQuery& prepared,
                        const DistributedSimulator& simulator,
                        ResizePolicy* policy,
                        const UserConstraint& constraint, CloudEnv* env) {
  CloudEnv local_env;
  if (env == nullptr) env = &local_env;
  DistributedSimulator::Request request;
  request.graph = &prepared.planned.pipelines;
  request.truth = &prepared.truth;
  request.believed = &prepared.planned.volumes;
  request.planned_dops = prepared.planned.dops;
  request.constraint = constraint;
  return simulator.Run(request, policy, env);
}

}  // namespace costdb
