#include "sim/harness.h"

#include <algorithm>

#include "optimizer/passes.h"

namespace costdb {

Result<PreparedQuery> PrepareQuery(const MetadataService* meta,
                                   const BiObjectiveOptimizer& optimizer,
                                   const std::string& sql,
                                   const UserConstraint& constraint) {
  PreparedQuery out;
  COSTDB_ASSIGN_OR_RETURN(out.query, BindSql(meta, sql));
  PlannedQuery planned;
  COSTDB_ASSIGN_OR_RETURN(planned, optimizer.Plan(out.query, constraint));
  out.planned = std::move(planned);
  CardinalityEstimator truth_cards(meta, &out.query.relations,
                                   /*use_true_stats=*/true);
  out.truth = ComputeVolumes(out.planned.plan.get(), truth_cards);
  return out;
}

namespace {

/// Bytes the exchange models charge as "moved" at `workers`, from the
/// ground-truth volume of each exchange's input (mirrors ShuffleTerm's
/// frac_remote accounting in cost/operator_models.cc).
double PredictedExchangeBytes(const PhysicalPlan* node, const VolumeMap& truth,
                              int workers) {
  double total = 0.0;
  if (node->kind == PhysicalPlan::Kind::kExchange && !node->children.empty()) {
    auto it = truth.find(node->children[0].get());
    const double bytes = it == truth.end() ? 0.0 : it->second.out_bytes;
    const double w = static_cast<double>(workers);
    switch (node->exchange_kind) {
      case ExchangeKind::kShuffle:
      case ExchangeKind::kGather:
        total += workers > 1 ? bytes * (w - 1.0) / w : 0.0;
        break;
      case ExchangeKind::kBroadcast:
        total += workers > 1 ? bytes * (w - 1.0) : 0.0;
        break;
      case ExchangeKind::kLocal:
        break;  // co-partitioned: nothing moves
    }
  }
  for (const auto& c : node->children) {
    total += PredictedExchangeBytes(c.get(), truth, workers);
  }
  return total;
}

}  // namespace

ShardedParity CheckShardedParity(const PreparedQuery& prepared,
                                 const CostEstimator& estimator, int workers,
                                 Seconds measured_single,
                                 Seconds measured_sharded,
                                 const ExchangeStats& measured) {
  ShardedParity parity;
  // Mirror the engine's topology: once rows cross a gather, downstream
  // fragments run on worker 0 only — price those pipelines at dop 1, not
  // `workers`, or the prediction describes a plan the engine never runs.
  std::map<int, bool> single_after_gather;
  for (const auto& p : prepared.planned.pipelines.pipelines) {
    bool single = false;
    for (const PhysicalPlan* op : p.operators) {
      if (op->kind == PhysicalPlan::Kind::kExchange &&
          op->exchange_kind == ExchangeKind::kGather) {
        single = true;
      }
    }
    for (int dep : p.dependencies) single = single || single_after_gather[dep];
    single_after_gather[p.id] = single;
  }
  DopMap single_dops, sharded_dops;
  for (const auto& p : prepared.planned.pipelines.pipelines) {
    single_dops[p.id] = 1;
    sharded_dops[p.id] = single_after_gather[p.id] ? 1 : workers;
  }
  parity.predicted_single =
      estimator.EstimatePlan(prepared.planned.pipelines, single_dops,
                             prepared.truth)
          .latency;
  parity.predicted_sharded =
      estimator.EstimatePlan(prepared.planned.pipelines, sharded_dops,
                             prepared.truth)
          .latency;
  parity.measured_single = measured_single;
  parity.measured_sharded = measured_sharded;
  parity.predicted_exchange_bytes = PredictedExchangeBytes(
      prepared.planned.plan.get(), prepared.truth, workers);
  parity.measured_exchange_bytes = measured.bytes_moved();
  // Link-term parity: predict the serialize+transfer share of each executed
  // exchange from the calibrated link terms and the bytes that actually
  // crossed the transport, and compare against the measured share. All
  // zero (q-error 1) for in-process runs — no link exists there.
  parity.measured_wire_bytes = measured.wire_bytes();
  parity.measured_link_seconds = measured.link_seconds();
  const HardwareCalibration& hw = estimator.hardware();
  for (const ExchangeTiming& t : measured.timings) {
    if (t.wire_bytes <= 0.0) continue;
    parity.predicted_link_seconds +=
        t.wire_bytes / (hw.wire_serialize_gibps * kGiB) +
        t.wire_bytes / (hw.link_gibps * kGiB) +
        static_cast<double>(t.transfers) * hw.link_rtt_seconds;
  }
  if (parity.predicted_link_seconds > 0.0 &&
      parity.measured_link_seconds > 0.0) {
    parity.link_q_error =
        std::max(parity.predicted_link_seconds / parity.measured_link_seconds,
                 parity.measured_link_seconds / parity.predicted_link_seconds);
  }
  parity.scaling_direction_agrees =
      (parity.predicted_sharded < parity.predicted_single) ==
      (parity.measured_sharded < parity.measured_single);
  return parity;
}

ElasticParity CheckElasticParity(const PreparedQuery& prepared,
                                 const DistributedSimulator& simulator,
                                 ResizePolicy* policy,
                                 const UserConstraint& constraint,
                                 const WorkerUsage& real_usage) {
  ElasticParity parity;
  SimResult sim = SimulateQuery(prepared, simulator, policy, constraint);
  parity.simulated_resizes = sim.total_resizes;
  parity.simulated_machine_seconds = sim.machine_seconds;
  parity.simulated_cost = sim.cost;
  parity.real_resizes = real_usage.resizes;
  parity.real_machine_seconds = real_usage.worker_seconds;
  parity.machine_seconds_ratio =
      real_usage.worker_seconds > 0.0
          ? sim.machine_seconds / real_usage.worker_seconds
          : 0.0;
  parity.resize_direction_agrees =
      (sim.total_resizes > 0) == (real_usage.resizes > 0);
  return parity;
}

SimResult SimulateQuery(const PreparedQuery& prepared,
                        const DistributedSimulator& simulator,
                        ResizePolicy* policy,
                        const UserConstraint& constraint, CloudEnv* env) {
  CloudEnv local_env;
  if (env == nullptr) env = &local_env;
  DistributedSimulator::Request request;
  request.graph = &prepared.planned.pipelines;
  request.truth = &prepared.truth;
  request.believed = &prepared.planned.volumes;
  request.planned_dops = prepared.planned.dops;
  request.constraint = constraint;
  return simulator.Run(request, policy, env);
}

}  // namespace costdb
