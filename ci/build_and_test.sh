#!/usr/bin/env bash
# Tier-1 verify (see ROADMAP.md): configure, build with -Wall -Wextra
# (warnings are errors in CI), run every registered test, smoke every bench
# that supports it, race the concurrent layers under TSAN, shake the exec
# layer under ASAN/UBSAN, and check that the markdown docs' links resolve.
#
# STAGE selects what runs (the GitHub matrix runs one stage per job):
#   all    - everything below, in order (the default; local tier-1 verify)
#   static - compile-time correctness: architecture-layering linter
#            (ci/check_layering.py, fixture self-test + real tree), Clang
#            thread-safety analysis (ci/check_thread_safety.sh), clang-tidy
#            (ci/check_clang_tidy.sh). The clang-based stages skip loudly
#            on runners without a clang toolchain; the linter always runs.
#   build  - Release+Werror build, ctest, bench smoke, markdown link check
#   asan   - Debug AddressSanitizer+UBSan on the execution-layer tests
#   tsan   - ThreadSanitizer on the concurrent service + sharded tests
set -euo pipefail

cd "$(dirname "$0")/.."

STAGE="${STAGE:-all}"
JOBS="${JOBS:-$(nproc)}"
CMAKE_LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  CMAKE_LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# Regression-gate a fresh bench snapshot against the committed baseline.
# Snapshots are flat one-key-per-line JSON (BenchJson in bench/bench_util.h);
# only gate_* keys are compared — they are deterministic for the fixed
# --smoke configuration (row counts, pruning fractions, pass bits), so any
# drift means behavior changed, not the machine. Trajectory keys (wall
# times, speedups) are persisted but never gated here; the perf targets
# live inside the bench binaries' own PASS/FAIL exit codes.
check_bench_snapshot() {
  local name="$1" baseline="$2" current="$3"
  awk -v tol="${BENCH_GATE_TOL:-0.10}" -v bench="$name" '
    function val(v) { return v == "true" ? 1 : v == "false" ? 0 : v + 0 }
    function keyval(line, kv) {
      kv["key"] = substr(line, RSTART + 1, RLENGTH - 2)
      sub(/^[^:]*: */, "", line); sub(/,[ \t]*$/, "", line)
      kv["val"] = line
    }
    FNR == NR {
      if (match($0, /"gate_[^"]*"/)) { keyval($0, kv); base[kv["key"]] = kv["val"] }
      next
    }
    {
      if (match($0, /"gate_[^"]*"/)) { keyval($0, kv); cur[kv["key"]] = kv["val"] }
    }
    END {
      bad = 0
      if (length(base) == 0) {
        printf "bench snapshot %s: baseline has no gate_* keys\n", bench
        exit 1
      }
      for (key in base) {
        if (!(key in cur)) {
          printf "MISSING gate key %s in fresh %s snapshot\n", key, bench
          bad++
          continue
        }
        b = val(base[key]); c = val(cur[key])
        denom = (b < 0 ? -b : b); if (denom < 1e-12) denom = 1e-12
        d = (c - b) / denom; if (d < 0) d = -d
        if (d > tol) {
          printf "REGRESSION %s.%s: baseline %s, got %s (rel diff %.3f > tol %.2f)\n", \
                 bench, key, base[key], cur[key], d, tol
          bad++
        }
      }
      if (bad) exit 1
      printf "bench snapshot %s: %d gate keys within tolerance\n", bench, length(base)
    }
  ' "$baseline" "$current"
}

# Print every valid anchor slug of a markdown file, one per line, using
# GitHub's slugification: lowercase the heading text, strip everything but
# [a-z0-9 _-], turn spaces into hyphens, and suffix repeats with -1, -2, …
# Headings inside fenced code blocks do not produce anchors.
md_anchors() {
  awk '
    /^```/ { fence = !fence; next }
    !fence && /^#+ / {
      s = $0
      sub(/^#+ +/, "", s)
      s = tolower(s)
      gsub(/[^a-z0-9 _-]/, "", s)
      gsub(/ /, "-", s)
      if (seen[s]++) s = s "-" (seen[s] - 1)
      print s
    }
  ' "$1"
}

run_static_stage() {
  # ---- architecture layering: the #include graph must respect the layer
  # rules (clients enter via service/, nobody reaches optimizer internals
  # around the pass facade). --self-test first proves the linter rejects
  # the committed bad fixtures before trusting its verdict on the tree.
  echo "== layering linter =="
  python3 ci/check_layering.py --self-test

  # ---- Clang-only analyses: thread-safety annotations and clang-tidy.
  # Both discover their tool and skip loudly (exit 0) when the runner has
  # no clang toolchain; see the script headers for the rationale.
  echo "== thread-safety analysis =="
  ./ci/check_thread_safety.sh

  echo "== clang-tidy =="
  ./ci/check_clang_tidy.sh
}

run_build_stage() {
  local build_dir="${BUILD_DIR:-build-ci}"
  cmake -B "$build_dir" -S . -DCOSTDB_WERROR=ON "${CMAKE_LAUNCHER_ARGS[@]}"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"

  # ---- test registration drift guard: every tests/*_test.cc must be a
  # registered ctest target (the inverse of the bench --smoke discovery
  # below). CMake globs the directory, but a stale configure or a renamed
  # file can silently drop a suite from the run; a test that exists but
  # never executes is worse than a missing one.
  echo "== test registration drift guard =="
  local registered missing=0 test_src test_name
  # ctest -N right-aligns test numbers ("Test  #1:" vs "Test #10:"), so
  # allow any spacing between "Test" and "#".
  registered=$(ctest --test-dir "$build_dir" -N 2>/dev/null |
    sed -n 's/^ *Test *#[0-9]*: //p')
  for test_src in tests/*_test.cc; do
    [ -f "$test_src" ] || continue
    test_name="$(basename "$test_src" .cc)"
    if ! grep -qx "$test_name" <<<"$registered"; then
      echo "DRIFT: tests/$test_name.cc exists but is not a registered ctest target"
      missing=$((missing + 1))
    fi
  done
  if [ "$missing" -ne 0 ]; then
    echo "test registration drift guard FAILED ($missing unregistered)"
    exit 1
  fi
  echo "test registration OK ($(wc -l <<<"$registered") targets)"

  # ---- bench baseline drift guard: every bench must either have a
  # committed gate snapshot in ci/bench_baselines/ or carry an explicit
  # "bench-baseline: none" marker comment explaining why it has none. A
  # bench added without either silently opts out of regression gating —
  # this makes the opt-out a reviewed, committed decision. The inverse is
  # guarded too: a baseline whose bench source is gone is stale and fails.
  echo "== bench baseline drift guard =="
  local base_drift=0 base
  for src in bench/bench_*.cc; do
    name="$(basename "$src" .cc)"
    if [ -f "ci/bench_baselines/BENCH_$name.json" ]; then
      if ! grep -q -- '--json' "$src"; then
        echo "DRIFT: ci/bench_baselines/BENCH_$name.json exists but $src does" \
             "not advertise a JSON snapshot (the smoke loop greps the literal" \
             "flag) — the baseline can never be gated"
        base_drift=$((base_drift + 1))
      fi
    elif ! grep -q 'bench-baseline: none' "$src"; then
      echo "DRIFT: $src has neither ci/bench_baselines/BENCH_$name.json nor" \
           "an explicit 'bench-baseline: none' marker"
      base_drift=$((base_drift + 1))
    fi
  done
  for base in ci/bench_baselines/BENCH_*.json; do
    [ -f "$base" ] || continue
    name="$(basename "$base" .json)"
    name="${name#BENCH_}"
    if [ ! -f "bench/$name.cc" ]; then
      echo "DRIFT: $base has no matching bench/$name.cc (stale baseline)"
      base_drift=$((base_drift + 1))
    fi
  done
  if [ "$base_drift" -ne 0 ]; then
    echo "bench baseline drift guard FAILED ($base_drift problems)"
    exit 1
  fi
  echo "bench baselines OK (every bench gated or explicitly marked)"

  # ---- bench smoke: data-driven over every bench that supports --smoke.
  # A new bench advertises smoke support simply by handling the flag in
  # its source; a broken or unwired bench binary fails CI instead of
  # bitrotting in a hand-maintained list. Benches that additionally
  # advertise --json (the BenchJson helper in bench/bench_util.h) get a
  # BENCH_<name>.json snapshot persisted per run — the machine-readable
  # bench trajectory — and their deterministic gate_* keys are regression-
  # gated against the committed baseline in ci/bench_baselines/.
  echo "== bench smoke =="
  local smoked=0 gated=0
  local src name bin json baseline
  for src in bench/bench_*.cc; do
    name="$(basename "$src" .cc)"
    bin="$build_dir/$name"
    grep -q -- '--smoke' "$src" || continue
    if [ ! -x "$bin" ]; then
      echo "bench $name supports --smoke but was not built"
      exit 1
    fi
    if grep -q -- '--json' "$src"; then
      json="$build_dir/BENCH_$name.json"
      echo "-- $name --smoke --json $json"
      "$bin" --smoke --json "$json"
      baseline="ci/bench_baselines/BENCH_$name.json"
      if [ -f "$baseline" ]; then
        check_bench_snapshot "$name" "$baseline" "$json"
        gated=$((gated + 1))
      else
        echo "NOTE: no committed baseline at $baseline; snapshot not gated"
      fi
    else
      echo "-- $name --smoke"
      "$bin" --smoke
    fi
    smoked=$((smoked + 1))
  done
  if [ "$smoked" -eq 0 ]; then
    echo "bench smoke FAILED: no --smoke-capable bench found"
    exit 1
  fi
  # The tenant stress suite is a hard acceptance gate for the multi-tenant
  # front door: assert the data-driven discovery actually picked it up
  # (and snapshot-gated it), so a rename or a dropped --smoke flag cannot
  # silently retire it.
  if [ ! -f "$build_dir/BENCH_bench_e16_tenants.json" ]; then
    echo "bench smoke FAILED: bench_e16_tenants was not discovered/snapshotted"
    exit 1
  fi
  "$build_dir/bench_f3_endtoend" > /dev/null
  echo "bench smoke OK ($smoked benches, $gated snapshot-gated)"

  # ---- markdown link check: relative links in the docs must resolve, and
  # so must their #anchors — a fragment pointing at a markdown file must
  # match one of that file's heading slugs (md_anchors above implements
  # GitHub's slugification). Globs cover nested docs (docs/**/ and
  # examples/); zero files checked means the globs (or the repo layout)
  # broke and must fail, not silently pass — the `checked` guard below
  # enforces that.
  echo "== markdown link check =="
  shopt -s nullglob globstar
  local files=(README.md ROADMAP.md docs/**/*.md examples/**/*.md)
  shopt -u nullglob globstar
  local link_errors=0 checked=0 md dir link target anchor file
  for md in "${files[@]}"; do
    [ -f "$md" ] || continue
    checked=$((checked + 1))
    dir=$(dirname "$md")
    # Extract (target) parts of [text](target) links; keep repo-relative
    # paths only (skip URLs). A bare #anchor refers to this file.
    while IFS= read -r link; do
      target="${link%%#*}"           # path part (empty for pure #anchors)
      anchor=""
      case "$link" in
        *'#'*) anchor="${link#*#}"; anchor="${anchor%% *}" ;;
      esac
      target="${target%% *}"         # drop a 'title' after the path
      case "$target" in
        http://*|https://*|mailto:*) continue ;;
      esac
      if [ -z "$target" ]; then
        file="$md"
      elif [ -e "$dir/$target" ]; then
        file="$dir/$target"
      elif [ -e "$target" ]; then
        file="$target"
      else
        echo "BROKEN LINK in $md: $link"
        link_errors=$((link_errors + 1))
        continue
      fi
      if [ -n "$anchor" ]; then
        case "$file" in
          *.md)
            anchor=$(printf '%s' "$anchor" | tr '[:upper:]' '[:lower:]')
            if ! md_anchors "$file" | grep -qxF -- "$anchor"; then
              echo "BROKEN ANCHOR in $md: $link (no heading '#$anchor' in $file)"
              link_errors=$((link_errors + 1))
            fi
            ;;
        esac
      fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
  done
  if [ "$checked" -eq 0 ]; then
    echo "markdown link check FAILED: no markdown files checked"
    exit 1
  fi
  if [ "$link_errors" -ne 0 ]; then
    echo "markdown link check FAILED ($link_errors broken)"
    exit 1
  fi
  echo "markdown links OK ($checked files)"
}

run_asan_stage() {
  # ---- ASAN/UBSAN: the execution layer moves borrowed row-group columns,
  # selection vectors, and cross-worker chunks around — shake out lifetime
  # and indexing bugs on the tests that drive it hardest.
  # tenant_test rides along: result-cache hits copy materialized chunks
  # across sessions and the cache leader publishes rows other threads
  # consume — lifetime bugs there are exactly ASAN's domain.
  # storage_test rides along: block decode walks untrusted encoded bytes
  # (checksum/truncation fixtures), the block cache hands shared_ptr chunks
  # to scans that outlive eviction, and compaction retires blocks while
  # readers may still pin them — all lifetime/bounds territory.
  # net_test rides along: the wire decoder walks untrusted frames (the
  # corruption/truncation fixtures flip every byte), and the socket
  # transport round-trips frames larger than kernel buffers through raw
  # read/write loops — exactly ASAN's bounds/lifetime domain. sharded_test
  # in turn drives the socket transport and forked worker processes through
  # whole-query exchanges.
  echo "== ASAN/UBSAN (exec + vectorized + sharded + elastic + tenant + storage + net) =="
  local build_dir="${ASAN_BUILD_DIR:-build-asan}"
  cmake -B "$build_dir" -S . -DCOSTDB_ASAN=ON -DCMAKE_BUILD_TYPE=Debug \
    "${CMAKE_LAUNCHER_ARGS[@]}"
  cmake --build "$build_dir" -j "$JOBS" \
    --target exec_test vectorized_test sharded_test elastic_test \
    tenant_test storage_test net_test
  local t
  for t in exec_test vectorized_test sharded_test elastic_test tenant_test \
           storage_test net_test; do
    ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
      "$build_dir/$t"
  done
  echo "ASAN/UBSAN OK"
}

run_tsan_stage() {
  # ---- TSAN: the async service layer (admission queue, session ledgers,
  # streaming result sinks) and the multi-worker sharded engine are the
  # concurrency hot spots; race them under ThreadSanitizer. Scoped to
  # those tests to keep CI time sane.
  # vectorized_test rides along because the fused kernel tier shares one
  # stateless registry across all morsel-processing threads — the parity
  # suite is the densest driver of that shared dispatch point.
  # tenant_test is required here by design: the concurrent-cancel ledger
  # property and the 16-way single-flight result-cache test only prove
  # anything under the race detector.
  # catalog_test rides along for the stats-knob race regressions
  # (StatsKnobsRaceServedStatsReads): the what-if planner flips error
  # factors and virtual scales while sessions read served stats, and the
  # locked rewrite is only proven under TSAN.
  echo "== TSAN (service + session + tenant + sharded + elastic + vectorized + catalog) =="
  local build_dir="${TSAN_BUILD_DIR:-build-tsan}"
  cmake -B "$build_dir" -S . -DCOSTDB_TSAN=ON "${CMAKE_LAUNCHER_ARGS[@]}"
  cmake --build "$build_dir" -j "$JOBS" \
    --target service_test session_test tenant_test sharded_test \
    elastic_test vectorized_test catalog_test
  local t
  for t in service_test session_test tenant_test sharded_test elastic_test \
           vectorized_test catalog_test; do
    TSAN_OPTIONS="halt_on_error=1" "$build_dir/$t"
  done
  echo "TSAN OK"
}

case "$STAGE" in
  static) run_static_stage ;;
  build)  run_build_stage ;;
  asan)   run_asan_stage ;;
  tsan)   run_tsan_stage ;;
  all)
    run_static_stage
    run_build_stage
    run_asan_stage
    run_tsan_stage
    ;;
  *)
    echo "unknown STAGE '$STAGE' (expected all|static|build|asan|tsan)" >&2
    exit 2
    ;;
esac
