#!/usr/bin/env bash
# Tier-1 verify (see ROADMAP.md): configure, build with -Wall -Wextra
# (warnings are errors in CI), run every registered test.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DCOSTDB_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
