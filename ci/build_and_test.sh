#!/usr/bin/env bash
# Tier-1 verify (see ROADMAP.md): configure, build with -Wall -Wextra
# (warnings are errors in CI), run every registered test, smoke the bench
# wiring, and check that the markdown docs' relative links resolve.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DCOSTDB_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# ---- bench smoke: a broken bench binary should fail CI, not bitrot ----
echo "== bench smoke =="
"$BUILD_DIR/bench_e12_vectorized" --smoke
"$BUILD_DIR/bench_e13_sessions" --smoke
"$BUILD_DIR/bench_f3_endtoend" > /dev/null
echo "bench smoke OK"

# ---- TSAN: the async service layer (admission queue, session ledgers,
# streaming result sinks) is the concurrency hot spot; race it under
# ThreadSanitizer. Scoped to the service tests to keep CI time sane.
echo "== TSAN (service + session) =="
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
cmake -B "$TSAN_BUILD_DIR" -S . -DCOSTDB_TSAN=ON
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target service_test session_test
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD_DIR/service_test"
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD_DIR/session_test"
echo "TSAN OK"

# ---- markdown link check: relative links in the docs must resolve ----
echo "== markdown link check =="
link_errors=0
for md in README.md docs/*.md; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Extract (target) parts of [text](target) links; keep repo-relative
  # paths only (skip URLs and pure #anchors).
  while IFS= read -r link; do
    target="${link%%#*}"           # drop any #anchor
    target="${target%% *}"         # drop a 'title' after the path
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK in $md: $link"
      link_errors=$((link_errors + 1))
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done
if [ "$link_errors" -ne 0 ]; then
  echo "markdown link check FAILED ($link_errors broken)"
  exit 1
fi
echo "markdown links OK"
