#!/usr/bin/env bash
# clang-tidy stage: run the root .clang-tidy profile (bugprone-*,
# performance-*, concurrency-*, readability-container-size-empty) over
# every src/ TU using the compilation database a configured build tree
# exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on; see CMakeLists.txt).
#
# Like ci/check_thread_safety.sh, this stage is clang-toolchain-only. It
# discovers clang-tidy via $COSTDB_CLANG_TIDY, PATH (plain and versioned
# names), or the usual LLVM install prefixes, and SKIPS loudly with exit 0
# when none exists — the GCC-only image still builds with -Wall -Wextra
# -Werror, so the tree cannot silently rot; the tidy profile is enforced
# on clang-equipped runners.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

find_tidy() {
  if [ -n "${COSTDB_CLANG_TIDY:-}" ]; then
    echo "$COSTDB_CLANG_TIDY"
    return
  fi
  local c
  for c in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
           clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$c" >/dev/null 2>&1; then
      echo "$c"
      return
    fi
  done
  for c in /usr/lib/llvm-*/bin/clang-tidy /usr/local/opt/llvm/bin/clang-tidy \
           /opt/homebrew/opt/llvm/bin/clang-tidy; do
    if [ -x "$c" ]; then
      echo "$c"
      return
    fi
  done
}

tidy="$(find_tidy)"
if [ -z "$tidy" ] || ! "$tidy" --version >/dev/null 2>&1; then
  echo "clang-tidy: SKIPPED — no working clang-tidy found" \
       "(set COSTDB_CLANG_TIDY to enable). The GCC stages still enforce" \
       "-Wall -Wextra -Werror; the tidy profile runs on clang-equipped" \
       "runners."
  exit 0
fi
echo "clang-tidy: using $tidy ($("$tidy" --version | sed -n 's/.*version/version/p' | head -1))"

build_dir="${BUILD_DIR:-build-ci}"
db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "clang-tidy: no $db — configuring $build_dir to export it"
  cmake -B "$build_dir" -S . -DCOSTDB_WERROR=ON >/dev/null
fi
if [ ! -f "$db" ]; then
  echo "clang-tidy: FAIL — $db still missing after configure"
  exit 1
fi

fail=0
while IFS= read -r tu; do
  if ! "$tidy" -p "$build_dir" --quiet "$tu"; then
    echo "clang-tidy: findings in $tu"
    fail=1
  fi
done < <(find src -name '*.cc' | sort)

if [ "$fail" -ne 0 ]; then
  echo "clang-tidy: FAILED"
  exit 1
fi
echo "clang-tidy: all src/ translation units clean"
