#!/usr/bin/env bash
# Clang thread-safety analysis stage: compile every src/ TU with
# -Werror=thread-safety so any access to a GUARDED_BY member outside its
# lock, or any call to a REQUIRES function without the capability, fails
# the build. Before linting the tree, a fixture self-check proves the
# stage has teeth: tests/thread_safety_fixtures/bad_unguarded_access.cc
# (a seeded unguarded read) must be rejected and good_guarded_access.cc
# must pass.
#
# The analysis is Clang-only. The stage discovers a clang++ via
# $COSTDB_CLANGXX, PATH (plain and versioned names), or the usual LLVM
# install prefixes; when none exists (the GCC-only CI image) it SKIPS
# loudly with exit 0 — the annotations still compile as no-ops under GCC
# in every other stage, so the tree cannot rot, it just is not proven
# until a clang-equipped runner picks it up.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

find_clang() {
  if [ -n "${COSTDB_CLANGXX:-}" ]; then
    echo "$COSTDB_CLANGXX"
    return
  fi
  local c
  for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
           clang++-15 clang++-14; do
    if command -v "$c" >/dev/null 2>&1; then
      echo "$c"
      return
    fi
  done
  for c in /usr/lib/llvm-*/bin/clang++ /usr/local/opt/llvm/bin/clang++ \
           /opt/homebrew/opt/llvm/bin/clang++; do
    if [ -x "$c" ]; then
      echo "$c"
      return
    fi
  done
}

clangxx="$(find_clang)"
if [ -z "$clangxx" ] || ! "$clangxx" --version >/dev/null 2>&1; then
  echo "thread-safety: SKIPPED — no working clang++ found" \
       "(set COSTDB_CLANGXX to enable). The annotations compiled as" \
       "no-ops in the GCC stages; analysis runs on clang-equipped runners."
  exit 0
fi
echo "thread-safety: using $clangxx ($("$clangxx" --version | head -1))"

flags=(-std=c++17 -fsyntax-only -I "$root/src"
       -Wthread-safety -Werror=thread-safety -Wno-everything
       -Wthread-safety-analysis)

# ---- fixture self-check: the stage must reject the seeded bug ----------
if "$clangxx" "${flags[@]}" tests/thread_safety_fixtures/bad_unguarded_access.cc \
     >/dev/null 2>&1; then
  echo "thread-safety: FAIL — seeded unguarded access in" \
       "tests/thread_safety_fixtures/bad_unguarded_access.cc was NOT" \
       "rejected; the analysis stage is not working"
  exit 1
fi
echo "thread-safety: self-check ok (seeded unguarded access rejected)"

if ! "$clangxx" "${flags[@]}" \
     tests/thread_safety_fixtures/good_guarded_access.cc; then
  echo "thread-safety: FAIL — clean fixture" \
       "tests/thread_safety_fixtures/good_guarded_access.cc did not pass"
  exit 1
fi
echo "thread-safety: self-check ok (guarded fixture accepted)"

# ---- whole tree ---------------------------------------------------------
fail=0
while IFS= read -r tu; do
  if ! "$clangxx" "${flags[@]}" "$tu"; then
    echo "thread-safety: violation(s) in $tu"
    fail=1
  fi
done < <(find src -name '*.cc' | sort)

if [ "$fail" -ne 0 ]; then
  echo "thread-safety: FAILED"
  exit 1
fi
echo "thread-safety: all src/ translation units clean"
