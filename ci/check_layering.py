#!/usr/bin/env python3
"""Architecture-layering linter: the ROADMAP Rule as a mechanical check.

Parses the project #include graph and fails when an edge crosses a layer
boundary the architecture forbids:

  optimizer-internal  Code outside src/optimizer/ and tests/ must not
                      include optimizer-internal headers (the planner
                      stages: Binder/DagPlanner/PhysicalPlanner and their
                      support headers). Everything else consumes the pass
                      facade (optimizer/passes.h) or the priced outputs
                      (optimizer/dop_planner.h, optimizer/bi_objective.h,
                      optimizer/cardinality.h).

  session-bypass      examples/ and bench/ enter through the service layer
                      (service/session.h, service/database.h) or
                      harness-level components; including optimizer/sql/
                      plan internals or service/query_service.h bypasses
                      the Session front door.

  own-planner         src/tuning, src/stats, and src/workload consume the
                      facade's estimator and pass pipeline; including a
                      planner stage header directly means the component
                      wired its own planner.

  storage-internal    The block format under src/storage/block/ (typed
                      pages, zone maps, manifest) is an implementation
                      detail of the persistent table tier. Only the
                      storage layer itself, the catalog (which surfaces
                      manifest summaries), and unit tests may include it;
                      everyone else goes through storage/persistent.h or
                      the table/catalog layer.

  engine-object-store Execution engines (src/exec/) scan through
                      TableStorage/BlockCache and must never talk to the
                      SimulatedObjectStore directly — GETs issued outside
                      the priced cache path would escape both the billing
                      ledger and the storage-term calibration.

  net-internal        The exchange transport and wire format under
                      src/net/ are implementation details of the sharded
                      engine's exchange seam. Only the net layer itself,
                      the engine that owns the seam (src/exec/), the
                      simulator that predicts it (src/sim/), and unit
                      tests may include them; everyone else consumes the
                      re-exported knobs on exec/sharded_engine.h or the
                      service facade — a second direct consumer of the
                      wire format would fork the serialization contract.

Legitimate exceptions live in ci/layering_allowlist.txt as
"includer -> included" lines; stale entries fail the check so the
allowlist cannot rot.

Usage:
  ci/check_layering.py [--root DIR]          lint the real tree
  ci/check_layering.py --self-test [--root DIR]
      run the fixture suite in tests/layering_fixtures/ (each fixture
      declares "// pretend: <path>" and "// expect: <rule>|none" header
      comments) and then assert the real tree is clean.
"""

import argparse
import os
import re
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# Planner-stage headers: the optimizer's internals. sql/binder.h is the
# bind stage even though it lives under sql/.
OPTIMIZER_INTERNAL = {
    "optimizer/optimizer.h",
    "optimizer/dag_planner.h",
    "optimizer/physical_planner.h",
    "optimizer/bushy_rewriter.h",
    "optimizer/join_graph.h",
    "sql/binder.h",
}

# Directories whose code may include the internals freely: the optimizer
# itself and unit tests (which exercise stages in isolation by design).
INTERNAL_OK_PREFIXES = ("src/optimizer/", "tests/")

# Client-side trees that must enter through Session.
CLIENT_PREFIXES = ("examples/", "bench/")
# Entering the planner from client code bypasses the facade.
CLIENT_FORBIDDEN_PREFIXES = ("optimizer/", "sql/", "plan/")
CLIENT_FORBIDDEN_FILES = {"service/query_service.h"}

# Components that must consume the planning facade, not wire stages.
NO_OWN_PLANNER_PREFIXES = ("src/tuning/", "src/stats/", "src/workload/")

# Block-format internals: reachable only via the table/catalog layer.
# src/net/ rides along: the wire format deliberately reuses the block
# format's page primitives (PutU64/ByteCursor/Fnv1a64) so a chunk is laid
# out the same way on the wire as at rest.
STORAGE_INTERNAL_PREFIX = "storage/block/"
STORAGE_INTERNAL_OK_PREFIXES = ("src/storage/", "src/catalog/", "src/net/",
                                "tests/")

# Exchange-transport internals: only the engine that owns the exchange
# seam, the simulator that predicts it, and tests reach src/net/ directly.
NET_INTERNAL_PREFIX = "net/"
NET_INTERNAL_OK_PREFIXES = ("src/net/", "src/exec/", "src/sim/", "tests/")

# Engines scan through TableStorage/BlockCache, never the store itself.
ENGINE_PREFIXES = ("src/exec/",)
ENGINE_FORBIDDEN_FILES = {"cloud/object_store.h"}

SCAN_DIRS = ("src", "examples", "bench", "tests", "tools")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")


def component_of(path):
    """Top-level component of an include-style path ("sql/binder.h" -> "sql")."""
    return path.split("/", 1)[0] if "/" in path else ""


def includer_component(path):
    """Component of an includer path relative to src/ ("" outside src/)."""
    if path.startswith("src/"):
        rest = path[len("src/"):]
        return component_of(rest)
    return ""


def parse_includes(text):
    out = []
    for lineno, line in enumerate(text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if m:
            out.append((lineno, m.group(1)))
    return out


def check_file(path, includes, allowlist, used_allowlist):
    """Return [(rule, lineno, include, message)] violations for one file."""
    violations = []
    for lineno, inc in includes:
        if (path, inc) in allowlist:
            used_allowlist.add((path, inc))
            continue

        # Rule: optimizer-internal
        if inc in OPTIMIZER_INTERNAL:
            same_component = includer_component(path) == component_of(inc)
            exempt = path.startswith(INTERNAL_OK_PREFIXES) or same_component
            if not exempt:
                if path.startswith(NO_OWN_PLANNER_PREFIXES):
                    violations.append((
                        "own-planner", lineno, inc,
                        f"{path}:{lineno}: includes planner stage '{inc}' — "
                        "tuning/stats/workload must consume the facade's "
                        "pass pipeline (optimizer/passes.h), not wire "
                        "Binder/DagPlanner/PhysicalPlanner themselves"))
                else:
                    violations.append((
                        "optimizer-internal", lineno, inc,
                        f"{path}:{lineno}: includes optimizer-internal "
                        f"header '{inc}' — only src/optimizer/ and tests/ "
                        "may; use optimizer/passes.h or the Database/"
                        "Session facade"))

        # Rule: storage-internal
        if (inc.startswith(STORAGE_INTERNAL_PREFIX)
                and not path.startswith(STORAGE_INTERNAL_OK_PREFIXES)):
            violations.append((
                "storage-internal", lineno, inc,
                f"{path}:{lineno}: includes block-format internal '{inc}' — "
                "only src/storage/, src/catalog/, and tests/ may; consume "
                "storage/persistent.h or the table/catalog layer"))

        # Rule: net-internal
        if (inc.startswith(NET_INTERNAL_PREFIX)
                and not path.startswith(NET_INTERNAL_OK_PREFIXES)):
            violations.append((
                "net-internal", lineno, inc,
                f"{path}:{lineno}: includes exchange-transport internal "
                f"'{inc}' — only src/net/, src/exec/, src/sim/, and tests/ "
                "may; consume the transport knobs re-exported by "
                "exec/sharded_engine.h or the service facade"))

        # Rule: engine-object-store
        if (path.startswith(ENGINE_PREFIXES)
                and inc in ENGINE_FORBIDDEN_FILES):
            violations.append((
                "engine-object-store", lineno, inc,
                f"{path}:{lineno}: engine includes '{inc}' — engines scan "
                "through TableStorage/BlockCache (storage/persistent.h); "
                "direct object-store GETs would bypass the priced cache, "
                "the billing ledger, and the storage-term calibration"))

        # Rule: session-bypass
        if path.startswith(CLIENT_PREFIXES):
            if (inc.startswith(CLIENT_FORBIDDEN_PREFIXES)
                    or inc in CLIENT_FORBIDDEN_FILES):
                violations.append((
                    "session-bypass", lineno, inc,
                    f"{path}:{lineno}: client code includes '{inc}' — "
                    "examples and benches enter through service/session.h "
                    "(or service/database.h), never the planner directly"))
    return violations


def load_allowlist(root):
    allowlist = {}
    path = os.path.join(root, "ci", "layering_allowlist.txt")
    if not os.path.exists(path):
        return allowlist
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "->" not in line:
                print(f"layering: bad allowlist line: {raw.rstrip()}",
                      file=sys.stderr)
                sys.exit(2)
            includer, included = (p.strip() for p in line.split("->", 1))
            allowlist[(includer, included)] = raw.strip()
    return allowlist


def iter_sources(root):
    for top in SCAN_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            # Fixtures are linted by --self-test with pretend paths, not
            # as part of the real tree.
            dirnames[:] = [d for d in dirnames if d != "layering_fixtures"]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def lint_tree(root):
    allowlist = load_allowlist(root)
    used = set()
    failures = []
    for rel in iter_sources(root):
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            includes = parse_includes(f.read())
        failures.extend(check_file(rel, includes, allowlist, used))
    stale = set(allowlist) - used
    for includer, included in sorted(stale):
        failures.append((
            "stale-allowlist", 0, included,
            f"ci/layering_allowlist.txt: stale entry "
            f"'{includer} -> {included}' (no such include in the tree)"))
    return failures


def self_test(root):
    """Each fixture must trigger exactly its declared rule; then the real
    tree must be clean."""
    fixture_dir = os.path.join(root, "tests", "layering_fixtures")
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith(SOURCE_EXTS))
    if not fixtures:
        print("layering self-test: no fixtures found", file=sys.stderr)
        return 1
    allowlist = load_allowlist(root)
    failed = False
    for name in fixtures:
        with open(os.path.join(fixture_dir, name), encoding="utf-8") as f:
            text = f.read()
        pretend = re.search(r"//\s*pretend:\s*(\S+)", text)
        expect = re.search(r"//\s*expect:\s*(\S+)", text)
        if not pretend or not expect:
            print(f"layering self-test: {name}: missing "
                  "'// pretend:' or '// expect:' header", file=sys.stderr)
            failed = True
            continue
        violations = check_file(pretend.group(1), parse_includes(text),
                                allowlist, set())
        rules = {v[0] for v in violations}
        expected = expect.group(1)
        if expected == "none":
            if rules:
                print(f"layering self-test: {name}: expected clean, "
                      f"got {sorted(rules)}", file=sys.stderr)
                failed = True
            else:
                print(f"layering self-test: {name}: clean as expected")
        elif expected not in rules:
            print(f"layering self-test: {name}: expected rule "
                  f"'{expected}', got {sorted(rules) or 'no violations'}",
                  file=sys.stderr)
            failed = True
        else:
            print(f"layering self-test: {name}: rejected ({expected})")
    tree_failures = lint_tree(root)
    if tree_failures:
        print("layering self-test: real tree not clean:", file=sys.stderr)
        for _, _, _, msg in tree_failures:
            print(f"  {msg}", file=sys.stderr)
        failed = True
    else:
        print("layering self-test: real tree clean")
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite, then lint the tree")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.root))

    failures = lint_tree(args.root)
    if failures:
        for _, _, _, msg in failures:
            print(msg, file=sys.stderr)
        print(f"layering: {len(failures)} violation(s)", file=sys.stderr)
        sys.exit(1)
    print("layering: include graph clean")


if __name__ == "__main__":
    main()
