// E7 — paper Section 3.3: morsel-driven, push-based execution lets the
// cluster resize mid-pipeline at small coordination cost; engines with
// materialized "clean cuts" between stages can only act at boundaries and
// pay to write/read every intermediate.
// bench-baseline: none — this bench emits no JSON snapshot; its
// acceptance gates are its PASS/FAIL exit code, not a committed
// ci/bench_baselines/ entry (see the drift guard in ci/build_and_test.sh).
#include "bench_util.h"

using namespace costdb;
using namespace costdb::bench;

int main() {
  PrintHeader("E7: morsel-driven resize vs materialized stage boundaries",
              "Claim (S3.3): clean cuts are nonessential for fine-grained\n"
              "auto-scaling; mid-pipeline resizing has lower overhead.");
  BenchContext ctx = BenchContext::Make();
  const std::string sql = FindQuery("Q11").sql;

  // Misestimate so that runtime correction is actually needed.
  ctx.meta.SetStatsErrorFactor("lineorder", 0.125);
  auto probe = ctx.Prepare(sql, UserConstraint::Sla(1e9));
  if (!probe.ok()) return 1;
  UserConstraint sla =
      UserConstraint::Sla(probe->planned.estimate.latency * 2.0);
  auto prepared = ctx.Prepare(sql, sla);
  ctx.meta.SetStatsErrorFactor("lineorder", 1.0);
  if (!prepared.ok()) return 1;
  CardinalityEstimator truth(&ctx.meta, &prepared->query.relations, true);
  prepared->truth = ComputeVolumes(prepared->planned.plan.get(), truth);

  TablePrinter t({"engine model", "latency", "met", "bill",
                  "resize ovhd", "materialize ovhd"});
  {
    PipelineDopMonitor monitor;  // morsel-driven: mid-pipeline resize
    SimResult r = SimulateQuery(*prepared, *ctx.simulator, &monitor, sla);
    t.AddRow({"morsel-driven (mid-pipeline)", FormatSeconds(r.latency),
              r.sla_met ? "yes" : "NO", FormatDollars(r.cost),
              FormatSeconds(r.resize_overhead_seconds),
              FormatSeconds(r.materialization_seconds)});
  }
  for (double tax : {1.0, 2.0, 4.0}) {
    StageBoundaryPolicy stage(tax);
    SimResult r = SimulateQuery(*prepared, *ctx.simulator, &stage, sla);
    t.AddRow({StrFormat("clean cuts (%.0f s/GiB tax)", tax),
              FormatSeconds(r.latency), r.sla_met ? "yes" : "NO",
              FormatDollars(r.cost),
              FormatSeconds(r.resize_overhead_seconds),
              FormatSeconds(r.materialization_seconds)});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
