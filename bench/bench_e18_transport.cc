// E18: transport-abstracted exchanges.
//
// Claims demonstrated (and gated — exit 1 on violation):
//  (a) the socket transport returns bit-identical query results to the
//      in-process pass-through at a fixed worker count: every moved
//      partition survives the checksummed wire format round trip;
//  (b) framing conservation: the bytes written to the socket equal the
//      serialized wire bytes plus one 8-byte length prefix per transfer
//      (socket_bytes == wire_bytes + 8 * transfers);
//  (c) egress-dollar conservation: the facade bills exactly
//      wire_bytes / GiB * PricingCatalog::egress_per_gib for socket runs,
//      and nothing for in-process runs.
//
// `--smoke` runs a smaller configuration for CI; `--json <path>` snapshots
// the gates plus the serialize/link decomposition for the CI baseline
// comparator. Wall times and second decompositions are trend-only.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "cloud/pricing.h"
#include "common/rng.h"
#include "common/units.h"
#include "exec/sharded_engine.h"

namespace costdb {
namespace {

DataChunk MakeOrders(size_t rows) {
  Rng rng(23);
  DataChunk orders({LogicalType::kInt64, LogicalType::kInt64,
                    LogicalType::kVarchar, LogicalType::kDouble});
  const char* tags[] = {"red", "green", "blue", "cyan", "plum"};
  for (size_t i = 0; i < rows; ++i) {
    orders.AppendRow({Value(static_cast<int64_t>(i)),
                      Value(rng.UniformInt(0, 4999)),
                      Value(std::string(tags[rng.UniformInt(0, 4)])),
                      Value(rng.Uniform(0.0, 1000.0))});
  }
  return orders;
}

std::unique_ptr<Database> MakeDb(const DataChunk& orders,
                                 TransportKind transport) {
  DatabaseOptions opts;
  opts.enable_calibration = false;
  opts.exchange_transport = transport;
  auto db = std::make_unique<Database>(opts);
  auto table = std::make_shared<Table>(
      "orders", std::vector<ColumnDef>{{"id", LogicalType::kInt64},
                                       {"cust", LogicalType::kInt64},
                                       {"tag", LogicalType::kVarchar},
                                       {"amount", LogicalType::kDouble}},
      4096);
  table->Append(orders);
  db->meta()->RegisterTable(table);
  db->meta()->AnalyzeAll();
  return db;
}

std::string ChunkFingerprint(const DataChunk& chunk) {
  std::string all, key;
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    EncodeChunkKeyInto(chunk, chunk.num_columns(), r, &key);
    all += key;
    all += '\n';
  }
  return all;
}

struct TimedRun {
  double wall_seconds = 0.0;
  ExecutionResult result;
};

TimedRun RunOnce(Database* db, const std::string& sql) {
  auto t0 = std::chrono::steady_clock::now();
  auto r = db->ExecuteSql(sql, UserConstraint().WithWorkers(4));
  auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  TimedRun out;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.result = std::move(*r);
  return out;
}

}  // namespace

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::PrintHeader(
      "E18: transport-abstracted exchanges (wire format + socket shuffle)",
      "Socket transport is bit-identical to in-process at fixed width; "
      "socket bytes and egress dollars conserve exactly.");

  const size_t rows = smoke ? 200'000 : 1'000'000;
  DataChunk orders = MakeOrders(rows);
  auto db_inproc = MakeDb(orders, TransportKind::kInProcess);
  auto db_socket = MakeDb(orders, TransportKind::kSocket);

  const std::string queries[] = {
      "SELECT tag, count(*) AS c, sum(amount) AS s FROM orders GROUP BY tag",
      "SELECT cust, count(*) AS c FROM orders GROUP BY cust",
  };

  // ---- (a) bit-identity + wall/byte comparison at 4 workers -----------
  std::printf("\n-- in-process vs socket at 4 workers (%zu rows) --\n", rows);
  std::printf("%-44s %-11s %10s %14s %12s\n", "query", "transport", "wall",
              "wire bytes", "link time");
  bool identical = true;
  double inproc_wall = 0.0, socket_wall = 0.0;
  double socket_wire_bytes = 0.0, socket_link_seconds = 0.0;
  for (const std::string& sql : queries) {
    TimedRun a = RunOnce(db_inproc.get(), sql);
    TimedRun b = RunOnce(db_socket.get(), sql);
    inproc_wall += a.wall_seconds;
    socket_wall += b.wall_seconds;
    socket_wire_bytes += b.result.exchange.wire_bytes();
    socket_link_seconds += b.result.exchange.link_seconds();
    const std::string label =
        sql.size() > 43 ? sql.substr(0, 40) + "..." : sql;
    std::printf("%-44s %-11s %8.1fms %14.0f %10.2fms\n", label.c_str(),
                "in-process", a.wall_seconds * 1e3,
                a.result.exchange.wire_bytes(),
                a.result.exchange.link_seconds() * 1e3);
    std::printf("%-44s %-11s %8.1fms %14.0f %10.2fms\n", "", "socket",
                b.wall_seconds * 1e3, b.result.exchange.wire_bytes(),
                b.result.exchange.link_seconds() * 1e3);
    if (ChunkFingerprint(a.result.result.chunk) !=
        ChunkFingerprint(b.result.result.chunk)) {
      identical = false;
      std::printf("  !! results diverged for: %s\n", sql.c_str());
    }
  }
  std::printf("bit-identical across transports: %s\n",
              identical ? "yes" : "NO");

  // ---- (b) framing conservation on a bare engine ----------------------
  auto planned = db_socket->PlanSql(queries[0], UserConstraint());
  if (!planned.ok()) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }
  ShardedEngineOptions engine_options;
  engine_options.workers = 4;
  engine_options.transport = TransportKind::kSocket;
  ShardedEngine engine(engine_options);
  if (!engine.Execute(planned->plan.get()).ok()) {
    std::fprintf(stderr, "engine execute failed\n");
    return 1;
  }
  const TransportStats& tp = engine.transport_stats();
  const double expected_socket =
      tp.wire_bytes + 8.0 * static_cast<double>(tp.transfers);
  const bool wire_match =
      tp.transfers > 0 && tp.socket_bytes == expected_socket;
  std::printf("\n-- framing conservation (socket engine, 4 workers) --\n");
  std::printf("transfers %zu, wire %.0f B, socket %.0f B (expect wire + "
              "8*transfers = %.0f): %s\n",
              tp.transfers, tp.wire_bytes, tp.socket_bytes, expected_socket,
              wire_match ? "conserved" : "MISMATCH");

  // ---- (c) egress-dollar conservation ---------------------------------
  const Database::EgressBilling billed = db_socket->egress_billing();
  const Database::EgressBilling none = db_inproc->egress_billing();
  const double egress_per_gib = PricingCatalog::Default().egress_per_gib;
  const double expected_dollars = billed.wire_bytes / kGiB * egress_per_gib;
  const bool egress_conserved =
      billed.runs > 0 && billed.wire_bytes > 0.0 &&
      std::fabs(billed.dollars - expected_dollars) < 1e-12 &&
      none.wire_bytes == 0.0 && none.dollars == 0.0;
  std::printf("\n-- egress billing (at $%.2f/GiB) --\n", egress_per_gib);
  std::printf("socket: %zu runs, %.0f wire bytes -> $%.9f (expect "
              "$%.9f); in-process: %.0f bytes, $%.9f: %s\n",
              billed.runs, billed.wire_bytes, billed.dollars,
              expected_dollars, none.wire_bytes, none.dollars,
              egress_conserved ? "conserved" : "MISMATCH");

  std::printf("\nclaims: (a) bit-identical: %s; (b) framing conserved: %s; "
              "(c) egress conserved: %s\n",
              identical ? "PASS" : "FAIL", wire_match ? "PASS" : "FAIL",
              egress_conserved ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    bench::BenchJson json;
    json.SetBool("gate_bit_identical", identical);
    json.SetBool("gate_wire_match", wire_match);
    json.SetBool("gate_egress_conserved", egress_conserved);
    // Exchange content is deterministic for the fixed seed and width, so
    // the byte ledgers gate; seconds are machine-dependent trends.
    json.SetInt("gate_engine_transfers", static_cast<long long>(tp.transfers));
    json.Set("gate_engine_wire_bytes", tp.wire_bytes);
    json.Set("gate_facade_wire_bytes", billed.wire_bytes);
    json.Set("inproc_wall_seconds", inproc_wall);
    json.Set("socket_wall_seconds", socket_wall);
    json.Set("socket_link_seconds", socket_link_seconds);
    json.Set("socket_wire_bytes", socket_wire_bytes);
    if (!json.WriteFile(json_path)) return 1;
  }
  return identical && wire_match && egress_conserved ? 0 : 1;
}

}  // namespace costdb

int main(int argc, char** argv) { return costdb::Main(argc, argv); }
